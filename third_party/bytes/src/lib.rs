//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of `bytes`: enough
//! for the wire format in `bcast-channel` (`Bytes`, `BytesMut`, the `Buf`
//! and `BufMut` cursors with the little-endian accessors it calls). The
//! semantics match the real crate for this subset — cheap `Bytes` clones
//! via a shared buffer, consuming reads, appending writes.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice without copying semantics the
    /// caller can observe (this shim copies once; the real crate borrows).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The readable bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Returns a `Bytes` for the given subrange, sharing the backing
    /// buffer like the real crate.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Splits off the first `len` bytes as an owned `Bytes` sharing the
    /// same backing buffer, advancing `self` past them.
    pub fn split_to(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + len,
        };
        self.start += len;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when writing is done.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// The written bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.data.clone()), f)
    }
}

/// Read cursor over a byte source; reads consume.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Consumes `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        // Zero-copy: share the backing buffer like the real crate.
        self.split_to(len)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_integers() {
        let mut out = BytesMut::new();
        out.put_u8(7);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        let mut buf = out.freeze();
        assert_eq!(buf.remaining(), 7);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 0xBEEF);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert!(!buf.has_remaining());
    }

    #[test]
    fn copy_to_bytes_consumes() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.copy_to_bytes(3);
        assert_eq!(head, &[1u8, 2, 3][..]);
        assert_eq!(b.remaining(), 1);
        assert_eq!(b.get_u8(), 4);
    }

    #[test]
    fn slices_are_bufs() {
        let mut s: &[u8] = &[9, 0, 1];
        assert_eq!(s.get_u8(), 9);
        assert_eq!(s.remaining(), 2);
    }
}
