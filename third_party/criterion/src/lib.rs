//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of criterion 0.5:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Statistical machinery (outlier analysis, HTML reports) is
//! replaced by a warm-up plus a fixed measurement window, reporting the
//! mean and min per-iteration wall time — enough for the relative
//! comparisons the benches in this repository make (pruned vs unpruned,
//! sequential vs parallel, bound tightness).
//!
//! Filtering works like upstream: `cargo bench -- <substring>` runs only
//! benchmark ids containing the substring.

use std::time::{Duration, Instant};

/// Top-level harness handle.
pub struct Criterion {
    filter: Option<String>,
    /// Target measurement window per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Reads the `cargo bench -- <filter>` arguments, like upstream.
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        // Ignore harness flags (--bench, --test); first free argument is
        // the id substring filter.
        self.filter = args.into_iter().find(|a| !a.starts_with('-'));
        self
    }

    /// Overrides the per-benchmark measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id().text;
        run_one(&id, self.filter.as_deref(), self.measurement, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declares the group's throughput (recorded, displayed per element).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count (accepted for compatibility; the shim's
    /// fixed measurement window ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides this group's measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().text);
        run_one(
            &id,
            self.criterion.filter.as_deref(),
            self.criterion.measurement,
            &mut |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f` without an input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().text);
        run_one(
            &id,
            self.criterion.filter.as_deref(),
            self.criterion.measurement,
            &mut f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id, like upstream.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] (strings or ready-made ids).
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            text: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { text: self }
    }
}

/// Units processed per iteration (recorded for display compatibility).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export for parity with `criterion::black_box`.
pub use std::hint::black_box;

fn run_one(id: &str, filter: Option<&str>, measurement: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    // Calibration pass: one iteration, to size the measurement batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    // Batch so one batch is ~1/10 of the window, capped for slow routines.
    let per_batch = (measurement.as_nanos() / 10 / once.as_nanos()).clamp(1, 10_000) as u64;
    let deadline = Instant::now() + measurement;
    let mut times: Vec<f64> = Vec::new();
    loop {
        let mut b = Bencher {
            iters: per_batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / per_batch as f64);
        if Instant::now() >= deadline || times.len() >= 200 {
            break;
        }
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "{id:<60} time: [mean {} min {}] ({} samples x {} iters)",
        fmt_time(mean),
        fmt_time(min),
        times.len(),
        per_batch
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group-runner function, like `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, like `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::new("f", "k1").into_benchmark_id().text, "f/k1");
        assert_eq!(BenchmarkId::from_parameter(3).into_benchmark_id().text, "3");
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            measurement: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("shim");
        let mut calls = 0u64;
        g.bench_with_input(BenchmarkId::new("count", 1), &3u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            measurement: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
    }
}
