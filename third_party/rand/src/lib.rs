//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of `rand` 0.8:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64 — *not* the ChaCha
//! stream of the real crate, so absolute sequences differ from upstream
//! rand. Every consumer in this workspace treats the RNG as an opaque
//! deterministic stream keyed by a `u64` seed (statistical tests, workload
//! generators), so only determinism-per-seed and stream quality matter,
//! and SplitMix64 passes BigCrush-level smoke requirements for both.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, keyed by a `u64` like `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, like upstream.
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_single(self, rng: &mut impl RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single(self, rng: &mut impl RngCore) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = f32::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace-standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up mix so nearby seeds do not yield nearby streams.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            StdRng {
                state: rng.state ^ seed.rotate_left(17),
            }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle(&mut self, rng: &mut impl RngCore);

        /// A uniformly random element, `None` when empty.
        fn choose<'a>(&'a self, rng: &mut impl RngCore) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle(&mut self, rng: &mut impl RngCore) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a>(&'a self, rng: &mut impl RngCore) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_ne!(a[0], c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_f64_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = StdRng::seed_from_u64(9);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut r).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
