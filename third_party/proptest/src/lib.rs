//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of proptest:
//!
//! * the [`proptest!`] macro with `name in strategy` and `name: Type`
//!   parameters and an optional `#![proptest_config(..)]` header,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! * range strategies over the integer and float primitives,
//! * [`collection::vec`] and [`arbitrary::any`],
//! * [`prelude`] re-exporting all of the above (including the `prop` module
//!   path used as `prop::collection::vec`).
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test SplitMix64 stream (no persistence files, so the checked-in
//! `proptest-regressions` directories are ignored), and failing cases are
//! reported but **not shrunk**. Each failure prints the full input
//! bindings, which for the small value domains used in this workspace is
//! as actionable as a shrunken case.

pub mod test_runner {
    //! Configuration and the deterministic case runner plumbing.

    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Subset of proptest's `Config`: only `cases` is consumed here.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` cases, like `ProptestConfig::with_cases`.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic generator feeding the strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives the stream from a stable test identifier, so every run
        /// of a given test sees the same cases.
        pub fn for_name(name: &str) -> Self {
            let mut h = DefaultHasher::new();
            name.hash(&mut h);
            TestRng {
                state: h.finish() ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Prints the failing case's inputs when the test body panics.
    pub struct CaseReporter {
        case: u32,
        inputs: String,
        armed: bool,
    }

    impl CaseReporter {
        /// Arms the reporter for one case.
        pub fn new(case: u32, inputs: String) -> Self {
            CaseReporter {
                case,
                inputs,
                armed: true,
            }
        }

        /// Disarms after the body completed without panicking.
        pub fn disarm(&mut self) {
            self.armed = false;
        }
    }

    impl Drop for CaseReporter {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!(
                    "proptest: case #{} failed with inputs: {}",
                    self.case, self.inputs
                );
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and implementations for primitive ranges.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy simply draws a value from the deterministic stream.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy over empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy over empty range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "strategy over empty range");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    /// A constant strategy, like proptest's `Just`.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitives the workspace asks for.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only: tests feed these into `Weight`-style
            // validated constructors.
            rng.next_f64() * 2e6 - 1e6
        }
    }

    /// Strategy wrapper returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, len_range)`: vectors whose length lies in `len_range`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy over empty size range");
        VecStrategy { element, size }
    }
}

/// The `prop::` path exposed by the prelude (`prop::collection::vec(..)`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*` for the subset
    //! this workspace uses.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts inside a `proptest!` body, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq!({}, {}) failed: {:?} != {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!($($fmt)+);
        }
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "prop_assert_ne!({}, {}) failed: both {:?}",
                stringify!($left),
                stringify!($right),
                l
            );
        }
    }};
}

/// Skips the current case when its precondition does not hold.
///
/// The shim has no case-rejection budget; an assumed-away case simply
/// continues to the next one by returning from the per-case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
}

/// Defines property tests. Supports the upstream surface used here:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, flag: bool) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

/// Internal: peels one `fn` item at a time off the `proptest!` body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_params! {
                @parse
                acc = [];
                cfg = ($cfg);
                name = $name;
                body = $body;
                rest = [$($params)*];
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Internal: normalizes the parameter list into `(name, strategy)` pairs
/// (`name: Type` becomes `name in any::<Type>()`), then emits the runner.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_params {
    // `name in strategy` with more parameters following.
    (@parse acc = [$($acc:tt)*]; cfg = ($cfg:expr); name = $name:ident; body = $body:block;
     rest = [$n:ident in $s:expr, $($rest:tt)+];) => {
        $crate::__proptest_params! {
            @parse acc = [$($acc)* ($n, $s)]; cfg = ($cfg); name = $name; body = $body;
            rest = [$($rest)+];
        }
    };
    // `name in strategy`, final parameter.
    (@parse acc = [$($acc:tt)*]; cfg = ($cfg:expr); name = $name:ident; body = $body:block;
     rest = [$n:ident in $s:expr $(,)?];) => {
        $crate::__proptest_params! {
            @run acc = [$($acc)* ($n, $s)]; cfg = ($cfg); name = $name; body = $body;
        }
    };
    // `name: Type` with more parameters following.
    (@parse acc = [$($acc:tt)*]; cfg = ($cfg:expr); name = $name:ident; body = $body:block;
     rest = [$n:ident : $t:ty, $($rest:tt)+];) => {
        $crate::__proptest_params! {
            @parse acc = [$($acc)* ($n, $crate::arbitrary::any::<$t>())];
            cfg = ($cfg); name = $name; body = $body;
            rest = [$($rest)+];
        }
    };
    // `name: Type`, final parameter.
    (@parse acc = [$($acc:tt)*]; cfg = ($cfg:expr); name = $name:ident; body = $body:block;
     rest = [$n:ident : $t:ty $(,)?];) => {
        $crate::__proptest_params! {
            @run acc = [$($acc)* ($n, $crate::arbitrary::any::<$t>())];
            cfg = ($cfg); name = $name; body = $body;
        }
    };
    // All parameters parsed: emit the case loop.
    (@run acc = [$(($n:ident, $s:expr))*]; cfg = ($cfg:expr); name = $name:ident;
     body = $body:block;) => {{
        let __config: $crate::test_runner::Config = $cfg;
        let mut __rng = $crate::test_runner::TestRng::for_name(concat!(
            module_path!(),
            "::",
            stringify!($name)
        ));
        for __case in 0..__config.cases {
            $(let $n = $crate::strategy::Strategy::sample(&($s), &mut __rng);)*
            let __inputs = {
                let mut d = String::new();
                $(
                    if !d.is_empty() {
                        d.push_str(", ");
                    }
                    d.push_str(&format!("{} = {:?}", stringify!($n), &$n));
                )*
                d
            };
            let mut __reporter =
                $crate::test_runner::CaseReporter::new(__case, __inputs);
            // Immediately-invoked closure so `prop_assume!` can skip a
            // case with `return` without leaving the case loop.
            #[allow(clippy::redundant_closure_call)]
            (|| {
                $(let $n = $n;)*
                $body
            })();
            __reporter.disarm();
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_types(
            a in 2usize..6,
            b in 0u64..500,
            f in 0.25f64..1.0,
            flag: bool,
        ) {
            prop_assert!((2..6).contains(&a));
            prop_assert!(b < 500, "b = {b}");
            prop_assert!((0.25..1.0).contains(&f));
            let _ = flag;
        }

        #[test]
        fn vectors(v in prop::collection::vec(1u32..50, 1..14)) {
            prop_assert!(!v.is_empty() && v.len() < 14);
            prop_assert!(v.iter().all(|&x| (1..50).contains(&x)));
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_name("stable");
        let mut b = crate::test_runner::TestRng::for_name("stable");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn default_config_is_256_cases() {
        assert_eq!(crate::test_runner::Config::default().cases, 256);
    }
}
