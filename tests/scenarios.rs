//! "Day in the life" scenario suite: the four canonical scripts run
//! end-to-end through the multi-tenant serving loop at several thread
//! counts, and every phase SLO must hold — delivery-rate floors, p99
//! ceilings, and *zero* rebuild downtime (the double-buffered swap keeps
//! a program on air through every republish).
//!
//! The default-sized runs keep debug-mode `cargo test` fast; `make
//! scenarios` runs the `#[ignore]`-gated scaled versions in release mode
//! (heavier load, longer days, more tenants).

use broadcast_alloc::serve::{run_scenario, ScenarioOutcome};
use broadcast_alloc::workloads::{
    brownout, canonical_scenarios, diurnal_drift, flash_crowd, tenant_churn, ScenarioSpec,
};

const SEED: u64 = 0xDA7_1CDE;

/// Runs a spec at threads 1, 2 and 4; asserts every phase SLO, zero
/// downtime, and bit-identical outcomes across thread counts; returns
/// the single-thread outcome.
fn run_at_all_thread_counts(spec: &ScenarioSpec) -> ScenarioOutcome {
    let one = run_scenario(spec, SEED, 1);
    one.assert_slos();
    assert_eq!(
        one.total_downtime_slots(),
        0,
        "{}: the swap never leaves a tenant without a program",
        spec.name
    );
    for threads in [2, 4] {
        let other = run_scenario(spec, SEED, threads);
        assert_eq!(
            one, other,
            "{}: outcome must not depend on thread count ({threads})",
            spec.name
        );
    }
    one
}

#[test]
fn flash_crowd_holds_slos_through_the_spike() {
    let out = run_at_all_thread_counts(&flash_crowd(4, 48, 300, 12));
    // The spike phase really is a spike: tenant 0 offers 8× the calm rate.
    let calm = out.phases[0].tenants[0].snapshot.requests;
    let spike = out.phases[1].tenants[0].snapshot.requests;
    assert_eq!(spike, calm * 8);
    // The service adapted: programs were republished during the day.
    assert!(out.total_rebuilds() > 0);
}

#[test]
fn diurnal_drift_follows_the_moving_hot_set() {
    let out = run_at_all_thread_counts(&diurnal_drift(4, 48, 300, 12));
    assert_eq!(out.phases.len(), 4);
    // Afternoon (peak, flat 2× rate) offers more than night (¼ rate).
    assert!(out.phases[2].requests() > out.phases[0].requests());
}

#[test]
fn brownout_degrades_one_tenant_without_slo_violations() {
    let out = run_at_all_thread_counts(&brownout(4, 48, 300, 12));
    let storm = &out.phases[1];
    let victim = &storm.tenants[0].snapshot;
    // The victim really took loss (its SLO is the degraded one) …
    assert!(victim.failed > 0 || victim.retries > 0, "{victim:?}");
    // … while every neighbor stayed perfect under the strict SLO.
    for t in &storm.tenants[1..] {
        assert_eq!(t.snapshot.delivered, t.snapshot.requests);
    }
}

#[test]
fn tenant_churn_keeps_the_roster_and_slos_straight() {
    let out = run_at_all_thread_counts(&tenant_churn(4, 48, 300, 12));
    let sizes: Vec<usize> = out.phases.iter().map(|p| p.tenants.len()).collect();
    assert_eq!(sizes, [4, 6, 4]);
    // The survivors after the evening exodus are the original cohort.
    let ids: Vec<u64> = out.phases[2].tenants.iter().map(|t| t.tenant).collect();
    assert_eq!(ids, [0, 1, 2, 3]);
}

/// The scaled tier-2 sweep `make scenarios` runs in release mode: longer
/// days, heavier rates, more tenants — same invariants.
#[test]
#[ignore = "scaled scenario sweep; run with make scenarios"]
fn scenarios_scaled_day() {
    for spec in canonical_scenarios(8, 128, 2_000, 48) {
        let out = run_at_all_thread_counts(&spec);
        assert!(
            out.total_requests() > 1_000_000,
            "{}: scaled day should offer over a million requests, got {}",
            out.name,
            out.total_requests()
        );
    }
}
