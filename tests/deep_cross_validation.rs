//! Deep (slow) cross-validation, `#[ignore]`d by default.
//!
//! Run with `cargo test --release -- --ignored` for an extended sweep that
//! pushes the exact searches to the edge of what exhaustive enumeration can
//! still ground-truth: larger trees, every strategy, every bound, every
//! channel count. The fast versions of these checks run in the per-crate
//! property tests; this suite exists so a release can be soak-tested.

use broadcast_alloc::alloc::best_first::{self, BestFirstOptions};
use broadcast_alloc::alloc::bound::BoundKind;
use broadcast_alloc::alloc::{data_tree, topo_tree};
use broadcast_alloc::workloads::{random_tree, FrequencyDist, RandomTreeConfig};

#[test]
#[ignore = "slow soak test; run with -- --ignored"]
fn all_exact_strategies_agree_on_larger_trees() {
    for seed in 0..60u64 {
        let cfg = RandomTreeConfig {
            data_nodes: 6 + (seed as usize % 3),
            max_fanout: 3,
            weights: FrequencyDist::Zipf {
                theta: 0.8,
                scale: 100.0,
            },
        };
        let tree = random_tree(&cfg, seed);
        for k in 1..=3usize {
            let exact = topo_tree::solve_exhaustive(&tree, k);
            for pruned in [false, true] {
                for bound in [BoundKind::Paper, BoundKind::Packed] {
                    let opts = BestFirstOptions {
                        pruned,
                        bound,
                        ..BestFirstOptions::default()
                    };
                    let got = best_first::search(&tree, k, &opts).unwrap();
                    assert!(
                        (got.data_wait - exact.data_wait).abs() < 1e-9,
                        "seed {seed} k {k} pruned {pruned} bound {bound:?}: \
                         {} vs {}",
                        got.data_wait,
                        exact.data_wait
                    );
                }
            }
            if k == 1 {
                let dt = data_tree::search_optimal(&tree);
                assert!(
                    (dt.data_wait - exact.data_wait).abs() < 1e-9,
                    "seed {seed}: data tree {} vs {}",
                    dt.data_wait,
                    exact.data_wait
                );
            }
        }
    }
}

#[test]
#[ignore = "slow soak test; run with -- --ignored"]
fn data_tree_counts_nest_across_many_trees() {
    use data_tree::PruneLevel;
    for seed in 0..80u64 {
        let cfg = RandomTreeConfig {
            data_nodes: 2 + (seed as usize % 7),
            max_fanout: 4,
            weights: FrequencyDist::Uniform { lo: 1.0, hi: 100.0 },
        };
        let tree = random_tree(&cfg, seed);
        let p2 = data_tree::count_paths(&tree, PruneLevel::P2);
        let p12 = data_tree::count_paths(&tree, PruneLevel::P12);
        let p124 = data_tree::count_paths(&tree, PruneLevel::P124);
        assert!(p2 >= p12, "seed {seed}");
        assert!(p12 >= p124, "seed {seed}");
        assert!(
            p124 >= 1,
            "seed {seed}: pruning must keep at least one path"
        );
    }
}
