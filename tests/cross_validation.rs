//! §2.2 cross-validation: the index-and-data allocation problem really is
//! the Personnel Assignment Problem the paper reduces it to.
//!
//! A 1-channel instance encodes as a PAP with jobs = tree nodes, persons =
//! broadcast positions `0..n`, cost `C(d, p) = W(d)·(p + 1)` for data nodes
//! (zero for index nodes), and precedences = tree edges. The PAP optimum's
//! cost must equal the allocation optimum's unnormalized weighted wait —
//! two completely independent solver stacks agreeing on every instance.

use broadcast_alloc::alloc::{find_optimal, OptimalOptions};
use broadcast_alloc::assignment::{solve_branch_and_bound, PapInstance};
use broadcast_alloc::tree::{builders, IndexTree};
use broadcast_alloc::types::NodeId;
use broadcast_alloc::workloads::{random_tree, FrequencyDist, RandomTreeConfig};

/// Encodes a 1-channel allocation instance as a PAP.
fn encode(tree: &IndexTree) -> PapInstance {
    let n = tree.len();
    let mut pap = PapInstance::new(n);
    for i in 0..n {
        let node = NodeId::from_index(i);
        if tree.is_data(node) {
            for p in 0..n {
                pap.set_cost(i, p, tree.weight(node).get() * (p + 1) as f64);
            }
        }
        if let Some(parent) = tree.parent(node) {
            pap.add_precedence(parent.index(), i).expect("in range");
        }
    }
    pap
}

#[test]
fn pap_and_allocator_agree_on_paper_example() {
    let tree = builders::paper_example();
    let pap = encode(&tree);
    let pap_sol = solve_branch_and_bound(&pap).unwrap();
    let alloc = find_optimal(&tree, 1, &OptimalOptions::default()).unwrap();
    let weighted = alloc.data_wait * tree.total_weight().get();
    assert!(
        (pap_sol.cost - weighted).abs() < 1e-9,
        "PAP {} vs allocator {weighted}",
        pap_sol.cost
    );
    // The PAP solution is a feasible broadcast order.
    assert!(pap.is_feasible(&pap_sol.person_of));
}

#[test]
fn pap_and_allocator_agree_on_random_trees() {
    for seed in 0..25u64 {
        let cfg = RandomTreeConfig {
            data_nodes: 2 + (seed as usize % 5),
            max_fanout: 3,
            weights: FrequencyDist::Uniform { lo: 1.0, hi: 50.0 },
        };
        let tree = random_tree(&cfg, seed);
        let pap = encode(&tree);
        let pap_sol = solve_branch_and_bound(&pap).unwrap();
        let alloc = find_optimal(&tree, 1, &OptimalOptions::default()).unwrap();
        let weighted = alloc.data_wait * tree.total_weight().get();
        assert!(
            (pap_sol.cost - weighted).abs() < 1e-9,
            "seed {seed}: PAP {} vs allocator {weighted}",
            pap_sol.cost
        );
    }
}

#[test]
fn capacitated_pap_matches_multi_channel_allocator() {
    // §2.2 / Fig. 4(b): the multi-channel mapping gives each person (slot)
    // up to k jobs. The capacitated PAP solver must agree with the
    // allocation search on every instance.
    use broadcast_alloc::assignment::solve_capacitated;
    for seed in 0..15u64 {
        let cfg = RandomTreeConfig {
            data_nodes: 2 + (seed as usize % 4),
            max_fanout: 3,
            weights: FrequencyDist::Uniform { lo: 1.0, hi: 50.0 },
        };
        let tree = random_tree(&cfg, seed);
        for k in 1..=3usize {
            let pap = encode(&tree);
            let sol = solve_capacitated(&pap, k).unwrap();
            let alloc = find_optimal(&tree, k, &OptimalOptions::default()).unwrap();
            let weighted = alloc.data_wait * tree.total_weight().get();
            assert!(
                (sol.cost - weighted).abs() < 1e-9,
                "seed {seed} k {k}: capacitated PAP {} vs allocator {weighted}",
                sol.cost
            );
        }
    }
}

#[test]
fn fig3_partial_order_has_five_extensions() {
    // The paper's Fig. 3 PAP example: J1≤J3, J2≤J4, J2≤J3.
    use broadcast_alloc::assignment::count_linear_extensions;
    let mut pap = PapInstance::new(4);
    pap.add_precedence(0, 2).unwrap();
    pap.add_precedence(1, 3).unwrap();
    pap.add_precedence(1, 2).unwrap();
    assert_eq!(count_linear_extensions(&pap).unwrap(), 5);
}
