//! The client simulator and the analytic cost model must tell the same
//! story on every allocation any component of the library can produce —
//! and every allocation must satisfy the structural invariants of §3.1:
//! bucket injectivity and ancestor-before-descendant slot ordering.

use broadcast_alloc::alloc::heuristics::{shrink, sorting};
use broadcast_alloc::alloc::{baselines, find_optimal, OptimalOptions, Schedule};
use broadcast_alloc::channel::{cost, simulator, Allocation, BroadcastProgram};
use broadcast_alloc::tree::IndexTree;
use broadcast_alloc::types::Slot;
use broadcast_alloc::workloads::{random_tree, FrequencyDist, RandomTreeConfig};
use proptest::prelude::{prop_assert, proptest, ProptestConfig};
use std::collections::HashSet;

fn check(tree: &IndexTree, schedule: &Schedule, k: usize, what: &str) {
    let alloc = schedule
        .into_allocation(tree, k)
        .unwrap_or_else(|e| panic!("{what}: infeasible: {e}"));
    let program = BroadcastProgram::build(&alloc, tree).expect("valid program");
    let sim = simulator::aggregate_metrics(&program, tree).expect("all reachable");
    let analytic = cost::average_data_wait(&alloc, tree);
    assert!(
        (sim.avg_data_wait - analytic).abs() < 1e-9,
        "{what}: simulator {} vs analytic {analytic}",
        sim.avg_data_wait
    );
    assert!(
        (sim.avg_access_time - (cost::expected_probe_wait(alloc.cycle_len()) + analytic - 1.0))
            .abs()
            < 1e-9,
        "{what}: access-time decomposition"
    );
    // Tuning time is at least 2 buckets (probe + data) and at most
    // depth + 1.
    assert!(sim.avg_tuning_time >= 2.0 - 1e-9, "{what}");
    assert!(
        sim.avg_tuning_time <= tree.depth() as f64 + 1.0 + 1e-9,
        "{what}: tuning {} vs depth {}",
        sim.avg_tuning_time,
        tree.depth()
    );
}

#[test]
fn every_producer_agrees_with_the_simulator() {
    for seed in 0..12u64 {
        let cfg = RandomTreeConfig {
            data_nodes: 3 + (seed as usize % 8),
            max_fanout: 4,
            weights: FrequencyDist::Zipf {
                theta: 0.9,
                scale: 100.0,
            },
        };
        let tree = random_tree(&cfg, seed);
        for k in 1..=3usize {
            let opt = find_optimal(&tree, k, &OptimalOptions::default()).unwrap();
            check(&tree, &opt.schedule, k, "optimal");
            check(&tree, &sorting::sorting_schedule(&tree, k), k, "sorting");
            check(
                &tree,
                &shrink::combine_solve(&tree, k, 8).schedule,
                k,
                "shrink",
            );
            check(&tree, &baselines::greedy_frontier(&tree, k), k, "frontier");
            check(
                &tree,
                &baselines::preorder_schedule(&tree, k),
                k,
                "preorder",
            );
            check(
                &tree,
                &baselines::random_feasible(&tree, k, seed),
                k,
                "random",
            );
        }
    }
}

/// The §3.1 structural invariants every feasible allocation must satisfy.
fn check_invariants(alloc: &Allocation, tree: &IndexTree, what: &str) {
    // Injectivity: a bucket (channel, slot) holds at most one node.
    let mut buckets = HashSet::new();
    let mut placed = 0usize;
    for (node, addr) in alloc.iter() {
        assert!(
            buckets.insert((addr.channel, addr.slot)),
            "{what}: bucket ({:?}, {:?}) assigned twice",
            addr.channel,
            addr.slot
        );
        assert!(addr.slot >= Slot::FIRST, "{what}: slots are 1-based");
        assert!(
            addr.slot.offset() < alloc.cycle_len(),
            "{what}: node {node:?} past the cycle"
        );
        placed += 1;
    }
    assert_eq!(placed, tree.len(), "{what}: every node placed exactly once");

    // Ancestor ordering: a child is broadcast strictly after its parent, so
    // a client can always follow a pointer forward within the cycle.
    for i in 0..tree.len() {
        let node = broadcast_alloc::types::NodeId::from_index(i);
        let Some(parent) = tree.parent(node) else {
            continue;
        };
        let child_slot = alloc.slot_of(node).expect("placed");
        let parent_slot = alloc.slot_of(parent).expect("placed");
        assert!(
            child_slot > parent_slot,
            "{what}: node {node:?} at {child_slot:?} not after parent {parent:?} at {parent_slot:?}"
        );
    }

    alloc
        .validate(tree)
        .unwrap_or_else(|e| panic!("{what}: {e}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Property version of the fixed-seed sweep: on proptest-chosen trees
    /// and channel counts, every schedule producer yields an allocation
    /// that is injective, ancestor-ordered, and whose analytic cost the
    /// simulator reproduces to 1e-9.
    #[test]
    fn generated_allocations_uphold_invariants(
        n in 2usize..10,
        fanout in 2usize..5,
        k in 1usize..4,
        seed in 0u64..100_000,
        zipf: bool,
    ) {
        let cfg = RandomTreeConfig {
            data_nodes: n,
            max_fanout: fanout,
            weights: if zipf {
                FrequencyDist::Zipf { theta: 0.9, scale: 100.0 }
            } else {
                FrequencyDist::Uniform { lo: 1.0, hi: 100.0 }
            },
        };
        let tree = random_tree(&cfg, seed);
        let producers: Vec<(&str, Schedule)> = vec![
            (
                "optimal",
                find_optimal(&tree, k, &OptimalOptions::default())
                    .expect("no limit")
                    .schedule,
            ),
            ("sorting", sorting::sorting_schedule(&tree, k)),
            ("frontier", baselines::greedy_frontier(&tree, k)),
            ("preorder", baselines::preorder_schedule(&tree, k)),
            ("random", baselines::random_feasible(&tree, k, seed)),
        ];
        for (what, schedule) in &producers {
            let alloc = schedule
                .into_allocation(&tree, k)
                .unwrap_or_else(|e| panic!("{what}: infeasible: {e}"));
            check_invariants(&alloc, &tree, what);
            check(&tree, schedule, k, what);
        }
        // The analytic model must rank the optimal schedule no worse than
        // any other producer's — a cheap cross-check that `find_optimal`
        // and `average_data_wait` agree on what "better" means.
        let costs: Vec<f64> = producers
            .iter()
            .map(|(_, s)| {
                let a = s.into_allocation(&tree, k).expect("feasible");
                cost::average_data_wait(&a, &tree)
            })
            .collect();
        for (i, c) in costs.iter().enumerate().skip(1) {
            prop_assert!(
                costs[0] <= c + 1e-9,
                "optimal {} beaten by {} at {}",
                costs[0],
                producers[i].0,
                c
            );
        }
    }
}

#[test]
fn probe_wait_covers_every_tune_in_slot() {
    // Simulated probe wait from slot t must be cycle_len - t + 1; averaged
    // over all slots that is (L + 1)/2, the analytic expectation.
    let tree = broadcast_alloc::tree::builders::paper_example();
    let opt = find_optimal(&tree, 2, &OptimalOptions::default()).unwrap();
    let alloc = opt.schedule.into_allocation(&tree, 2).unwrap();
    let program = BroadcastProgram::build(&alloc, &tree).unwrap();
    let target = tree.find_by_label("C").unwrap();
    let cycle = program.cycle_len() as u32;
    let mut total = 0.0;
    for t in 1..=cycle {
        let trace = simulator::access(&program, &tree, target, Slot(t)).unwrap();
        assert_eq!(trace.probe_wait, cycle - t + 1);
        total += f64::from(trace.probe_wait);
    }
    assert!((total / f64::from(cycle) - cost::expected_probe_wait(cycle as usize)).abs() < 1e-9);
}
