//! The client simulator and the analytic cost model must tell the same
//! story on every allocation any component of the library can produce.

use broadcast_alloc::alloc::heuristics::{shrink, sorting};
use broadcast_alloc::alloc::{baselines, find_optimal, OptimalOptions, Schedule};
use broadcast_alloc::channel::{cost, simulator, BroadcastProgram};
use broadcast_alloc::tree::IndexTree;
use broadcast_alloc::types::Slot;
use broadcast_alloc::workloads::{random_tree, FrequencyDist, RandomTreeConfig};

fn check(tree: &IndexTree, schedule: &Schedule, k: usize, what: &str) {
    let alloc = schedule
        .into_allocation(tree, k)
        .unwrap_or_else(|e| panic!("{what}: infeasible: {e}"));
    let program = BroadcastProgram::build(&alloc, tree).expect("valid program");
    let sim = simulator::aggregate_metrics(&program, tree).expect("all reachable");
    let analytic = cost::average_data_wait(&alloc, tree);
    assert!(
        (sim.avg_data_wait - analytic).abs() < 1e-9,
        "{what}: simulator {} vs analytic {analytic}",
        sim.avg_data_wait
    );
    assert!(
        (sim.avg_access_time
            - (cost::expected_probe_wait(alloc.cycle_len()) + analytic - 1.0))
            .abs()
            < 1e-9,
        "{what}: access-time decomposition"
    );
    // Tuning time is at least 2 buckets (probe + data) and at most
    // depth + 1.
    assert!(sim.avg_tuning_time >= 2.0 - 1e-9, "{what}");
    assert!(
        sim.avg_tuning_time <= tree.depth() as f64 + 1.0 + 1e-9,
        "{what}: tuning {} vs depth {}",
        sim.avg_tuning_time,
        tree.depth()
    );
}

#[test]
fn every_producer_agrees_with_the_simulator() {
    for seed in 0..12u64 {
        let cfg = RandomTreeConfig {
            data_nodes: 3 + (seed as usize % 8),
            max_fanout: 4,
            weights: FrequencyDist::Zipf { theta: 0.9, scale: 100.0 },
        };
        let tree = random_tree(&cfg, seed);
        for k in 1..=3usize {
            let opt = find_optimal(&tree, k, &OptimalOptions::default()).unwrap();
            check(&tree, &opt.schedule, k, "optimal");
            check(&tree, &sorting::sorting_schedule(&tree, k), k, "sorting");
            check(
                &tree,
                &shrink::combine_solve(&tree, k, 8).schedule,
                k,
                "shrink",
            );
            check(&tree, &baselines::greedy_frontier(&tree, k), k, "frontier");
            check(
                &tree,
                &baselines::preorder_schedule(&tree, k),
                k,
                "preorder",
            );
            check(
                &tree,
                &baselines::random_feasible(&tree, k, seed),
                k,
                "random",
            );
        }
    }
}

#[test]
fn probe_wait_covers_every_tune_in_slot() {
    // Simulated probe wait from slot t must be cycle_len - t + 1; averaged
    // over all slots that is (L + 1)/2, the analytic expectation.
    let tree = broadcast_alloc::tree::builders::paper_example();
    let opt = find_optimal(&tree, 2, &OptimalOptions::default()).unwrap();
    let alloc = opt.schedule.into_allocation(&tree, 2).unwrap();
    let program = BroadcastProgram::build(&alloc, &tree).unwrap();
    let target = tree.find_by_label("C").unwrap();
    let cycle = program.cycle_len() as u32;
    let mut total = 0.0;
    for t in 1..=cycle {
        let trace = simulator::access(&program, &tree, target, Slot(t)).unwrap();
        assert_eq!(trace.probe_wait, cycle - t + 1);
        total += f64::from(trace.probe_wait);
    }
    assert!((total / f64::from(cycle) - cost::expected_probe_wait(cycle as usize)).abs() < 1e-9);
}
