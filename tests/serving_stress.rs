//! Million-request serving stress: the batched compiled engine at the
//! ROADMAP's traffic scale. Ignored by default (several seconds in debug
//! builds); `make stress` runs it in release mode alongside the parallel
//! search stress suite.

use broadcast_alloc::alloc::heuristics::sorting;
use broadcast_alloc::channel::{simulator, BroadcastProgram, CompiledProgram, ServeOptions};
use broadcast_alloc::tree::knary;
use broadcast_alloc::types::NodeId;
use broadcast_alloc::workloads::{FrequencyDist, RequestStream};

#[test]
#[ignore = "million-request serving stress; run via `make stress`"]
fn million_request_serving_stress() {
    const ITEMS: usize = 4096;
    const REQUESTS: usize = 1_000_000;
    const CHANNELS: usize = 4;
    let weights = FrequencyDist::Zipf {
        theta: 1.0,
        scale: 1000.0,
    }
    .sample(ITEMS, 23);
    let tree = knary::build_weight_balanced(&weights, 8).expect("non-empty");
    let alloc = sorting::sorting_schedule(&tree, CHANNELS)
        .into_allocation(&tree, CHANNELS)
        .expect("feasible");
    let program = BroadcastProgram::build(&alloc, &tree).expect("valid program");
    let compiled = CompiledProgram::compile(&program, &tree).expect("routable");
    let data = tree.data_nodes();
    let targets: Vec<NodeId> = RequestStream::zipf(data.len(), 1.0, 6)
        .take(REQUESTS)
        .map(|i| data[i])
        .collect();

    let opts = ServeOptions {
        threads: 1,
        seed: 0xBEEF,
        ..ServeOptions::default()
    };
    let m1 = compiled
        .serve_batch(&targets, &opts)
        .expect("all reachable");
    assert_eq!(m1.requests, REQUESTS);
    assert_eq!(m1.histogram.count(), REQUESTS as u64);

    // Sharded serving is bit-identical to sequential at any thread count.
    for threads in [2usize, 4] {
        let mt = compiled
            .serve_batch(&targets, &ServeOptions { threads, ..opts })
            .expect("all reachable");
        assert_eq!(m1, mt, "threads = {threads}");
    }

    // Sanity bounds: access time sits between 1 slot and probe + data
    // worst cases; the histogram agrees with the point statistics.
    let cycle = compiled.cycle_len() as f64;
    assert!(m1.mean_access_time >= 1.0 && m1.mean_access_time <= 2.0 * cycle);
    assert!(m1.mean_data_wait < cycle);
    assert!(f64::from(m1.histogram.percentile(0.5)) <= m1.mean_access_time * 2.0);
    assert!(m1.histogram.max() <= 2 * compiled.cycle_len() as u32);

    // Spot-check a deterministic subsample against the pointer-walking
    // oracle: the million-request aggregate is only trustworthy if each
    // individual table read still matches a real pointer walk.
    for i in (0..REQUESTS).step_by(9973) {
        let tune = opts.tune_in(i as u64, compiled.cycle_len());
        let oracle = simulator::access(&program, &tree, targets[i], tune).expect("reachable");
        let fast = compiled.access(targets[i], tune).expect("routed");
        assert_eq!(oracle, fast, "request {i}");
    }
}
