//! One realistic pipeline exercised end to end through the public facade:
//! workload → index-tree construction → optimal allocation → channel
//! assignment → pointer materialization → client simulation, with the
//! invariants each stage promises the next.

use broadcast_alloc::alloc::{find_optimal, OptimalOptions, Strategy};
use broadcast_alloc::channel::{simulator, BroadcastProgram};
use broadcast_alloc::tree::{knary, TreeStats};
use broadcast_alloc::types::Slot;
use broadcast_alloc::workloads::FrequencyDist;

#[test]
fn full_pipeline_zipf_catalog() {
    const ITEMS: usize = 24;
    const CHANNELS: usize = 3;
    let weights = FrequencyDist::Zipf {
        theta: 1.0,
        scale: 500.0,
    }
    .sample(ITEMS, 123);

    // Stage 1: searchable skewed index.
    let tree = knary::build_alphabetic_knary(&weights, 4).unwrap();
    tree.check_invariants().unwrap();
    let stats = TreeStats::of(&tree);
    assert_eq!(stats.data_nodes, ITEMS);
    assert!(stats.max_fanout <= 4);

    // Stage 2: exact allocation.
    let result = find_optimal(&tree, CHANNELS, &OptimalOptions::default()).unwrap();
    assert!(result.schedule.max_width() <= CHANNELS);

    // Stage 3: channel assignment (§3.1 rules) and validation.
    let alloc = result.schedule.into_allocation(&tree, CHANNELS).unwrap();
    alloc.validate(&tree).unwrap();
    assert_eq!(alloc.placed(), tree.len());

    // Stage 4: pointers.
    let program = BroadcastProgram::build(&alloc, &tree).unwrap();
    assert_eq!(program.occupancy(), tree.len());
    assert!(program.utilization() > 0.0 && program.utilization() <= 1.0);

    // Stage 5: every item reachable from every tune-in slot, and the
    // measured wait equals the optimizer's objective.
    for &d in tree.data_nodes() {
        for t in [
            1u32,
            (program.cycle_len() / 2) as u32 + 1,
            program.cycle_len() as u32,
        ] {
            simulator::access(&program, &tree, d, Slot(t)).unwrap();
        }
    }
    let metrics = simulator::aggregate_metrics(&program, &tree).unwrap();
    assert!((metrics.avg_data_wait - result.data_wait).abs() < 1e-9);
}

#[test]
fn corollary_fast_path_activates_on_wide_budgets() {
    let weights = FrequencyDist::Uniform { lo: 1.0, hi: 10.0 }.sample(6, 9);
    let tree = knary::build_alphabetic_knary(&weights, 3).unwrap();
    let wide = tree.max_level_width();
    let r = find_optimal(&tree, wide, &OptimalOptions::default()).unwrap();
    assert_eq!(r.strategy_used, Strategy::Corollary1);
    assert_eq!(r.nodes_expanded, 0);
    // And it matches the exhaustive optimum.
    let exact = find_optimal(
        &tree,
        wide,
        &OptimalOptions {
            strategy: Strategy::Exhaustive,
            ..OptimalOptions::default()
        },
    )
    .unwrap();
    assert!((r.data_wait - exact.data_wait).abs() < 1e-9);
}

#[test]
fn node_limited_search_falls_back_to_heuristic_cleanly() {
    use broadcast_alloc::alloc::heuristics::sorting;
    use broadcast_alloc::alloc::SearchError;
    let weights = FrequencyDist::Zipf {
        theta: 0.8,
        scale: 100.0,
    }
    .sample(40, 3);
    let tree = knary::build_weight_balanced(&weights, 4).unwrap();
    // A tiny budget forces the error the caller is supposed to handle by
    // switching to a heuristic — the documented large-instance workflow.
    let err = find_optimal(
        &tree,
        2,
        &OptimalOptions {
            strategy: Strategy::BestFirst,
            node_limit: Some(5),
            ..OptimalOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, SearchError::NodeLimitExceeded { .. }));
    let fallback = sorting::sorting_schedule(&tree, 2);
    fallback.into_allocation(&tree, 2).unwrap();
}
