//! Black-box tests of the `bcast` CLI binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn bcast() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bcast"))
}

fn run_ok(args: &[&str]) -> String {
    let out = bcast().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "bcast {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn optimal_demo_two_channels() {
    let out = run_ok(&["optimal", "--demo", "--channels", "2"]);
    assert!(out.contains("3.7714"), "expected the paper optimum: {out}");
    assert!(out.contains("C1 |"));
}

#[test]
fn render_demo() {
    let out = run_ok(&["render", "--demo"]);
    assert!(out.contains("A (w=20)"));
    assert!(out.contains("9 nodes"));
}

#[test]
fn simulate_demo_traces_an_access() {
    let out = run_ok(&[
        "simulate",
        "--demo",
        "--channels",
        "2",
        "--item",
        "C",
        "--tune-in",
        "3",
    ]);
    assert!(out.contains("fetch 'C'"));
    assert!(out.contains("fleet expectation"));
}

#[test]
fn heuristic_with_replication_advice() {
    let out = run_ok(&[
        "heuristic",
        "--demo",
        "--channels",
        "1",
        "--method",
        "sorting",
        "--replicas",
        "8",
    ]);
    assert!(out.contains("heuristic: sorting"));
    assert!(out.contains("best root replication"));
}

#[test]
fn gen_pipes_into_optimal() {
    let tree_text = run_ok(&["gen", "--items", "6", "--dist", "uniform", "--seed", "9"]);
    assert!(tree_text.starts_with("index"));
    let mut child = bcast()
        .args(["optimal", "--channels", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(tree_text.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("average data wait"));
}

#[test]
fn helpful_errors() {
    let out = bcast()
        .args(["optimal", "--demo"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--channels"));

    let out = bcast().args(["frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = bcast()
        .args(["simulate", "--demo", "--channels", "2", "--item", "ZZZ"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no node labeled"));
}

#[test]
fn zero_channels_is_a_clean_error() {
    let out = bcast()
        .args(["optimal", "--demo", "--channels", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("at least 1"), "got: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn unknown_flag_is_rejected() {
    let out = bcast()
        .args(["optimal", "--demo", "--channels", "2", "--chanels", "3"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --chanels"));
}

#[test]
fn tune_in_past_cycle_wraps_cyclically() {
    let a = run_ok(&[
        "simulate",
        "--demo",
        "--channels",
        "2",
        "--item",
        "C",
        "--tune-in",
        "99",
    ]);
    assert!(!a.contains("4294"), "no u32 underflow in probe wait: {a}");
}

#[test]
fn compare_lists_every_method() {
    let out = run_ok(&["compare", "--demo", "--channels", "2"]);
    for m in ["optimal", "sorting", "frontier greedy", "random"] {
        assert!(out.contains(m), "missing {m}: {out}");
    }
    assert!(out.contains("3.7714"), "paper optimum shown: {out}");
}

#[test]
fn help_prints_usage() {
    let out = run_ok(&["help"]);
    assert!(out.contains("optimal"));
    assert!(out.contains("heuristic"));
    assert!(out.contains("serve"));
}

#[test]
fn serve_runs_a_scenario_and_reports_phases() {
    let small = &[
        "--tenants",
        "3",
        "--items",
        "32",
        "--rate",
        "150",
        "--slices",
        "6",
    ];
    let out = run_ok(&[&["serve", "--scenario", "flash-crowd"], &small[..]].concat());
    assert!(out.contains("scenario flash-crowd"), "{out}");
    for phase in ["calm", "spike", "decay"] {
        assert!(out.contains(phase), "missing phase {phase}: {out}");
    }
    assert!(out.contains("ok"), "phases should pass their SLOs: {out}");

    // Determinism surfaces in the output: same seed + scenario => same
    // fingerprint at a different thread count.
    let a = run_ok(
        &[
            &["serve", "--scenario", "flash-crowd", "--threads", "1"],
            &small[..],
        ]
        .concat(),
    );
    let b = run_ok(
        &[
            &["serve", "--scenario", "flash-crowd", "--threads", "4"],
            &small[..],
        ]
        .concat(),
    );
    // The rebuild_ms column is wall time — machine-dependent,
    // deliberately excluded from the fingerprint — and the pool footer
    // reports worker count and per-lane busy wall time, both of which
    // legitimately vary with --threads. Mask both before demanding
    // textual equality; everything else (including the alias column)
    // must match exactly.
    let mask_wall = |out: &str| -> String {
        out.lines()
            .map(|line| {
                if line.trim_start().starts_with("pool:") {
                    return "  pool: -".to_string();
                }
                let cols: Vec<&str> = line.split_whitespace().collect();
                match cols.as_slice() {
                    // phase rows: ... touch_ppm rebuild_ms downtime alias slo
                    [.., _ppm, _wall, _downtime, _alias, _slo] if cols.len() == 13 => {
                        let mut cols = cols;
                        cols[9] = "-";
                        cols.join(" ")
                    }
                    _ => line.to_string(),
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        mask_wall(&a),
        mask_wall(&b),
        "serve output must be thread-count invariant outside rebuild_ms"
    );

    // Unknown scenarios are a clean error.
    let out = bcast()
        .args(["serve", "--scenario", "earthquake"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown scenario"));
}

/// `serve` is scriptable: a violated phase SLO is a non-zero exit, not
/// just a table row. A starvation budget under a lossless SLO guarantees
/// shedding, and shedding under lossless is a delivery-rate violation.
#[test]
fn serve_exits_non_zero_when_slos_are_violated() {
    let out = bcast()
        .args([
            "serve",
            "--scenario",
            "flash-crowd",
            "--tenants",
            "3",
            "--items",
            "32",
            "--rate",
            "150",
            "--slices",
            "6",
            "--budget",
            "10",
        ])
        .output()
        .expect("binary runs");
    assert!(
        !out.status.success(),
        "a starved budget must violate the lossless SLO"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("VIOLATED"),
        "table marks the phase: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("one or more phase SLOs were violated"),
        "exit reason names the SLO failure: {stderr}"
    );

    // The same scenario under the same load passes without the budget —
    // the violation above is the shed, not the workload.
    run_ok(&[
        "serve",
        "--scenario",
        "flash-crowd",
        "--tenants",
        "3",
        "--items",
        "32",
        "--rate",
        "150",
        "--slices",
        "6",
    ]);
}

/// The robustness scenario scripts are reachable from the CLI: the
/// overload storm sheds within its degraded SLO and the poison pill's
/// quarantine keeps every phase green — both exit zero.
#[test]
fn serve_runs_the_robustness_scenarios() {
    let small = &[
        "--tenants",
        "3",
        "--items",
        "32",
        "--rate",
        "120",
        "--slices",
        "6",
    ];
    let out = run_ok(&[&["serve", "--scenario", "overload-storm"], &small[..]].concat());
    assert!(out.contains("scenario overload-storm"), "{out}");
    assert!(out.contains("storm"), "{out}");
    let out = run_ok(&[&["serve", "--scenario", "poison-pill"], &small[..]].concat());
    assert!(out.contains("scenario poison-pill"), "{out}");
    assert!(
        !out.contains("VIOLATED"),
        "quarantine keeps SLOs green: {out}"
    );
}

/// Checkpoint/restore round-trips through the CLI: a checkpointed run
/// leaves manifests behind, and `--restore` resumes from them and
/// reports the same fingerprint as the original run. An empty directory
/// fails closed with a non-zero exit.
#[test]
fn serve_checkpoints_and_restores_from_manifests() {
    let dir = std::env::temp_dir().join(format!("bcast-cli-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_str().expect("utf8 temp path");

    // Restoring before any checkpoint exists is a clean error.
    let out = bcast()
        .args([
            "serve",
            "--scenario",
            "flash-crowd",
            "--checkpoint-dir",
            dir_arg,
            "--restore",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot restore"));

    let small = &[
        "--tenants",
        "3",
        "--items",
        "32",
        "--rate",
        "150",
        "--slices",
        "6",
        "--seed",
        "77",
    ];
    let fresh = run_ok(
        &[
            &[
                "serve",
                "--scenario",
                "flash-crowd",
                "--checkpoint-dir",
                dir_arg,
                "--checkpoint-every",
                "2",
            ],
            &small[..],
        ]
        .concat(),
    );
    assert!(fresh.contains("checkpoint: manifests in"), "{fresh}");
    assert!(
        std::fs::read_dir(&dir)
            .expect("checkpoint dir exists")
            .filter_map(Result::ok)
            .any(|e| e.file_name().to_string_lossy().ends_with(".bcp")),
        "run leaves manifests behind"
    );

    // Resume from the final manifest: the driver restores the completed
    // run (including every phase report) and prints the same scenario
    // line — fingerprint equality proves the manifest carried the run.
    let restored = run_ok(
        &[
            &[
                "serve",
                "--scenario",
                "flash-crowd",
                "--checkpoint-dir",
                dir_arg,
                "--restore",
            ],
            &small[..],
        ]
        .concat(),
    );
    let fingerprint_line = |out: &str| {
        out.lines()
            .find(|l| l.contains("fingerprint"))
            .expect("scenario header line")
            .to_string()
    };
    assert_eq!(fingerprint_line(&fresh), fingerprint_line(&restored));

    // Restoring under a different spec is refused, never silently run.
    let out = bcast()
        .args(
            [
                &[
                    "serve",
                    "--scenario",
                    "tenant-churn",
                    "--checkpoint-dir",
                    dir_arg,
                    "--restore",
                ],
                &small[..],
            ]
            .concat(),
        )
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("spec"));
    let _ = std::fs::remove_dir_all(&dir);
}
