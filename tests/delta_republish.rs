//! The delta republish lane vs a full publish — the twin pattern.
//!
//! For random trees × heuristics × channel counts × churn fractions, a
//! publisher that routes every epoch through
//! [`Publisher::republish_delta`] must end each round bit-identical to a
//! twin publisher that full-publishes the same reweighted tree: same
//! `CompiledProgram`, same `SlotPlan` (hence same route tables and mean
//! data wait). Rounds chain, so the diff state is exercised epoch over
//! epoch, across both the patch lane and every fallback reason.

use broadcast_alloc::alloc::{
    DeltaLane, DeltaOptions, PublishHeuristic, PublishOptions, Publisher,
};
use broadcast_alloc::tree::IndexTree;
use broadcast_alloc::types::{NodeId, Weight};
use broadcast_alloc::workloads::{random_tree, FrequencyDist, RandomTreeConfig};
use proptest::prelude::*;

/// SplitMix64: deterministic churn draws independent of proptest's state.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Picks `count` data leaves and rescales their weights by `factor`,
/// returning the change set the delta lane consumes (already applied to
/// `tree`).
fn churn_by(
    tree: &mut IndexTree,
    count: usize,
    rng: &mut u64,
    factor: fn(&mut u64) -> f64,
) -> Vec<(NodeId, Weight)> {
    let data: Vec<NodeId> = tree.data_nodes().to_vec();
    let mut changes = Vec::new();
    let mut seen = vec![false; tree.len()];
    for _ in 0..count {
        let id = data[(mix(rng) % data.len() as u64) as usize];
        if std::mem::replace(&mut seen[id.index()], true) {
            continue;
        }
        let old = tree.weight(id).get();
        let w = Weight::new((old * factor(rng)).max(1e-6)).unwrap();
        changes.push((id, w));
    }
    tree.reweight(&changes);
    changes
}

/// Violent churn (0.25x .. 4.25x): reorders siblings far up the tree, so
/// it exercises every fallback reason alongside the patch lane.
fn churn(tree: &mut IndexTree, count: usize, rng: &mut u64) -> Vec<(NodeId, Weight)> {
    churn_by(tree, count, rng, |rng| {
        0.25 + (mix(rng) % 1000) as f64 / 250.0
    })
}

/// Gentle drift (±2%): the EMA-estimator regime the patch lane targets —
/// weights wander without reshuffling near-root siblings.
fn drift(tree: &mut IndexTree, count: usize, rng: &mut u64) -> Vec<(NodeId, Weight)> {
    churn_by(tree, count, rng, |rng| {
        0.98 + (mix(rng) % 1000) as f64 / 25_000.0
    })
}

/// One chained scenario: publish, then `rounds` of churn + delta
/// republish, each round checked bit-identical against a twin full
/// publisher over the same reweighted tree.
fn run_case(
    mut tree: IndexTree,
    k: usize,
    heuristic: PublishHeuristic,
    rounds: usize,
    churn_frac: f64,
    max_touched: f64,
    seed: u64,
) -> (usize, usize) {
    run_case_with(
        &mut tree,
        k,
        heuristic,
        rounds,
        churn_frac,
        max_touched,
        seed,
        churn,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_case_with(
    tree: &mut IndexTree,
    k: usize,
    heuristic: PublishHeuristic,
    rounds: usize,
    churn_frac: f64,
    max_touched: f64,
    seed: u64,
    perturb: fn(&mut IndexTree, usize, &mut u64) -> Vec<(NodeId, Weight)>,
) -> (usize, usize) {
    let opts = PublishOptions::default();
    let delta = DeltaOptions { max_touched };
    let mut live = Publisher::new();
    let mut twin = Publisher::new();
    live.publish(tree, k, heuristic, opts)
        .expect("seed publish");
    let mut rng = seed;
    let (mut patched, mut full) = (0usize, 0usize);
    for round in 0..rounds {
        let count = ((tree.data_nodes().len() as f64 * churn_frac).ceil() as usize).max(1);
        let changes = perturb(tree, count, &mut rng);
        let report = live
            .republish_delta(tree, &changes, k, heuristic, opts, delta)
            .expect("delta republish");
        match report.lane {
            DeltaLane::Patched => patched += 1,
            DeltaLane::Full(_) => full += 1,
        }
        twin.publish(tree, k, heuristic, opts)
            .expect("twin publish");
        assert_eq!(
            live.plan(),
            twin.plan(),
            "slot plan diverged: round {round}, k {k}, {heuristic:?}, churn {churn_frac}"
        );
        assert_eq!(
            live.current(),
            twin.current(),
            "program diverged: round {round}, k {k}, {heuristic:?}, churn {churn_frac}"
        );
        let (a, b) = (
            live.plan().average_data_wait(tree),
            twin.plan().average_data_wait(tree),
        );
        assert!(a == b, "mean cost diverged: {a} vs {b}");
    }
    (patched, full)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn delta_matches_full_bit_identically(
        n in 4usize..160,
        k in 1usize..4,
        fanout in 2usize..8,
        churn_idx in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let churn_frac = [0.005, 0.02, 0.1, 0.5][churn_idx];
        let cfg = RandomTreeConfig {
            data_nodes: n,
            max_fanout: fanout,
            weights: FrequencyDist::Zipf { theta: 0.8, scale: 500.0 },
        };
        let tree = random_tree(&cfg, seed);
        run_case(tree, k, PublishHeuristic::Sorting, 4, churn_frac, 0.6, seed ^ 0xD1CE);
    }

    #[test]
    fn tight_budget_always_falls_back_identically(
        n in 4usize..80,
        k in 1usize..4,
        seed in 0u64..10_000,
    ) {
        // max_touched = 0 forces the full lane whenever anything reorders;
        // the output contract is unchanged.
        let cfg = RandomTreeConfig {
            data_nodes: n,
            max_fanout: 5,
            weights: FrequencyDist::Uniform { lo: 0.5, hi: 100.0 },
        };
        let tree = random_tree(&cfg, seed);
        run_case(tree, k, PublishHeuristic::Sorting, 3, 0.2, 0.0, seed ^ 0xBEEF);
    }

    #[test]
    fn unsupported_heuristics_take_the_full_lane(
        n in 4usize..60,
        k in 1usize..4,
        seed in 0u64..5_000,
    ) {
        let cfg = RandomTreeConfig {
            data_nodes: n,
            max_fanout: 4,
            weights: FrequencyDist::Uniform { lo: 0.5, hi: 50.0 },
        };
        let tree = random_tree(&cfg, seed);
        let (patched, full) =
            run_case(tree, k, PublishHeuristic::Frontier, 2, 0.1, 0.5, seed);
        assert_eq!(patched, 0, "only Sorting has an incremental twin");
        assert_eq!(full, 2);
    }
}

#[test]
fn small_churn_takes_the_patch_lane() {
    // A sanity anchor: on a sizable tree with tiny churn, the delta lane
    // must actually engage (not silently always fall back).
    let cfg = RandomTreeConfig {
        data_nodes: 20_000,
        max_fanout: 6,
        weights: FrequencyDist::Zipf {
            theta: 0.9,
            scale: 1000.0,
        },
    };
    let mut patched_total = 0usize;
    for seed in 0..4u64 {
        let tree = random_tree(&cfg, seed);
        for k in [1usize, 2, 3] {
            let (patched, _full) = run_case(
                tree.clone(),
                k,
                PublishHeuristic::Sorting,
                4,
                0.0005,
                0.05,
                seed ^ (k as u64) << 8,
            );
            patched_total += patched;
        }
    }
    assert!(
        patched_total > 12,
        "patch lane engaged only {patched_total}/48 rounds"
    );
}

/// Million-item delta stress: chained small-churn epochs stay
/// bit-identical to full publishes. Run with `cargo test -- --ignored`
/// (wired into `make stress`).
#[test]
#[ignore]
fn million_item_delta_stress() {
    let cfg = RandomTreeConfig {
        data_nodes: 1_000_000,
        max_fanout: 64,
        weights: FrequencyDist::Zipf {
            theta: 0.9,
            scale: 1_000_000.0,
        },
    };
    let tree = random_tree(&cfg, 7);
    for k in [2usize, 3] {
        // Gentle drift is the regime the patch lane targets: violent
        // churn at this scale reorders near-root siblings and correctly
        // falls back every round (covered by the proptests above).
        let (patched, full) = run_case_with(
            &mut tree.clone(),
            k,
            PublishHeuristic::Sorting,
            8,
            0.00001,
            0.05,
            0xFEED ^ k as u64,
            drift,
        );
        assert!(
            patched >= 1,
            "1M stress k={k}: patch lane never engaged ({patched} patched, {full} full)"
        );
    }
}
