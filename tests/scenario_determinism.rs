//! Determinism property: a full scenario run — every per-phase,
//! per-tenant metric, rebuild count and SLO verdict — is *bit-identical*
//! across thread counts and across reruns with the same seed, for
//! randomly drawn scenario shapes and seeds.
//!
//! This extends the exact-equality discipline of
//! `tests/parallel_equivalence.rs` from one search invocation to the
//! whole serving loop: tenants are self-contained state machines, thread
//! sharding only partitions them, and no cross-tenant float accumulation
//! exists — so `==` on outcomes (and their fingerprints) must hold
//! exactly, not approximately.

use broadcast_alloc::serve::run_scenario;
use broadcast_alloc::workloads::canonical_scenarios;
use proptest::prelude::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn outcomes_are_bit_identical_across_threads_and_reruns(
        scenario in 0usize..4,
        tenants in 2usize..5,
        items in 16usize..64,
        rate in 50u32..250,
        slices in 4u32..10,
        seed in 0u64..1_000_000,
    ) {
        let spec = canonical_scenarios(tenants, items, rate, slices)
            .swap_remove(scenario);

        let base = run_scenario(&spec, seed, 1);
        for threads in [2usize, 4] {
            let other = run_scenario(&spec, seed, threads);
            prop_assert_eq!(
                &base, &other,
                "scenario {} seed {} at {} threads diverged",
                spec.name, seed, threads
            );
            prop_assert_eq!(base.fingerprint(), other.fingerprint());
        }

        // Rerun with the same seed replays the day exactly.
        let replay = run_scenario(&spec, seed, 1);
        prop_assert_eq!(&base, &replay, "same-seed rerun diverged");

        // And the seed actually matters: a different seed perturbs the
        // sampled request streams, so some metric must move.
        let other_seed = run_scenario(&spec, seed ^ 0x5EED_CAFE, 1);
        prop_assert!(
            base.fingerprint() != other_seed.fingerprint(),
            "different seeds should produce different days"
        );
    }

    /// The incremental republish lane adds a runtime *decision* to every
    /// rebuild — patch in place or fall back to a full publish — so the
    /// determinism bar extends to it: with the delta lane enabled, the
    /// whole outcome (including the per-tenant `delta_rebuilds` /
    /// `full_rebuilds` split and `touched_ppm`, all folded into the
    /// fingerprint) must stay bit-identical across thread counts, reruns
    /// and fallback thresholds drawn from the whole range.
    #[test]
    fn delta_lane_decision_is_thread_invariant(
        scenario in 0usize..4,
        tenants in 2usize..4,
        items in 16usize..64,
        rate in 50u32..250,
        slices in 4u32..10,
        max_touched in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let spec = canonical_scenarios(tenants, items, rate, slices)
            .swap_remove(scenario)
            .with_delta_lane(max_touched);

        let base = run_scenario(&spec, seed, 1);
        for threads in [2usize, 4] {
            let other = run_scenario(&spec, seed, threads);
            prop_assert_eq!(
                &base, &other,
                "delta-lane scenario {} seed {} at {} threads diverged",
                spec.name, seed, threads
            );
            prop_assert_eq!(base.fingerprint(), other.fingerprint());
        }
        let replay = run_scenario(&spec, seed, 1);
        prop_assert_eq!(&base, &replay, "same-seed delta-lane rerun diverged");

        // Every rebuild is attributed to exactly one lane.
        for p in &base.phases {
            for t in &p.tenants {
                prop_assert_eq!(
                    t.snapshot.delta_rebuilds + t.snapshot.full_rebuilds,
                    t.snapshot.rebuilds
                );
            }
        }
    }
}
