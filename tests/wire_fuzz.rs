//! Adversarial wire-format fuzzing: a receiver decoding a hostile or
//! damaged byte stream must fail *closed* — every truncation and bit flip
//! surfaces as a [`wire::WireError`], never a panic and never a silently
//! corrupted `Ok`. The per-bucket CRC32 trailer (PR 5) is what turns
//! "garbled pointer that mis-routes clients for a whole cycle" into an
//! immediate `ChecksumMismatch`.

use broadcast_alloc::alloc::heuristics::sorting;
use broadcast_alloc::alloc::publish::{PublishHeuristic, PublishOptions, Publisher};
use broadcast_alloc::channel::{wire, BroadcastProgram, SnapshotError, SnapshotImage};
use broadcast_alloc::serve::{ServeLoop, TenantConfig};
use broadcast_alloc::tree::{knary, IndexTree};
use broadcast_alloc::types::{crc::crc32c, ChannelId, SloSpec};
use broadcast_alloc::workloads::{DemandShape, DemandSpec, FrequencyDist};
use bytes::Bytes;
use proptest::prelude::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// A small but non-trivial encoded channel: random weights, 2 channels,
/// payloads of varying length so bucket framing is irregular.
fn encoded_channel(items: usize, seed: u64) -> Bytes {
    let weights = FrequencyDist::Zipf {
        theta: 0.8,
        scale: 100.0,
    }
    .sample(items.max(2), seed);
    let tree = knary::build_weight_balanced(&weights, 3).expect("non-empty weights");
    let k = 2;
    let schedule = sorting::sorting_schedule(&tree, k);
    let alloc = schedule.into_allocation(&tree, k).expect("feasible");
    let program = BroadcastProgram::build(&alloc, &tree).expect("valid program");
    wire::encode_channel(&program, ChannelId::FIRST, |n| {
        Bytes::from(vec![n.index() as u8; 1 + n.index() % 7])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Truncating the stream at *any* byte boundary either errors or — when
    /// the cut lands exactly between sealed buckets — yields a strict
    /// prefix of the genuine buckets. It never panics and never fabricates
    /// a bucket that was not broadcast.
    #[test]
    fn truncation_fails_closed_at_every_length(
        items in 2usize..10,
        seed in 0u64..10_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let encoded = encoded_channel(items, seed);
        let clean = wire::decode_channel(encoded.clone()).expect("self-produced stream decodes");
        let cut = ((encoded.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < encoded.len());
        match wire::decode_channel(encoded.slice(0..cut)) {
            // A cut between buckets is indistinguishable from a shorter
            // broadcast; every surviving bucket must still be genuine.
            Ok(prefix) => {
                prop_assert!(prefix.len() < clean.len());
                prop_assert_eq!(&prefix[..], &clean[..prefix.len()]);
            }
            Err(e) => {
                // Mid-bucket cuts are truncations; a cut inside the CRC
                // trailer can also read as a checksum mismatch. Formatting
                // the error exercises the Display impls.
                let _ = e.to_string();
            }
        }
    }

    /// Flipping any single bit anywhere in the stream is detected: the
    /// decode errors (almost always `ChecksumMismatch`; framing damage may
    /// surface as `Truncated`/`BadKind` first) and never returns the
    /// original bucket sequence as if nothing happened.
    #[test]
    fn single_bit_flips_never_decode_silently(
        items in 2usize..10,
        seed in 0u64..10_000,
        flip_pos in 0u64..1_000_000,
        bit in 0usize..8,
    ) {
        let encoded = encoded_channel(items, seed);
        let clean = wire::decode_channel(encoded.clone()).expect("clean stream decodes");
        let mut raw = encoded.to_vec();
        let pos = (flip_pos % raw.len() as u64) as usize;
        raw[pos] ^= 1 << bit;
        if let Ok(decoded) = wire::decode_channel(Bytes::from(raw)) {
            prop_assert!(
                decoded != clean,
                "bit {bit} of byte {pos} flipped yet the stream decoded unchanged"
            );
        }
    }

    /// Feeding completely arbitrary bytes into the bucket decoder never
    /// panics — it either rejects the garbage or parses some structurally
    /// valid (and CRC-consistent) bucket out of it.
    #[test]
    fn random_garbage_never_panics_the_decoder(
        bytes in proptest::collection::vec(0u8..=255, 0..96),
    ) {
        let mut stream = Bytes::from(bytes.clone());
        // Errors are expected and fine; what this pins is "no panic".
        let _ = wire::decode_bucket(&mut stream);
        let _ = wire::decode_channel(Bytes::from(bytes));
    }
}

// ---------------------------------------------------------------------------
// Program snapshots (PR 8) are the other wire format: a published
// program's binary image must fail closed under the same adversities —
// truncation, bit flips, version skew — and round-trip bit-identically
// when intact.
// ---------------------------------------------------------------------------

/// A published program's snapshot image over a random tree.
fn published_snapshot(items: usize, k: usize, seed: u64) -> (SnapshotImage, Publisher, IndexTree) {
    let weights = FrequencyDist::Zipf {
        theta: 0.8,
        scale: 100.0,
    }
    .sample(items.max(2), seed);
    let tree = knary::build_weight_balanced(&weights, 3).expect("non-empty weights");
    let mut publisher = Publisher::new();
    publisher
        .publish(
            &tree,
            k,
            PublishHeuristic::Sorting,
            PublishOptions::default(),
        )
        .expect("feasible");
    let image = publisher.snapshot_image(&tree);
    (image, publisher, tree)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Capture → serialize → decode → validate → install reproduces the
    /// published program *exactly* (`==`, not field-wise) along with the
    /// item catalog, for random trees and k ∈ {1,2,3}.
    #[test]
    fn snapshot_roundtrip_is_bit_identical(
        items in 2usize..30,
        k in 1usize..4,
        seed in 0u64..100_000,
    ) {
        let (image, publisher, tree) = published_snapshot(items, k, seed);
        let back = SnapshotImage::from_bytes(&image.to_bytes()).expect("word framing");
        let view = back.view().expect("self-captured image validates");
        prop_assert_eq!(view.channels(), k);
        prop_assert_eq!(
            view.data_nodes().collect::<Vec<_>>(),
            tree.data_nodes().to_vec()
        );
        prop_assert_eq!(&view.to_program(), publisher.current());
    }

    /// Truncating a snapshot at *any* byte boundary fails closed: a typed
    /// `SnapshotError`, never a panic, never a partial program.
    #[test]
    fn snapshot_truncation_fails_closed(
        items in 2usize..30,
        k in 1usize..4,
        seed in 0u64..100_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let (image, _, _) = published_snapshot(items, k, seed);
        let bytes = image.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < bytes.len());
        let result = SnapshotImage::from_bytes(&bytes[..cut]).and_then(|i| {
            i.view()?;
            Ok(())
        });
        prop_assert!(result.is_err(), "prefix of {} bytes accepted", cut);
        // Formatting the error exercises the Display impls.
        let _ = result.unwrap_err().to_string();
    }

    /// Flipping any single bit anywhere in a snapshot is detected at
    /// validation — the view errors, never decodes silently.
    #[test]
    fn snapshot_bit_flips_fail_closed(
        items in 2usize..30,
        k in 1usize..4,
        seed in 0u64..100_000,
        flip_pos in 0u64..1_000_000,
        bit in 0usize..8,
    ) {
        let (image, _, _) = published_snapshot(items, k, seed);
        let mut bytes = image.to_bytes();
        let pos = (flip_pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        let result = SnapshotImage::from_bytes(&bytes).and_then(|i| {
            i.view()?;
            Ok(())
        });
        prop_assert!(
            result.is_err(),
            "bit {} of byte {} flipped yet the snapshot validated",
            bit,
            pos
        );
    }

    /// Arbitrary bytes fed to the snapshot decoder never panic — garbage
    /// is rejected with a typed error (or, vanishingly, happens to be a
    /// valid image; what this pins is "no panic").
    #[test]
    fn snapshot_garbage_never_panics(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let _ = SnapshotImage::from_bytes(&bytes).and_then(|i| {
            i.view()?;
            Ok(())
        });
    }
}

/// Deterministic companion: a snapshot stamped with a future format
/// version is refused up front — version 1 readers never guess at
/// layouts they do not know — and the same goes for a foreign magic.
#[test]
fn snapshot_version_and_magic_skew_are_refused() {
    let (image, _, _) = published_snapshot(6, 2, 7);
    let mut bytes = image.to_bytes();
    bytes[4..8].copy_from_slice(&2u32.to_le_bytes()); // version word
    let err = SnapshotImage::from_bytes(&bytes)
        .and_then(|i| i.view().map(|_| ()))
        .unwrap_err();
    assert_eq!(err, SnapshotError::UnsupportedVersion(2));

    let mut bytes = image.to_bytes();
    bytes[0..4].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes()); // magic word
    let err = SnapshotImage::from_bytes(&bytes)
        .and_then(|i| i.view().map(|_| ()))
        .unwrap_err();
    assert_eq!(err, SnapshotError::BadMagic(0xDEAD_BEEF));
}

/// Deterministic companion: chop an encoded channel *inside the CRC
/// trailer* of its final bucket and check the specific error taxonomy —
/// structural bytes intact, checksum unreadable → `Truncated`.
#[test]
fn missing_crc_trailer_reads_as_truncation() {
    let encoded = encoded_channel(5, 42);
    for missing in 1..=4 {
        let cut = encoded.len() - missing;
        let err = wire::decode_channel(encoded.slice(0..cut))
            .expect_err("a bucket without its full CRC cannot decode");
        assert_eq!(err, wire::WireError::Truncated, "missing {missing} bytes");
    }
}

// ---------------------------------------------------------------------------
// Checkpoint manifests (PR 10) are the third wire format: the crash-safe
// service's on-disk state. The bar is stricter than fail-closed — a
// damaged *newest* manifest must fall back to the previous good
// generation (truncation, bit flips, version skew, a torn `.tmp` from a
// crashed rename), and only a directory with no valid manifest at all
// may error. Never fail open, never resume from damaged state.
// ---------------------------------------------------------------------------

/// Two checkpoint generations of a small service — gen A at 2 slices,
/// gen B at 4 — plus the per-tenant snapshots a gen-A restore must
/// reproduce. Built once; the fuzz cases rewrite them into scratch
/// directories.
struct ManifestFixture {
    gen_a_name: String,
    gen_a: Vec<u8>,
    gen_b_name: String,
    gen_b: Vec<u8>,
    gen_a_snapshots: Vec<(u64, broadcast_alloc::types::SloSnapshot)>,
}

fn snapshots(svc: &ServeLoop) -> Vec<(u64, broadcast_alloc::types::SloSnapshot)> {
    svc.tenants()
        .iter()
        .map(|t| (t.id(), t.phase_snapshot()))
        .collect()
}

fn manifest_fixture() -> &'static ManifestFixture {
    static FIXTURE: OnceLock<ManifestFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("bcast-mfx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut svc = ServeLoop::new(0xF1F7, 1);
        for id in 0..2 {
            svc.join(TenantConfig::new(id, 24));
            svc.tenant_mut(id).unwrap().begin_phase(
                DemandSpec::flat(DemandShape::Zipf { theta: 0.9 }, 120),
                None,
                SloSpec::lossless(),
                8,
            );
        }
        svc.run_slices(2);
        let gen_a_path = svc.checkpoint(&dir).unwrap();
        let gen_a = std::fs::read(&gen_a_path).unwrap();
        let gen_a_snapshots = snapshots(&svc);
        svc.run_slices(2);
        let gen_b_path = svc.checkpoint(&dir).unwrap();
        let gen_b = std::fs::read(&gen_b_path).unwrap();
        let name = |p: &Path| p.file_name().unwrap().to_str().unwrap().to_string();
        let fixture = ManifestFixture {
            gen_a_name: name(&gen_a_path),
            gen_a,
            gen_b_name: name(&gen_b_path),
            gen_b,
            gen_a_snapshots,
        };
        let _ = std::fs::remove_dir_all(&dir);
        fixture
    })
}

/// Writes gen A intact and gen B as `newest_bytes` into a fresh scratch
/// directory, returning its path.
fn stage_generations(tag: &str, newest_bytes: &[u8]) -> PathBuf {
    let f = manifest_fixture();
    let dir = std::env::temp_dir().join(format!("bcast-mf-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(&f.gen_a_name), &f.gen_a).unwrap();
    std::fs::write(dir.join(&f.gen_b_name), newest_bytes).unwrap();
    dir
}

/// Asserts that restoring from `dir` lands on gen A (the last good
/// generation): same slice counter, bit-identical tenant snapshots.
fn assert_restores_gen_a(dir: &Path, context: &str) {
    let f = manifest_fixture();
    let restored = ServeLoop::restore(dir, 1)
        .unwrap_or_else(|e| panic!("{context}: must fall back to gen A, got {e}"));
    assert_eq!(restored.slices_run(), 2, "{context}: wrong generation");
    assert_eq!(snapshots(&restored), f.gen_a_snapshots, "{context}");
    let _ = std::fs::remove_dir_all(dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the newest manifest at any byte boundary restores the
    /// previous generation — never the torn one, never an error.
    #[test]
    fn manifest_truncation_falls_back_to_last_good(cut_frac in 0.0f64..1.0) {
        let f = manifest_fixture();
        let cut = ((f.gen_b.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < f.gen_b.len());
        let dir = stage_generations("trunc", &f.gen_b[..cut]);
        assert_restores_gen_a(&dir, &format!("truncated to {cut} bytes"));
    }

    /// Flipping any single bit anywhere in the newest manifest is caught
    /// by the CRC seal and falls back to the previous generation.
    #[test]
    fn manifest_bit_flips_fall_back_to_last_good(
        flip_pos in 0u64..1_000_000,
        bit in 0usize..8,
    ) {
        let f = manifest_fixture();
        let mut bytes = f.gen_b.clone();
        let pos = (flip_pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        let dir = stage_generations("flip", &bytes);
        assert_restores_gen_a(&dir, &format!("bit {bit} of byte {pos} flipped"));
    }
}

/// A manifest stamped with a future format version is refused even with
/// a *valid* CRC re-sealed over it — version skew is structural, and the
/// restore falls back rather than guessing at an unknown layout.
#[test]
fn manifest_version_skew_falls_back_even_with_valid_crc() {
    let f = manifest_fixture();
    let mut words: Vec<u32> = f
        .gen_b
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    words[1] += 1; // version word
    let last = words.len() - 1;
    words[last] = crc32c(&words[..last]); // re-seal so only the version is wrong
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    let dir = stage_generations("skew", &bytes);
    assert_restores_gen_a(&dir, "version skew with re-sealed crc");
}

/// A crash between writing the temp file and renaming it leaves a stale
/// `.tmp` beside the previous manifest. Restore must ignore the temp —
/// even one whose content is a fully valid manifest — and serve the last
/// adopted generation.
#[test]
fn partial_rename_leaves_the_previous_generation_authoritative() {
    let f = manifest_fixture();
    let dir = std::env::temp_dir().join(format!("bcast-mf-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(&f.gen_a_name), &f.gen_a).unwrap();
    // The interrupted write: gen B's bytes still under their .tmp name.
    std::fs::write(dir.join(format!("{}.tmp", f.gen_b_name)), &f.gen_b).unwrap();
    assert_restores_gen_a(&dir, "stale .tmp beside the old manifest");
}

/// Arbitrary garbage under a manifest name (wrong length, no framing) is
/// skipped, not fatal.
#[test]
fn garbage_manifest_files_are_skipped() {
    let f = manifest_fixture();
    let dir = stage_generations("garbage", b"not a manifest at all\x01\x02\x03");
    let _ = f;
    assert_restores_gen_a(&dir, "garbage under the newest manifest name");
}

/// Corrupting a *payload* byte (not framing) is exactly the case headers
/// alone cannot catch — it must surface as `ChecksumMismatch`.
#[test]
fn payload_corruption_is_a_checksum_mismatch() {
    let encoded = encoded_channel(6, 7);
    // Walk buckets to find a data bucket's payload byte: re-decode the
    // clean stream, then flip the last body byte before the final CRC.
    let mut raw = encoded.to_vec();
    let n = raw.len();
    raw[n - 5] ^= 0x01; // last byte covered by the final bucket's CRC
    match wire::decode_channel(Bytes::from(raw)) {
        Err(wire::WireError::ChecksumMismatch { expected, found }) => {
            assert_ne!(expected, found);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}
