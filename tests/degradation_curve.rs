//! Graceful-degradation curve on the paper's Fig. 14 workload: as channel
//! loss rises from 0 to 50%, serving quality must degrade *predictably* —
//! delivery rate only ever falls, recovery wait only ever grows, and root
//! replication (the paper's §4 knob, reused as a recovery accelerator)
//! strictly cheapens root retries at equal loss.
//!
//! The monotonicity is not a statistical accident: erasure draws are
//! coupled across probabilities (a read lost at `p` is still lost at any
//! `p' > p`), so each client's retry trajectory at higher loss dominates
//! its trajectory at lower loss point-for-point.

use broadcast_alloc::alloc::heuristics::sorting;
use broadcast_alloc::channel::{
    BatchMetrics, BroadcastProgram, CompiledProgram, FaultPlan, RecoveryPolicy, ServeOptions,
};
use broadcast_alloc::tree::{knary, IndexTree};
use broadcast_alloc::types::NodeId;
use broadcast_alloc::workloads::{erasure_sweep, FrequencyDist, RequestStream};

const REQUESTS: usize = 30_000;
const CHANNELS: usize = 3;

/// Fig. 14 setup: normally distributed access frequencies, balanced
/// 3-ary index tree, served on 3 channels.
fn fig14_serving() -> (IndexTree, CompiledProgram, Vec<NodeId>) {
    let weights = FrequencyDist::paper_fig14(20.0).sample(60, 14);
    let tree = knary::build_weight_balanced(&weights, 3).expect("non-empty weights");
    let schedule = sorting::sorting_schedule(&tree, CHANNELS);
    let alloc = schedule.into_allocation(&tree, CHANNELS).expect("feasible");
    let program = BroadcastProgram::build(&alloc, &tree).expect("valid program");
    let compiled = CompiledProgram::compile(&program, &tree).expect("routable");
    let data = tree.data_nodes();
    let w: Vec<f64> = data.iter().map(|&d| tree.weight(d).get()).collect();
    let targets: Vec<NodeId> = RequestStream::from_weights(&w, 0xF1614)
        .take(REQUESTS)
        .map(|i| data[i])
        .collect();
    (tree, compiled, targets)
}

fn serve(
    compiled: &CompiledProgram,
    targets: &[NodeId],
    p: f64,
    policy: RecoveryPolicy,
) -> BatchMetrics {
    compiled
        .serve_batch(
            targets,
            &ServeOptions {
                threads: 4,
                seed: 0xF16,
                faults: FaultPlan::erasure(p, 0xF16).expect("p is a probability"),
                recovery: policy,
            },
        )
        .expect("every target routable")
}

#[test]
fn degradation_is_monotone_across_the_loss_sweep() {
    let (_, compiled, targets) = fig14_serving();
    let policy = RecoveryPolicy {
        max_retries: 6,
        timeout_slots: 4 * compiled.cycle_len() as u64,
        ..RecoveryPolicy::default()
    };
    let curve: Vec<(f64, BatchMetrics)> = erasure_sweep(0.5, 11)
        .into_iter()
        .map(|p| (p, serve(&compiled, &targets, p, policy)))
        .collect();

    // Clean endpoint: perfect delivery, zero recovery wait, and the lossy
    // engine at p = 0 agrees with the dedicated fault-free fast path.
    let clean = &curve[0].1;
    assert_eq!(clean.delivery_rate(), 1.0);
    assert_eq!(clean.mean_extra_wait, 0.0);
    assert_eq!(clean.retries, 0);
    let fast = compiled
        .serve_batch(
            &targets,
            &ServeOptions {
                threads: 4,
                seed: 0xF16,
                ..ServeOptions::default()
            },
        )
        .expect("routable");
    assert_eq!(clean.mean_access_time, fast.mean_access_time);
    assert_eq!(clean.mean_tuning_time, fast.mean_tuning_time);
    assert_eq!(clean.delivered, fast.delivered);

    for pair in curve.windows(2) {
        let ((p_lo, lo), (p_hi, hi)) = (&pair[0], &pair[1]);
        assert!(
            hi.delivery_rate() <= lo.delivery_rate(),
            "delivery rate rose from {} at p={p_lo} to {} at p={p_hi}",
            lo.delivery_rate(),
            hi.delivery_rate()
        );
        assert!(
            hi.mean_extra_wait >= lo.mean_extra_wait,
            "mean recovery wait fell from {} at p={p_lo} to {} at p={p_hi}",
            lo.mean_extra_wait,
            hi.mean_extra_wait
        );
        assert!(
            hi.retries >= lo.retries,
            "retries fell between {p_lo} and {p_hi}"
        );
    }

    // The hostile end of the sweep visibly bites.
    let worst = &curve.last().unwrap().1;
    assert!(worst.delivery_rate() < 1.0);
    assert!(worst.mean_extra_wait > 0.0);
    assert!(worst.failed > 0);
}

#[test]
fn root_replicas_strictly_cheapen_recovery_at_equal_loss() {
    let (_, compiled, targets) = fig14_serving();
    let p = 0.25;
    let base = RecoveryPolicy {
        max_retries: 8,
        ..RecoveryPolicy::default()
    };
    let without = serve(&compiled, &targets, p, base);
    let with = serve(
        &compiled,
        &targets,
        p,
        RecoveryPolicy {
            root_replicas: 4,
            ..base
        },
    );
    // Same coupled loss draws, infinite timeout: the replica overlay only
    // changes how long a lost *root* read waits, so delivery and retry
    // counts match exactly while the recovery wait strictly shrinks.
    assert_eq!(with.delivered, without.delivered);
    assert_eq!(with.failed, without.failed);
    assert_eq!(with.retries, without.retries);
    assert!(
        with.mean_extra_wait < without.mean_extra_wait,
        "replicas did not cheapen recovery: {} vs {}",
        with.mean_extra_wait,
        without.mean_extra_wait
    );
    assert!(with.mean_access_time < without.mean_access_time);
}
