//! Tenant-isolation chaos suite: one tenant's channel takes ~20%
//! Gilbert–Elliott burst loss while its neighbors serve lossless — and
//! the neighbors must not be able to tell. Their delivery rate, p99 and
//! every other metric must equal their *solo-run* baseline **exactly**
//! (`==` on the full snapshot, not epsilon), because a tenant's entire
//! random universe derives from the service seed and its own stable id,
//! never from who else is on the roster.
//!
//! The default-sized test runs in debug `cargo test`; the
//! `#[ignore]`-gated chaos version (heavier load, longer storm, more
//! neighbors) runs in release via `make chaos`.

use broadcast_alloc::serve::{ServeLoop, TenantConfig};
use broadcast_alloc::types::{SloSnapshot, SloSpec};
use broadcast_alloc::workloads::{brownout_channel, DemandShape, DemandSpec};

const SEED: u64 = 0x150_1A7E;

fn demand(rate: u32) -> DemandSpec {
    DemandSpec::flat(DemandShape::Zipf { theta: 0.9 }, rate)
}

/// Runs tenant `id` alone for `slices` lossless slices and returns its
/// snapshot — the baseline its co-tenant run must reproduce exactly.
fn solo_baseline(id: u64, items: usize, rate: u32, slices: u32) -> SloSnapshot {
    let mut svc = ServeLoop::new(SEED, 1);
    svc.join(TenantConfig::new(id, items));
    svc.tenant_mut(id)
        .unwrap()
        .begin_phase(demand(rate), None, SloSpec::lossless(), slices);
    svc.run_slices(slices);
    svc.tenant(id).unwrap().phase_snapshot()
}

/// The shared scenario: tenant 0 under burst loss, ids `1..tenants`
/// lossless, all serving the same demand concurrently.
fn storm_with_neighbors(
    tenants: u64,
    items: usize,
    rate: u32,
    slices: u32,
    threads: usize,
) -> ServeLoop {
    let mut svc = ServeLoop::new(SEED, threads);
    for id in 0..tenants {
        svc.join(TenantConfig::new(id, items));
        let (faults, slo) = if id == 0 {
            (Some(brownout_channel()), SloSpec::degraded(0.90, 8.0))
        } else {
            (None, SloSpec::lossless())
        };
        svc.tenant_mut(id)
            .unwrap()
            .begin_phase(demand(rate), faults, slo, slices);
    }
    svc.run_slices(slices);
    svc
}

fn assert_isolation(tenants: u64, items: usize, rate: u32, slices: u32, threads: usize) {
    let svc = storm_with_neighbors(tenants, items, rate, slices, threads);

    // The victim genuinely suffered: burst loss forced retries.
    let victim = svc.tenant(0).unwrap().phase_snapshot();
    assert!(victim.retries > 0, "storm was a no-op: {victim:?}");
    assert!(
        victim.delivery_rate() >= 0.90,
        "recovery should hold 90% delivery under ~20% loss: {victim:?}"
    );
    assert!(svc.tenant(0).unwrap().phase_violations().is_empty());

    // Every neighbor is bit-identical to its solo run: same delivery
    // rate, same p99, same rebuild schedule — the victim's storm and the
    // co-tenants' existence are invisible.
    for id in 1..tenants {
        let among_crowd = svc.tenant(id).unwrap().phase_snapshot();
        let alone = solo_baseline(id, items, rate, slices);
        assert_eq!(
            among_crowd, alone,
            "tenant {id} observed its neighbors (threads {threads})"
        );
        assert_eq!(among_crowd.delivered, among_crowd.requests);
        assert!(svc.tenant(id).unwrap().phase_violations().is_empty());
    }
}

#[test]
fn neighbors_match_solo_baselines_exactly() {
    for threads in [1, 2, 4] {
        assert_isolation(4, 48, 250, 10, threads);
    }
}

#[test]
fn victims_storm_is_reproducible() {
    let a = storm_with_neighbors(3, 32, 200, 8, 1);
    let b = storm_with_neighbors(3, 32, 200, 8, 4);
    assert_eq!(
        a.tenant(0).unwrap().phase_snapshot(),
        b.tenant(0).unwrap().phase_snapshot(),
        "the lossy tenant itself is thread-count invariant too"
    );
}

/// The release-mode chaos version `make chaos` runs: more neighbors, a
/// longer storm, heavier rates — same exact-equality bar.
#[test]
#[ignore = "heavy isolation chaos; run with make chaos"]
fn chaos_isolation_under_sustained_storm() {
    for threads in [1, 4, 8] {
        assert_isolation(8, 96, 2_000, 40, threads);
    }
}

/// A tenant whose slice work *panics* must be just as invisible to its
/// neighbors as one whose channel burns: quarantine catches the poison
/// inside the panicking tenant's own slice, so every neighbor stays
/// bit-identical to its solo baseline — same bar as the loss storm,
/// across thread counts (on the pooled path an uncaught panic would
/// poison a whole worker lane, taking innocent tenants with it).
#[test]
fn poisoned_tenant_never_perturbs_neighbors() {
    broadcast_alloc::serve::silence_chaos_panic_reports();
    let (tenants, items, rate, slices) = (4u64, 48, 250, 10);
    for threads in [1usize, 2, 4] {
        let mut svc = ServeLoop::new(SEED, threads);
        for id in 0..tenants {
            svc.join(TenantConfig::new(id, items));
            svc.tenant_mut(id).unwrap().begin_phase(
                demand(rate),
                None,
                SloSpec::lossless(),
                slices,
            );
        }
        // Tenant 0 panics twice: once mid-run and once on its probe
        // slice, so the storm also crosses a backoff doubling.
        svc.tenant_mut(0).unwrap().inject_panic_at_slice(3);
        svc.tenant_mut(0).unwrap().inject_panic_at_slice(6);
        svc.run_slices(slices);

        let sick = svc.tenant(0).unwrap().phase_snapshot();
        assert_eq!(
            sick.quarantined, 2,
            "both poisons caught (threads {threads})"
        );
        for id in 1..tenants {
            let among_crowd = svc.tenant(id).unwrap().phase_snapshot();
            let alone = solo_baseline(id, items, rate, slices);
            assert_eq!(
                among_crowd, alone,
                "tenant {id} observed the poisoned neighbor (threads {threads})"
            );
            assert!(svc.tenant(id).unwrap().phase_violations().is_empty());
        }
    }
}

/// Overload shedding must clip *only* the tenant that blew the budget:
/// under water-filling admission, every tenant asking for no more than
/// its fair share is bit-identical to its solo (budget-free) baseline,
/// while the over-quota tenant alone sheds.
#[test]
fn shedding_clips_only_the_over_quota_tenant() {
    let (tenants, items, slices) = (4u64, 48, 10);
    let quiet_rate = 250u32;
    let greedy_rate = 4_000u32;
    for threads in [1usize, 2, 4] {
        let mut svc = ServeLoop::new(SEED, threads);
        for id in 0..tenants {
            svc.join(TenantConfig::new(id, items));
            let rate = if id == 0 { greedy_rate } else { quiet_rate };
            svc.tenant_mut(id).unwrap().begin_phase(
                demand(rate),
                None,
                SloSpec::lossless(),
                slices,
            );
        }
        // Budget: room for the three quiet tenants in full plus half of
        // the greedy tenant's demand.
        svc.set_slice_budget(Some(u64::from(quiet_rate) * 3 + u64::from(greedy_rate) / 2));
        svc.run_slices(slices);

        let greedy = svc.tenant(0).unwrap().phase_snapshot();
        assert_eq!(
            greedy.shed_requests,
            u64::from(greedy_rate / 2) * u64::from(slices),
            "the over-quota tenant absorbs all shedding (threads {threads})"
        );
        for id in 1..tenants {
            let among_crowd = svc.tenant(id).unwrap().phase_snapshot();
            let alone = solo_baseline(id, items, quiet_rate, slices);
            assert_eq!(
                among_crowd, alone,
                "tenant {id} was clipped by the neighbor's overload (threads {threads})"
            );
        }
    }
}
