//! The lossy-channel recovery protocol has two independent
//! implementations — the pointer-walking oracle
//! ([`faults::access_lossy`]) and the compiled-table replay inside
//! [`CompiledProgram`] — and they must agree on every outcome field for
//! every tree shape, schedule producer, fault model and recovery budget.
//! On top of that, batched lossy serving must be a pure function of
//! `(targets, options)`: identical at any thread count, bounded by the
//! retry/timeout budget, and never aborted by individual failures.
//!
//! The `chaos_*` test (run via `make chaos` / `--ignored`) turns the same
//! invariants loose on a hostile channel at 100k-request scale.

use broadcast_alloc::alloc::heuristics::sorting;
use broadcast_alloc::alloc::{baselines, Schedule};
use broadcast_alloc::channel::{
    faults, BroadcastProgram, CompiledProgram, FaultPlan, GilbertElliott, RecoveryPolicy,
    RequestOutcome, ServeOptions,
};
use broadcast_alloc::tree::IndexTree;
use broadcast_alloc::types::{NodeId, Slot};
use broadcast_alloc::workloads::{random_tree, FrequencyDist, RandomTreeConfig, RequestStream};
use proptest::prelude::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

fn producer_schedule(tree: &IndexTree, producer: usize, k: usize, seed: u64) -> Schedule {
    match producer {
        0 => sorting::sorting_schedule(tree, k),
        1 => baselines::greedy_frontier(tree, k),
        2 => baselines::preorder_schedule(tree, k),
        _ => baselines::random_feasible(tree, k, seed),
    }
}

fn build(tree: &IndexTree, schedule: &Schedule, k: usize) -> (BroadcastProgram, CompiledProgram) {
    let alloc = schedule.into_allocation(tree, k).expect("feasible");
    let program = BroadcastProgram::build(&alloc, tree).expect("valid program");
    let compiled = CompiledProgram::compile(&program, tree).expect("routable");
    (program, compiled)
}

fn plan_for(variant: usize, p: f64, seed: u64) -> FaultPlan {
    if variant == 0 {
        FaultPlan::erasure(p, seed).expect("p is a probability")
    } else {
        FaultPlan::gilbert_elliott(
            GilbertElliott {
                p_good_to_bad: 0.1,
                p_bad_to_good: 0.3,
                loss_good: p * 0.1,
                loss_bad: (p * 2.0).min(1.0),
            },
            seed,
        )
        .expect("all components are probabilities")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The walking oracle and the compiled replay agree on the full
    /// outcome (delivered trace, retries, extra wait — or failure reason)
    /// for every data node × wrapped tune-ins × request indices, across
    /// random trees, all schedule producers, both fault models and
    /// non-default recovery budgets.
    #[test]
    fn compiled_recovery_agrees_with_walking_oracle(
        n in 2usize..10,
        fanout in 2usize..5,
        k in 1usize..4,
        seed in 0u64..100_000,
        producer in 0usize..4,
        variant in 0usize..2,
        p in 0.0f64..0.7,
        retries in 1u32..10,
        replicas in 1u32..5,
    ) {
        let cfg = RandomTreeConfig {
            data_nodes: n,
            max_fanout: fanout,
            weights: FrequencyDist::Zipf { theta: 0.9, scale: 100.0 },
        };
        let tree = random_tree(&cfg, seed);
        let schedule = producer_schedule(&tree, producer, k, seed);
        let (program, compiled) = build(&tree, &schedule, k);
        let plan = plan_for(variant, p, seed ^ 0xFA17);
        let policy = RecoveryPolicy {
            max_retries: retries,
            timeout_slots: if seed % 2 == 0 { u64::MAX } else { 10_000 },
            root_replicas: replicas,
            ..RecoveryPolicy::default()
        };
        let cycle = compiled.cycle_len() as u32;
        for &d in tree.data_nodes() {
            for tune in [1, cycle / 2 + 1, cycle, cycle + 1, 2 * cycle + 3] {
                for request in [0u64, 1, 7, 1_000_003] {
                    let oracle = faults::access_lossy(
                        &program, &tree, d, Slot(tune), &plan, request, &policy,
                    ).expect("oracle routes every data node");
                    let fast = compiled
                        .access_lossy(d, Slot(tune), &plan, request, &policy)
                        .expect("tables route it too");
                    prop_assert_eq!(
                        &oracle, &fast,
                        "node {:?} tune {} request {}", d, tune, request
                    );
                    // The budget binds both implementations.
                    match &oracle {
                        RequestOutcome::Delivered(del) => {
                            prop_assert!(del.retries <= policy.max_retries);
                            prop_assert!(del.extra_wait <= policy.timeout_slots);
                        }
                        RequestOutcome::Failed(f) => {
                            prop_assert!(f.retries <= policy.max_retries);
                        }
                    }
                }
            }
        }
    }

    /// Batched lossy serving is a pure function of the request sequence:
    /// metrics are identical for every thread count, re-running is
    /// bit-identical, failures never abort the batch, and the aggregate
    /// retry count respects the per-request budget.
    #[test]
    fn lossy_batches_are_thread_invariant_and_bounded(
        n in 2usize..12,
        k in 1usize..4,
        seed in 0u64..100_000,
        requests in 1usize..200,
        variant in 0usize..2,
        p in 0.0f64..0.6,
    ) {
        let cfg = RandomTreeConfig {
            data_nodes: n,
            max_fanout: 3,
            weights: FrequencyDist::Uniform { lo: 1.0, hi: 100.0 },
        };
        let tree = random_tree(&cfg, seed);
        let schedule = sorting::sorting_schedule(&tree, k);
        let (_, compiled) = build(&tree, &schedule, k);
        let data = tree.data_nodes();
        let weights: Vec<f64> = data.iter().map(|&d| tree.weight(d).get()).collect();
        let targets: Vec<NodeId> = RequestStream::from_weights(&weights, seed ^ 2)
            .take(requests)
            .map(|i| data[i])
            .collect();
        let policy = RecoveryPolicy { max_retries: 6, ..RecoveryPolicy::default() };
        let base = ServeOptions {
            threads: 1,
            seed,
            faults: plan_for(variant, p, seed ^ 0xC4A0),
            recovery: policy,
        };
        let m1 = compiled.serve_batch(&targets, &base).expect("all data targets");
        prop_assert_eq!(m1.requests, requests);
        prop_assert_eq!(m1.delivered + m1.failed, requests as u64);
        prop_assert_eq!(m1.histogram.count(), m1.delivered);
        prop_assert!(m1.retries <= requests as u64 * u64::from(policy.max_retries + 1));
        for threads in [2usize, 3, 8] {
            let mt = compiled
                .serve_batch(&targets, &ServeOptions { threads, ..base })
                .expect("same batch");
            prop_assert_eq!(&m1, &mt, "threads = {}", threads);
        }
        // Re-serving the identical batch is bit-identical (pure function).
        prop_assert_eq!(&m1, &compiled.serve_batch(&targets, &base).expect("rerun"));
    }
}

/// `make chaos`: a hostile channel at scale. 100k weighted requests over a
/// 300-item tree on 3 channels, under 35% erasure and a vicious burst
/// model, each served at several thread counts. Pins (a) bit-identical
/// metrics across thread counts, (b) every request resolved within its
/// budget (delivered + failed partition the batch), (c) a sane degradation
/// ordering between the two storms, and (d) no panic or unbounded loop
/// anywhere — the test finishing *is* the bound.
#[test]
#[ignore = "chaos stress: run explicitly via `make chaos`"]
fn chaos_storm_serves_100k_requests_bounded_and_deterministic() {
    const REQUESTS: usize = 100_000;
    let cfg = RandomTreeConfig {
        data_nodes: 300,
        max_fanout: 4,
        weights: FrequencyDist::Zipf {
            theta: 1.0,
            scale: 1000.0,
        },
    };
    let tree = random_tree(&cfg, 0xC4A05);
    let k = 3;
    let schedule = sorting::sorting_schedule(&tree, k);
    let (_, compiled) = build(&tree, &schedule, k);
    let data = tree.data_nodes();
    let weights: Vec<f64> = data.iter().map(|&d| tree.weight(d).get()).collect();
    let targets: Vec<NodeId> = RequestStream::from_weights(&weights, 0x57083)
        .take(REQUESTS)
        .map(|i| data[i])
        .collect();
    let policy = RecoveryPolicy {
        max_retries: 10,
        timeout_slots: 1 << 20,
        root_replicas: 2,
        ..RecoveryPolicy::default()
    };
    let storms = [
        ("erasure-35pct", FaultPlan::erasure(0.35, 0xBAD).unwrap()),
        (
            "burst-storm",
            FaultPlan::gilbert_elliott(
                GilbertElliott {
                    p_good_to_bad: 0.2,
                    p_bad_to_good: 0.2,
                    loss_good: 0.05,
                    loss_bad: 0.9,
                },
                0xBAD,
            )
            .unwrap(),
        ),
    ];
    let mut rates = Vec::new();
    for (name, plan) in storms {
        let base = ServeOptions {
            threads: 1,
            seed: 0xD05E,
            faults: plan,
            recovery: policy,
        };
        let m1 = compiled.serve_batch(&targets, &base).expect("routable");
        for threads in [4usize, 7, 16] {
            let mt = compiled
                .serve_batch(&targets, &ServeOptions { threads, ..base })
                .expect("routable");
            assert_eq!(m1, mt, "{name}: thread-count dependence at {threads}");
        }
        assert_eq!(m1.requests, REQUESTS);
        assert_eq!(m1.delivered + m1.failed, REQUESTS as u64, "{name}");
        assert_eq!(m1.histogram.count(), m1.delivered, "{name}");
        assert!(
            m1.retries <= REQUESTS as u64 * u64::from(policy.max_retries + 1),
            "{name}: retry budget breached"
        );
        // A storm this heavy must actually bite, yet recovery must still
        // land the overwhelming majority of requests.
        assert!(m1.retries > 0, "{name}: storm did not bite");
        assert!(m1.delivery_rate() > 0.5, "{name}: {}", m1.delivery_rate());
        assert!(m1.mean_extra_wait > 0.0, "{name}");
        rates.push((name, m1.delivery_rate(), m1.mean_extra_wait));
    }
    // Both storms sit well below a clean channel.
    let clean = compiled
        .serve_batch(
            &targets,
            &ServeOptions {
                threads: 8,
                seed: 0xD05E,
                ..ServeOptions::default()
            },
        )
        .expect("routable");
    assert_eq!(clean.delivery_rate(), 1.0);
    assert_eq!(clean.mean_extra_wait, 0.0);
    for (name, rate, extra) in rates {
        assert!(rate < 1.0, "{name} should lose something");
        assert!(extra > clean.mean_extra_wait, "{name}");
    }
}
