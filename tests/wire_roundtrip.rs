//! End-to-end wire-format test: a client that only sees *decoded bytes*
//! (never the in-memory program) must still navigate to every data item.

use broadcast_alloc::alloc::{find_optimal, OptimalOptions};
use broadcast_alloc::channel::{wire, BroadcastProgram, Bucket};
use broadcast_alloc::tree::knary;
use broadcast_alloc::types::{ChannelId, NodeId};
use broadcast_alloc::workloads::FrequencyDist;
use bytes::Bytes;

#[test]
fn client_navigates_from_decoded_bytes_only() {
    let weights = FrequencyDist::Zipf {
        theta: 1.0,
        scale: 100.0,
    }
    .sample(12, 5);
    let tree = knary::build_alphabetic_knary(&weights, 3).unwrap();
    let k = 2usize;
    let result = find_optimal(&tree, k, &OptimalOptions::default()).unwrap();
    let alloc = result.schedule.into_allocation(&tree, k).unwrap();
    let program = BroadcastProgram::build(&alloc, &tree).unwrap();

    // Transmit: every channel serialized independently.
    let payload = |n: NodeId| Bytes::from(format!("payload-of-{}", tree.label(n)));
    let air: Vec<Vec<wire::WireBucket>> = (0..k)
        .map(|c| {
            let encoded = wire::encode_channel(&program, ChannelId::from_index(c), payload);
            wire::decode_channel(encoded).expect("self-produced stream decodes")
        })
        .collect();

    // Receive: for every data node, walk pointers using only the decoded
    // buckets, starting from the root at (C1, slot 1).
    for &target in tree.data_nodes() {
        let mut on_path: Vec<NodeId> = tree.ancestors(target).collect();
        on_path.push(target);
        let (mut ch, mut slot) = (0usize, 0usize); // root position
        let payload_bytes = loop {
            let bucket = &air[ch][slot];
            match &bucket.bucket {
                Bucket::Data { node } => {
                    assert_eq!(*node, target, "landed on the wrong data bucket");
                    break bucket.payload.clone();
                }
                Bucket::Index { pointers, .. } => {
                    let ptr = pointers
                        .iter()
                        .find(|p| on_path.contains(&p.child))
                        .expect("index bucket routes toward every descendant");
                    ch = ptr.channel.index();
                    slot += ptr.offset as usize;
                }
                Bucket::Empty => panic!("pointer led to an empty bucket"),
            }
        };
        assert_eq!(
            payload_bytes,
            Bytes::from(format!("payload-of-{}", tree.label(target)))
        );
    }
}

#[test]
fn corrupted_stream_fails_closed() {
    let weights = FrequencyDist::Uniform { lo: 1.0, hi: 9.0 }.sample(4, 1);
    let tree = knary::build_alphabetic_knary(&weights, 2).unwrap();
    let result = find_optimal(&tree, 1, &OptimalOptions::default()).unwrap();
    let alloc = result.schedule.into_allocation(&tree, 1).unwrap();
    let program = BroadcastProgram::build(&alloc, &tree).unwrap();
    let encoded = wire::encode_channel(&program, ChannelId::FIRST, |_| Bytes::from_static(b"x"));
    // Flip the kind byte of the first bucket to garbage.
    let mut raw = encoded.to_vec();
    raw[0] = 0xFF;
    let err = wire::decode_channel(Bytes::from(raw)).unwrap_err();
    assert_eq!(err, wire::WireError::BadKind(0xFF));
}
