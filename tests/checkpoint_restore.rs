//! Crash-restore equivalence suite: a serving run killed at ANY slice
//! boundary and restored from its checkpoint manifest must finish with
//! the same [`ScenarioOutcome`] fingerprint as a run that never crashed
//! — exact equality, not "close enough", because the manifest carries
//! every input the slice loop consumes and the loop itself is a pure
//! function of them.
//!
//! The default-sized tests sweep every boundary of small scenarios
//! (including mid-quarantine and mid-shedding states) in debug `cargo
//! test`; the `#[ignore]`-gated storm — repeated kill/restore cycles at
//! pseudo-random crash points across thread counts — runs in release
//! via `make crash` (wired into `make chaos`).

use broadcast_alloc::serve::{
    run_scenario, CheckpointError, ScenarioDriver, ScenarioOutcome, ServeLoop, TenantConfig,
};
use broadcast_alloc::workloads::{flash_crowd, overload_storm, poison_pill, ScenarioSpec};
use std::path::PathBuf;

/// A fresh scratch directory under the system temp dir, unique per test
/// and process so parallel test binaries never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bcast-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `spec` to completion with a simulated crash: step to `boundary`
/// slices, checkpoint, drop the driver (the crash), restore at
/// `threads`, finish. Returns the restored run's outcome.
fn crash_and_restore(
    spec: &ScenarioSpec,
    seed: u64,
    boundary: u64,
    threads: usize,
    dir: &PathBuf,
) -> ScenarioOutcome {
    let mut driver = ScenarioDriver::new(spec.clone(), seed, 1);
    for _ in 0..boundary {
        driver.step();
    }
    driver
        .checkpoint(dir)
        .expect("checkpoint at a slice boundary");
    drop(driver); // the crash

    let mut restored = ScenarioDriver::restore(dir, spec, threads).expect("manifest restores");
    assert_eq!(
        restored.service().slices_run(),
        boundary,
        "resumes at the checkpointed slice"
    );
    while restored.step() {}
    restored.into_outcome()
}

/// The tentpole property, swept exhaustively: every slice boundary of
/// the scenario is a valid crash point, and every restore finishes
/// bit-identically — across the calm script, the overload-shedding
/// script and the panic-quarantine script (so the checkpoint provably
/// carries admission and quarantine state, not just the happy path).
#[test]
fn crash_at_every_slice_boundary_is_bit_identical() {
    broadcast_alloc::serve::silence_chaos_panic_reports();
    let specs = [
        flash_crowd(3, 24, 40, 4),
        overload_storm(3, 24, 30, 3),
        poison_pill(2, 24, 40, 3),
    ];
    for spec in &specs {
        let seed = 0xC4A5;
        let baseline = run_scenario(spec, seed, 1);
        let total = spec.total_slices();
        for boundary in 0..=total {
            let dir = scratch(spec.name);
            // Restore at a different thread count than the crash ran at:
            // threads are an execution parameter, never state.
            let threads = 1 + (boundary as usize % 3);
            let out = crash_and_restore(spec, seed, boundary, threads, &dir);
            assert_eq!(
                out, baseline,
                "{}: crash at boundary {boundary}/{total} diverged",
                spec.name
            );
            assert_eq!(out.fingerprint(), baseline.fingerprint());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A bare `ServeLoop` (no scenario driver) checkpoints and restores the
/// same way — and an empty directory fails closed with a typed error.
#[test]
fn bare_service_checkpoint_restores_and_empty_dir_fails_closed() {
    use broadcast_alloc::types::SloSpec;
    use broadcast_alloc::workloads::{DemandShape, DemandSpec};

    let dir = scratch("bare");
    assert!(matches!(
        ServeLoop::restore(&dir, 1),
        Err(CheckpointError::Io(_)) | Err(CheckpointError::NoValidManifest)
    ));

    let demand = DemandSpec::flat(DemandShape::Zipf { theta: 0.9 }, 150);
    let boot = |threads: usize| {
        let mut svc = ServeLoop::new(0xBA2E, threads);
        for id in 0..3 {
            svc.join(TenantConfig::new(id, 32));
            svc.tenant_mut(id)
                .unwrap()
                .begin_phase(demand, None, SloSpec::lossless(), 8);
        }
        svc
    };
    let mut svc = boot(1);
    svc.run_slices(3);
    svc.checkpoint(&dir).unwrap();
    let mut restored = ServeLoop::restore(&dir, 2).unwrap();
    let mut uninterrupted = boot(1);
    uninterrupted.run_slices(3);
    for _ in 0..5 {
        restored.run_slice();
        uninterrupted.run_slice();
    }
    let snap = |svc: &ServeLoop| {
        svc.tenants()
            .iter()
            .map(|t| (t.id(), t.phase_snapshot()))
            .collect::<Vec<_>>()
    };
    assert_eq!(snap(&restored), snap(&uninterrupted));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tiny deterministic generator for the storm's crash points (the
/// test's own randomness must not perturb the service's).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// The release-mode kill-and-restore storm `make crash` runs: repeated
/// crash/restore cycles at pseudo-random points — including crashes
/// *after* the checkpoint, where the restore rewinds and deterministic
/// replay must regenerate the lost slices exactly — across thread
/// counts {1, 2, 4}, against scenarios exercising shedding and
/// quarantine, all held to fingerprint equality.
#[test]
#[ignore = "heavy kill-and-restore storm; run with make crash"]
fn chaos_kill_and_restore_storm() {
    broadcast_alloc::serve::silence_chaos_panic_reports();
    let specs = [
        flash_crowd(6, 64, 300, 12),
        overload_storm(6, 64, 200, 12),
        poison_pill(6, 64, 300, 12),
    ];
    let mut rng = 0x57AB_1E5Eu64;
    for spec in &specs {
        let seed = 0xD15A57E5;
        let baseline = run_scenario(spec, seed, 4);
        let total = spec.total_slices();
        for threads in [1usize, 2, 4] {
            for round in 0..6 {
                let dir = scratch(&format!("storm-{}-{threads}-{round}", spec.name));
                // Drive with periodic checkpoints; crash at a random
                // slice (not necessarily a checkpoint), restore from
                // whatever manifest survived, repeat a few times.
                let mut driver = ScenarioDriver::new(spec.clone(), seed, threads);
                let mut crashes = 1 + lcg(&mut rng) % 3;
                let checkpoint_every = 1 + lcg(&mut rng) % 4;
                let mut since_checkpoint = 0;
                driver.checkpoint(&dir).unwrap();
                loop {
                    if crashes > 0 && lcg(&mut rng).is_multiple_of(total.max(1)) {
                        crashes -= 1;
                        drop(driver); // kill
                        driver = ScenarioDriver::restore(&dir, spec, threads)
                            .expect("storm always leaves a valid manifest");
                        since_checkpoint = 0;
                        continue;
                    }
                    if !driver.step() {
                        break;
                    }
                    since_checkpoint += 1;
                    if since_checkpoint >= checkpoint_every {
                        driver.checkpoint(&dir).unwrap();
                        since_checkpoint = 0;
                    }
                }
                let out = driver.into_outcome();
                assert_eq!(
                    out.fingerprint(),
                    baseline.fingerprint(),
                    "{}: storm run diverged (threads {threads}, round {round})",
                    spec.name
                );
                assert_eq!(out, baseline);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}
