//! Property-based workspace tests: every heuristic and baseline produces a
//! feasible schedule bracketed by the analytic lower bound and never beats
//! the exact optimum where the optimum is computable.

use broadcast_alloc::alloc::heuristics::{shrink, sorting};
use broadcast_alloc::alloc::{baselines, find_optimal, OptimalOptions};
use broadcast_alloc::channel::cost;
use broadcast_alloc::workloads::{random_tree, FrequencyDist, RandomTreeConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn heuristics_bracketed_by_bound_and_optimum(
        n in 2usize..7,
        k in 1usize..4,
        seed in 0u64..400,
    ) {
        let cfg = RandomTreeConfig {
            data_nodes: n,
            max_fanout: 3,
            weights: FrequencyDist::Uniform { lo: 1.0, hi: 60.0 },
        };
        let tree = random_tree(&cfg, seed);
        let lower = cost::data_wait_lower_bound(&tree, k);
        let optimal = find_optimal(&tree, k, &OptimalOptions::default()).unwrap();
        prop_assert!(optimal.data_wait >= lower - 1e-9);

        for (name, wait) in [
            ("sorting", sorting::sorting_schedule(&tree, k).average_data_wait(&tree)),
            ("shrink", shrink::combine_solve(&tree, k, 6).data_wait),
            ("partition", shrink::partition_solve(&tree, k, 6).data_wait),
            ("frontier", baselines::greedy_frontier(&tree, k).average_data_wait(&tree)),
        ] {
            prop_assert!(
                wait >= optimal.data_wait - 1e-9,
                "{name} ({wait}) beat the optimum ({}) — impossible",
                optimal.data_wait
            );
        }
    }

    #[test]
    fn heuristics_feasible_on_large_irregular_trees(
        n in 50usize..400,
        k in 1usize..8,
        seed in 0u64..200,
    ) {
        let cfg = RandomTreeConfig {
            data_nodes: n,
            max_fanout: 7,
            weights: FrequencyDist::SelfSimilar { fraction: 0.25, total: 10_000.0 },
        };
        let tree = random_tree(&cfg, seed);
        for schedule in [
            sorting::sorting_schedule(&tree, k),
            shrink::combine_solve(&tree, k, 10).schedule,
            shrink::partition_solve(&tree, k, 10).schedule,
            baselines::greedy_frontier(&tree, k),
        ] {
            prop_assert_eq!(schedule.node_count(), tree.len());
            schedule.into_allocation(&tree, k).unwrap();
        }
    }

    #[test]
    fn more_channels_never_hurt_the_optimum(
        n in 2usize..6,
        seed in 0u64..200,
    ) {
        let cfg = RandomTreeConfig {
            data_nodes: n,
            max_fanout: 3,
            weights: FrequencyDist::Uniform { lo: 1.0, hi: 40.0 },
        };
        let tree = random_tree(&cfg, seed);
        let mut prev = f64::INFINITY;
        for k in 1..=4usize {
            let r = find_optimal(&tree, k, &OptimalOptions::default()).unwrap();
            prop_assert!(r.data_wait <= prev + 1e-9, "k={k}: {} > {prev}", r.data_wait);
            prev = r.data_wait;
        }
    }
}
