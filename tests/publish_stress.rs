//! Million-item publish stress test for the fused pipeline.
//!
//! Builds a weight-balanced alphabetic tree over one million data items
//! (≈1.33M nodes with fanout 4) and publishes it onto 3 channels with the
//! sorting heuristic. Pins two properties at scale:
//!
//! * the parallel heuristic phases are bit-identical at any thread count,
//! * a steady-state republish into reused buffers reproduces the program
//!   exactly (the double-buffer swap loses nothing).
//!
//! Gated behind `#[ignore]` to keep the default suite fast:
//!
//! ```text
//! cargo test --release -- --ignored stress
//! ```

use broadcast_alloc::alloc::{PublishHeuristic, PublishOptions, Publisher};
use broadcast_alloc::tree::knary;
use broadcast_alloc::workloads::FrequencyDist;

#[test]
#[ignore = "heavy: million-item publish; run with --ignored"]
fn stress_fused_publish_at_million_items() {
    const ITEMS: usize = 1_000_000;
    const K: usize = 3;
    let weights = FrequencyDist::SelfSimilar {
        fraction: 0.2,
        total: 1e9,
    }
    .sample(ITEMS, 0x1_000_000);
    let tree = knary::build_weight_balanced(&weights, 4).expect("items >= 1");

    let mut p1 = Publisher::new();
    let base = p1
        .publish(
            &tree,
            K,
            PublishHeuristic::Sorting,
            PublishOptions { threads: 1 },
        )
        .expect("feasible")
        .clone();
    // Parent constraints can leave slots partially filled, so the cycle is
    // bounded below by perfect packing and above by one node per slot.
    assert!(base.cycle_len() >= tree.len().div_ceil(K));
    assert!(base.cycle_len() <= tree.len());

    // Thread-count invariance at scale.
    for threads in [2usize, 4] {
        let mut p = Publisher::new();
        let b = p
            .publish(
                &tree,
                K,
                PublishHeuristic::Sorting,
                PublishOptions { threads },
            )
            .expect("feasible");
        assert_eq!(base, *b, "threads = {threads} diverged from sequential");
    }

    // Steady-state republish into warm buffers loses nothing.
    let again = p1
        .publish(
            &tree,
            K,
            PublishHeuristic::Sorting,
            PublishOptions { threads: 1 },
        )
        .expect("feasible");
    assert_eq!(base, *again);
}
