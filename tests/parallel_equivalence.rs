//! Equivalence suite: the parallel work-stealing best-first engine must
//! return exactly the optimal cost the sequential search returns, and both
//! must match the brute-force oracle, on hundreds of random small trees.
//!
//! The cost comparison between sequential and parallel is *exact* `f64`
//! equality, not epsilon equality: both engines accumulate the weighted
//! wait through the same `PathState::place` additions along the winning
//! path, so when they agree on the optimal schedule (random continuous
//! weights make exact cost ties between distinct schedules a measure-zero
//! event) the floating-point results are byte-identical. The oracle
//! comparison uses an epsilon because full enumeration sums waits in a
//! different order.

use broadcast_alloc::alloc::best_first::{self, BestFirstOptions};
use broadcast_alloc::alloc::topo_tree;
use broadcast_alloc::workloads::{random_tree, FrequencyDist, RandomTreeConfig};
use proptest::prelude::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
use std::num::NonZeroUsize;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn parallel_matches_sequential_and_oracle(
        n in 2usize..7,
        k in 1usize..4,
        seed in 0u64..100_000,
        threads in 2usize..5,
    ) {
        let cfg = RandomTreeConfig {
            data_nodes: n,
            max_fanout: 3,
            weights: FrequencyDist::Uniform { lo: 1.0, hi: 100.0 },
        };
        let tree = random_tree(&cfg, seed);
        prop_assume!(tree.len() <= 12);

        let seq = best_first::search(&tree, k, &BestFirstOptions::default())
            .expect("no node limit set");
        let par_opts = BestFirstOptions {
            threads: NonZeroUsize::new(threads),
            ..BestFirstOptions::default()
        };
        let par = best_first::search(&tree, k, &par_opts).expect("no node limit set");

        prop_assert_eq!(
            par.data_wait, seq.data_wait,
            "n={} k={} seed={} threads={}: parallel {} vs sequential {}",
            n, k, seed, threads, par.data_wait, seq.data_wait
        );

        // Both engines report the cost their schedule actually evaluates
        // to, and the schedule is feasible.
        prop_assert!((par.schedule.average_data_wait(&tree) - par.data_wait).abs() < 1e-9);
        par.schedule.into_allocation(&tree, k).expect("parallel schedule feasible");

        // Brute-force oracle: enumerable at this size.
        let oracle = topo_tree::solve_exhaustive(&tree, k);
        prop_assert!(
            (seq.data_wait - oracle.data_wait).abs() < 1e-9,
            "n={} k={} seed={}: best-first {} vs exhaustive {}",
            n, k, seed, seq.data_wait, oracle.data_wait
        );
    }
}

/// The unpruned expansion must agree too — the parallel engine shares its
/// candidate generation with the sequential search, so a divergence here
/// would isolate a fault in the engine rather than in the pruning rules.
#[test]
fn parallel_unpruned_agrees_on_a_seed_sweep() {
    for seed in 0..24u64 {
        let cfg = RandomTreeConfig {
            data_nodes: 2 + (seed as usize % 4),
            max_fanout: 3,
            weights: FrequencyDist::Zipf {
                theta: 0.9,
                scale: 100.0,
            },
        };
        let tree = random_tree(&cfg, seed);
        for k in 1..=3usize {
            let opts = BestFirstOptions {
                pruned: false,
                ..BestFirstOptions::default()
            };
            let seq = best_first::search(&tree, k, &opts).expect("no limit");
            let par_opts = BestFirstOptions {
                threads: NonZeroUsize::new(4),
                ..opts
            };
            let par = best_first::search(&tree, k, &par_opts).expect("no limit");
            assert_eq!(par.data_wait, seq.data_wait, "seed={seed} k={k}");
        }
    }
}
