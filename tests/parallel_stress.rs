//! Schedule-nondeterminism stress test for the parallel search engine.
//!
//! The work-stealing engine is nondeterministic in *which* optimal schedule
//! it reports when several tie, and in the order states are expanded — but
//! the optimal *cost* must be a pure function of the input. This test hammers
//! that: the paper's Figure-14 workload (full 4-ary tree of depth 3, 16 data
//! nodes, truncated-normal weights with σ = 20) is solved 32 times at
//! 4 threads, and every repetition must report bit-identical cost, equal to
//! the sequential engine's. A single flaky repetition means a race —
//! a stale-incumbent prune, a lost solution, or premature termination.
//!
//! A second test repeats the exercise on a 40-node tree (3-ary, depth 4)
//! whose k = 2 search expands ~67k states — enough work for stealing,
//! donation, and termination scans to genuinely interleave. Both are gated
//! behind `#[ignore]` to keep the default suite fast:
//!
//! ```text
//! cargo test --release -- --ignored stress
//! ```

use broadcast_alloc::alloc::best_first::{self, BestFirstOptions};
use broadcast_alloc::tree::builders;
use broadcast_alloc::workloads::{rng::sub_seed, FrequencyDist};
use std::num::NonZeroUsize;

#[test]
#[ignore = "heavy: 32 repetitions of the Fig-14 workload; run with --ignored"]
fn stress_parallel_cost_is_deterministic_on_fig14_workload() {
    const REPS: usize = 32;
    let seed = 0xF16_14AB_u64;
    for (si, sigma) in [10.0f64, 20.0].into_iter().enumerate() {
        let weights = FrequencyDist::paper_fig14(sigma).sample(16, sub_seed(seed, si as u64));
        let tree = builders::full_balanced(4, 3, &weights).expect("valid shape");
        for k in [2usize, 3] {
            let seq =
                best_first::search(&tree, k, &BestFirstOptions::default()).expect("no node limit");
            let opts = BestFirstOptions {
                threads: NonZeroUsize::new(4),
                ..BestFirstOptions::default()
            };
            for rep in 0..REPS {
                let par = best_first::search(&tree, k, &opts).expect("no node limit");
                assert_eq!(
                    par.data_wait, seq.data_wait,
                    "sigma={sigma} k={k} rep={rep}: parallel {} vs sequential {}",
                    par.data_wait, seq.data_wait
                );
                par.schedule
                    .into_allocation(&tree, k)
                    .expect("parallel schedule feasible");
            }
        }
    }
}

#[test]
#[ignore = "heavy: ~67k-expansion searches under contention; run with --ignored"]
fn stress_parallel_on_deep_tree_with_real_contention() {
    let weights = FrequencyDist::Uniform { lo: 1.0, hi: 100.0 }.sample(27, 99);
    let tree = builders::full_balanced(3, 4, &weights).expect("valid shape");
    let k = 2;
    let seq = best_first::search(&tree, k, &BestFirstOptions::default()).expect("no node limit");
    for threads in [2usize, 4] {
        let opts = BestFirstOptions {
            threads: NonZeroUsize::new(threads),
            ..BestFirstOptions::default()
        };
        for rep in 0..4 {
            let par = best_first::search(&tree, k, &opts).expect("no node limit");
            assert_eq!(par.data_wait, seq.data_wait, "threads={threads} rep={rep}");
        }
    }
}
