//! The fused publish pipeline vs the legacy three-pass path.
//!
//! Two claims are pinned here:
//!
//! 1. **Bit-identical output.** For random trees × heuristic × channel
//!    count × thread count, [`Publisher::publish`] (one fused traversal:
//!    schedule → channel assignment → route tables) produces exactly the
//!    `CompiledProgram`, `BroadcastProgram` buckets and mean data wait of
//!    the legacy pipeline `Schedule` → `Allocation::from_slot_schedule` →
//!    `BroadcastProgram::build` → `CompiledProgram::compile`.
//! 2. **Zero heap allocations after warm-up.** This binary installs the
//!    [`CountingAlloc`] global allocator; once the publisher's scratch
//!    buffers are sized, a single-threaded republish must not touch the
//!    heap at all.

use broadcast_alloc::alloc::heuristics::{shrink, sorting};
use broadcast_alloc::alloc::{baselines, PublishHeuristic, PublishOptions, Publisher, Schedule};
use broadcast_alloc::channel::{BroadcastProgram, CompiledProgram};
use broadcast_alloc::tree::IndexTree;
use broadcast_alloc::types::alloc_counter::{allocation_count, CountingAlloc};
use broadcast_alloc::workloads::{random_tree, FrequencyDist, RandomTreeConfig};
use proptest::prelude::*;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The legacy three-pass path for a schedule.
fn three_pass(s: &Schedule, tree: &IndexTree, k: usize) -> (BroadcastProgram, CompiledProgram) {
    let alloc = s.into_allocation(tree, k).expect("feasible");
    let program = BroadcastProgram::build(&alloc, tree).expect("valid");
    let compiled = CompiledProgram::compile(&program, tree).expect("compiles");
    (program, compiled)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fused_publish_matches_three_pass(
        n in 2usize..120,
        k in 1usize..4,
        t_idx in 0usize..3,
        seed in 0u64..500,
    ) {
        let threads = [1usize, 2, 4][t_idx];
        let cfg = RandomTreeConfig {
            data_nodes: n,
            max_fanout: 5,
            weights: FrequencyDist::SelfSimilar { fraction: 0.25, total: 10_000.0 },
        };
        let tree = random_tree(&cfg, seed);
        let mut p = Publisher::new();
        for (h, schedule) in [
            (PublishHeuristic::Sorting, sorting::sorting_schedule(&tree, k)),
            (
                PublishHeuristic::Shrink { max_nodes: 8 },
                shrink::combine_solve(&tree, k, 8).schedule,
            ),
            (PublishHeuristic::Frontier, baselines::greedy_frontier(&tree, k)),
            (PublishHeuristic::Preorder, baselines::preorder_schedule(&tree, k)),
        ] {
            let fused = p
                .publish(&tree, k, h, PublishOptions { threads })
                .expect("heuristic plans are feasible")
                .clone();
            let (program, compiled) = three_pass(&schedule, &tree, k);
            // Identical T(Di) route tables…
            prop_assert_eq!(&fused, &compiled, "{:?} at k = {}, threads = {}", h, k, threads);
            // …identical bucket grid…
            prop_assert_eq!(
                p.pipeline().materialize_program(&tree),
                program,
                "{:?} at k = {}, threads = {}",
                h,
                k,
                threads
            );
            // …identical mean cost.
            let fused_wait = p.plan().average_data_wait(&tree);
            let legacy_wait = schedule.average_data_wait(&tree);
            prop_assert!((fused_wait - legacy_wait).abs() < 1e-12);
        }
    }
}

#[test]
fn fused_hot_path_is_allocation_free_after_warmup() {
    let cfg = RandomTreeConfig {
        data_nodes: 4096,
        max_fanout: 4,
        weights: FrequencyDist::SelfSimilar {
            fraction: 0.2,
            total: 1_000_000.0,
        },
    };
    let tree = random_tree(&cfg, 7);
    let mut p = Publisher::new();
    let opts = PublishOptions { threads: 1 };
    for h in [
        PublishHeuristic::Sorting,
        PublishHeuristic::Frontier,
        PublishHeuristic::Preorder,
    ] {
        for k in [1usize, 3] {
            // Two warm-up publishes size every scratch buffer (the second
            // catches capacity that only settles after the first swap).
            p.publish(&tree, k, h, opts).expect("feasible");
            p.publish(&tree, k, h, opts).expect("feasible");
            let before = allocation_count();
            p.publish(&tree, k, h, opts).expect("feasible");
            let delta = allocation_count() - before;
            assert_eq!(
                delta, 0,
                "fused {h:?} hot path at k = {k} performed {delta} heap allocations"
            );
        }
    }
}
