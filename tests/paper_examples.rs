//! End-to-end reproduction of every number the paper states for its
//! running example (Fig. 1(a) tree), exercised through the facade crate.

use broadcast_alloc::alloc::data_tree::{count_paths, PruneLevel};
use broadcast_alloc::alloc::{find_optimal, topo_tree, OptimalOptions, Strategy};
use broadcast_alloc::channel::{cost, Allocation};
use broadcast_alloc::tree::builders;
use broadcast_alloc::types::NodeId;

fn ids(tree: &broadcast_alloc::tree::IndexTree, labels: &[&str]) -> Vec<NodeId> {
    labels
        .iter()
        .map(|l| tree.find_by_label(l).expect("label exists"))
        .collect()
}

#[test]
fn fig2a_one_channel_costs_6_01() {
    let t = builders::paper_example();
    let seq = ids(&t, &["1", "3", "E", "4", "C", "D", "2", "A", "B"]);
    let a = Allocation::from_sequence(&seq, &t).unwrap();
    // Paper: (18·3 + 15·5 + 7·6 + 20·8 + 10·9)/70 = 6.01.
    assert!((cost::average_data_wait(&a, &t) - 421.0 / 70.0).abs() < 1e-12);
}

#[test]
fn fig2b_two_channel_costs_3_88() {
    let t = builders::paper_example();
    let slots = vec![
        ids(&t, &["1"]),
        ids(&t, &["2", "3"]),
        ids(&t, &["A", "B"]),
        ids(&t, &["4", "E"]),
        ids(&t, &["C", "D"]),
    ];
    let a = Allocation::from_slot_schedule(&slots, &t, 2).unwrap();
    // Paper: (20·3 + 10·3 + 18·4 + 15·5 + 7·5)/70 = 3.88.
    assert!((cost::average_data_wait(&a, &t) - 272.0 / 70.0).abs() < 1e-12);
}

#[test]
fn fig2b_is_not_optimal_the_optimum_is_3_77() {
    // The paper presents Fig. 2(b) as "a possible allocation"; the true
    // 2-channel optimum for the example is 264/70 ≈ 3.771
    // (1 | 2 3 | A E | B 4 | C D).
    let t = builders::paper_example();
    let r = find_optimal(&t, 2, &OptimalOptions::default()).unwrap();
    assert!((r.data_wait - 264.0 / 70.0).abs() < 1e-12);
    assert!(r.data_wait < 272.0 / 70.0);
}

#[test]
fn example1_neighbor_counts() {
    // Paper Example 1: Neighbor_1 of {1,2,A} has 2 elements ({3},{B});
    // Neighbor_2 of {1,2,3} (two-channel) has 6 elements.
    let t = builders::paper_example();
    // Unpruned expansions checked via Algorithm 1's subset rule:
    // |S| = 2, k = 1 → 2 children; |S| = 4, k = 2 → C(4,2) = 6.
    // (Direct assertions live in bcast-core; here we pin the space sizes.)
    assert_eq!(topo_tree::count_paths(&t, 1), 896);
}

#[test]
fn data_tree_prunes_to_a_handful_of_paths() {
    let t = builders::paper_example();
    let p2 = count_paths(&t, PruneLevel::P2);
    let p12 = count_paths(&t, PruneLevel::P12);
    let p124 = count_paths(&t, PruneLevel::P124);
    assert!(p2 > p12 && p12 > p124);
    // Paper Fig. 12 reports 3 surviving paths; our Property-1/Property-4
    // interleaving keeps 4 (a superset — see EXPERIMENTS.md).
    assert_eq!(p124, 4);
}

#[test]
fn optimal_strategies_cross_agree_on_paper_tree() {
    let t = builders::paper_example();
    for k in 1..=4usize {
        let exhaustive = find_optimal(
            &t,
            k,
            &OptimalOptions {
                strategy: Strategy::Exhaustive,
                ..OptimalOptions::default()
            },
        )
        .unwrap();
        let auto = find_optimal(&t, k, &OptimalOptions::default()).unwrap();
        assert!(
            (auto.data_wait - exhaustive.data_wait).abs() < 1e-9,
            "k = {k}"
        );
    }
}

#[test]
fn one_channel_optimum_is_the_sorted_fig13_broadcast() {
    // For this example the Index Tree Sorting heuristic is exactly optimal
    // on one channel: 1 2 A B 3 E 4 C D at 391/70 ≈ 5.586 buckets.
    let t = builders::paper_example();
    let r = find_optimal(&t, 1, &OptimalOptions::default()).unwrap();
    assert!((r.data_wait - 391.0 / 70.0).abs() < 1e-12);
    let s = broadcast_alloc::alloc::heuristics::sorting::sorting_schedule(&t, 1);
    assert!((s.average_data_wait(&t) - 391.0 / 70.0).abs() < 1e-12);
}
