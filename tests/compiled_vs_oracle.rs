//! The compiled route tables must agree with the pointer-chasing
//! simulator — the oracle — on every trace field, for every data node,
//! tune-in slot (including cycle wraparound) and channel count any
//! schedule producer can generate; and both paths must surface corruption
//! (`BrokenPointer`, `NoRoute`) as errors rather than panicking or
//! mis-routing.

use broadcast_alloc::alloc::heuristics::sorting;
use broadcast_alloc::alloc::{baselines, Schedule};
use broadcast_alloc::channel::{
    simulator, BroadcastProgram, Bucket, CompiledProgram, ServeOptions,
};
use broadcast_alloc::tree::{builders, IndexTree};
use broadcast_alloc::types::{BucketAddr, NodeId, Slot};
use broadcast_alloc::workloads::{random_tree, FrequencyDist, RandomTreeConfig, RequestStream};
use proptest::prelude::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

fn producer_schedule(tree: &IndexTree, producer: usize, k: usize, seed: u64) -> Schedule {
    match producer {
        0 => sorting::sorting_schedule(tree, k),
        1 => baselines::greedy_frontier(tree, k),
        2 => baselines::preorder_schedule(tree, k),
        _ => baselines::random_feasible(tree, k, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Compiled table reads reproduce the oracle's full trace (probe wait,
    /// data wait, tuning time, channel switches) on random trees × random
    /// valid schedules, k ∈ {1,2,3}, with tune-ins past the cycle end
    /// exercising the wraparound normalization.
    #[test]
    fn compiled_tables_agree_with_walking_oracle(
        n in 2usize..10,
        fanout in 2usize..5,
        k in 1usize..4,
        seed in 0u64..100_000,
        producer in 0usize..4,
    ) {
        let cfg = RandomTreeConfig {
            data_nodes: n,
            max_fanout: fanout,
            weights: FrequencyDist::Zipf { theta: 0.9, scale: 100.0 },
        };
        let tree = random_tree(&cfg, seed);
        let schedule = producer_schedule(&tree, producer, k, seed);
        let alloc = schedule.into_allocation(&tree, k).expect("feasible");
        let program = BroadcastProgram::build(&alloc, &tree).expect("valid program");
        let compiled = CompiledProgram::compile(&program, &tree).expect("routable");
        prop_assert_eq!(compiled.num_data_nodes(), tree.num_data_nodes());
        prop_assert_eq!(compiled.cycle_len(), program.cycle_len());
        let cycle = program.cycle_len() as u32;
        for &d in tree.data_nodes() {
            // In-cycle, boundary, and wrapped tune-in offsets.
            for tune in [1, cycle / 2 + 1, cycle, cycle + 1, 2 * cycle + 3] {
                let oracle = simulator::access(&program, &tree, d, Slot(tune))
                    .expect("oracle routes every data node");
                let fast = compiled.access(d, Slot(tune)).expect("table routes it too");
                prop_assert_eq!(oracle, fast, "node {:?} tune {}", d, tune);
            }
        }
        // Index nodes are rejected identically.
        for i in 0..tree.len() {
            let node = NodeId::from_index(i);
            if !tree.is_data(node) {
                prop_assert_eq!(
                    compiled.access(node, Slot::FIRST).unwrap_err(),
                    simulator::access(&program, &tree, node, Slot::FIRST).unwrap_err()
                );
            }
        }
    }

    /// `serve_batch` equals a scalar oracle fold over the identical request
    /// sequence (targets + tune-ins), for every thread count.
    #[test]
    fn serve_batch_equals_oracle_fold(
        n in 2usize..10,
        k in 1usize..4,
        seed in 0u64..100_000,
        requests in 1usize..300,
        threads in 1usize..5,
    ) {
        let cfg = RandomTreeConfig {
            data_nodes: n,
            max_fanout: 3,
            weights: FrequencyDist::Uniform { lo: 1.0, hi: 100.0 },
        };
        let tree = random_tree(&cfg, seed);
        let schedule = sorting::sorting_schedule(&tree, k);
        let alloc = schedule.into_allocation(&tree, k).expect("feasible");
        let program = BroadcastProgram::build(&alloc, &tree).expect("valid program");
        let compiled = CompiledProgram::compile(&program, &tree).expect("routable");
        let data = tree.data_nodes();
        let target_weights: Vec<f64> = data.iter().map(|&d| tree.weight(d).get()).collect();
        let targets: Vec<NodeId> = RequestStream::from_weights(&target_weights, seed ^ 1)
            .take(requests)
            .map(|i| data[i])
            .collect();
        let opts = ServeOptions {
            threads,
            seed,
            ..ServeOptions::default()
        };
        let m = compiled.serve_batch(&targets, &opts).expect("all data targets");
        prop_assert_eq!(m.requests, requests);
        prop_assert_eq!(m.histogram.count(), requests as u64);
        let mut access_sum = 0u64;
        let mut wait_sum = 0u64;
        let mut tune_sum = 0u64;
        let mut switch_sum = 0u64;
        let mut max_access = 0u32;
        for (i, &t) in targets.iter().enumerate() {
            let tune = opts.tune_in(i as u64, compiled.cycle_len());
            let trace = simulator::access(&program, &tree, t, tune).expect("reachable");
            access_sum += u64::from(trace.access_time());
            wait_sum += u64::from(trace.data_wait);
            tune_sum += u64::from(trace.tuning_time);
            switch_sum += u64::from(trace.channel_switches);
            max_access = max_access.max(trace.access_time());
        }
        let nf = requests as f64;
        prop_assert!((m.mean_access_time - access_sum as f64 / nf).abs() < 1e-9);
        prop_assert!((m.mean_data_wait - wait_sum as f64 / nf).abs() < 1e-9);
        prop_assert!((m.mean_tuning_time - tune_sum as f64 / nf).abs() < 1e-9);
        prop_assert!((m.mean_channel_switches - switch_sum as f64 / nf).abs() < 1e-9);
        prop_assert_eq!(m.histogram.max(), max_access);
    }

    /// The chunked serve kernel (`serve_batch`, SIMD when compiled in) is
    /// *bit-identical* to the scalar reference loop (`serve_batch_scalar`)
    /// — `==` on the whole `BatchMetrics`, histogram included — across
    /// random trees, k ∈ {1,2,3}, thread counts, and batch sizes sweeping
    /// every residue of the 256-request chunk (partial tail chunks
    /// included).
    #[test]
    fn chunked_kernel_is_bit_identical_to_scalar(
        n in 2usize..40,
        fanout in 2usize..5,
        k in 1usize..4,
        seed in 0u64..100_000,
        batch in 0usize..600,
        threads in 1usize..4,
    ) {
        let cfg = RandomTreeConfig {
            data_nodes: n,
            max_fanout: fanout,
            weights: FrequencyDist::Zipf { theta: 0.9, scale: 100.0 },
        };
        let tree = random_tree(&cfg, seed);
        let schedule = sorting::sorting_schedule(&tree, k);
        let alloc = schedule.into_allocation(&tree, k).expect("feasible");
        let program = BroadcastProgram::build(&alloc, &tree).expect("valid program");
        let compiled = CompiledProgram::compile(&program, &tree).expect("routable");
        let data = tree.data_nodes();
        let targets: Vec<NodeId> = RequestStream::zipf(data.len(), 1.0, seed ^ 0xC0FFEE)
            .take(batch)
            .map(|i| data[i])
            .collect();
        let opts = ServeOptions { threads, seed, ..ServeOptions::default() };
        let chunked = compiled.serve_batch(&targets, &opts).expect("routable");
        let scalar = compiled.serve_batch_scalar(&targets, &opts).expect("routable");
        prop_assert_eq!(chunked, scalar);
    }
}

/// Deterministic companion to the bit-identity property: batch sizes
/// pinned to the chunk boundary itself — empty, single request, one
/// around each of the first two chunk edges — where the kernel switches
/// between its full-chunk and tail paths.
#[test]
fn chunked_kernel_matches_scalar_at_chunk_boundaries() {
    let cfg = RandomTreeConfig {
        data_nodes: 300,
        max_fanout: 4,
        weights: FrequencyDist::Uniform { lo: 1.0, hi: 50.0 },
    };
    let tree = random_tree(&cfg, 11);
    let schedule = sorting::sorting_schedule(&tree, 3);
    let alloc = schedule.into_allocation(&tree, 3).expect("feasible");
    let program = BroadcastProgram::build(&alloc, &tree).expect("valid program");
    let compiled = CompiledProgram::compile(&program, &tree).expect("routable");
    let data = tree.data_nodes();
    let targets: Vec<NodeId> = RequestStream::zipf(data.len(), 0.8, 5)
        .take(513)
        .map(|i| data[i])
        .collect();
    let opts = ServeOptions {
        threads: 1,
        seed: 99,
        ..ServeOptions::default()
    };
    for batch in [0usize, 1, 2, 255, 256, 257, 511, 512, 513] {
        let chunked = compiled
            .serve_batch(&targets[..batch], &opts)
            .expect("routable");
        let scalar = compiled
            .serve_batch_scalar(&targets[..batch], &opts)
            .expect("routable");
        assert_eq!(chunked, scalar, "batch {batch}");
    }
}

// ---------------------------------------------------------------------------
// SimError paths: corruption must surface as errors in BOTH the walking
// simulator and the compiler — never a panic, never a silent mis-route.
// ---------------------------------------------------------------------------

fn fig2b() -> (IndexTree, BroadcastProgram) {
    let t = builders::paper_example();
    let labels = |ls: &[&str]| -> Vec<NodeId> {
        ls.iter()
            .map(|l| t.find_by_label(l).expect("label exists"))
            .collect()
    };
    let slots = vec![
        labels(&["1"]),
        labels(&["2", "3"]),
        labels(&["A", "B"]),
        labels(&["4", "E"]),
        labels(&["C", "D"]),
    ];
    let a = broadcast_alloc::channel::Allocation::from_slot_schedule(&slots, &t, 2).unwrap();
    let p = BroadcastProgram::build(&a, &t).unwrap();
    (t, p)
}

/// The root's bucket address in every program.
const ROOT_ADDR: BucketAddr = BucketAddr {
    channel: broadcast_alloc::types::ChannelId::FIRST,
    slot: Slot::FIRST,
};

#[test]
fn dropped_pointer_surfaces_no_route_in_both_paths() {
    let (t, mut p) = fig2b();
    let Bucket::Index { pointers, .. } = p.bucket_mut(ROOT_ADDR) else {
        panic!("root bucket is an index bucket");
    };
    let dropped = pointers.pop().expect("root has two children");
    // Every data node under the dropped child is now unroutable.
    let mut under_dropped: Vec<NodeId> = t
        .data_nodes()
        .iter()
        .copied()
        .filter(|&d| d == dropped.child || t.ancestors(d).any(|a| a == dropped.child))
        .collect();
    assert!(!under_dropped.is_empty(), "dropped child has data below it");
    under_dropped.sort();
    for d in under_dropped {
        let err = simulator::access(&p, &t, d, Slot::FIRST).unwrap_err();
        assert!(
            matches!(err, simulator::SimError::NoRoute { .. }),
            "oracle: {err}"
        );
    }
    let err = CompiledProgram::compile(&p, &t).unwrap_err();
    assert!(
        matches!(err, simulator::SimError::NoRoute { .. }),
        "compile: {err}"
    );
}

#[test]
fn redirected_pointer_surfaces_broken_pointer_in_both_paths() {
    let (t, mut p) = fig2b();
    let node2 = t.find_by_label("2").unwrap();
    let Bucket::Index { pointers, .. } = p.bucket_mut(ROOT_ADDR) else {
        panic!("root bucket is an index bucket");
    };
    // Redirect the pointer for child "2" one slot too far: it now lands on
    // an occupied bucket holding one of "2"'s own children (A or B).
    let ptr = pointers
        .iter_mut()
        .find(|ptr| ptr.child == node2)
        .expect("root points at node 2");
    ptr.offset += 1;
    let dest = BucketAddr {
        channel: ptr.channel,
        slot: Slot(1 + ptr.offset),
    };
    // Oracle: probe with whichever of A/B the pointer does NOT land on, so
    // the corruption cannot alias with the target's own bucket.
    let Bucket::Data { node: found } = p.bucket(dest) else {
        panic!("slot 3 holds data buckets");
    };
    let target = if *found == t.find_by_label("A").unwrap() {
        t.find_by_label("B").unwrap()
    } else {
        t.find_by_label("A").unwrap()
    };
    let err = simulator::access(&p, &t, target, Slot::FIRST).unwrap_err();
    assert!(
        matches!(err, simulator::SimError::BrokenPointer { .. }),
        "oracle: {err}"
    );
    let err = CompiledProgram::compile(&p, &t).unwrap_err();
    assert!(
        matches!(err, simulator::SimError::BrokenPointer { .. }),
        "compile: {err}"
    );
}

#[test]
fn emptied_bucket_surfaces_broken_pointer_in_both_paths() {
    let (t, mut p) = fig2b();
    let c = t.find_by_label("C").unwrap();
    // Blank the data bucket of "C" (channel/slot found via a fresh compile
    // of the intact program).
    let intact = CompiledProgram::compile(&p, &t).unwrap();
    let slot = intact.data_slot(c).expect("C is data");
    let addr_of_c = (0..2)
        .map(|ch| BucketAddr::new(ch, slot.offset()))
        .find(|&addr| matches!(p.bucket(addr), Bucket::Data { node } if *node == c))
        .expect("C is somewhere in its slot");
    *p.bucket_mut(addr_of_c) = Bucket::Empty;
    let err = simulator::access(&p, &t, c, Slot::FIRST).unwrap_err();
    assert!(
        matches!(err, simulator::SimError::BrokenPointer { .. }),
        "oracle: {err}"
    );
    let err = CompiledProgram::compile(&p, &t).unwrap_err();
    assert!(
        matches!(err, simulator::SimError::BrokenPointer { .. }),
        "compile: {err}"
    );
}

#[test]
fn corruption_also_fails_the_rewired_aggregates() {
    // `aggregate_metrics` and `latency_distribution` now run on compiled
    // tables; they must propagate compilation errors, not panic.
    let (t, mut p) = fig2b();
    let Bucket::Index { pointers, .. } = p.bucket_mut(ROOT_ADDR) else {
        panic!("root bucket is an index bucket");
    };
    pointers.pop();
    assert!(simulator::aggregate_metrics(&p, &t).is_err());
    assert!(simulator::latency_distribution(&p, &t, 100, 1).is_err());
}
