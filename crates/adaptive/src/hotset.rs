//! Hot-set selection: *which* items to broadcast — the first research
//! category the paper's §1 surveys ("a small set of data items is
//! preferred to be broadcast ... only most frequently accessed data items
//! will be broadcast"), with the drop/re-estimate cycle of \[DCK97, SRB97\].
//!
//! Two pieces:
//!
//! * [`HotSetManager`] — maintains the broadcast set online from frequency
//!   estimates, with hysteresis so items oscillating around the cutoff do
//!   not thrash in and out of the program;
//! * [`hybrid_cost`] / [`optimal_capacity`] — the push–pull trade-off: a
//!   broadcast item costs its in-cycle wait (growing with the cycle
//!   length), a dropped item costs a fixed on-demand (up-link) latency.
//!   Sweeping the capacity locates the classic interior cutoff.

use bcast_types::Weight;

/// Configuration for [`HotSetManager`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotSetConfig {
    /// Number of items the broadcast program can carry.
    pub capacity: usize,
    /// Hysteresis margin in `[0, 1)`: a resident item is only evicted when
    /// a challenger's estimate exceeds the resident's by this fraction.
    /// `0` reduces to plain top-k (and thrashes on noisy estimates).
    pub hysteresis: f64,
}

/// Membership changes from one update.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HotSetDecision {
    /// Items promoted into the broadcast set.
    pub promoted: Vec<usize>,
    /// Items demoted to on-demand service.
    pub demoted: Vec<usize>,
}

/// Online top-k-with-hysteresis membership over frequency estimates.
#[derive(Debug, Clone)]
pub struct HotSetManager {
    config: HotSetConfig,
    resident: Vec<bool>,
}

impl HotSetManager {
    /// Creates a manager over `items` ids; the initial hot set is the
    /// first `capacity` ids (callers with better priors should follow with
    /// an [`update`](HotSetManager::update)).
    ///
    /// # Panics
    /// Panics if `capacity == 0 || capacity > items` or `hysteresis`
    /// outside `[0, 1)`.
    pub fn new(items: usize, config: HotSetConfig) -> Self {
        assert!(
            config.capacity > 0 && config.capacity <= items,
            "capacity must be in 1..=items"
        );
        assert!(
            (0.0..1.0).contains(&config.hysteresis),
            "hysteresis must be in [0, 1)"
        );
        let mut resident = vec![false; items];
        for r in resident.iter_mut().take(config.capacity) {
            *r = true;
        }
        HotSetManager { config, resident }
    }

    /// Current membership.
    pub fn is_hot(&self, item: usize) -> bool {
        self.resident[item]
    }

    /// The hot items, ascending by id.
    pub fn hot_items(&self) -> Vec<usize> {
        (0..self.resident.len())
            .filter(|&i| self.resident[i])
            .collect()
    }

    /// Re-evaluates membership against fresh estimates. Challengers must
    /// beat a resident by the hysteresis margin to evict it; each update
    /// swaps as many pairs as justified.
    pub fn update(&mut self, estimates: &[f64]) -> HotSetDecision {
        assert_eq!(
            estimates.len(),
            self.resident.len(),
            "one estimate per item"
        );
        // Weakest residents ascending, strongest challengers descending.
        let mut residents: Vec<usize> =
            (0..estimates.len()).filter(|&i| self.resident[i]).collect();
        let mut challengers: Vec<usize> = (0..estimates.len())
            .filter(|&i| !self.resident[i])
            .collect();
        residents.sort_by(|&a, &b| estimates[a].total_cmp(&estimates[b]));
        challengers.sort_by(|&a, &b| estimates[b].total_cmp(&estimates[a]));

        let mut decision = HotSetDecision::default();
        let margin = 1.0 + self.config.hysteresis;
        for (&out, &inn) in residents.iter().zip(&challengers) {
            if estimates[inn] > estimates[out] * margin {
                self.resident[out] = false;
                self.resident[inn] = true;
                decision.demoted.push(out);
                decision.promoted.push(inn);
            } else {
                break; // sorted: no later pair can qualify either
            }
        }
        decision
    }
}

/// Expected per-request cost of a hybrid program: hot items are served by
/// the broadcast (`wait_of[i]` slots, from the caller's schedule of the hot
/// set), cold items by the up-link at a flat `on_demand_latency`.
///
/// `wait_of[i]` is only read for hot items.
pub fn hybrid_cost(
    weights: &[Weight],
    hot: &[bool],
    wait_of: &[f64],
    on_demand_latency: f64,
) -> f64 {
    assert_eq!(weights.len(), hot.len());
    assert_eq!(weights.len(), wait_of.len());
    let total: f64 = weights.iter().map(|w| w.get()).sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..weights.len() {
        let cost = if hot[i] {
            wait_of[i]
        } else {
            on_demand_latency
        };
        acc += weights[i].get() * cost;
    }
    acc / total
}

/// One point of the capacity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityPoint {
    /// Items broadcast.
    pub capacity: usize,
    /// Broadcast cycle length in slots.
    pub cycle_len: usize,
    /// Expected per-request cost ([`hybrid_cost`]).
    pub cost: f64,
}

/// Sweeps broadcast capacity over `candidates`, building the hot-set
/// program with `schedule_waits` (capacity → per-hot-item waits + cycle
/// length) and returns every point plus the index of the optimum.
///
/// The classic result reproduces: small capacity wastes the channel (heavy
/// items still on the slow up-link), full capacity bloats the cycle
/// (every request waits on a long broadcast); the optimum is interior when
/// `on_demand_latency` is between those extremes.
pub fn optimal_capacity(
    weights: &[Weight],
    candidates: &[usize],
    on_demand_latency: f64,
    mut schedule_waits: impl FnMut(&[usize]) -> (Vec<f64>, usize),
) -> (Vec<CapacityPoint>, usize) {
    assert!(!candidates.is_empty(), "need at least one capacity");
    // Heaviest-first item ranking: the hot set at capacity c is the top c.
    let mut ranked: Vec<usize> = (0..weights.len()).collect();
    ranked.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));

    let mut points = Vec::with_capacity(candidates.len());
    for &c in candidates {
        assert!(c >= 1 && c <= weights.len(), "capacity out of range");
        let hot_items: Vec<usize> = ranked[..c].to_vec();
        let (waits, cycle_len) = schedule_waits(&hot_items);
        assert_eq!(waits.len(), c, "one wait per hot item");
        let mut hot = vec![false; weights.len()];
        let mut wait_of = vec![0.0; weights.len()];
        for (&item, &w) in hot_items.iter().zip(&waits) {
            hot[item] = true;
            wait_of[item] = w;
        }
        points.push(CapacityPoint {
            capacity: c,
            cycle_len,
            cost: hybrid_cost(weights, &hot, &wait_of, on_demand_latency),
        });
    }
    let best = points
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
        .map(|(i, _)| i)
        .expect("non-empty candidates");
    (points, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_without_hysteresis() {
        let mut m = HotSetManager::new(
            4,
            HotSetConfig {
                capacity: 2,
                hysteresis: 0.0,
            },
        );
        let d = m.update(&[1.0, 5.0, 9.0, 7.0]);
        assert_eq!(m.hot_items(), vec![2, 3]);
        assert_eq!(d.promoted.len(), 2);
        assert_eq!(d.demoted, vec![0, 1]);
    }

    #[test]
    fn hysteresis_prevents_thrashing() {
        let cfg = HotSetConfig {
            capacity: 1,
            hysteresis: 0.3,
        };
        let mut stable = HotSetManager::new(2, cfg);
        let mut plain = HotSetManager::new(
            2,
            HotSetConfig {
                hysteresis: 0.0,
                ..cfg
            },
        );
        // Estimates oscillate ±10% around equality.
        let mut stable_swaps = 0;
        let mut plain_swaps = 0;
        for t in 0..20 {
            let (a, b) = if t % 2 == 0 { (1.0, 1.1) } else { (1.1, 1.0) };
            stable_swaps += stable.update(&[a, b]).promoted.len();
            plain_swaps += plain.update(&[a, b]).promoted.len();
        }
        assert_eq!(
            stable_swaps, 0,
            "10% noise under a 30% margin must not swap"
        );
        assert!(plain_swaps > 10, "plain top-k thrashes: {plain_swaps}");
        // A decisive shift still gets through the hysteresis.
        let d = stable.update(&[1.0, 2.0]);
        assert_eq!(d.promoted, vec![1]);
        assert!(stable.is_hot(1));
    }

    #[test]
    fn hybrid_cost_weighs_both_sides() {
        let w: Vec<Weight> = [8u32, 2].iter().map(|&x| Weight::from(x)).collect();
        // Hot item waits 3 slots; cold item pays 20 on-demand.
        let cost = hybrid_cost(&w, &[true, false], &[3.0, 0.0], 20.0);
        assert!((cost - (8.0 * 3.0 + 2.0 * 20.0) / 10.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_sweep_finds_interior_optimum() {
        // Zipf-ish weights; the broadcast wait of the c-item program is
        // modeled as c/2 (items evenly spread over a c-slot cycle).
        let weights: Vec<Weight> = (0..50u32)
            .map(|r| Weight::new(100.0 / f64::from(r + 1)).expect("positive"))
            .collect();
        let candidates: Vec<usize> = (1..=50).collect();
        let (points, best) = optimal_capacity(&weights, &candidates, 20.0, |hot| {
            let c = hot.len();
            ((1..=c).map(|i| i as f64).collect(), c)
        });
        let best_cap = points[best].capacity;
        assert!(
            (1..50).contains(&best_cap),
            "expected an interior optimum, got {best_cap}"
        );
        // Extremes are both worse than the optimum.
        assert!(points[0].cost > points[best].cost);
        assert!(points.last().expect("non-empty").cost > points[best].cost);
    }

    #[test]
    #[should_panic(expected = "capacity must be in")]
    fn zero_capacity_rejected() {
        let _ = HotSetManager::new(
            3,
            HotSetConfig {
                capacity: 0,
                hysteresis: 0.1,
            },
        );
    }
}
