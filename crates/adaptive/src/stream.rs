//! Synthetic request streams with controlled popularity drift.
//!
//! Production request traces are not available (and the paper used none),
//! so drift is modeled synthetically — the substitution is documented in
//! DESIGN.md. Two canonical drift shapes from the broadcast/caching
//! literature:
//!
//! * [`DriftKind::Rotate`] — the Zipf rank permutation rotates by a step
//!   every `period` epochs: yesterday's #1 story slowly loses rank.
//! * [`DriftKind::HotspotJump`] — the identity of the hottest item block
//!   jumps to a random place every `period` epochs: breaking news.

use bcast_types::Weight;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How popularity moves over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Rank permutation rotates by `step` positions every period.
    Rotate {
        /// Positions rotated per drift event.
        step: usize,
    },
    /// The rank permutation is re-shuffled every period.
    HotspotJump,
}

/// A Zipf workload whose item↔rank mapping drifts over epochs.
#[derive(Debug, Clone)]
pub struct DriftingWorkload {
    /// `rank_of[item]` — current popularity rank (0 = hottest).
    rank_of: Vec<usize>,
    /// Zipf pmf by rank (descending), normalized.
    pmf: Vec<f64>,
    /// Cumulative pmf for inverse-CDF sampling.
    cdf: Vec<f64>,
    kind: DriftKind,
    period: u64,
    epoch: u64,
    rng: StdRng,
}

impl DriftingWorkload {
    /// Creates a workload over `items` ids with Zipf skew `theta`, drifting
    /// per `kind` every `period` epochs.
    ///
    /// # Panics
    /// Panics if `items == 0` or `period == 0`.
    pub fn new(items: usize, theta: f64, kind: DriftKind, period: u64, seed: u64) -> Self {
        assert!(items > 0, "need at least one item");
        assert!(period > 0, "period must be positive");
        let mut pmf: Vec<f64> = (0..items)
            .map(|r| 1.0 / ((r + 1) as f64).powf(theta))
            .collect();
        let total: f64 = pmf.iter().sum();
        for p in &mut pmf {
            *p /= total;
        }
        let mut cdf = Vec::with_capacity(items);
        let mut acc = 0.0;
        for &p in &pmf {
            acc += p;
            cdf.push(acc);
        }
        DriftingWorkload {
            rank_of: (0..items).collect(),
            pmf,
            cdf,
            kind,
            period,
            epoch: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.rank_of.len()
    }

    /// True if there are no items (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.rank_of.is_empty()
    }

    /// Draws one request (an item id) from the current distribution.
    pub fn sample(&mut self) -> usize {
        let u: f64 = self.rng.gen();
        // Inverse CDF over ranks, then translate rank → item.
        let rank = match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        };
        self.item_with_rank(rank)
    }

    fn item_with_rank(&self, rank: usize) -> usize {
        // rank_of is a permutation; invert lazily (len is small enough, and
        // sampling hot ranks early keeps the scan short on average).
        self.rank_of
            .iter()
            .position(|&r| r == rank)
            .expect("rank_of is a permutation")
    }

    /// Advances one epoch, applying drift when the period elapses.
    pub fn roll_epoch(&mut self) {
        self.epoch += 1;
        if !self.epoch.is_multiple_of(self.period) {
            return;
        }
        match self.kind {
            DriftKind::Rotate { step } => {
                let n = self.rank_of.len();
                for r in &mut self.rank_of {
                    *r = (*r + step) % n;
                }
            }
            DriftKind::HotspotJump => {
                self.rank_of.shuffle(&mut self.rng);
            }
        }
    }

    /// The *true* instantaneous weights (for oracle policies): the Zipf pmf
    /// scaled to `scale`, mapped through the current rank permutation.
    pub fn true_weights(&self, scale: f64) -> Vec<Weight> {
        self.rank_of
            .iter()
            .map(|&r| Weight::new(self.pmf[r] * scale).expect("finite, positive"))
            .collect()
    }

    /// Current rank of an item (0 = hottest).
    pub fn rank(&self, item: usize) -> usize {
        self.rank_of[item]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_follow_the_skew() {
        let mut w = DriftingWorkload::new(50, 1.0, DriftKind::Rotate { step: 1 }, 1000, 3);
        let mut counts = [0u32; 50];
        for _ in 0..20_000 {
            counts[w.sample()] += 1;
        }
        // Item with rank 0 is item 0 before any drift; it must dominate.
        let max_item = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .expect("non-empty");
        assert_eq!(max_item, 0);
        // Roughly Zipf: hottest ≈ 2× the second (theta = 1).
        assert!(counts[0] > counts[1]);
    }

    #[test]
    fn rotation_moves_the_hot_item() {
        let mut w = DriftingWorkload::new(10, 1.0, DriftKind::Rotate { step: 3 }, 2, 1);
        assert_eq!(w.rank(0), 0);
        w.roll_epoch(); // epoch 1: no drift yet
        assert_eq!(w.rank(0), 0);
        w.roll_epoch(); // epoch 2: rotate by 3
        assert_eq!(w.rank(0), 3);
        // Some other item is now rank 0.
        let hot = (0..10)
            .find(|&i| w.rank(i) == 0)
            .expect("one item has rank 0");
        assert_ne!(hot, 0);
    }

    #[test]
    fn hotspot_jump_reshuffles() {
        let mut w = DriftingWorkload::new(20, 1.0, DriftKind::HotspotJump, 1, 7);
        let before: Vec<usize> = (0..20).map(|i| w.rank(i)).collect();
        w.roll_epoch();
        let after: Vec<usize> = (0..20).map(|i| w.rank(i)).collect();
        assert_ne!(before, after);
        // Still a permutation.
        let mut sorted = after.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn true_weights_match_ranks() {
        let w = DriftingWorkload::new(5, 1.0, DriftKind::HotspotJump, 10, 0);
        let weights = w.true_weights(100.0);
        // Rank 0 (item 0) holds the largest weight.
        assert!(weights[0] > weights[1]);
        let total: f64 = weights.iter().map(|x| x.get()).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }
}
