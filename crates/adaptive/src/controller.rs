//! The adaptive broadcaster and its evaluation harness.
//!
//! Each *epoch* is one broadcast cycle: requests arrive, each experiencing
//! the data wait `T(item)` of the current program (formula 1's per-item
//! term); the estimator ingests them; periodically the index tree and
//! allocation are rebuilt from the current estimates. The harness replays
//! identical request streams against three policies:
//!
//! * **static** — built once from the initial popularity, never rebuilt
//!   (what the paper's offline algorithm gives you),
//! * **adaptive** — EMA estimates + periodic rebuild (this crate),
//! * **oracle** — rebuilt every epoch from the true instantaneous
//!   popularity (the unattainable lower reference).

use crate::estimator::EmaEstimator;
use crate::stream::DriftingWorkload;
use bcast_core::{PublishHeuristic, PublishOptions, Publisher};
use bcast_index_tree::knary;
use bcast_types::Weight;

/// Which §4.2-style heuristic reallocates the broadcast on rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocHeuristic {
    /// The paper's Index Tree Sorting heuristic.
    Sorting,
    /// The frontier-greedy extension (better on large skewed instances;
    /// see EXPERIMENTS.md finding F3).
    #[default]
    Frontier,
}

/// Degraded-feedback configuration: when and how delivery-rate drops
/// (reported by the lossy serving engine's `BatchMetrics::delivery_rate`)
/// trigger an out-of-schedule rebuild.
///
/// Two guards keep fault *bursts* from causing rebuild storms:
///
/// * **hysteresis** — only `sustain_epochs` *consecutive* degraded epochs
///   trigger a rebuild, and one epoch at or above `recovered_rate` resets
///   the streak (rates between the two thresholds are neutral);
/// * **backoff** — after a degradation rebuild the trigger is locked out
///   for a cooldown that doubles on every consecutive degraded rebuild
///   (up to `max_cooldown_epochs`); a healthy epoch resets the backoff to
///   `cooldown_epochs` and clears any remaining lockout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Delivery rate below this marks an epoch as degraded.
    pub min_delivery_rate: f64,
    /// Delivery rate at or above this marks the channel healthy (resets
    /// the degraded streak and the cooldown backoff).
    pub recovered_rate: f64,
    /// Consecutive degraded epochs required before rebuilding.
    pub sustain_epochs: u32,
    /// Base lockout (in epochs) after a degradation rebuild.
    pub cooldown_epochs: u64,
    /// Cap for the doubling cooldown.
    pub max_cooldown_epochs: u64,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            min_delivery_rate: 0.9,
            recovered_rate: 0.97,
            sustain_epochs: 3,
            cooldown_epochs: 8,
            max_cooldown_epochs: 64,
        }
    }
}

/// The mutable hysteresis/cooldown state machine behind a
/// [`DegradationPolicy`], extracted so every *tenant* of a multi-tenant
/// service owns an independent instance: one tenant's brownout escalating
/// its cooldown must never suppress a neighbor's rebuild. (The
/// [`AdaptiveBroadcaster`] embeds one; the serving loop keeps one per
/// tenant.)
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationTracker {
    policy: DegradationPolicy,
    /// Consecutive epochs with delivery rate below the degradation floor.
    degraded_streak: u32,
    /// Epochs the trigger is still locked out.
    cooldown_left: u64,
    /// Cooldown applied after the *next* degradation rebuild (doubles on
    /// consecutive degraded rebuilds, resets on recovery).
    next_cooldown: u64,
    degraded_rebuilds: u64,
}

impl DegradationTracker {
    /// A fresh tracker for `policy` (streak empty, no lockout).
    pub fn new(policy: DegradationPolicy) -> Self {
        DegradationTracker {
            policy,
            degraded_streak: 0,
            cooldown_left: 0,
            next_cooldown: policy.cooldown_epochs,
            degraded_rebuilds: 0,
        }
    }

    /// The policy this tracker enforces.
    pub fn policy(&self) -> &DegradationPolicy {
        &self.policy
    }

    /// Feeds one epoch's delivery rate. Returns `true` when the caller
    /// should rebuild *now* — the tracker has already recorded the rebuild
    /// (streak cleared, cooldown armed), so the caller only performs it.
    ///
    /// See [`DegradationPolicy`] for the hysteresis + backoff rules.
    pub fn observe(&mut self, delivery_rate: f64) -> bool {
        let d = self.policy;
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
        }
        if delivery_rate < d.min_delivery_rate {
            self.degraded_streak = self.degraded_streak.saturating_add(1);
        } else if delivery_rate >= d.recovered_rate {
            // A healthy epoch clears the streak, the escalated backoff and
            // any remaining lockout — the lockout exists to pace rebuilds
            // *within* a degraded period, not to delay response to the
            // next one.
            self.degraded_streak = 0;
            self.next_cooldown = d.cooldown_epochs;
            self.cooldown_left = 0;
        }
        if self.degraded_streak >= d.sustain_epochs && self.cooldown_left == 0 {
            self.degraded_rebuilds += 1;
            self.degraded_streak = 0;
            self.cooldown_left = self.next_cooldown;
            self.next_cooldown = (self.next_cooldown.saturating_mul(2)).min(d.max_cooldown_epochs);
            return true;
        }
        false
    }

    /// Forgets all transient state (streak, lockout, escalated backoff)
    /// but keeps the lifetime rebuild count — a tenant re-joining after
    /// churn, or a channel re-provisioned out of band, starts with a
    /// clean slate instead of a stale cooldown.
    pub fn reset(&mut self) {
        self.degraded_streak = 0;
        self.cooldown_left = 0;
        self.next_cooldown = self.policy.cooldown_epochs;
    }

    /// Rebuilds this tracker has triggered.
    pub fn degraded_rebuilds(&self) -> u64 {
        self.degraded_rebuilds
    }

    /// Appends the tracker's mutable state (streak, lockout, escalated
    /// backoff, lifetime count) to `out` — the policy itself is immutable
    /// configuration and travels separately. Inverse of
    /// [`import_state`](DegradationTracker::import_state).
    pub fn export_state(&self, out: &mut Vec<u64>) {
        out.push(u64::from(self.degraded_streak));
        out.push(self.cooldown_left);
        out.push(self.next_cooldown);
        out.push(self.degraded_rebuilds);
    }

    /// Rebuilds a tracker for `policy` from a word stream written by
    /// [`export_state`](DegradationTracker::export_state), consuming
    /// exactly the words it reads. Fails closed on truncation.
    pub fn import_state(policy: DegradationPolicy, words: &mut &[u64]) -> Option<Self> {
        if words.len() < 4 {
            return None;
        }
        let (head, rest) = words.split_at(4);
        *words = rest;
        Some(DegradationTracker {
            policy,
            degraded_streak: u32::try_from(head[0]).ok()?,
            cooldown_left: head[1],
            next_cooldown: head[2],
            degraded_rebuilds: head[3],
        })
    }
}

/// Rebuild configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildPolicy {
    /// Rebuild the tree + allocation every this many epochs (`None` =
    /// never; the static policy).
    pub rebuild_every: Option<u64>,
    /// EMA decay for the estimator.
    pub alpha: f64,
    /// Index-tree fanout.
    pub fanout: usize,
    /// Broadcast channels.
    pub channels: usize,
    /// Allocation heuristic used at each rebuild.
    pub heuristic: AllocHeuristic,
    /// Delivery-rate feedback trigger (`None` = periodic rebuilds only).
    pub degradation: Option<DegradationPolicy>,
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        RebuildPolicy {
            rebuild_every: Some(4),
            alpha: 0.4,
            fanout: 4,
            channels: 2,
            heuristic: AllocHeuristic::default(),
            degradation: None,
        }
    }
}

/// A broadcast server that re-optimizes its program online.
#[derive(Debug)]
pub struct AdaptiveBroadcaster {
    policy: RebuildPolicy,
    estimator: EmaEstimator,
    /// Fused schedule-and-compile engine; its double-buffered program and
    /// heuristic scratch keep rebuilds allocation-free at steady state.
    publisher: Publisher,
    /// `wait_of[item]` — slot of the item's bucket in the current cycle.
    wait_of: Vec<f64>,
    /// Popularity snapshot the next rebuild consumes, patched in place
    /// from the estimator's changed set — an estimator-driven rebuild
    /// hands over O(changed) pairs instead of cloning all `items` weights.
    weights: Vec<Weight>,
    /// Scratch for [`EmaEstimator::drain_changed`].
    changes: Vec<(u32, Weight)>,
    cycle_len: usize,
    epoch: u64,
    rebuilds: u64,
    /// Per-instance degradation state machine (`None` = no feedback path).
    degradation: Option<DegradationTracker>,
}

impl AdaptiveBroadcaster {
    /// Creates a broadcaster over `items` keyed items, building the initial
    /// program from `initial_weights`.
    ///
    /// # Panics
    /// Panics if `items == 0` or `initial_weights.len() != items`.
    pub fn new(items: usize, initial_weights: &[Weight], policy: RebuildPolicy) -> Self {
        assert!(items > 0, "need at least one item");
        assert_eq!(initial_weights.len(), items, "one weight per item");
        let mut this = AdaptiveBroadcaster {
            estimator: EmaEstimator::new(items, policy.alpha),
            publisher: Publisher::new(),
            wait_of: Vec::new(),
            weights: initial_weights.to_vec(),
            changes: Vec::new(),
            cycle_len: 0,
            epoch: 0,
            rebuilds: 0,
            degradation: policy.degradation.map(DegradationTracker::new),
            policy,
        };
        this.rebuild(initial_weights);
        this
    }

    /// Rebuild count (excluding the initial build... including it minus 1).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds - 1
    }

    /// Rebuilds triggered by the degraded-feedback path specifically.
    pub fn degraded_rebuilds(&self) -> u64 {
        self.degradation
            .as_ref()
            .map_or(0, DegradationTracker::degraded_rebuilds)
    }

    /// Current cycle length in slots.
    pub fn cycle_len(&self) -> usize {
        self.cycle_len
    }

    /// Expected data wait of `item` under the current program.
    pub fn wait_of(&self, item: usize) -> f64 {
        self.wait_of[item]
    }

    fn rebuild(&mut self, weights: &[Weight]) {
        // Alphabetic shape keeps items key-searchable across rebuilds.
        let tree = knary::build_weight_balanced(weights, self.policy.fanout).expect("items >= 1");
        let heuristic = match self.policy.heuristic {
            AllocHeuristic::Sorting => PublishHeuristic::Sorting,
            AllocHeuristic::Frontier => PublishHeuristic::Frontier,
        };
        // The fused pipeline schedules, validates and compiles the `T(Di)`
        // route tables in one pass, reusing the previous rebuild's buffers
        // (double-buffered program swap) — the estimator's per-item waits
        // come from the same tables the serving engine reads.
        let compiled = self
            .publisher
            .publish(
                &tree,
                self.policy.channels,
                heuristic,
                PublishOptions::default(),
            )
            .expect("heuristic schedules are feasible");
        // data_nodes() of an alphabetic tree is key order, so data node i
        // is item i.
        self.wait_of.clear();
        self.wait_of.resize(weights.len(), 0.0);
        for (item, &n) in tree.data_nodes().iter().enumerate() {
            debug_assert_eq!(
                tree.label(n)[1..].parse::<usize>().ok(),
                Some(item),
                "knary builders label data nodes D<key> in key order"
            );
            self.wait_of[item] = compiled
                .data_slot(n)
                .expect("compiled: all data routed")
                .wait() as f64;
        }
        self.cycle_len = compiled.cycle_len();
        self.rebuilds += 1;
    }

    /// Estimator-driven rebuild: drains the changed set into the
    /// persistent weight snapshot (O(changed) handoff, no full-vector
    /// clone) and rebuilds from it. The snapshot equals
    /// [`EmaEstimator::weights`] bit for bit whenever at least one epoch
    /// has rolled since construction, because `drain_changed` applies the
    /// same `max(1e-6)` floor; before any roll it keeps the initial
    /// weights instead of collapsing everything to the floor.
    fn rebuild_from_estimator(&mut self) {
        self.changes.clear();
        self.estimator.drain_changed(&mut self.changes);
        for &(i, w) in &self.changes {
            self.weights[i as usize] = w;
        }
        let w = std::mem::take(&mut self.weights);
        self.rebuild(&w);
        self.weights = w;
    }

    /// Serves one epoch of requests: returns their mean data wait under the
    /// current program, then ingests them and rebuilds if due.
    pub fn serve_epoch(&mut self, requests: &[usize]) -> f64 {
        let mean = if requests.is_empty() {
            0.0
        } else {
            requests.iter().map(|&i| self.wait_of[i]).sum::<f64>() / requests.len() as f64
        };
        for &i in requests {
            self.estimator.observe(i);
        }
        self.estimator.roll_epoch();
        self.epoch += 1;
        if let Some(every) = self.policy.rebuild_every {
            if self.epoch.is_multiple_of(every) {
                self.rebuild_from_estimator();
            }
        }
        mean
    }

    /// Feeds one epoch's delivery rate (the lossy serving engine's
    /// `BatchMetrics::delivery_rate`) into the degraded-feedback path.
    /// Returns `true` if this observation triggered a rebuild.
    ///
    /// See [`DegradationPolicy`] for the hysteresis + backoff rules; with
    /// no degradation policy configured this is a no-op.
    pub fn observe_delivery(&mut self, delivery_rate: f64) -> bool {
        let Some(tracker) = self.degradation.as_mut() else {
            return false;
        };
        if tracker.observe(delivery_rate) {
            self.rebuild_from_estimator();
            return true;
        }
        false
    }
}

/// Per-policy outcome of a drift comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyReport {
    /// Policy label.
    pub name: &'static str,
    /// Mean request wait across all epochs.
    pub mean_wait: f64,
    /// Mean wait per epoch (for plotting).
    pub per_epoch: Vec<f64>,
}

/// Replays `epochs × requests_per_epoch` drifting requests against the
/// static, adaptive and oracle policies, returning one report per policy
/// (in that order). All three see the *same* request stream.
pub fn run_comparison(
    workload: &mut DriftingWorkload,
    epochs: u64,
    requests_per_epoch: usize,
    policy: RebuildPolicy,
) -> Vec<PolicyReport> {
    let items = workload.len();
    let initial = workload.true_weights(1000.0);
    let mut static_b = AdaptiveBroadcaster::new(
        items,
        &initial,
        RebuildPolicy {
            rebuild_every: None,
            ..policy
        },
    );
    let mut adaptive_b = AdaptiveBroadcaster::new(items, &initial, policy);
    let mut oracle_b = AdaptiveBroadcaster::new(
        items,
        &initial,
        RebuildPolicy {
            rebuild_every: None, // rebuilt manually from true weights
            ..policy
        },
    );

    let mut reports: Vec<PolicyReport> = ["static", "adaptive", "oracle"]
        .into_iter()
        .map(|name| PolicyReport {
            name,
            mean_wait: 0.0,
            per_epoch: Vec::with_capacity(epochs as usize),
        })
        .collect();

    for _ in 0..epochs {
        let requests: Vec<usize> = (0..requests_per_epoch).map(|_| workload.sample()).collect();
        let s = static_b.serve_epoch(&requests);
        let a = adaptive_b.serve_epoch(&requests);
        let o = oracle_b.serve_epoch(&requests);
        // Oracle: rebuild from the *new* true distribution every epoch.
        workload.roll_epoch();
        oracle_b.rebuild(&workload.true_weights(1000.0));
        for (r, v) in reports.iter_mut().zip([s, a, o]) {
            r.per_epoch.push(v);
            r.mean_wait += v / epochs as f64;
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::DriftKind;

    #[test]
    fn stationary_load_needs_no_adaptation() {
        // With no drift, static (built from the true weights) is already
        // right; adaptive must stay within a few percent of it.
        let mut w = DriftingWorkload::new(40, 1.0, DriftKind::Rotate { step: 0 }, 1, 5);
        let reports = run_comparison(&mut w, 40, 400, RebuildPolicy::default());
        let (s, a) = (reports[0].mean_wait, reports[1].mean_wait);
        assert!(
            a <= s * 1.10,
            "adaptive {a} should track static {s} on stationary load"
        );
    }

    #[test]
    fn adaptation_wins_under_drift() {
        let mut w = DriftingWorkload::new(60, 1.1, DriftKind::HotspotJump, 8, 11);
        let policy = RebuildPolicy {
            rebuild_every: Some(2),
            alpha: 0.6,
            ..RebuildPolicy::default()
        };
        let reports = run_comparison(&mut w, 120, 600, policy);
        let (s, a, o) = (
            reports[0].mean_wait,
            reports[1].mean_wait,
            reports[2].mean_wait,
        );
        assert!(a < s, "adaptive {a} must beat static {s} under drift");
        assert!(
            o <= a * 1.05,
            "oracle {o} should be at least as good as adaptive {a}"
        );
    }

    #[test]
    fn broadcaster_bookkeeping() {
        let w: Vec<Weight> = (1..=10u32).map(Weight::from).collect();
        let mut b = AdaptiveBroadcaster::new(10, &w, RebuildPolicy::default());
        assert_eq!(b.rebuilds(), 0);
        assert!(b.cycle_len() >= 10 / 2); // 10 data + index over 2 channels
        for item in 0..10 {
            assert!(b.wait_of(item) >= 1.0);
        }
        // Default policy rebuilds every 4 epochs.
        for _ in 0..8 {
            b.serve_epoch(&[0, 1, 2]);
        }
        assert_eq!(b.rebuilds(), 2);
    }

    #[test]
    fn empty_epoch_is_harmless() {
        let w: Vec<Weight> = (1..=4u32).map(Weight::from).collect();
        let mut b = AdaptiveBroadcaster::new(4, &w, RebuildPolicy::default());
        assert_eq!(b.serve_epoch(&[]), 0.0);
    }

    fn degradation_broadcaster(d: DegradationPolicy) -> AdaptiveBroadcaster {
        let w: Vec<Weight> = (1..=12u32).map(Weight::from).collect();
        AdaptiveBroadcaster::new(
            12,
            &w,
            RebuildPolicy {
                rebuild_every: None,
                degradation: Some(d),
                ..RebuildPolicy::default()
            },
        )
    }

    #[test]
    fn brief_dips_never_trigger_a_rebuild() {
        let mut b = degradation_broadcaster(DegradationPolicy::default());
        // Alternating bad/healthy epochs: the streak never reaches 3.
        for _ in 0..20 {
            assert!(!b.observe_delivery(0.5));
            assert!(!b.observe_delivery(0.99));
        }
        assert_eq!(b.degraded_rebuilds(), 0);
    }

    #[test]
    fn neutral_rates_do_not_reset_the_streak() {
        // Between min (0.9) and recovered (0.97) is hysteresis dead band.
        let mut b = degradation_broadcaster(DegradationPolicy::default());
        assert!(!b.observe_delivery(0.5));
        assert!(!b.observe_delivery(0.93)); // neutral: streak survives
        assert!(!b.observe_delivery(0.5));
        assert!(b.observe_delivery(0.5)); // third degraded epoch fires
        assert_eq!(b.degraded_rebuilds(), 1);
    }

    #[test]
    fn sustained_loss_rebuilds_with_doubling_cooldown() {
        let d = DegradationPolicy {
            min_delivery_rate: 0.9,
            recovered_rate: 0.97,
            sustain_epochs: 2,
            cooldown_epochs: 4,
            max_cooldown_epochs: 16,
        };
        let mut b = degradation_broadcaster(d);
        let mut rebuild_epochs = Vec::new();
        for epoch in 0..60u64 {
            if b.observe_delivery(0.4) {
                rebuild_epochs.push(epoch);
            }
        }
        // A permanent fault storm must not rebuild every sustain_epochs:
        // the doubling cooldown spreads rebuilds out (4, 8, 16, 16…).
        assert!(
            rebuild_epochs.len() <= 5,
            "rebuild storm: {rebuild_epochs:?}"
        );
        let gaps: Vec<u64> = rebuild_epochs.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.windows(2).all(|g| g[1] >= g[0]),
            "cooldown must not shrink during a storm: {gaps:?}"
        );
        assert!(b.degraded_rebuilds() >= 2);
    }

    #[test]
    fn recovery_resets_the_cooldown_backoff() {
        let d = DegradationPolicy {
            min_delivery_rate: 0.9,
            recovered_rate: 0.97,
            sustain_epochs: 2,
            cooldown_epochs: 2,
            max_cooldown_epochs: 32,
        };
        let mut b = degradation_broadcaster(d);
        // First storm: escalate the backoff.
        for _ in 0..20 {
            b.observe_delivery(0.4);
        }
        let after_storm = b.degraded_rebuilds();
        assert!(after_storm >= 2);
        // Healthy stretch: backoff resets to the base cooldown.
        for _ in 0..5 {
            assert!(!b.observe_delivery(0.995));
        }
        // A fresh storm fires after sustain_epochs again (no stale
        // escalated cooldown in the way once the lockout has drained).
        let mut fired_at = None;
        for epoch in 0..10u64 {
            if b.observe_delivery(0.4) {
                fired_at = Some(epoch);
                break;
            }
        }
        assert_eq!(fired_at, Some(1), "sustain_epochs=2 → fire on 2nd epoch");
    }

    #[test]
    fn trackers_are_independent_per_tenant() {
        // The multi-tenant requirement: a brownout escalating tenant A's
        // cooldown must not delay tenant B's first rebuild.
        let d = DegradationPolicy {
            sustain_epochs: 2,
            cooldown_epochs: 4,
            ..DegradationPolicy::default()
        };
        let mut a = DegradationTracker::new(d);
        let mut b = DegradationTracker::new(d);
        // A endures a long storm (escalated backoff, several rebuilds).
        let mut a_rebuilds = 0;
        for _ in 0..30 {
            if a.observe(0.3) {
                a_rebuilds += 1;
            }
        }
        assert!(a_rebuilds >= 2);
        // B, pristine, fires after exactly sustain_epochs.
        assert!(!b.observe(0.3));
        assert!(b.observe(0.3));
        assert_eq!(b.degraded_rebuilds(), 1);
    }

    #[test]
    fn reset_clears_the_lockout_but_keeps_history() {
        let d = DegradationPolicy {
            sustain_epochs: 2,
            cooldown_epochs: 16,
            max_cooldown_epochs: 64,
            ..DegradationPolicy::default()
        };
        let mut t = DegradationTracker::new(d);
        assert!(!t.observe(0.3));
        assert!(t.observe(0.3));
        // Locked out for 16 epochs now; a churned-in tenant resets.
        t.reset();
        assert!(!t.observe(0.3));
        assert!(t.observe(0.3), "reset must drop the cooldown lockout");
        assert_eq!(t.degraded_rebuilds(), 2, "lifetime count survives reset");
        assert_eq!(t.policy(), &d);
    }

    #[test]
    fn no_policy_means_no_feedback() {
        let w: Vec<Weight> = (1..=6u32).map(Weight::from).collect();
        let mut b = AdaptiveBroadcaster::new(6, &w, RebuildPolicy::default());
        for _ in 0..10 {
            assert!(!b.observe_delivery(0.0));
        }
        assert_eq!(b.degraded_rebuilds(), 0);
    }
}
