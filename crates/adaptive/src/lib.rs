#![warn(missing_docs)]

//! Online adaptation of broadcast programs — the paper's §5 first
//! future-work item: "If the change [of access patterns] is frequent, an
//! efficient on-line algorithm to immediately reflect the current
//! broadcasting state is needed."
//!
//! The crate closes the loop the paper leaves open:
//!
//! * [`estimator`] — frequency estimation from the observed request stream
//!   (exponential moving average, the standard re-estimation technique the
//!   paper's §1 cites from \[DCK97, SRB97\]);
//! * [`stream`] — synthetic request streams with controlled popularity
//!   drift (rank rotation and hotspot jumps), substituting for the
//!   production traces we do not have;
//! * [`hotset`] — *which* items to broadcast (the paper's §1 first
//!   research category): top-k-with-hysteresis membership plus the hybrid
//!   push–pull capacity trade-off;
//! * [`controller`] — an [`AdaptiveBroadcaster`]
//!   that periodically rebuilds the index tree and reallocates the
//!   broadcast from the current estimates — plus a degraded-feedback path
//!   ([`DegradationPolicy`]) that rebuilds on sustained delivery-rate
//!   drops with hysteresis and exponential cooldown backoff — and the
//!   evaluation harness comparing it against a *static* (never rebuild)
//!   and an *oracle* (rebuild from true instantaneous popularity) policy.

pub mod controller;
pub mod estimator;
pub mod hotset;
pub mod stream;

pub use controller::{
    AdaptiveBroadcaster, DegradationPolicy, DegradationTracker, PolicyReport, RebuildPolicy,
};
pub use estimator::EmaEstimator;
pub use hotset::{HotSetConfig, HotSetManager};
pub use stream::{DriftKind, DriftingWorkload};
