//! Access-frequency estimation from the request stream.
//!
//! The broadcast server cannot see true popularity; it sees requests (in
//! the paper's hybrid setting, the on-demand up-link misses used to
//! "re-estimate its access frequency" \[DCK97, SRB97\]). The standard
//! streaming estimator is an exponential moving average over per-epoch
//! request counts: cheap, O(items) memory, and tunably reactive via the
//! decay factor `alpha`.

use bcast_types::Weight;

/// Exponential-moving-average frequency estimator.
///
/// Counts requests within an *epoch* (one broadcast cycle, typically); at
/// each [`EmaEstimator::roll_epoch`] the running estimate becomes
/// `alpha · count + (1 - alpha) · previous`. Higher `alpha` reacts faster
/// but is noisier.
///
/// ```
/// use bcast_adaptive::EmaEstimator;
///
/// let mut est = EmaEstimator::new(2, 0.5);
/// est.observe(0);
/// est.observe(0);
/// est.roll_epoch();
/// assert_eq!(est.estimate(0), 1.0); // 0.5 · 2 + 0.5 · 0
/// assert_eq!(est.estimate(1), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct EmaEstimator {
    alpha: f64,
    /// Per-epoch request counts. `u32` deliberately: an epoch is one
    /// serving slice (tens of thousands of requests), so 32 bits never
    /// saturate, and the half-size array keeps the per-request increment
    /// inside a smaller cache footprint on the serving hot path.
    counts: Vec<u32>,
    estimate: Vec<f64>,
    epochs: u64,
    /// Floored weights as of the last [`EmaEstimator::drain_changed`] —
    /// the published snapshot the changed-set diffs against.
    published: Vec<f64>,
    /// Items whose floored weight bits moved vs `published`, deduplicated.
    dirty: Vec<u32>,
    dirty_flag: Vec<bool>,
}

impl EmaEstimator {
    /// Creates an estimator over `items` item ids with decay `alpha ∈
    /// (0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is out of `(0, 1]` or `items == 0`.
    pub fn new(items: usize, alpha: f64) -> Self {
        assert!(items > 0, "need at least one item");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        EmaEstimator {
            alpha,
            counts: vec![0; items],
            estimate: vec![0.0; items],
            epochs: 0,
            published: vec![f64::NAN; items], // NaN ⇒ everything dirty at first drain
            dirty: Vec::new(),
            dirty_flag: vec![false; items],
        }
    }

    /// Number of tracked items.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if no items are tracked (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Records one request for `item`. `#[inline]` because the serving
    /// loop calls this once per request from another crate, and the
    /// workspace builds without LTO — without the hint the counter bump
    /// would be an outlined cross-crate call on the hottest path.
    ///
    /// # Panics
    /// Panics on an out-of-range item id.
    #[inline]
    pub fn observe(&mut self, item: usize) {
        self.counts[item] += 1;
    }

    /// Ends the current epoch, folding its counts into the estimate and
    /// marking every item whose *floored published weight* bits moved —
    /// the epoch roll already walks all items, so dirty tracking rides
    /// along for free and [`drain_changed`](EmaEstimator::drain_changed)
    /// stays O(changed).
    pub fn roll_epoch(&mut self) {
        for (i, (est, cnt)) in self.estimate.iter_mut().zip(&mut self.counts).enumerate() {
            *est = self.alpha * (*cnt as f64) + (1.0 - self.alpha) * *est;
            *cnt = 0;
            let floored = est.max(1e-6);
            if floored.to_bits() != self.published[i].to_bits() && !self.dirty_flag[i] {
                self.dirty_flag[i] = true;
                self.dirty.push(i as u32);
            }
        }
        self.epochs += 1;
    }

    /// Items whose floored weight changed since the last
    /// [`drain_changed`](EmaEstimator::drain_changed), ascending.
    pub fn changed(&self) -> &[u32] {
        &self.dirty
    }

    /// Drains the changed set into `out` as `(item, new weight)` pairs
    /// (ascending by item, appended) and advances the published snapshot —
    /// O(changed), so rebuild callers no longer clone the full weight
    /// vector. Weights match [`weights`](EmaEstimator::weights) exactly:
    /// the same `max(1e-6)` floor, bit for bit.
    pub fn drain_changed(&mut self, out: &mut Vec<(u32, Weight)>) {
        self.dirty.sort_unstable();
        for &i in &self.dirty {
            let w = self.estimate[i as usize].max(1e-6);
            self.published[i as usize] = w;
            self.dirty_flag[i as usize] = false;
            out.push((
                i,
                Weight::new(w).expect("EMA of counts is finite, non-negative"),
            ));
        }
        self.dirty.clear();
    }

    /// Relative L1 drift of the current floored estimates against the
    /// published snapshot: `Σ|wᵢ − pᵢ| / Σ pᵢ`, or `f64::INFINITY` before
    /// the first [`drain_changed`](EmaEstimator::drain_changed) (nothing
    /// is published yet, so everything has drifted).
    ///
    /// This is the republish gate's input: a stationary stream's EMA
    /// fluctuates by sampling noise only (drift well under ~0.2 for
    /// realistic rates), while a genuine popularity shift moves the mass
    /// itself — so "republish only when drift exceeds a floor" skips the
    /// no-op rebuilds without ever missing a real change. O(items), no
    /// allocation, deterministic.
    pub fn drift_since_publish(&self) -> f64 {
        let mut moved = 0.0f64;
        let mut base = 0.0f64;
        for (est, pub_w) in self.estimate.iter().zip(&self.published) {
            if pub_w.is_nan() {
                return f64::INFINITY;
            }
            moved += (est.max(1e-6) - pub_w).abs();
            base += pub_w;
        }
        if base > 0.0 {
            moved / base
        } else {
            f64::INFINITY
        }
    }

    /// Epochs rolled so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Current estimates as allocation weights. A small floor keeps items
    /// that were never requested from collapsing to zero weight (they must
    /// remain broadcastable and tie-breakable).
    pub fn weights(&self) -> Vec<Weight> {
        self.estimate
            .iter()
            .map(|&e| Weight::new(e.max(1e-6)).expect("EMA of counts is finite, non-negative"))
            .collect()
    }

    /// Raw estimate for one item.
    pub fn estimate(&self, item: usize) -> f64 {
        self.estimate[item]
    }

    /// Appends the estimator's complete state to `out` as `u64` words —
    /// float bit patterns, never rounded values, so a restored estimator
    /// continues the exact trajectory of the original (the checkpoint
    /// path depends on this bit-identity). The inverse is
    /// [`import_state`](EmaEstimator::import_state).
    /// Mid-epoch counts are encoded sparsely (`item << 32 | count`,
    /// ascending): a checkpoint is taken at an epoch boundary where
    /// [`roll_epoch`](EmaEstimator::roll_epoch) has just zeroed them, so
    /// the dense array would be `items` words of zeros. Dirty items pack
    /// two per word, order preserved — at snapshot scale these two runs
    /// would otherwise dominate the estimator section.
    pub fn export_state(&self, out: &mut Vec<u64>) {
        out.push(self.alpha.to_bits());
        out.push(self.counts.len() as u64);
        out.push(self.epochs);
        let occupied = self.counts.iter().filter(|&&c| c != 0).count();
        out.push(occupied as u64);
        out.extend(
            self.counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(i, &c)| ((i as u64) << 32) | u64::from(c)),
        );
        out.extend(self.estimate.iter().map(|e| e.to_bits()));
        out.extend(self.published.iter().map(|p| p.to_bits()));
        out.push(self.dirty.len() as u64);
        out.extend(
            self.dirty.chunks(2).map(|pair| {
                u64::from(pair[0]) | (pair.get(1).map_or(0, |&hi| u64::from(hi)) << 32)
            }),
        );
    }

    /// Rebuilds an estimator from a word stream written by
    /// [`export_state`](EmaEstimator::export_state), consuming exactly
    /// the words it reads from the front of `*words`. Fails closed:
    /// a truncated or structurally invalid stream yields `None`, never a
    /// half-restored estimator.
    pub fn import_state(words: &mut &[u64]) -> Option<EmaEstimator> {
        fn take<'a>(words: &mut &'a [u64], n: usize) -> Option<&'a [u64]> {
            if words.len() < n {
                return None;
            }
            let (head, rest) = words.split_at(n);
            *words = rest;
            Some(head)
        }
        let header = take(words, 4)?;
        let alpha = f64::from_bits(header[0]);
        let items = usize::try_from(header[1]).ok()?;
        let epochs = header[2];
        if !(alpha > 0.0 && alpha <= 1.0) || items == 0 {
            return None;
        }
        let occupied = usize::try_from(header[3]).ok()?;
        if occupied > items {
            return None;
        }
        let mut counts = vec![0u32; items];
        let mut prev: Option<usize> = None;
        for &pair in take(words, occupied)? {
            let i = usize::try_from(pair >> 32).ok()?;
            let c = pair as u32;
            if i >= items || prev.is_some_and(|p| p >= i) || c == 0 {
                return None;
            }
            prev = Some(i);
            counts[i] = c;
        }
        let estimate: Vec<f64> = take(words, items)?
            .iter()
            .map(|&w| f64::from_bits(w))
            .collect();
        let published: Vec<f64> = take(words, items)?
            .iter()
            .map(|&w| f64::from_bits(w))
            .collect();
        let dirty_len = usize::try_from(*take(words, 1)?.first()?).ok()?;
        if dirty_len > items {
            return None;
        }
        let packed = take(words, dirty_len.div_ceil(2))?;
        let mut dirty = Vec::with_capacity(dirty_len);
        for k in 0..dirty_len {
            let word = packed[k / 2];
            dirty.push(if k % 2 == 0 {
                word as u32
            } else {
                (word >> 32) as u32
            });
        }
        let mut dirty_flag = vec![false; items];
        for &d in &dirty {
            let flag = dirty_flag.get_mut(d as usize)?;
            if *flag {
                return None; // duplicate dirty entry
            }
            *flag = true;
        }
        Some(EmaEstimator {
            alpha,
            counts,
            estimate,
            epochs,
            published,
            dirty,
            dirty_flag,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn converges_to_stationary_rates() {
        let mut e = EmaEstimator::new(3, 0.3);
        for _ in 0..200 {
            for _ in 0..30 {
                e.observe(0);
            }
            for _ in 0..10 {
                e.observe(1);
            }
            e.roll_epoch();
        }
        assert!((e.estimate(0) - 30.0).abs() < 1e-6);
        assert!((e.estimate(1) - 10.0).abs() < 1e-6);
        assert!(e.estimate(2) < 1e-6);
        assert_eq!(e.epochs(), 200);
        // Weight floor keeps unseen items alive.
        assert!(e.weights()[2].get() > 0.0);
    }

    #[test]
    fn tracks_a_shift_within_a_few_epochs() {
        let mut e = EmaEstimator::new(2, 0.5);
        for _ in 0..20 {
            for _ in 0..10 {
                e.observe(0);
            }
            e.roll_epoch();
        }
        // Popularity flips to item 1.
        for _ in 0..6 {
            for _ in 0..10 {
                e.observe(1);
            }
            e.roll_epoch();
        }
        assert!(
            e.estimate(1) > e.estimate(0),
            "estimator should have crossed over: {} vs {}",
            e.estimate(1),
            e.estimate(0)
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn rejects_bad_alpha() {
        let _ = EmaEstimator::new(1, 0.0);
    }

    #[test]
    fn changed_set_tracks_exactly_the_moved_weights() {
        let mut e = EmaEstimator::new(4, 0.5);
        let mut out = Vec::new();
        // First drain: everything is dirty (nothing published yet), and
        // the drained weights equal the full vector bit for bit.
        e.roll_epoch();
        e.drain_changed(&mut out);
        assert_eq!(out.len(), 4);
        for (i, &(item, w)) in out.iter().enumerate() {
            assert_eq!(item as usize, i);
            assert_eq!(w.get().to_bits(), e.weights()[i].get().to_bits());
        }
        // A quiet epoch over all-zero estimates moves nothing.
        out.clear();
        e.roll_epoch();
        e.drain_changed(&mut out);
        assert!(out.is_empty(), "no weight moved, but {out:?} drained");
        // Requests against item 2 dirty exactly item 2.
        e.observe(2);
        e.observe(2);
        e.roll_epoch();
        assert_eq!(e.changed(), &[2]);
        e.drain_changed(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
        assert_eq!(out[0].1.get().to_bits(), e.weights()[2].get().to_bits());
        // Dirty marks deduplicate across epochs until drained.
        out.clear();
        e.observe(1);
        e.roll_epoch();
        e.observe(1);
        e.roll_epoch();
        assert_eq!(e.changed(), &[1, 2], "decay keeps item 2 moving");
        e.drain_changed(&mut out);
        assert_eq!(out.iter().map(|c| c.0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn drift_tracks_mass_movement_not_noise() {
        let mut e = EmaEstimator::new(2, 0.5);
        // Nothing published yet: everything counts as drifted.
        assert_eq!(e.drift_since_publish(), f64::INFINITY);
        let mut out = Vec::new();
        for _ in 0..30 {
            for _ in 0..10 {
                e.observe(0);
            }
            e.roll_epoch();
        }
        e.drain_changed(&mut out);
        // Converged stationary stream: estimates barely move after the
        // publish, so drift stays near zero.
        for _ in 0..3 {
            for _ in 0..10 {
                e.observe(0);
            }
            e.roll_epoch();
        }
        assert!(
            e.drift_since_publish() < 0.01,
            "{}",
            e.drift_since_publish()
        );
        // Popularity flip: the mass itself moves, drift jumps.
        for _ in 0..3 {
            for _ in 0..10 {
                e.observe(1);
            }
            e.roll_epoch();
        }
        assert!(e.drift_since_publish() > 0.5, "{}", e.drift_since_publish());
    }

    #[test]
    fn exported_state_restores_the_exact_trajectory() {
        let mut e = EmaEstimator::new(5, 0.4);
        let mut out = Vec::new();
        for epoch in 0..13usize {
            for r in 0..(epoch % 4) + 1 {
                e.observe(r);
            }
            e.roll_epoch();
            if epoch == 6 {
                e.drain_changed(&mut out);
            }
        }
        // Mid-epoch counts survive too.
        e.observe(3);
        let mut words = Vec::new();
        e.export_state(&mut words);
        let mut cursor = &words[..];
        let mut back = EmaEstimator::import_state(&mut cursor).expect("valid stream");
        assert!(cursor.is_empty(), "import must consume exactly its words");
        // Same continuation: identical epochs, weights, drift and
        // changed-set behaviour after more traffic on both copies.
        assert_eq!(back.epochs(), e.epochs());
        assert_eq!(
            back.drift_since_publish().to_bits(),
            e.drift_since_publish().to_bits()
        );
        for _ in 0..3 {
            e.observe(1);
            back.observe(1);
            e.roll_epoch();
            back.roll_epoch();
        }
        assert_eq!(back.changed(), e.changed());
        let (ws_a, ws_b) = (e.weights(), back.weights());
        for (a, b) in ws_a.iter().zip(&ws_b) {
            assert_eq!(a.get().to_bits(), b.get().to_bits());
        }
        // Truncations fail closed at every cut.
        for cut in 0..words.len() {
            let mut cursor = &words[..cut];
            assert!(
                EmaEstimator::import_state(&mut cursor).is_none(),
                "cut {cut}"
            );
        }
    }

    proptest! {
        #[test]
        fn estimates_bounded_by_max_epoch_count(
            reqs in prop::collection::vec(0usize..4, 0..200),
            alpha in 0.05f64..1.0,
        ) {
            let mut e = EmaEstimator::new(4, alpha);
            let mut max_per_epoch = 0u64;
            for chunk in reqs.chunks(20) {
                for &r in chunk {
                    e.observe(r);
                }
                max_per_epoch = max_per_epoch.max(chunk.len() as u64);
                e.roll_epoch();
            }
            for i in 0..4 {
                prop_assert!(e.estimate(i) <= max_per_epoch as f64 + 1e-9);
                prop_assert!(e.estimate(i) >= 0.0);
            }
        }
    }
}
