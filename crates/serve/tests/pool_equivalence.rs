//! The pooled executor is pinned bit-identical to the retained
//! scoped-spawn oracle: same tenants, same slices, same churn — exactly
//! equal phase snapshots at every thread count, plus scenario
//! fingerprints invariant across thread counts. The `--ignored` soak
//! drives the pool handshake through ten thousand wake/park cycles.

use bcast_serve::{run_scenario, ServeLoop, TenantConfig};
use bcast_types::{SloSnapshot, SloSpec};
use bcast_workloads::{canonical_scenarios, DemandShape, DemandSpec};
use proptest::prelude::*;

fn demand(rate: u32) -> DemandSpec {
    DemandSpec::flat(DemandShape::Zipf { theta: 0.9 }, rate)
}

fn boot(seed: u64, threads: usize, tenants: usize, rate: u32, slices: u32) -> ServeLoop {
    let mut svc = ServeLoop::new(seed, threads);
    for id in 0..tenants as u64 {
        svc.join(TenantConfig::new(id, 24));
        svc.tenant_mut(id)
            .unwrap()
            .begin_phase(demand(rate), None, SloSpec::lossless(), slices);
    }
    svc
}

fn snapshots(svc: &ServeLoop) -> Vec<(u64, SloSnapshot)> {
    svc.tenants()
        .iter()
        .map(|t| (t.id(), t.phase_snapshot()))
        .collect()
}

/// Drives both executors through the same script: slices, then a
/// mid-run join/leave wave, then more slices — asserting snapshot
/// equality at both checkpoints.
fn compare_executors(seed: u64, threads: usize, tenants: usize, rate: u32) {
    let slices = 8u32;
    let mut pooled = boot(seed, threads, tenants, rate, slices);
    let mut scoped = boot(seed, threads, tenants, rate, slices);
    for _ in 0..4 {
        pooled.run_slice();
        scoped.run_slice_scoped();
    }
    assert_eq!(
        snapshots(&pooled),
        snapshots(&scoped),
        "pre-churn, threads {threads} tenants {tenants}"
    );
    for svc in [&mut pooled, &mut scoped] {
        for _ in 0..2 {
            let id = svc.next_id();
            svc.join(TenantConfig::new(id, 24));
            svc.tenant_mut(id).unwrap().begin_phase(
                demand(rate),
                None,
                SloSpec::lossless(),
                slices,
            );
        }
        svc.leave(0);
    }
    for _ in 0..4 {
        pooled.run_slice();
        scoped.run_slice_scoped();
    }
    assert_eq!(
        snapshots(&pooled),
        snapshots(&scoped),
        "post-churn, threads {threads} tenants {tenants}"
    );
    assert_eq!(pooled.slices_run(), scoped.slices_run());
}

#[test]
fn pooled_matches_scoped_across_the_full_grid() {
    for &threads in &[1usize, 2, 4, 8] {
        for &tenants in &[1usize, 3, 8, 17] {
            compare_executors(0x5EED, threads, tenants, 60);
        }
    }
}

#[test]
fn scenario_fingerprints_are_thread_count_invariant_under_the_pool() {
    for spec in canonical_scenarios(3, 24, 500, 4) {
        let base = run_scenario(&spec, 0xF00D, 1);
        for threads in [2usize, 8] {
            let other = run_scenario(&spec, 0xF00D, threads);
            assert_eq!(base, other, "{} threads {threads}", spec.name);
            assert_eq!(base.fingerprint(), other.fingerprint(), "{}", spec.name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn pooled_matches_scoped_on_random_rosters(
        seed in any::<u64>(),
        threads_pick in 0usize..4,
        tenants_pick in 0usize..4,
        rate in 20u32..120,
    ) {
        let threads = [1usize, 2, 4, 8][threads_pick];
        let tenants = [1usize, 3, 8, 17][tenants_pick];
        compare_executors(seed, threads, tenants, rate);
    }
}

/// Long-haul soak: ten thousand pooled slices (ten thousand pool
/// wake/park handshakes) stay bit-identical to a sequential run of the
/// same roster. Run via `make stress` (`cargo test --release -- --ignored
/// stress`).
#[test]
#[ignore = "long soak; run via make stress"]
fn stress_pooled_soak_10k_slices() {
    const SLICES: u32 = 10_000;
    let mut pooled = boot(0xDEAD_5EED, 4, 8, 60, SLICES);
    let mut sequential = boot(0xDEAD_5EED, 1, 8, 60, SLICES);
    for block in 0..10 {
        for _ in 0..(SLICES / 10) {
            pooled.run_slice();
            sequential.run_slice();
        }
        assert_eq!(
            snapshots(&pooled),
            snapshots(&sequential),
            "divergence by block {block}"
        );
    }
    assert_eq!(pooled.slices_run(), u64::from(SLICES));
    let stats = pooled.pool_stats();
    assert_eq!(stats.workers, 4);
    assert_eq!(stats.scheduled_slices, u64::from(SLICES));
    assert!(stats.busy_ns.iter().all(|&ns| ns > 0));
    for (id, snap) in snapshots(&pooled) {
        assert_eq!(snap.requests, u64::from(SLICES) * 60, "tenant {id}");
        assert_eq!(snap.failed, 0, "tenant {id}");
        assert_eq!(snap.rebuild_downtime_slots, 0, "tenant {id}");
    }
}
