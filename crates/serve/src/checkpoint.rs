//! Crash-safe service checkpoints: an atomic, versioned, CRC-sealed
//! manifest of the whole [`ServeLoop`] — every tenant's program,
//! estimator trajectory, window and quarantine state, the service's
//! boot-image cache and slice counter — written at slice boundaries and
//! restored cold after a crash.
//!
//! Three properties carry the design:
//!
//! * **A torn write is never adopted.** Manifests are written to a
//!   `.tmp` sibling, fsynced, then renamed into place (and the directory
//!   fsynced), so the named manifest is always either the old complete
//!   generation or the new complete generation. Restore ignores `.tmp`
//!   files entirely.
//! * **Fail closed, fall back.** Every manifest seals its words with the
//!   same hardware CRC-32C the snapshot wire format uses
//!   ([`bcast_types::crc`]). Restore walks manifests newest-first and
//!   takes the first one that passes *all* validation — framing, magic,
//!   version, endianness, checksum, and the full state decode. A
//!   truncated, bit-flipped or version-skewed newest manifest means the
//!   previous generation restores instead; only a directory with no
//!   valid manifest at all errors. The writer keeps the last
//!   [`KEEP_GENERATIONS`] generations to make that fallback real.
//! * **Bit-identical resumption.** The manifest carries every input the
//!   slice loop consumes (see [`TenantRuntime`]'s state export), so a
//!   run crashed at any slice boundary and restored produces the same
//!   [`ScenarioOutcome`](crate::ScenarioOutcome) fingerprint as an
//!   uninterrupted run — the property the checkpoint tests sweep every
//!   boundary to pin.
//!
//! [`TenantRuntime`]: crate::tenant::TenantRuntime

use crate::service::ServeLoop;
use bcast_types::crc::crc32c;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Manifest magic: `"BCKP"` as little-endian ASCII words.
const MANIFEST_MAGIC: u32 = 0x504B_4342;

/// Manifest format version this build writes and reads.
const MANIFEST_VERSION: u32 = 1;

/// Endianness sentinel (same convention as the snapshot wire format).
const ENDIAN_MARK: u32 = 0x0102_0304;

/// Header words before the payload: magic, version, endian mark,
/// reserved.
const HEADER_WORDS: usize = 4;

/// Checkpoint generations kept on disk. Two is the minimum that makes
/// "corrupt newest falls back to last good" a real guarantee.
const KEEP_GENERATIONS: usize = 2;

/// Why a checkpoint operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (create, write, fsync, rename, scan).
    Io(std::io::ErrorKind),
    /// No manifest in the directory survived validation — nothing to
    /// restore from. Corrupt newer generations have already been
    /// skipped by the time this is returned.
    NoValidManifest,
    /// A tenant on the delta rebuild lane cannot be checkpointed: the
    /// delta lane patches against its live boot tree, which the
    /// manifest does not carry.
    DeltaLaneUnsupported,
    /// The manifest belongs to a different scenario spec than the one
    /// supplied to the restore (driver restores only).
    SpecMismatch,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(kind) => write!(f, "checkpoint I/O failed: {kind}"),
            CheckpointError::NoValidManifest => {
                write!(f, "no valid checkpoint manifest in the directory")
            }
            CheckpointError::DeltaLaneUnsupported => {
                write!(f, "delta-lane tenants cannot be checkpointed")
            }
            CheckpointError::SpecMismatch => {
                write!(f, "checkpoint was taken under a different scenario spec")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.kind())
    }
}

/// Append-only word-stream encoder shared by every manifest section.
/// `u64`s are split into little-endian `u32` pairs so the whole manifest
/// stays one `u32` stream — the unit the CRC-32C kernel and the snapshot
/// wire format already speak.
/// Shortest equal-value run [`WordWriter::u64_slice`] collapses to a
/// repeat pair. Breaking a literal batch costs one extra control word and
/// a repeat pair costs two, so four is the first length that always wins.
const MIN_REPEAT: usize = 4;

/// Control-word flag marking a repeat run in the `u64` RLE stream.
const REPEAT_BIT: u64 = 1 << 63;

/// Ceiling on a length-prefixed run's claimed element count
/// (`u64_vec`/`u32_vec`): far above any real manifest section, far below
/// an allocation-of-death. RLE means a claimed length cannot be bounded
/// by the words that remain in the buffer.
const MAX_RUN_LEN: usize = 1 << 27;

#[derive(Debug, Default)]
pub(crate) struct WordWriter {
    words: Vec<u32>,
}

impl WordWriter {
    pub(crate) fn new() -> Self {
        WordWriter { words: Vec::new() }
    }

    pub(crate) fn u32(&mut self, x: u32) {
        self.words.push(x);
    }

    pub(crate) fn u64(&mut self, x: u64) {
        self.words.push(x as u32);
        self.words.push((x >> 32) as u32);
    }

    pub(crate) fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    pub(crate) fn opt_u64(&mut self, x: Option<u64>) {
        match x {
            None => self.u32(0),
            Some(v) => {
                self.u32(1);
                self.u64(v);
            }
        }
    }

    pub(crate) fn opt_f64(&mut self, x: Option<f64>) {
        match x {
            None => self.u32(0),
            Some(v) => {
                self.u32(1);
                self.f64(v);
            }
        }
    }

    /// Length-prefixed `u64` run, run-length encoded. Manifests carry
    /// runs of tens of thousands of words (estimator trajectories,
    /// weight snapshots), and several of them are dominated by one
    /// repeated value — boot-uniform weights, the not-yet-published NaN
    /// sentinel — so repeats of [`MIN_REPEAT`] or more collapse to a
    /// `(count, value)` pair. Distinct data passes through as literal
    /// batches costing one control word each, so the worst case is
    /// within one word of the flat encoding.
    pub(crate) fn u64_slice(&mut self, xs: &[u64]) {
        self.words.reserve(2 * xs.len() + 4);
        self.u64(xs.len() as u64);
        let mut lit_start = 0;
        let mut i = 0;
        while i < xs.len() {
            let v = xs[i];
            let mut j = i + 1;
            while j < xs.len() && xs[j] == v {
                j += 1;
            }
            if j - i >= MIN_REPEAT {
                self.u64_literals(&xs[lit_start..i]);
                self.u64(REPEAT_BIT | (j - i) as u64);
                self.u64(v);
                lit_start = j;
            }
            i = j;
        }
        self.u64_literals(&xs[lit_start..]);
    }

    /// One literal batch of the [`u64_slice`](Self::u64_slice) encoding:
    /// a count control word followed by the raw values.
    fn u64_literals(&mut self, xs: &[u64]) {
        if xs.is_empty() {
            return;
        }
        self.u64(xs.len() as u64);
        self.words
            .extend(xs.iter().flat_map(|&x| [x as u32, (x >> 32) as u32]));
    }

    /// Length-prefixed raw `u32` run (snapshot images embed this way).
    pub(crate) fn u32_slice(&mut self, xs: &[u32]) {
        self.u64(xs.len() as u64);
        self.words.extend_from_slice(xs);
    }

    /// Reserves one word whose value is only known after later writes —
    /// block-length prefixes backpatch through [`patch`](Self::patch).
    pub(crate) fn placeholder(&mut self) -> usize {
        let at = self.words.len();
        self.words.push(0);
        at
    }

    pub(crate) fn patch(&mut self, at: usize, value: u32) {
        self.words[at] = value;
    }

    /// Words written so far (block-length backpatching measures spans).
    pub(crate) fn len(&self) -> usize {
        self.words.len()
    }

    /// Consumes the writer, yielding the raw word stream (tests encode
    /// and decode in memory without the file framing).
    #[cfg(test)]
    pub(crate) fn into_words(self) -> Vec<u32> {
        self.words
    }
}

/// Cursor over a manifest payload. Every read fails closed (`None`) on
/// truncation; decoders bubble the `None` so a short or gnawed manifest
/// is rejected as a unit, never half-applied.
#[derive(Debug)]
pub(crate) struct WordReader<'a> {
    words: &'a [u32],
}

impl<'a> WordReader<'a> {
    pub(crate) fn new(words: &'a [u32]) -> Self {
        WordReader { words }
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let (&first, rest) = self.words.split_first()?;
        self.words = rest;
        Some(first)
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let lo = self.u32()?;
        let hi = self.u32()?;
        Some(u64::from(lo) | (u64::from(hi) << 32))
    }

    pub(crate) fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    pub(crate) fn opt_u64(&mut self) -> Option<Option<u64>> {
        match self.u32()? {
            0 => Some(None),
            1 => Some(Some(self.u64()?)),
            _ => None,
        }
    }

    pub(crate) fn opt_f64(&mut self) -> Option<Option<f64>> {
        match self.u32()? {
            0 => Some(None),
            1 => Some(Some(self.f64()?)),
            _ => None,
        }
    }

    /// Inverse of [`WordWriter::u64_slice`]. Fails closed on a zero or
    /// over-long batch count, a length beyond [`MAX_RUN_LEN`] (an RLE
    /// stream's claimed length is not bounded by the buffer it sits in,
    /// so corruption must not become a giant allocation), or truncation.
    pub(crate) fn u64_vec(&mut self) -> Option<Vec<u64>> {
        let len = usize::try_from(self.u64()?).ok()?;
        if len > MAX_RUN_LEN {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let ctrl = self.u64()?;
            let count = usize::try_from(ctrl & !REPEAT_BIT).ok()?;
            if count == 0 || count > len - out.len() {
                return None;
            }
            if ctrl & REPEAT_BIT != 0 {
                let v = self.u64()?;
                out.resize(out.len() + count, v);
            } else {
                let need = count.checked_mul(2)?;
                if need > self.words.len() {
                    return None;
                }
                let (run, rest) = self.words.split_at(need);
                self.words = rest;
                // Flat pair decode: manifests carry multi-million-word
                // runs and the restore path is wall-clock bound, so no
                // per-element cursor.
                out.extend(
                    run.chunks_exact(2)
                        .map(|p| u64::from(p[0]) | (u64::from(p[1]) << 32)),
                );
            }
        }
        Some(out)
    }

    /// Takes the next `n` words as a raw borrowed block. Length-prefixed
    /// tenant blocks split off this way so they can decode independently
    /// (and in parallel) without advancing a shared cursor.
    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u32]> {
        if n > self.words.len() {
            return None;
        }
        let (run, rest) = self.words.split_at(n);
        self.words = rest;
        Some(run)
    }

    /// True once every word has been consumed — block decoders assert
    /// this so a tenant block with trailing garbage fails closed.
    pub(crate) fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    pub(crate) fn u32_vec(&mut self) -> Option<Vec<u32>> {
        let len = usize::try_from(self.u64()?).ok()?;
        if len > self.words.len() {
            return None;
        }
        let (run, rest) = self.words.split_at(len);
        self.words = rest;
        Some(run.to_vec())
    }
}

/// Seals `payload` into a full manifest word buffer: header, payload,
/// trailing CRC-32C over everything before it.
fn seal(payload: &[u32]) -> Vec<u32> {
    let mut words = Vec::with_capacity(HEADER_WORDS + payload.len() + 1);
    words.extend_from_slice(&[MANIFEST_MAGIC, MANIFEST_VERSION, ENDIAN_MARK, 0]);
    words.extend_from_slice(payload);
    words.push(crc32c(&words));
    words
}

/// Validates a manifest word buffer and returns its payload slice.
/// `None` on any framing, header, version or checksum failure.
fn unseal(words: &[u32]) -> Option<&[u32]> {
    if words.len() < HEADER_WORDS + 1 {
        return None;
    }
    if words[0] != MANIFEST_MAGIC || words[1] != MANIFEST_VERSION || words[2] != ENDIAN_MARK {
        return None;
    }
    let (body, crc) = words.split_at(words.len() - 1);
    if crc32c(body) != crc[0] {
        return None;
    }
    Some(&body[HEADER_WORDS..])
}

/// The manifest filename for a checkpoint taken at `slice`. Zero-padded
/// so lexicographic directory order is generation order.
fn manifest_name(slice: u64) -> String {
    format!("manifest-{slice:020}.bcp")
}

/// Writes a sealed manifest atomically: `.tmp` sibling → fsync → rename
/// → directory fsync — a crash at any point leaves either the previous
/// generation or the complete new one, never a torn file. Older
/// generations beyond [`KEEP_GENERATIONS`] are pruned afterwards.
fn write_manifest(dir: &Path, slice: u64, payload: &[u32]) -> Result<PathBuf, CheckpointError> {
    fs::create_dir_all(dir)?;
    let words = seal(payload);
    // The file layout is the little-endian byte image of the word
    // stream; on a little-endian host that is the words' own memory, so
    // multi-megabyte manifests are written without a byte-copy pass.
    #[cfg(target_endian = "little")]
    // SAFETY: every u32 is 4 valid initialized bytes; alignment of u8 is 1.
    let bytes: &[u8] =
        unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 4) };
    #[cfg(not(target_endian = "little"))]
    let bytes_buf: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    #[cfg(not(target_endian = "little"))]
    let bytes: &[u8] = &bytes_buf;
    let name = manifest_name(slice);
    let final_path = dir.join(&name);
    let tmp_path = dir.join(format!("{name}.tmp"));
    {
        let mut file = fs::File::create(&tmp_path)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Make the rename itself durable before reporting success.
    #[cfg(unix)]
    fs::File::open(dir)?.sync_all()?;
    for stale in manifest_paths(dir)?.into_iter().skip(KEEP_GENERATIONS) {
        // Pruning is best-effort: a leftover old generation is harmless.
        let _ = fs::remove_file(stale);
    }
    Ok(final_path)
}

/// Manifest files in `dir`, newest generation first. `.tmp` leftovers of
/// interrupted writes are never listed.
fn manifest_paths(dir: &Path) -> Result<Vec<PathBuf>, CheckpointError> {
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("manifest-") && name.ends_with(".bcp") {
            names.push(name.to_string());
        }
    }
    names.sort_unstable_by(|a, b| b.cmp(a));
    Ok(names.into_iter().map(|n| dir.join(n)).collect())
}

/// Reads one manifest file and validates its seal, returning the full
/// word buffer (slice the payload out with [`payload_of`]). `None` on
/// any I/O or validation failure — the restore loop treats both as "try
/// the next generation".
fn decode_file(path: &Path) -> Option<Vec<u32>> {
    // Mirror of the write path: on a little-endian host the file bytes
    // ARE the word stream, so the file reads straight into the word
    // buffer — no intermediate byte vector, no conversion pass. Restore
    // wall is dominated by how many bytes move; this is the floor.
    #[cfg(target_endian = "little")]
    let words: Vec<u32> = {
        use std::io::Read;
        let mut file = fs::File::open(path).ok()?;
        let len = file.metadata().ok()?.len();
        if !len.is_multiple_of(4) {
            return None;
        }
        let n = usize::try_from(len / 4).ok()?;
        let mut words = vec![0u32; n];
        // SAFETY: the destination is exactly `4 * n` initialized bytes;
        // u8 writes need no alignment.
        let buf: &mut [u8] =
            unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), 4 * n) };
        file.read_exact(buf).ok()?;
        words
    };
    #[cfg(not(target_endian = "little"))]
    let words: Vec<u32> = {
        let bytes = fs::read(path).ok()?;
        if !bytes.len().is_multiple_of(4) {
            return None;
        }
        bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    };
    unseal(&words)?;
    Some(words)
}

/// The payload slice of a buffer [`decode_file`] validated — header and
/// trailing CRC trimmed without re-hashing or copying.
fn payload_of(words: &[u32]) -> &[u32] {
    &words[HEADER_WORDS..words.len() - 1]
}

/// Section tag: the manifest holds a bare service (no driver state).
pub(crate) const SECTION_SERVICE: u32 = 0;

/// Section tag: a scenario driver's state follows the service section.
pub(crate) const SECTION_DRIVER: u32 = 1;

impl ServeLoop {
    /// Writes a checkpoint manifest of the whole service to `dir`
    /// (created if absent). Atomic and versioned — see the module docs.
    /// Call at slice boundaries only; mid-slice state lives on worker
    /// stacks and is not capturable.
    ///
    /// # Errors
    /// [`CheckpointError::DeltaLaneUnsupported`] if any tenant rebuilds
    /// through the delta lane; [`CheckpointError::Io`] on filesystem
    /// failure.
    pub fn checkpoint(&self, dir: impl AsRef<Path>) -> Result<PathBuf, CheckpointError> {
        let mut w = WordWriter::new();
        w.u32(SECTION_SERVICE);
        self.export_state(&mut w)?;
        write_manifest(dir.as_ref(), self.slices_run(), &w.words)
    }

    /// Restores a service from the newest valid checkpoint manifest in
    /// `dir`, resuming at the checkpointed slice with every tenant
    /// serving its checkpointed program. Corrupt or torn newer
    /// generations fall back to the previous good one; `threads` is an
    /// execution parameter, never part of the state (a checkpoint taken
    /// at one thread count restores at any other, bit-identically).
    ///
    /// # Errors
    /// [`CheckpointError::NoValidManifest`] if nothing in `dir`
    /// validates; [`CheckpointError::Io`] if the directory cannot be
    /// scanned.
    pub fn restore(dir: impl AsRef<Path>, threads: usize) -> Result<ServeLoop, CheckpointError> {
        for path in manifest_paths(dir.as_ref())? {
            let Some(words) = decode_file(&path) else {
                continue;
            };
            let mut r = WordReader::new(payload_of(&words));
            let Some(section) = r.u32() else { continue };
            if section != SECTION_SERVICE && section != SECTION_DRIVER {
                continue;
            }
            // A driver manifest is a superset: the service section
            // restores the same way, the driver tail is simply unused.
            if let Some(svc) = ServeLoop::import_state(&mut r, threads) {
                return Ok(svc);
            }
        }
        Err(CheckpointError::NoValidManifest)
    }
}

/// Driver-level checkpoint plumbing used by
/// [`ScenarioDriver`](crate::scenario::ScenarioDriver): same manifest
/// framing, with the driver section appended after the service state.
pub(crate) fn write_driver_manifest(
    dir: &Path,
    slice: u64,
    build: impl FnOnce(&mut WordWriter) -> Result<(), CheckpointError>,
) -> Result<PathBuf, CheckpointError> {
    let mut w = WordWriter::new();
    build(&mut w)?;
    write_manifest(dir, slice, &w.words)
}

/// Walks manifests newest-first handing each decoded payload to `try_restore`
/// until one fully validates; `None` results fall back to older
/// generations.
pub(crate) fn restore_first_valid<T>(
    dir: &Path,
    mut try_restore: impl FnMut(&mut WordReader<'_>) -> Option<T>,
) -> Result<T, CheckpointError> {
    for path in manifest_paths(dir)? {
        let Some(words) = decode_file(&path) else {
            continue;
        };
        let mut r = WordReader::new(payload_of(&words));
        if let Some(v) = try_restore(&mut r) {
            return Ok(v);
        }
    }
    Err(CheckpointError::NoValidManifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_and_unseal_round_trip() {
        let payload = [7u32, 8, 9, 0xDEAD_BEEF];
        let words = seal(&payload);
        assert_eq!(unseal(&words), Some(&payload[..]));
    }

    #[test]
    fn unseal_rejects_every_header_and_crc_tamper() {
        let words = seal(&[1, 2, 3]);
        assert!(unseal(&words[..3]).is_none(), "truncated below header");
        let mut short = words.clone();
        short.pop();
        assert!(unseal(&short).is_none(), "truncated payload breaks the crc");
        for i in 0..3 {
            let mut bad = words.clone();
            bad[i] ^= 1;
            assert!(unseal(&bad).is_none(), "header word {i} tamper");
        }
        let mut flip = words.clone();
        flip[HEADER_WORDS] ^= 0x8000;
        assert!(unseal(&flip).is_none(), "payload bit flip");
        let mut skew = words.clone();
        skew[1] = MANIFEST_VERSION + 1;
        let last = skew.len() - 1;
        skew[last] = crc32c(&skew[..last]);
        assert!(unseal(&skew).is_none(), "version skew with a valid crc");
    }

    #[test]
    fn word_codec_round_trips_and_fails_closed() {
        let mut w = WordWriter::new();
        w.u32(5);
        w.u64(u64::MAX - 3);
        w.f64(-0.25);
        w.opt_u64(None);
        w.opt_u64(Some(9));
        w.opt_f64(Some(1.5));
        w.u64_slice(&[1, 2, 3]);
        w.u32_slice(&[10, 20]);
        let mut r = WordReader::new(&w.words);
        assert_eq!(r.u32(), Some(5));
        assert_eq!(r.u64(), Some(u64::MAX - 3));
        assert_eq!(r.f64(), Some(-0.25));
        assert_eq!(r.opt_u64(), Some(None));
        assert_eq!(r.opt_u64(), Some(Some(9)));
        assert_eq!(r.opt_f64(), Some(Some(1.5)));
        assert_eq!(r.u64_vec(), Some(vec![1, 2, 3]));
        assert_eq!(r.u32_vec(), Some(vec![10, 20]));
        assert_eq!(r.u32(), None, "exhausted");
        // Truncation at every cut of the stream fails closed.
        for cut in 0..w.words.len() {
            let mut r = WordReader::new(&w.words[..cut]);
            let mut ok = true;
            ok &= r.u32().is_some();
            ok &= r.u64().is_some();
            ok &= r.f64().is_some();
            ok &= r.opt_u64().is_some();
            ok &= r.opt_u64().is_some();
            ok &= r.opt_f64().is_some();
            ok &= r.u64_vec().is_some();
            ok &= r.u32_vec().is_some();
            assert!(!ok, "cut at {cut} must fail somewhere");
        }
        // A length prefix larger than the remaining buffer is corruption,
        // not an allocation request.
        let mut w = WordWriter::new();
        w.u64(u64::MAX);
        assert!(WordReader::new(&w.words).u64_vec().is_none());
        assert!(WordReader::new(&w.words).u32_vec().is_none());
    }

    #[test]
    fn manifest_files_sort_newest_first_and_skip_tmp() {
        let dir = std::env::temp_dir().join(format!("bcast-ckpt-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for slice in [3u64, 12, 7] {
            write_manifest(&dir, slice, &[slice as u32]).unwrap();
        }
        fs::write(dir.join("manifest-99999999999999999999.bcp.tmp"), b"torn").unwrap();
        let paths = manifest_paths(&dir).unwrap();
        // KEEP_GENERATIONS prunes the oldest of the three.
        assert_eq!(paths.len(), KEEP_GENERATIONS);
        assert!(paths[0].to_str().unwrap().contains(&manifest_name(12)));
        assert!(paths[1].to_str().unwrap().contains(&manifest_name(7)));
        let words = decode_file(&paths[0]).expect("newest manifest validates");
        assert_eq!(payload_of(&words), &[12u32]);
        let _ = fs::remove_dir_all(&dir);
    }
}
