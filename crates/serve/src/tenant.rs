//! One tenant of the serving loop: an index tree, a double-buffered
//! publisher, a demand estimator and a degradation tracker, advanced one
//! time slice at a time.
//!
//! A tenant is a *self-contained* state machine: every random draw it
//! makes (request sampling, tune-in slots, channel faults) derives from
//! its own seed — itself derived only from the service seed and the
//! tenant's stable id — and the global slice counter. Nothing depends on
//! which worker thread runs the tenant or on who its neighbors are, which
//! is what makes scenario runs bit-identical across thread counts and
//! lets the isolation tests demand *exact* equality between a tenant's
//! solo run and its run amid noisy co-tenants.

use crate::checkpoint::{WordReader, WordWriter};
use bcast_adaptive::{DegradationPolicy, DegradationTracker, EmaEstimator};
use bcast_channel::{
    compiled::{ServeOptions, ServeSession, SERVE_CHUNK},
    faults::{FaultPlan, GilbertElliott, RecoveryPolicy},
    hist::LatencyHistogram,
    snapshot::{SnapshotError, SnapshotView},
};
use bcast_core::publish::{PublishHeuristic, PublishOptions, Publisher};
use bcast_core::{DeltaLane, DeltaOptions};
use bcast_index_tree::{knary, IndexTree};
use bcast_types::{mix64, NodeId, SloSnapshot, SloSpec, SloViolation, Weight};
use bcast_workloads::{DemandShape, DemandSpec, FaultScenario, TaggedAliasTable};
use std::time::Instant;

/// Mixes two 64-bit values into one seed. [`mix64`] is a one-argument
/// finalizer, so two-value mixing composes it: the golden-ratio multiply
/// separates `(a, b)` from `(a, b + 1)` before the final avalanche.
#[inline]
pub(crate) fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Headroom of the per-phase latency accumulator, in cycles: wide enough
/// that even a degraded tenant's p99 (budgeted at 8 cycles) is measured
/// exactly, not clamped. Rebuilds within a phase change the cycle length
/// slightly; [`LatencyHistogram::absorb`] clamps only above this bound.
const PHASE_HIST_CYCLES: u32 = 16;

/// First quarantine term after a caught panic, in slices.
const QUARANTINE_BASE_SLICES: u64 = 2;

/// Ceiling of the doubling quarantine backoff, in slices.
const QUARANTINE_MAX_SLICES: u64 = 64;

/// Manifest tag: the tenant's on-air program is still the boot image for
/// its shape — restore resolves it through the manifest's boot-image
/// cache section instead of an embedded copy.
const IMAGE_BOOT_REF: u32 = 0;

/// Manifest tag: the tenant's on-air program follows inline as a
/// self-validating [`SnapshotImage`](bcast_channel::SnapshotImage).
const IMAGE_EMBEDDED: u32 = 1;

/// Quarantine state of a poisoned tenant: a panic during its slice work
/// was caught, and until the backoff elapses the tenant serves from its
/// last-good double-buffered program with every rebuild path suspended.
/// Re-entry doubles the term up to [`QUARANTINE_MAX_SLICES`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct Quarantine {
    /// First slice index eligible for a readmission probe (a full slice
    /// with rebuilds re-enabled; success clears the quarantine).
    until_slice: u64,
    /// Term (slices) the *next* quarantine entry will serve.
    next_backoff: u64,
}

/// Which republish machinery a tenant's rebuilds run through.
///
/// The delta lane keeps the boot-time index-tree *structure* and only
/// repairs weights, schedule order and routes incrementally
/// ([`bcast_core::delta`]); the full lane re-derives the weight-balanced
/// tree from scratch every rebuild. Both swap the double-buffered program
/// atomically, so downtime is zero either way — the lane trades
/// structural adaptivity for O(changed) rebuild cost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RebuildLane {
    /// Rebuild the tree and republish everything (the PR6 behavior; the
    /// default, so existing scenario fingerprints replay unchanged).
    #[default]
    Full,
    /// Diff the estimator's changed weights against the served program
    /// and patch in place when at most `max_touched` of the schedule
    /// moved, falling back to a full publish past the threshold. The
    /// index-tree *structure* stays fixed at its boot shape — only
    /// weights and the allocation adapt (the documented trade of this
    /// lane; tenants whose catalog shape must track demand keep `Full`).
    Delta {
        /// Fallback threshold as a fraction of schedule positions.
        max_touched: f64,
    },
}

/// Static configuration of one tenant.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Stable tenant id — the *only* tenant-specific input to seed
    /// derivation, so a tenant's behavior is independent of roster
    /// position.
    pub id: u64,
    /// Catalog size (data items).
    pub items: usize,
    /// Index-tree fanout.
    pub fanout: usize,
    /// Broadcast channels.
    pub channels: usize,
    /// Allocation heuristic for publishes.
    pub heuristic: PublishHeuristic,
    /// EMA smoothing factor for the demand estimator.
    pub alpha: f64,
    /// Republish every this many slices (`None` = only on degradation).
    pub rebuild_every: Option<u64>,
    /// Minimum relative estimator drift (see
    /// [`EmaEstimator::drift_since_publish`]) for a periodic republish to
    /// actually run; below it the cadence point is recorded as a skipped
    /// rebuild and the served program stays. `None` (the default, and the
    /// historical behavior) republishes unconditionally. Degradation-fired
    /// rebuilds are never gated. Deterministic: drift is a pure function
    /// of the request stream, so skips replay identically at any thread
    /// count.
    pub rebuild_min_drift: Option<f64>,
    /// Degradation-feedback rebuild policy (`None` = disabled).
    pub degradation: Option<DegradationPolicy>,
    /// Client recovery budget under channel faults.
    pub recovery: RecoveryPolicy,
    /// Republish machinery: full rebuilds or the incremental delta lane.
    pub rebuild_lane: RebuildLane,
}

impl TenantConfig {
    /// A tenant with the defaults the canonical scenarios use: fanout-4
    /// tree over 3 channels, sorting heuristic, EMA α = 0.4, periodic
    /// republish every 8 slices plus the default degradation feedback.
    pub fn new(id: u64, items: usize) -> Self {
        TenantConfig {
            id,
            items,
            fanout: 4,
            channels: 3,
            heuristic: PublishHeuristic::Sorting,
            alpha: 0.4,
            rebuild_every: Some(8),
            rebuild_min_drift: None,
            degradation: Some(DegradationPolicy::default()),
            recovery: RecoveryPolicy::default(),
            rebuild_lane: RebuildLane::Full,
        }
    }
}

/// Metrics accumulated over the current observation window (one scenario
/// phase, typically).
#[derive(Debug, Clone)]
struct Window {
    requests: u64,
    delivered: u64,
    failed: u64,
    retries: u64,
    hist: LatencyHistogram,
    max_cycle_len: u32,
    rebuilds: u64,
    degraded_rebuilds: u64,
    downtime_slots: u64,
    delta_rebuilds: u64,
    full_rebuilds: u64,
    /// Schedule positions touched / positions total, summed over the
    /// window's rebuilds (exact integers → deterministic ppm).
    touched_nodes: u64,
    touched_total: u64,
    /// Programs installed from a snapshot image during the window.
    snapshot_loads: u64,
    /// Periodic republish points gated off by `rebuild_min_drift`.
    skipped_rebuilds: u64,
    /// Wall nanoseconds inside rebuilds — side channel, never compared.
    rebuild_wall_ns: u64,
    /// Demand-sampler alias tables rebuilt — cache-miss side channel.
    alias_rebuilds: u64,
    /// Panics caught and turned into quarantine entries.
    quarantined: u64,
    /// Successful readmission probes out of quarantine.
    readmitted: u64,
    /// Requests refused by the overload-shedding admission controller.
    shed: u64,
}

impl Window {
    fn new(hist_bound: u32) -> Self {
        Window {
            requests: 0,
            delivered: 0,
            failed: 0,
            retries: 0,
            hist: LatencyHistogram::with_bound(hist_bound.max(1)),
            max_cycle_len: 0,
            rebuilds: 0,
            degraded_rebuilds: 0,
            downtime_slots: 0,
            delta_rebuilds: 0,
            full_rebuilds: 0,
            touched_nodes: 0,
            touched_total: 0,
            snapshot_loads: 0,
            skipped_rebuilds: 0,
            rebuild_wall_ns: 0,
            alias_rebuilds: 0,
            quarantined: 0,
            readmitted: 0,
            shed: 0,
        }
    }

    fn snapshot(&self) -> SloSnapshot {
        SloSnapshot {
            requests: self.requests,
            delivered: self.delivered,
            failed: self.failed,
            retries: self.retries,
            p99_slots: if self.hist.is_empty() {
                0
            } else {
                self.hist.percentile(0.99)
            },
            mean_access_slots: if self.hist.is_empty() {
                0.0
            } else {
                self.hist.mean()
            },
            max_cycle_len: self.max_cycle_len,
            rebuilds: self.rebuilds,
            degraded_rebuilds: self.degraded_rebuilds,
            rebuild_downtime_slots: self.downtime_slots,
            delta_rebuilds: self.delta_rebuilds,
            full_rebuilds: self.full_rebuilds,
            touched_ppm: (self.touched_nodes * 1_000_000)
                .checked_div(self.touched_total)
                .unwrap_or(0),
            snapshot_loads: self.snapshot_loads,
            skipped_rebuilds: self.skipped_rebuilds,
            rebuild_wall_ns: self.rebuild_wall_ns,
            alias_rebuilds: self.alias_rebuilds,
            quarantined: self.quarantined,
            readmitted: self.readmitted,
            shed_requests: self.shed,
        }
    }
}

/// A live tenant: tree + publisher + estimator + degradation tracker,
/// advanced by [`run_slice`](TenantRuntime::run_slice).
#[derive(Debug)]
pub struct TenantRuntime {
    config: TenantConfig,
    seed: u64,
    tree: IndexTree,
    data_nodes: Vec<NodeId>,
    publisher: Publisher,
    estimator: EmaEstimator,
    degradation: Option<DegradationTracker>,
    // Current-phase script.
    demand: DemandSpec,
    faults: Option<FaultScenario>,
    slo: SloSpec,
    phase_slices: u32,
    slice_in_phase: u32,
    // Lifetime counters.
    slices_run: u64,
    total_requests: u64,
    total_rebuilds: u64,
    /// Snapshot cold-starts not yet attributed to a phase window — the
    /// boot happens before the first `begin_phase`, which moves this
    /// into the fresh window so the join phase reports it.
    pending_snapshot_loads: u64,
    window: Window,
    /// Cached demand sampler with the item→node map fused in (each draw
    /// yields the target [`NodeId`] from the same cache line as the
    /// alias decision). Rebuilt only when the demand *shape* changes
    /// ([`sampler_shape`](Self::sampler_shape) tracks the shape it was
    /// built for) or a full republish remints the node ids the tags bake
    /// in. Within a phase only the request rate interpolates — the pmf
    /// is constant — so steady-state slices skip the O(items) Vose
    /// construction entirely.
    sampler: TaggedAliasTable,
    sampler_shape: Option<DemandShape>,
    /// Scratch pmf for sampler rebuilds (reused capacity).
    pmf: Vec<f64>,
    /// Reused [`SERVE_CHUNK`]-sized staging buffer: sampled targets are
    /// gathered here and fed straight to the chunked serve kernel, so a
    /// slice never materializes its full request vector.
    chunk: Vec<NodeId>,
    /// Reusable streaming-serve state (histogram shard and fault
    /// overlay buffers persist across slices).
    session: ServeSession,
    /// EWMA of recent slice request counts — the deterministic cost
    /// input to the service's load-balanced lane assignment.
    ewma_cost: u64,
    /// Popularity snapshot the next rebuild consumes, patched in place
    /// from the estimator's changed set — rebuilds no longer clone the
    /// full weight vector.
    weights: Vec<Weight>,
    /// Scratch for [`EmaEstimator::drain_changed`] (item-indexed).
    changes: Vec<(u32, Weight)>,
    /// The same changes mapped onto tree data nodes for the delta lane.
    node_changes: Vec<(NodeId, Weight)>,
    /// Panic-quarantine state (`None` = healthy).
    quarantine: Option<Quarantine>,
    /// Admission cap for the *next* slice, set by the service's overload
    /// shedder and consumed by [`run_slice`](Self::run_slice) (`None` =
    /// everything admitted). Transient per-slice state — never part of a
    /// checkpoint.
    admitted_cap: Option<u32>,
    /// Chaos hook: absolute slice indices at which the slice body panics
    /// (deterministic fault injection for the quarantine tests).
    chaos_panic_slices: Vec<u64>,
}

impl TenantRuntime {
    /// Boots a tenant cold: uniform weights, first program published.
    ///
    /// # Panics
    /// Panics if `config.items == 0` or the catalog cannot be scheduled
    /// on `config.channels` channels (the bundled heuristics always
    /// produce feasible allocations for sane configs).
    pub fn new(config: TenantConfig, service_seed: u64) -> Self {
        assert!(config.items > 0, "tenant needs at least one item");
        let seed = mix2(service_seed, config.id);
        let estimator = EmaEstimator::new(config.items, config.alpha);
        let weights = estimator.weights();
        let tree = knary::build_weight_balanced_unlabeled(&weights, config.fanout)
            .expect("uniform weights build a valid tree");
        let mut publisher = Publisher::new();
        publisher
            .publish(
                &tree,
                config.channels,
                config.heuristic,
                PublishOptions::default(),
            )
            .expect("bundled heuristics produce feasible allocations");
        let data_nodes = tree.data_nodes().to_vec();
        let cycle = publisher.current().cycle_len() as u32;
        TenantRuntime {
            seed,
            tree,
            data_nodes,
            publisher,
            estimator,
            degradation: config.degradation.map(DegradationTracker::new),
            demand: DemandSpec::flat(bcast_workloads::DemandShape::Zipf { theta: 0.9 }, 0),
            faults: None,
            slo: SloSpec::default(),
            phase_slices: 0,
            slice_in_phase: 0,
            slices_run: 0,
            total_requests: 0,
            total_rebuilds: 0,
            pending_snapshot_loads: 0,
            window: Window::new(PHASE_HIST_CYCLES * cycle.max(1)),
            sampler: TaggedAliasTable::new(),
            sampler_shape: None,
            pmf: Vec::new(),
            chunk: Vec::with_capacity(SERVE_CHUNK),
            session: ServeSession::new(),
            ewma_cost: 0,
            weights,
            changes: Vec::new(),
            node_changes: Vec::new(),
            quarantine: None,
            admitted_cap: None,
            chaos_panic_slices: Vec::new(),
            config,
        }
    }

    /// Boots a tenant from a validated snapshot image instead of a boot
    /// publish — the microsecond cold-start. The snapshot's program is
    /// installed directly (three memcpys, no heuristic run) and the
    /// item → node map comes from the image's catalog section, so
    /// nothing O(items · log) runs at all.
    ///
    /// A tenant booted from the image of an identical config's boot
    /// publish *serves bit-identically* to a cold [`new`]: every random
    /// draw derives from the tenant seed and slice counter alone, the
    /// adopted program equals the boot publish by snapshot round-trip
    /// exactness, and the estimator starts uniform either way. The only
    /// observable difference is the window's `snapshot_loads` count.
    ///
    /// The boot index tree is *not* reconstructed (that is the cost
    /// being skipped); a one-node stand-in holds its place until the
    /// first rebuild derives a fresh tree from estimator weights, which
    /// is why only [`RebuildLane::Full`] tenants may boot this way —
    /// the delta lane patches against the boot tree's structure.
    ///
    /// # Errors
    /// [`SnapshotError::Corrupt`] if the image's catalog size or channel
    /// count disagrees with `config` — a snapshot never silently serves
    /// the wrong catalog.
    ///
    /// # Panics
    /// Panics if `config.items == 0` or the lane is not `Full`.
    ///
    /// [`new`]: TenantRuntime::new
    pub fn from_snapshot(
        config: TenantConfig,
        service_seed: u64,
        view: &SnapshotView<'_>,
    ) -> Result<Self, SnapshotError> {
        assert!(config.items > 0, "tenant needs at least one item");
        assert!(
            config.rebuild_lane == RebuildLane::Full,
            "snapshot cold-start requires the full rebuild lane"
        );
        if view.num_data() != config.items {
            return Err(SnapshotError::Corrupt(
                "snapshot catalog size does not match the tenant config",
            ));
        }
        if view.channels() != config.channels {
            return Err(SnapshotError::Corrupt(
                "snapshot channel count does not match the tenant config",
            ));
        }
        let seed = mix2(service_seed, config.id);
        let estimator = EmaEstimator::new(config.items, config.alpha);
        let weights = estimator.weights();
        let data_nodes: Vec<NodeId> = view.data_nodes().collect();
        let mut publisher = Publisher::new();
        publisher.adopt_snapshot(view.to_program(), config.channels);
        // Stand-in tree (see the docs above): one leaf, O(1) to build.
        let tree = knary::build_weight_balanced_unlabeled(&weights[..1], config.fanout)
            .expect("a single uniform weight builds a valid tree");
        let cycle = publisher.current().cycle_len() as u32;
        Ok(TenantRuntime {
            seed,
            tree,
            data_nodes,
            publisher,
            estimator,
            degradation: config.degradation.map(DegradationTracker::new),
            demand: DemandSpec::flat(bcast_workloads::DemandShape::Zipf { theta: 0.9 }, 0),
            faults: None,
            slo: SloSpec::default(),
            phase_slices: 0,
            slice_in_phase: 0,
            slices_run: 0,
            total_requests: 0,
            total_rebuilds: 0,
            pending_snapshot_loads: 1,
            window: Window::new(PHASE_HIST_CYCLES * cycle.max(1)),
            sampler: TaggedAliasTable::new(),
            sampler_shape: None,
            pmf: Vec::new(),
            chunk: Vec::with_capacity(SERVE_CHUNK),
            session: ServeSession::new(),
            ewma_cost: 0,
            weights,
            changes: Vec::new(),
            node_changes: Vec::new(),
            quarantine: None,
            admitted_cap: None,
            chaos_panic_slices: Vec::new(),
            config,
        })
    }

    /// Captures the tenant's *boot* program into a snapshot image — the
    /// persistence half of the cold-start path. Only meaningful before
    /// the first rebuild (the service's boot-image cache calls it right
    /// after [`new`](TenantRuntime::new)); after a rebuild the tree and
    /// program have moved on together and the image would simply record
    /// the newer epoch.
    pub fn snapshot_image(&self) -> bcast_channel::SnapshotImage {
        self.publisher.snapshot_image(&self.tree)
    }

    /// Stable tenant id.
    pub fn id(&self) -> u64 {
        self.config.id
    }

    /// The tenant's configuration.
    pub fn config(&self) -> &TenantConfig {
        &self.config
    }

    /// Cycle length (slots) of the program currently on air.
    pub fn cycle_len(&self) -> u32 {
        self.publisher.current().cycle_len() as u32
    }

    /// Lifetime requests offered to this tenant.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Lifetime programs published (boot publish excluded).
    pub fn total_rebuilds(&self) -> u64 {
        self.total_rebuilds
    }

    /// The SLO the current phase holds this tenant to.
    pub fn slo(&self) -> SloSpec {
        self.slo
    }

    /// Starts a new observation window with a new script: demand shape,
    /// channel condition and SLO for the next `slices` slices. Resets the
    /// window accumulator; estimator, tree and degradation state carry
    /// over (a tenant's demand history does not reset at phase
    /// boundaries).
    pub fn begin_phase(
        &mut self,
        demand: DemandSpec,
        faults: Option<FaultScenario>,
        slo: SloSpec,
        slices: u32,
    ) {
        self.demand = demand;
        self.faults = faults;
        self.slo = slo;
        self.phase_slices = slices;
        self.slice_in_phase = 0;
        self.window = Window::new(PHASE_HIST_CYCLES * self.cycle_len().max(1));
        self.window.snapshot_loads = std::mem::take(&mut self.pending_snapshot_loads);
    }

    /// Clears the degradation tracker's transient hysteresis/cooldown
    /// state (e.g. after an operator re-provisions the tenant's channel),
    /// keeping its lifetime rebuild count.
    pub fn reset_channel_state(&mut self) {
        if let Some(t) = &mut self.degradation {
            t.reset();
        }
    }

    /// Advances the tenant by one time slice: sample the slice's
    /// requests from the scripted demand, serve them against the program
    /// on air, feed the estimator, then run the between-slice control
    /// actions (degradation feedback, periodic republish). Both rebuild
    /// paths go through the double-buffered publisher swap, so requests
    /// are never held while a program compiles — the downtime counter
    /// stays at zero and the SLO check proves it.
    ///
    /// The steady-state slice is allocation-free: the alias sampler is
    /// cached across slices (rebuilt only on a demand-shape change),
    /// sampled targets stream through a reused [`SERVE_CHUNK`]-sized
    /// buffer straight into the chunked serve kernel, and the session's
    /// histogram shard is reset in place. Sampling draws, tune-in slots
    /// and fault links are all keyed by the slice seed and the global
    /// request index, so the streamed slice is bit-identical to the
    /// original build-a-batch-then-serve form.
    ///
    /// The whole slice runs under `catch_unwind`: a panic anywhere in
    /// the tenant's work — serving, estimator feedback, a republish — is
    /// caught *here*, inside the tenant, so it can never poison a worker
    /// lane or perturb a neighbor. The panicking tenant enters
    /// quarantine: it keeps serving from its last-good double-buffered
    /// program with every rebuild path suspended, and after an
    /// exponential backoff ([`QUARANTINE_BASE_SLICES`] slices, doubling
    /// to [`QUARANTINE_MAX_SLICES`]) a probe slice with rebuilds
    /// re-enabled decides readmission. Both transitions are counted in
    /// the window ([`SloSnapshot::quarantined`] /
    /// [`SloSnapshot::readmitted`]) and — panics being deterministic
    /// under the chaos hooks — participate in replay equality.
    pub fn run_slice(&mut self) {
        let parked = self
            .quarantine
            .is_some_and(|q| self.slices_run < q.until_slice);
        let body =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.slice_body(parked)));
        match body {
            Ok(()) => {
                if !parked && self.quarantine.take().is_some() {
                    self.window.readmitted += 1;
                }
            }
            Err(payload) => {
                drop(payload);
                self.window.quarantined += 1;
                let term = self
                    .quarantine
                    .map_or(QUARANTINE_BASE_SLICES, |q| q.next_backoff);
                self.quarantine = Some(Quarantine {
                    until_slice: self.slices_run + term,
                    next_backoff: (term * 2).min(QUARANTINE_MAX_SLICES),
                });
            }
        }
    }

    /// The actual slice work (see [`run_slice`](Self::run_slice), which
    /// wraps it in the panic boundary). `parked` suspends both rebuild
    /// paths — the quarantined tenant serves from the program already on
    /// air and its degradation tracker is frozen.
    fn slice_body(&mut self, parked: bool) {
        let rate = self
            .demand
            .rate_at(self.slice_in_phase, self.phase_slices.max(1));
        let slice_seed = mix2(self.seed, self.slices_run);
        self.slice_in_phase = (self.slice_in_phase + 1).min(self.phase_slices.saturating_sub(1));
        self.slices_run += 1;
        // Cost hint for the service's lane assignment: an EWMA over
        // slice request counts, updated before the slice runs so the
        // scheduler could have used this very value. Pure integer
        // arithmetic on deterministic inputs. Scripted demand — not the
        // admitted share — drives the hint: a shed tenant still costs
        // its sampling draws.
        self.ewma_cost = (3 * self.ewma_cost + u64::from(rate)).div_ceil(4);
        // The service's admission cap is consumed whether or not the
        // slice completes, so a stale cap can never leak into a later
        // slice.
        let admitted = match self.admitted_cap.take() {
            Some(cap) => rate.min(cap),
            None => rate,
        };
        let shed = rate - admitted;
        if self.chaos_panic_slices.contains(&(self.slices_run - 1)) {
            panic!(
                "chaos poison: injected panic at slice {}",
                self.slices_run - 1
            );
        }

        if rate > 0 {
            // The demand *shape* is constant within a phase (only the
            // request rate interpolates slice to slice), so the Vose
            // construction runs once per shape change, not once per
            // slice — plus once after any full republish, which remints
            // the node ids the table's tags bake in. Same pmf → byte-
            // identical table → identical draws.
            if self.sampler_shape != Some(self.demand.shape) {
                self.demand.shape.pmf_into(self.config.items, &mut self.pmf);
                let data_nodes = &self.data_nodes;
                self.sampler.rebuild(&self.pmf, |i| data_nodes[i].0);
                self.sampler_shape = Some(self.demand.shape);
                self.window.alias_rebuilds += 1;
            }
            let mut state = mix2(slice_seed, 1);

            // Serve against the program on air. `current()` is always
            // servable — the publisher swaps buffers atomically between
            // slices — so the downtime branch is unreachable by
            // construction; the counter exists to *prove* that to the SLO
            // check rather than assume it.
            let program = self.publisher.current();
            if program.num_data_nodes() == 0 {
                // Demand still arrives during downtime: the estimator
                // sees what was *requested*, exactly as when serving.
                for _ in 0..rate {
                    let (item, _) = self.sampler.sample(&mut state);
                    self.estimator.observe(item as usize);
                }
                self.window.downtime_slots += 1;
            } else {
                if admitted > 0 {
                    let opts = ServeOptions {
                        threads: 1,
                        seed: mix2(slice_seed, 2),
                        faults: fault_plan(self.faults.as_ref(), mix2(slice_seed, 3)),
                        recovery: self.config.recovery,
                    };
                    program.begin_session(&mut self.session, &opts);
                    let mut remaining = admitted as usize;
                    while remaining > 0 {
                        let n = remaining.min(SERVE_CHUNK);
                        self.chunk.clear();
                        for _ in 0..n {
                            // One fused draw: the item for the estimator
                            // and its serving node from the same cache
                            // line.
                            let (item, node) = self.sampler.sample(&mut state);
                            // The estimator sees what was *requested*
                            // (demand, not delivery — channel loss must
                            // not starve the allocator's view of
                            // popularity).
                            self.estimator.observe(item as usize);
                            self.chunk.push(NodeId(node));
                        }
                        program
                            .serve_chunk(&mut self.session, &self.chunk)
                            .expect("targets are data nodes of the published tree");
                        remaining -= n;
                    }
                }
                // The shed tail continues the same sampler state stream:
                // refused requests are still demand, so the estimator
                // observes them and the window counts them as offered —
                // shedding shows up as a delivery-rate drop on the shed
                // tenant, never as vanished load.
                for _ in 0..shed {
                    let (item, _) = self.sampler.sample(&mut state);
                    self.estimator.observe(item as usize);
                }
                if shed > 0 {
                    self.window.requests += u64::from(shed);
                    self.window.shed += u64::from(shed);
                    self.total_requests += u64::from(shed);
                }
                if admitted > 0 {
                    self.absorb_session();

                    // Degradation feedback reacts to this slice's
                    // delivery; a parked (quarantined) tenant's tracker
                    // is frozen along with its rebuilds.
                    let rate_served = self.session.delivery_rate();
                    let fire = !parked
                        && self
                            .degradation
                            .as_mut()
                            .is_some_and(|t| t.observe(rate_served));
                    if fire {
                        self.rebuild();
                        self.window.degraded_rebuilds += 1;
                    }
                }
            }
        }

        self.estimator.roll_epoch();
        if parked {
            // Quarantine suspends the periodic republish path too: the
            // last-good program stays on air until readmission.
            return;
        }
        if let Some(every) = self.config.rebuild_every {
            if every > 0 && self.slices_run.is_multiple_of(every) {
                // Drift gate: a converged stream makes the cadence
                // republish a no-op — skip it and keep serving the
                // program already on air. Degradation-fired rebuilds
                // (above) bypass this on purpose.
                let quiet = self
                    .config
                    .rebuild_min_drift
                    .is_some_and(|floor| self.estimator.drift_since_publish() < floor);
                if quiet {
                    self.window.skipped_rebuilds += 1;
                } else {
                    self.rebuild();
                }
            }
        }
    }

    /// Deterministic per-slice cost estimate for the service's
    /// load-balanced lane assignment (larger = more expensive). Derived
    /// only from the tenant's own scripted request rates, so schedules
    /// built from it are identical on every run and thread count. Never
    /// zero: even an idle tenant costs a slice call.
    #[inline]
    pub fn cost_hint(&self) -> u64 {
        self.ewma_cost.max(1)
    }

    /// The scripted request rate of the tenant's *next* slice — the
    /// deterministic input the service's overload shedder water-fills
    /// over before dispatching the slice.
    pub fn next_rate(&self) -> u32 {
        self.demand
            .rate_at(self.slice_in_phase, self.phase_slices.max(1))
    }

    /// Caps the next slice's admitted requests (the overload shedder's
    /// verdict; `None` admits everything). Consumed by the next
    /// [`run_slice`](Self::run_slice) — the cap never outlives one slice.
    pub fn set_admitted_cap(&mut self, cap: Option<u32>) {
        self.admitted_cap = cap;
    }

    /// Whether the tenant is currently quarantined (serving from its
    /// last-good program with rebuilds suspended).
    pub fn is_quarantined(&self) -> bool {
        self.quarantine.is_some()
    }

    /// Chaos hook: make the slice body panic at absolute slice index
    /// `slice` (the tenant's `slices_run` value when the slice starts).
    /// Deterministic by construction — the quarantine tests script exact
    /// poison points with it. Always compiled: the hook is a `Vec`
    /// lookup on the slice path, free when unused.
    pub fn inject_panic_at_slice(&mut self, slice: u64) {
        self.chaos_panic_slices.push(slice);
    }

    /// Chaos hook: panic `slices_from_now` slices into the future (0 =
    /// the very next slice). The scenario interpreter arms phase-scripted
    /// poison points through this.
    pub fn inject_panic_after(&mut self, slices_from_now: u64) {
        let at = self.slices_run + slices_from_now;
        self.chaos_panic_slices.push(at);
    }

    /// The window accumulated so far, as plain data.
    pub fn phase_snapshot(&self) -> SloSnapshot {
        self.window.snapshot()
    }

    /// Checks the accumulated window against the phase's SLO.
    pub fn phase_violations(&self) -> Vec<SloViolation> {
        self.window.snapshot().check(&self.slo)
    }

    /// Folds the finished slice's session aggregates into the window —
    /// the streaming counterpart of the old `BatchMetrics` absorb, with
    /// no intermediate metrics struct (the histogram absorbs directly
    /// from the session's shard).
    fn absorb_session(&mut self) {
        self.window.requests += self.session.requests();
        self.window.delivered += self.session.delivered();
        self.window.failed += self.session.failed();
        self.window.retries += self.session.retries();
        self.window.hist.absorb(self.session.histogram());
        self.window.max_cycle_len = self.window.max_cycle_len.max(self.cycle_len());
        self.total_requests += self.session.requests();
    }

    /// Republishes from the estimator's current weights through the
    /// double-buffered swap: the old program serves until the new one is
    /// compiled, then `current()` flips. The configured [`RebuildLane`]
    /// picks the machinery — a full tree rebuild + publish, or the
    /// incremental delta lane patching the served schedule in place —
    /// and the window's lane counters and wall-clock side channel record
    /// which path ran and how much of the schedule it touched.
    fn rebuild(&mut self) {
        let started = Instant::now();
        // O(changed) estimator handoff, shared by both lanes: the
        // persistent snapshot absorbs only the weights that moved.
        self.changes.clear();
        self.estimator.drain_changed(&mut self.changes);
        for &(i, w) in &self.changes {
            self.weights[i as usize] = w;
        }
        match self.config.rebuild_lane {
            RebuildLane::Full => {
                let tree =
                    knary::build_weight_balanced_unlabeled(&self.weights, self.config.fanout)
                        .expect("estimator weights are positive");
                self.publisher
                    .publish(
                        &tree,
                        self.config.channels,
                        self.config.heuristic,
                        PublishOptions::default(),
                    )
                    .expect("bundled heuristics produce feasible allocations");
                self.data_nodes.clear();
                self.data_nodes.extend_from_slice(tree.data_nodes());
                self.tree = tree;
                // The sampler's tags bake in the item→node map this
                // rebuild just reminted — invalidate so the next serving
                // slice re-tags (the delta lane keeps node ids stable
                // and skips this).
                self.sampler_shape = None;
                self.window.full_rebuilds += 1;
                let total = self.tree.len() as u64;
                self.window.touched_nodes += total;
                self.window.touched_total += total;
            }
            RebuildLane::Delta { max_touched } => {
                // Structure stays at its boot shape: only weights move,
                // so `data_nodes` keeps mapping item i → leaf i.
                self.node_changes.clear();
                self.node_changes.extend(
                    self.changes
                        .iter()
                        .map(|&(i, w)| (self.data_nodes[i as usize], w)),
                );
                self.tree.reweight(&self.node_changes);
                let report = self
                    .publisher
                    .republish_delta(
                        &self.tree,
                        &self.node_changes,
                        self.config.channels,
                        self.config.heuristic,
                        PublishOptions::default(),
                        DeltaOptions { max_touched },
                    )
                    .expect("bundled heuristics produce feasible allocations");
                match report.lane {
                    DeltaLane::Patched => self.window.delta_rebuilds += 1,
                    DeltaLane::Full(_) => self.window.full_rebuilds += 1,
                }
                self.window.touched_nodes += report.touched as u64;
                self.window.touched_total += report.total as u64;
            }
        }
        self.window.rebuilds += 1;
        self.window.max_cycle_len = self.window.max_cycle_len.max(self.cycle_len());
        self.total_rebuilds += 1;
        self.window.rebuild_wall_ns += started.elapsed().as_nanos() as u64;
    }

    /// Serializes the tenant's complete mutable state into the
    /// checkpoint word stream: config, phase script, lifetime counters,
    /// the full window (histogram included), estimator and degradation
    /// trajectories, quarantine state, armed chaos points, the weight
    /// snapshot and the program on air (as a CRC-sealed
    /// [`SnapshotImage`](bcast_channel::SnapshotImage)). The admission
    /// cap is deliberately absent — it is per-slice transient state the
    /// service re-derives after a restore — and so are the sampler and
    /// session scratch, which the first restored slice rebuilds
    /// deterministically (only the equality-excluded `alias_rebuilds`
    /// side channel can tell).
    ///
    /// `boot` is the service's cached boot image for this tenant's shape
    /// (if any): when the program on air is still bit-identical to it —
    /// every tenant that has not rebuilt since boot — the manifest
    /// stores a one-word reference instead of re-embedding the
    /// multi-megabyte image. At snapshot scale that reference is the
    /// difference between a manifest dominated by `n_tenants` identical
    /// program images and one that carries the image once, in the cache
    /// section.
    pub(crate) fn export_state(
        &self,
        w: &mut WordWriter,
        boot: Option<&bcast_channel::SnapshotImage>,
    ) {
        let c = &self.config;
        w.u64(c.id);
        w.u64(c.items as u64);
        w.u64(c.fanout as u64);
        w.u64(c.channels as u64);
        match c.heuristic {
            PublishHeuristic::Sorting => w.u32(0),
            PublishHeuristic::Frontier => w.u32(1),
            PublishHeuristic::Shrink { max_nodes } => {
                w.u32(2);
                w.u64(max_nodes as u64);
            }
            PublishHeuristic::Preorder => w.u32(3),
        }
        w.f64(c.alpha);
        w.opt_u64(c.rebuild_every);
        w.opt_f64(c.rebuild_min_drift);
        match &c.degradation {
            None => w.u32(0),
            Some(p) => {
                w.u32(1);
                w.f64(p.min_delivery_rate);
                w.f64(p.recovered_rate);
                w.u32(p.sustain_epochs);
                w.u64(p.cooldown_epochs);
                w.u64(p.max_cooldown_epochs);
            }
        }
        w.u32(c.recovery.max_retries);
        w.u64(c.recovery.timeout_slots);
        w.u32(c.recovery.backoff_cap);
        w.u32(c.recovery.root_replicas);
        match c.rebuild_lane {
            RebuildLane::Full => w.u32(0),
            RebuildLane::Delta { max_touched } => {
                w.u32(1);
                w.f64(max_touched);
            }
        }

        // Phase script. The fault scenario's `&'static str` name cannot
        // round-trip; it never reaches serving, so restore substitutes a
        // literal (outcome-neutral by construction).
        match self.demand.shape {
            DemandShape::Zipf { theta } => {
                w.u32(0);
                w.f64(theta);
            }
            DemandShape::HotSet {
                hot_items,
                hot_mass,
                offset,
            } => {
                w.u32(1);
                w.u64(hot_items as u64);
                w.f64(hot_mass);
                w.u64(offset as u64);
            }
        }
        w.u32(self.demand.start_rate);
        w.u32(self.demand.end_rate);
        match &self.faults {
            None => w.u32(0),
            Some(f) => {
                w.u32(1);
                w.f64(f.erasure_p);
                match &f.burst {
                    None => w.u32(0),
                    Some(b) => {
                        w.u32(1);
                        w.f64(b.p_good_to_bad);
                        w.f64(b.p_bad_to_good);
                        w.f64(b.loss_good);
                        w.f64(b.loss_bad);
                    }
                }
            }
        }
        w.f64(self.slo.min_delivery_rate);
        w.f64(self.slo.max_p99_cycles);
        w.u64(self.slo.max_rebuild_downtime_slots);
        w.u32(self.phase_slices);
        w.u32(self.slice_in_phase);

        // Lifetime counters and the scheduler's cost EWMA.
        w.u64(self.slices_run);
        w.u64(self.total_requests);
        w.u64(self.total_rebuilds);
        w.u64(self.pending_snapshot_loads);
        w.u64(self.ewma_cost);

        // Quarantine and armed chaos points (a pending poison must
        // survive a checkpoint, or the restored run would diverge from
        // the uninterrupted one).
        match &self.quarantine {
            None => w.u32(0),
            Some(q) => {
                w.u32(1);
                w.u64(q.until_slice);
                w.u64(q.next_backoff);
            }
        }
        w.u64_slice(&self.chaos_panic_slices);

        // The window, histogram included.
        let win = &self.window;
        w.u64(win.requests);
        w.u64(win.delivered);
        w.u64(win.failed);
        w.u64(win.retries);
        let mut scratch = Vec::new();
        win.hist.export_state(&mut scratch);
        w.u64_slice(&scratch);
        w.u32(win.max_cycle_len);
        for x in [
            win.rebuilds,
            win.degraded_rebuilds,
            win.downtime_slots,
            win.delta_rebuilds,
            win.full_rebuilds,
            win.touched_nodes,
            win.touched_total,
            win.snapshot_loads,
            win.skipped_rebuilds,
            win.rebuild_wall_ns,
            win.alias_rebuilds,
            win.quarantined,
            win.readmitted,
            win.shed,
        ] {
            w.u64(x);
        }

        // Adaptive state: estimator trajectory, tracker hysteresis.
        scratch.clear();
        self.estimator.export_state(&mut scratch);
        w.u64_slice(&scratch);
        match &self.degradation {
            None => w.u32(0),
            Some(t) => {
                w.u32(1);
                scratch.clear();
                t.export_state(&mut scratch);
                w.u64_slice(&scratch);
            }
        }

        // The weight snapshot rebuilds consume, bit for bit.
        scratch.clear();
        scratch.extend(self.weights.iter().map(|wt| wt.get().to_bits()));
        w.u64_slice(&scratch);

        // The demand sampler, when one is live: the fused alias columns
        // themselves, not the pmf they were built from. Both derive
        // deterministically from the demand shape, but the columns are
        // the finished product — a restored tenant copies them straight
        // back and samples immediately, skipping both the pmf
        // derivation (a `powf` per item for Zipf) and the Vose
        // construction on its first slice.
        match self.sampler_shape {
            Some(shape) if self.sampler.len() == c.items => {
                w.u32(1);
                match shape {
                    DemandShape::Zipf { theta } => {
                        w.u32(0);
                        w.f64(theta);
                    }
                    DemandShape::HotSet {
                        hot_items,
                        hot_mass,
                        offset,
                    } => {
                        w.u32(1);
                        w.u64(hot_items as u64);
                        w.f64(hot_mass);
                        w.u64(offset as u64);
                    }
                }
                let mut cols = Vec::new();
                self.sampler.export_columns(&mut cols);
                w.u32_slice(&cols);
            }
            _ => w.u32(0),
        }

        // The program on air: a reference into the boot-image cache when
        // it is still the boot program, a self-validating embedded
        // snapshot image otherwise.
        let image = bcast_channel::SnapshotImage::capture(
            self.publisher.current(),
            c.channels,
            &self.data_nodes,
        );
        match boot {
            Some(b) if b.words() == image.words() => w.u32(IMAGE_BOOT_REF),
            _ => {
                w.u32(IMAGE_EMBEDDED);
                w.u32_slice(image.words());
            }
        }
    }

    /// Rebuilds a tenant from [`export_state`](Self::export_state)'s
    /// words. Fails closed (`None`) on any truncation, range violation
    /// or image corruption — a checkpoint never restores approximately.
    ///
    /// Mirrors [`from_snapshot`](Self::from_snapshot): the boot index
    /// tree is a one-leaf stand-in until the next full rebuild derives
    /// the real one from the restored weights, so only
    /// [`RebuildLane::Full`] tenants restore this way.
    /// `cache` is the already-restored boot-image section of the same
    /// manifest, each image pre-decoded to its program once by the
    /// service: a by-reference program record clones the shared decode
    /// (and fails closed if the shape's image is absent).
    pub(crate) fn import_state(
        service_seed: u64,
        r: &mut WordReader<'_>,
        cache: &[(crate::service::BootKey, crate::service::CachedProgram)],
    ) -> Option<TenantRuntime> {
        let id = r.u64()?;
        let items = usize::try_from(r.u64()?).ok()?;
        let fanout = usize::try_from(r.u64()?).ok()?;
        let channels = usize::try_from(r.u64()?).ok()?;
        if items == 0 || fanout < 2 || channels == 0 {
            return None;
        }
        let heuristic = match r.u32()? {
            0 => PublishHeuristic::Sorting,
            1 => PublishHeuristic::Frontier,
            2 => PublishHeuristic::Shrink {
                max_nodes: usize::try_from(r.u64()?).ok()?,
            },
            3 => PublishHeuristic::Preorder,
            _ => return None,
        };
        let alpha = r.f64()?;
        let rebuild_every = r.opt_u64()?;
        let rebuild_min_drift = r.opt_f64()?;
        let degradation = match r.u32()? {
            0 => None,
            1 => Some(DegradationPolicy {
                min_delivery_rate: r.f64()?,
                recovered_rate: r.f64()?,
                sustain_epochs: r.u32()?,
                cooldown_epochs: r.u64()?,
                max_cooldown_epochs: r.u64()?,
            }),
            _ => return None,
        };
        let recovery = RecoveryPolicy {
            max_retries: r.u32()?,
            timeout_slots: r.u64()?,
            backoff_cap: r.u32()?,
            root_replicas: r.u32()?,
        };
        let rebuild_lane = match r.u32()? {
            0 => RebuildLane::Full,
            1 => RebuildLane::Delta {
                max_touched: r.f64()?,
            },
            _ => return None,
        };
        if rebuild_lane != RebuildLane::Full {
            // The delta lane patches against the live boot tree, which a
            // checkpoint does not carry (documented restore limit).
            return None;
        }
        let config = TenantConfig {
            id,
            items,
            fanout,
            channels,
            heuristic,
            alpha,
            rebuild_every,
            rebuild_min_drift,
            degradation,
            recovery,
            rebuild_lane,
        };

        let shape = match r.u32()? {
            0 => DemandShape::Zipf { theta: r.f64()? },
            1 => DemandShape::HotSet {
                hot_items: usize::try_from(r.u64()?).ok()?,
                hot_mass: r.f64()?,
                offset: usize::try_from(r.u64()?).ok()?,
            },
            _ => return None,
        };
        let demand = DemandSpec {
            shape,
            start_rate: r.u32()?,
            end_rate: r.u32()?,
        };
        let faults = match r.u32()? {
            0 => None,
            1 => {
                let erasure_p = r.f64()?;
                let burst = match r.u32()? {
                    0 => None,
                    1 => Some(bcast_workloads::BurstProfile {
                        p_good_to_bad: r.f64()?,
                        p_bad_to_good: r.f64()?,
                        loss_good: r.f64()?,
                        loss_bad: r.f64()?,
                    }),
                    _ => return None,
                };
                Some(FaultScenario {
                    name: "restored",
                    erasure_p,
                    burst,
                })
            }
            _ => return None,
        };
        let slo = SloSpec {
            min_delivery_rate: r.f64()?,
            max_p99_cycles: r.f64()?,
            max_rebuild_downtime_slots: r.u64()?,
        };
        let phase_slices = r.u32()?;
        let slice_in_phase = r.u32()?;

        let slices_run = r.u64()?;
        let total_requests = r.u64()?;
        let total_rebuilds = r.u64()?;
        let pending_snapshot_loads = r.u64()?;
        let ewma_cost = r.u64()?;

        let quarantine = match r.u32()? {
            0 => None,
            1 => Some(Quarantine {
                until_slice: r.u64()?,
                next_backoff: r.u64()?,
            }),
            _ => return None,
        };
        let chaos_panic_slices = r.u64_vec()?;

        let requests = r.u64()?;
        let delivered = r.u64()?;
        let failed = r.u64()?;
        let retries = r.u64()?;
        let hist_words = r.u64_vec()?;
        let mut cur = &hist_words[..];
        let hist = LatencyHistogram::import_state(&mut cur)?;
        if !cur.is_empty() {
            return None;
        }
        let max_cycle_len = r.u32()?;
        let mut tail = [0u64; 14];
        for slot in &mut tail {
            *slot = r.u64()?;
        }
        let window = Window {
            requests,
            delivered,
            failed,
            retries,
            hist,
            max_cycle_len,
            rebuilds: tail[0],
            degraded_rebuilds: tail[1],
            downtime_slots: tail[2],
            delta_rebuilds: tail[3],
            full_rebuilds: tail[4],
            touched_nodes: tail[5],
            touched_total: tail[6],
            snapshot_loads: tail[7],
            skipped_rebuilds: tail[8],
            rebuild_wall_ns: tail[9],
            alias_rebuilds: tail[10],
            quarantined: tail[11],
            readmitted: tail[12],
            shed: tail[13],
        };

        let est_words = r.u64_vec()?;
        let mut cur = &est_words[..];
        let estimator = EmaEstimator::import_state(&mut cur)?;
        if !cur.is_empty() || estimator.len() != items {
            return None;
        }
        let degradation = match (r.u32()?, config.degradation) {
            (0, None) => None,
            (1, Some(policy)) => {
                let words = r.u64_vec()?;
                let mut cur = &words[..];
                let tracker = DegradationTracker::import_state(policy, &mut cur)?;
                if !cur.is_empty() {
                    return None;
                }
                Some(tracker)
            }
            _ => return None,
        };

        let weight_bits = r.u64_vec()?;
        if weight_bits.len() != items {
            return None;
        }
        let weights = weight_bits
            .iter()
            .map(|&b| Weight::new(f64::from_bits(b)).ok())
            .collect::<Option<Vec<_>>>()?;

        // The live sampler, if the checkpoint carried one: the fused
        // alias columns restore by straight copy (structurally validated
        // — word count, alias ranges, item count — so a malformed
        // manifest fails closed).
        let sampler_state = match r.u32()? {
            0 => None,
            1 => {
                let shape = match r.u32()? {
                    0 => DemandShape::Zipf { theta: r.f64()? },
                    1 => DemandShape::HotSet {
                        hot_items: usize::try_from(r.u64()?).ok()?,
                        hot_mass: r.f64()?,
                        offset: usize::try_from(r.u64()?).ok()?,
                    },
                    _ => return None,
                };
                let table = TaggedAliasTable::import_columns(&r.u32_vec()?)?;
                if table.len() != items {
                    return None;
                }
                Some((shape, table))
            }
            _ => return None,
        };

        // The program on air: a boot-cache reference clones the decode
        // the service already shares across every tenant of this shape;
        // an embedded image decodes here. Either way the program must
        // match the config it claims to serve.
        let (publisher, data_nodes) = match r.u32()? {
            IMAGE_BOOT_REF => {
                let key = crate::service::boot_key(&config);
                let cached = &cache.iter().find(|(k, _)| *k == key)?.1;
                if cached.data_nodes.len() != items || cached.channels != channels {
                    return None;
                }
                let mut publisher = Publisher::new();
                publisher.adopt_snapshot(cached.program.clone(), channels);
                (publisher, cached.data_nodes.clone())
            }
            IMAGE_EMBEDDED => {
                let image = bcast_channel::SnapshotImage::from_words(r.u32_vec()?);
                let view = image.view().ok()?;
                if view.num_data() != items || view.channels() != channels {
                    return None;
                }
                let data_nodes: Vec<NodeId> = view.data_nodes().collect();
                let mut publisher = Publisher::new();
                publisher.adopt_snapshot(view.to_program(), channels);
                (publisher, data_nodes)
            }
            _ => return None,
        };
        // Stand-in tree, exactly like `from_snapshot`: one leaf, O(1),
        // replaced by the next full rebuild from the restored weights.
        let tree = knary::build_weight_balanced_unlabeled(&weights[..1], fanout).ok()?;
        let mut sampler = TaggedAliasTable::new();
        let mut sampler_shape = None;
        if let Some((shape, table)) = sampler_state {
            sampler = table;
            sampler_shape = Some(shape);
        }

        Some(TenantRuntime {
            seed: mix2(service_seed, id),
            tree,
            data_nodes,
            publisher,
            estimator,
            degradation,
            demand,
            faults,
            slo,
            phase_slices,
            slice_in_phase,
            slices_run,
            total_requests,
            total_rebuilds,
            pending_snapshot_loads,
            window,
            sampler,
            sampler_shape,
            pmf: Vec::new(),
            chunk: Vec::with_capacity(SERVE_CHUNK),
            session: ServeSession::new(),
            ewma_cost,
            weights,
            changes: Vec::new(),
            node_changes: Vec::new(),
            quarantine,
            admitted_cap: None,
            chaos_panic_slices,
            config,
        })
    }
}

/// Interprets a workload-crate [`FaultScenario`] (plain numbers) as a
/// channel-crate [`FaultPlan`] seeded for one slice.
fn fault_plan(scenario: Option<&FaultScenario>, seed: u64) -> FaultPlan {
    match scenario {
        None => FaultPlan::none(),
        Some(s) => match s.burst {
            Some(b) => FaultPlan::gilbert_elliott(
                GilbertElliott {
                    p_good_to_bad: b.p_good_to_bad,
                    p_bad_to_good: b.p_bad_to_good,
                    loss_good: b.loss_good,
                    loss_bad: b.loss_bad,
                },
                seed,
            )
            .expect("scenario presets are valid probabilities"),
            None if s.erasure_p > 0.0 => {
                FaultPlan::erasure(s.erasure_p, seed).expect("scenario presets are valid")
            }
            None => FaultPlan::none(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcast_workloads::DemandShape;

    fn demand(rate: u32) -> DemandSpec {
        DemandSpec::flat(DemandShape::Zipf { theta: 0.9 }, rate)
    }

    #[test]
    fn lossless_slices_deliver_everything_with_zero_downtime() {
        let mut t = TenantRuntime::new(TenantConfig::new(7, 32), 0xDA7);
        t.begin_phase(demand(200), None, SloSpec::lossless(), 10);
        for _ in 0..10 {
            t.run_slice();
        }
        let snap = t.phase_snapshot();
        assert_eq!(snap.requests, 2000);
        assert_eq!(snap.delivered, 2000);
        assert_eq!(snap.rebuild_downtime_slots, 0);
        assert!(snap.rebuilds >= 1, "periodic republish every 8 slices");
        assert!(
            t.phase_violations().is_empty(),
            "{:?}",
            t.phase_violations()
        );
    }

    #[test]
    fn quarantine_backs_off_exponentially_and_readmits() {
        crate::silence_chaos_panic_reports();
        let mut t = TenantRuntime::new(TenantConfig::new(7, 32), 0xBAD);
        t.begin_phase(demand(100), None, SloSpec::lossless(), 16);
        // Poison slice 2, and slice 5 — exactly the probe slice after the
        // first 2-slice quarantine term — so the term doubles to 4.
        t.inject_panic_at_slice(2);
        t.inject_panic_at_slice(5);
        let mut quarantined_timeline = Vec::new();
        for _ in 0..12 {
            t.run_slice();
            quarantined_timeline.push(t.is_quarantined());
        }
        assert_eq!(
            quarantined_timeline,
            [
                false, false, // healthy
                true, true, true, // first panic: 2-slice term + probe
                true, true, true, true, true, // probe panics: 4-slice term
                false, false, // second probe succeeds
            ]
        );
        let snap = t.phase_snapshot();
        assert_eq!(snap.quarantined, 2);
        assert_eq!(snap.readmitted, 1);
        // A panicked slice is a clean no-op: the 10 surviving slices
        // serve their full rate losslessly, so even the strict SLO holds.
        assert_eq!(snap.requests, 1000);
        assert_eq!(snap.delivered, 1000);
        assert!(
            t.phase_violations().is_empty(),
            "{:?}",
            t.phase_violations()
        );
    }

    #[test]
    fn same_seed_and_id_replay_bit_identically() {
        let run = |service_seed: u64| {
            let mut t = TenantRuntime::new(TenantConfig::new(3, 48), service_seed);
            t.begin_phase(demand(150), None, SloSpec::lossless(), 8);
            for _ in 0..8 {
                t.run_slice();
            }
            t.phase_snapshot()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn lossy_channel_still_bounded_by_degraded_slo() {
        let mut t = TenantRuntime::new(TenantConfig::new(0, 32), 0xBAD);
        t.begin_phase(
            demand(200),
            Some(bcast_workloads::brownout_channel()),
            SloSpec::degraded(0.90, 8.0),
            12,
        );
        for _ in 0..12 {
            t.run_slice();
        }
        let snap = t.phase_snapshot();
        assert!(snap.failed < snap.requests / 10, "{snap:?}");
        assert_eq!(snap.rebuild_downtime_slots, 0);
        assert!(t.phase_violations().is_empty(), "{:?}", t.phase_snapshot());
    }

    #[test]
    fn delta_lane_serves_with_zero_downtime_and_counts_lanes() {
        let mut config = TenantConfig::new(5, 64);
        config.rebuild_lane = RebuildLane::Delta { max_touched: 0.25 };
        let mut t = TenantRuntime::new(config, 0xDE17A);
        t.begin_phase(demand(300), None, SloSpec::lossless(), 24);
        for _ in 0..24 {
            t.run_slice();
        }
        let snap = t.phase_snapshot();
        assert_eq!(snap.requests, snap.delivered, "lossless channel");
        assert_eq!(snap.rebuild_downtime_slots, 0, "swap stays double-buffered");
        assert!(snap.rebuilds >= 2, "periodic republish every 8 slices");
        assert_eq!(
            snap.delta_rebuilds + snap.full_rebuilds,
            snap.rebuilds,
            "every rebuild is attributed to exactly one lane"
        );
        assert!(t.phase_violations().is_empty(), "{snap:?}");
    }

    #[test]
    fn delta_lane_replays_bit_identically() {
        let run = |_attempt: u64| {
            let mut config = TenantConfig::new(9, 48);
            config.rebuild_lane = RebuildLane::Delta { max_touched: 0.1 };
            let mut t = TenantRuntime::new(config, 0xFACE);
            t.begin_phase(demand(200), None, SloSpec::lossless(), 16);
            for _ in 0..16 {
                t.run_slice();
            }
            t.phase_snapshot()
        };
        // Wall ns differs between the runs; equality must hold anyway.
        assert_eq!(run(0), run(1));
    }

    #[test]
    fn snapshot_cold_start_serves_bit_identically() {
        let config = TenantConfig::new(4, 40);
        let mut cold = TenantRuntime::new(config.clone(), 0xB007);
        let image = cold.snapshot_image();
        let view = image.view().unwrap();
        let mut warm = TenantRuntime::from_snapshot(config, 0xB007, &view).unwrap();
        // 12 slices cross the periodic rebuild at slice 8, so the warm
        // tenant's first full rebuild (replacing the stand-in tree) is
        // inside the window being compared.
        for t in [&mut cold, &mut warm] {
            t.begin_phase(demand(150), None, SloSpec::lossless(), 12);
            for _ in 0..12 {
                t.run_slice();
            }
        }
        assert_eq!(cold.phase_snapshot(), warm.phase_snapshot());
        assert!(warm.phase_violations().is_empty());
        assert_eq!(cold.phase_snapshot().snapshot_loads, 0);
        assert_eq!(warm.phase_snapshot().snapshot_loads, 1);
    }

    #[test]
    fn snapshot_with_mismatched_config_is_rejected() {
        let cold = TenantRuntime::new(TenantConfig::new(1, 32), 7);
        let image = cold.snapshot_image();
        let view = image.view().unwrap();
        let wrong_items = TenantConfig::new(2, 33);
        assert!(TenantRuntime::from_snapshot(wrong_items, 7, &view).is_err());
        let mut wrong_channels = TenantConfig::new(2, 32);
        wrong_channels.channels = 2;
        assert!(TenantRuntime::from_snapshot(wrong_channels, 7, &view).is_err());
    }

    #[test]
    fn alias_table_rebuilds_only_on_shape_changes() {
        // Republishes disabled: only demand-shape changes can miss.
        let mut config = TenantConfig::new(2, 32);
        config.rebuild_every = None;
        config.degradation = None;
        let mut t = TenantRuntime::new(config, 0xA11A5);
        t.begin_phase(demand(100), None, SloSpec::lossless(), 6);
        for _ in 0..6 {
            t.run_slice();
        }
        assert_eq!(
            t.phase_snapshot().alias_rebuilds,
            1,
            "one Vose construction for six same-shape slices"
        );
        // A new phase with the same shape keeps the cached table.
        t.begin_phase(demand(50), None, SloSpec::lossless(), 4);
        for _ in 0..4 {
            t.run_slice();
        }
        assert_eq!(t.phase_snapshot().alias_rebuilds, 0);
        // A shape change rebuilds exactly once.
        let hot = DemandSpec::flat(
            DemandShape::HotSet {
                hot_items: 4,
                hot_mass: 0.8,
                offset: 0,
            },
            50,
        );
        t.begin_phase(hot, None, SloSpec::lossless(), 4);
        for _ in 0..4 {
            t.run_slice();
        }
        assert_eq!(t.phase_snapshot().alias_rebuilds, 1);
        assert!(t.cost_hint() >= 1);
    }

    #[test]
    fn full_republish_retags_the_sampler_and_the_delta_lane_does_not() {
        // The fused sampler bakes item→node tags in, so a *full*
        // republish (new tree, new node ids) must re-tag on the next
        // serving slice; the delta lane keeps node ids stable and the
        // cache survives its republishes.
        let run = |lane: RebuildLane| {
            let mut config = TenantConfig::new(3, 32);
            config.degradation = None; // periodic rebuilds only
            config.rebuild_lane = lane;
            let mut t = TenantRuntime::new(config, 0xA11A5);
            t.begin_phase(demand(100), None, SloSpec::lossless(), 12);
            for _ in 0..12 {
                t.run_slice();
            }
            let snap = t.phase_snapshot();
            assert_eq!(snap.rebuilds, 1, "one periodic republish at slice 8");
            snap.alias_rebuilds
        };
        assert_eq!(
            run(RebuildLane::Full),
            2,
            "cold build + post-republish re-tag"
        );
        assert_eq!(
            run(RebuildLane::Delta { max_touched: 0.5 }),
            1,
            "cold build only; delta republishes keep the cache"
        );
    }

    #[test]
    fn drift_gate_skips_quiet_cadences_but_not_real_shifts() {
        let mut config = TenantConfig::new(11, 64);
        config.rebuild_min_drift = Some(0.3);
        let mut t = TenantRuntime::new(config, 0x5EED);
        // Stationary phase crossing three cadence points (slices 8, 16,
        // 24): the first republish publishes the estimator for the first
        // time (everything counts as drifted), the remaining two see only
        // sampling noise and are gated off.
        t.begin_phase(demand(300), None, SloSpec::lossless(), 24);
        for _ in 0..24 {
            t.run_slice();
        }
        let quiet = t.phase_snapshot();
        assert_eq!(quiet.rebuilds, 1, "{quiet:?}");
        assert_eq!(quiet.skipped_rebuilds, 2, "{quiet:?}");
        assert_eq!(
            quiet.requests, quiet.delivered,
            "gate must not drop requests"
        );
        assert!(t.phase_violations().is_empty(), "{quiet:?}");
        // The hot set relocates: the mass itself moves, drift exceeds the
        // floor, and the next cadence point (slice 32) rebuilds through
        // the gate.
        let moved = DemandSpec::flat(
            DemandShape::HotSet {
                hot_items: 8,
                hot_mass: 0.9,
                offset: 32,
            },
            300,
        );
        t.begin_phase(moved, None, SloSpec::lossless(), 8);
        for _ in 0..8 {
            t.run_slice();
        }
        let shifted = t.phase_snapshot();
        assert_eq!(
            shifted.rebuilds, 1,
            "real shift must republish: {shifted:?}"
        );
        assert_eq!(shifted.skipped_rebuilds, 0, "{shifted:?}");
    }

    #[test]
    fn rate_zero_slices_are_idle_but_still_roll_epochs() {
        let mut t = TenantRuntime::new(TenantConfig::new(1, 16), 1);
        t.begin_phase(demand(0), None, SloSpec::lossless(), 4);
        for _ in 0..4 {
            t.run_slice();
        }
        let snap = t.phase_snapshot();
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.delivery_rate(), 1.0);
        assert!(t.phase_violations().is_empty());
    }
}
