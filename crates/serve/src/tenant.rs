//! One tenant of the serving loop: an index tree, a double-buffered
//! publisher, a demand estimator and a degradation tracker, advanced one
//! time slice at a time.
//!
//! A tenant is a *self-contained* state machine: every random draw it
//! makes (request sampling, tune-in slots, channel faults) derives from
//! its own seed — itself derived only from the service seed and the
//! tenant's stable id — and the global slice counter. Nothing depends on
//! which worker thread runs the tenant or on who its neighbors are, which
//! is what makes scenario runs bit-identical across thread counts and
//! lets the isolation tests demand *exact* equality between a tenant's
//! solo run and its run amid noisy co-tenants.

use bcast_adaptive::{DegradationPolicy, DegradationTracker, EmaEstimator};
use bcast_channel::{
    compiled::{ServeOptions, ServeSession, SERVE_CHUNK},
    faults::{FaultPlan, GilbertElliott, RecoveryPolicy},
    hist::LatencyHistogram,
    snapshot::{SnapshotError, SnapshotView},
};
use bcast_core::publish::{PublishHeuristic, PublishOptions, Publisher};
use bcast_core::{DeltaLane, DeltaOptions};
use bcast_index_tree::{knary, IndexTree};
use bcast_types::{mix64, NodeId, SloSnapshot, SloSpec, SloViolation, Weight};
use bcast_workloads::{DemandShape, DemandSpec, FaultScenario, TaggedAliasTable};
use std::time::Instant;

/// Mixes two 64-bit values into one seed. [`mix64`] is a one-argument
/// finalizer, so two-value mixing composes it: the golden-ratio multiply
/// separates `(a, b)` from `(a, b + 1)` before the final avalanche.
#[inline]
fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Headroom of the per-phase latency accumulator, in cycles: wide enough
/// that even a degraded tenant's p99 (budgeted at 8 cycles) is measured
/// exactly, not clamped. Rebuilds within a phase change the cycle length
/// slightly; [`LatencyHistogram::absorb`] clamps only above this bound.
const PHASE_HIST_CYCLES: u32 = 16;

/// Which republish machinery a tenant's rebuilds run through.
///
/// The delta lane keeps the boot-time index-tree *structure* and only
/// repairs weights, schedule order and routes incrementally
/// ([`bcast_core::delta`]); the full lane re-derives the weight-balanced
/// tree from scratch every rebuild. Both swap the double-buffered program
/// atomically, so downtime is zero either way — the lane trades
/// structural adaptivity for O(changed) rebuild cost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RebuildLane {
    /// Rebuild the tree and republish everything (the PR6 behavior; the
    /// default, so existing scenario fingerprints replay unchanged).
    #[default]
    Full,
    /// Diff the estimator's changed weights against the served program
    /// and patch in place when at most `max_touched` of the schedule
    /// moved, falling back to a full publish past the threshold. The
    /// index-tree *structure* stays fixed at its boot shape — only
    /// weights and the allocation adapt (the documented trade of this
    /// lane; tenants whose catalog shape must track demand keep `Full`).
    Delta {
        /// Fallback threshold as a fraction of schedule positions.
        max_touched: f64,
    },
}

/// Static configuration of one tenant.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Stable tenant id — the *only* tenant-specific input to seed
    /// derivation, so a tenant's behavior is independent of roster
    /// position.
    pub id: u64,
    /// Catalog size (data items).
    pub items: usize,
    /// Index-tree fanout.
    pub fanout: usize,
    /// Broadcast channels.
    pub channels: usize,
    /// Allocation heuristic for publishes.
    pub heuristic: PublishHeuristic,
    /// EMA smoothing factor for the demand estimator.
    pub alpha: f64,
    /// Republish every this many slices (`None` = only on degradation).
    pub rebuild_every: Option<u64>,
    /// Minimum relative estimator drift (see
    /// [`EmaEstimator::drift_since_publish`]) for a periodic republish to
    /// actually run; below it the cadence point is recorded as a skipped
    /// rebuild and the served program stays. `None` (the default, and the
    /// historical behavior) republishes unconditionally. Degradation-fired
    /// rebuilds are never gated. Deterministic: drift is a pure function
    /// of the request stream, so skips replay identically at any thread
    /// count.
    pub rebuild_min_drift: Option<f64>,
    /// Degradation-feedback rebuild policy (`None` = disabled).
    pub degradation: Option<DegradationPolicy>,
    /// Client recovery budget under channel faults.
    pub recovery: RecoveryPolicy,
    /// Republish machinery: full rebuilds or the incremental delta lane.
    pub rebuild_lane: RebuildLane,
}

impl TenantConfig {
    /// A tenant with the defaults the canonical scenarios use: fanout-4
    /// tree over 3 channels, sorting heuristic, EMA α = 0.4, periodic
    /// republish every 8 slices plus the default degradation feedback.
    pub fn new(id: u64, items: usize) -> Self {
        TenantConfig {
            id,
            items,
            fanout: 4,
            channels: 3,
            heuristic: PublishHeuristic::Sorting,
            alpha: 0.4,
            rebuild_every: Some(8),
            rebuild_min_drift: None,
            degradation: Some(DegradationPolicy::default()),
            recovery: RecoveryPolicy::default(),
            rebuild_lane: RebuildLane::Full,
        }
    }
}

/// Metrics accumulated over the current observation window (one scenario
/// phase, typically).
#[derive(Debug, Clone)]
struct Window {
    requests: u64,
    delivered: u64,
    failed: u64,
    retries: u64,
    hist: LatencyHistogram,
    max_cycle_len: u32,
    rebuilds: u64,
    degraded_rebuilds: u64,
    downtime_slots: u64,
    delta_rebuilds: u64,
    full_rebuilds: u64,
    /// Schedule positions touched / positions total, summed over the
    /// window's rebuilds (exact integers → deterministic ppm).
    touched_nodes: u64,
    touched_total: u64,
    /// Programs installed from a snapshot image during the window.
    snapshot_loads: u64,
    /// Periodic republish points gated off by `rebuild_min_drift`.
    skipped_rebuilds: u64,
    /// Wall nanoseconds inside rebuilds — side channel, never compared.
    rebuild_wall_ns: u64,
    /// Demand-sampler alias tables rebuilt — cache-miss side channel.
    alias_rebuilds: u64,
}

impl Window {
    fn new(hist_bound: u32) -> Self {
        Window {
            requests: 0,
            delivered: 0,
            failed: 0,
            retries: 0,
            hist: LatencyHistogram::with_bound(hist_bound.max(1)),
            max_cycle_len: 0,
            rebuilds: 0,
            degraded_rebuilds: 0,
            downtime_slots: 0,
            delta_rebuilds: 0,
            full_rebuilds: 0,
            touched_nodes: 0,
            touched_total: 0,
            snapshot_loads: 0,
            skipped_rebuilds: 0,
            rebuild_wall_ns: 0,
            alias_rebuilds: 0,
        }
    }

    fn snapshot(&self) -> SloSnapshot {
        SloSnapshot {
            requests: self.requests,
            delivered: self.delivered,
            failed: self.failed,
            retries: self.retries,
            p99_slots: if self.hist.is_empty() {
                0
            } else {
                self.hist.percentile(0.99)
            },
            mean_access_slots: if self.hist.is_empty() {
                0.0
            } else {
                self.hist.mean()
            },
            max_cycle_len: self.max_cycle_len,
            rebuilds: self.rebuilds,
            degraded_rebuilds: self.degraded_rebuilds,
            rebuild_downtime_slots: self.downtime_slots,
            delta_rebuilds: self.delta_rebuilds,
            full_rebuilds: self.full_rebuilds,
            touched_ppm: (self.touched_nodes * 1_000_000)
                .checked_div(self.touched_total)
                .unwrap_or(0),
            snapshot_loads: self.snapshot_loads,
            skipped_rebuilds: self.skipped_rebuilds,
            rebuild_wall_ns: self.rebuild_wall_ns,
            alias_rebuilds: self.alias_rebuilds,
        }
    }
}

/// A live tenant: tree + publisher + estimator + degradation tracker,
/// advanced by [`run_slice`](TenantRuntime::run_slice).
#[derive(Debug)]
pub struct TenantRuntime {
    config: TenantConfig,
    seed: u64,
    tree: IndexTree,
    data_nodes: Vec<NodeId>,
    publisher: Publisher,
    estimator: EmaEstimator,
    degradation: Option<DegradationTracker>,
    // Current-phase script.
    demand: DemandSpec,
    faults: Option<FaultScenario>,
    slo: SloSpec,
    phase_slices: u32,
    slice_in_phase: u32,
    // Lifetime counters.
    slices_run: u64,
    total_requests: u64,
    total_rebuilds: u64,
    /// Snapshot cold-starts not yet attributed to a phase window — the
    /// boot happens before the first `begin_phase`, which moves this
    /// into the fresh window so the join phase reports it.
    pending_snapshot_loads: u64,
    window: Window,
    /// Cached demand sampler with the item→node map fused in (each draw
    /// yields the target [`NodeId`] from the same cache line as the
    /// alias decision). Rebuilt only when the demand *shape* changes
    /// ([`sampler_shape`](Self::sampler_shape) tracks the shape it was
    /// built for) or a full republish remints the node ids the tags bake
    /// in. Within a phase only the request rate interpolates — the pmf
    /// is constant — so steady-state slices skip the O(items) Vose
    /// construction entirely.
    sampler: TaggedAliasTable,
    sampler_shape: Option<DemandShape>,
    /// Scratch pmf for sampler rebuilds (reused capacity).
    pmf: Vec<f64>,
    /// Reused [`SERVE_CHUNK`]-sized staging buffer: sampled targets are
    /// gathered here and fed straight to the chunked serve kernel, so a
    /// slice never materializes its full request vector.
    chunk: Vec<NodeId>,
    /// Reusable streaming-serve state (histogram shard and fault
    /// overlay buffers persist across slices).
    session: ServeSession,
    /// EWMA of recent slice request counts — the deterministic cost
    /// input to the service's load-balanced lane assignment.
    ewma_cost: u64,
    /// Popularity snapshot the next rebuild consumes, patched in place
    /// from the estimator's changed set — rebuilds no longer clone the
    /// full weight vector.
    weights: Vec<Weight>,
    /// Scratch for [`EmaEstimator::drain_changed`] (item-indexed).
    changes: Vec<(u32, Weight)>,
    /// The same changes mapped onto tree data nodes for the delta lane.
    node_changes: Vec<(NodeId, Weight)>,
}

impl TenantRuntime {
    /// Boots a tenant cold: uniform weights, first program published.
    ///
    /// # Panics
    /// Panics if `config.items == 0` or the catalog cannot be scheduled
    /// on `config.channels` channels (the bundled heuristics always
    /// produce feasible allocations for sane configs).
    pub fn new(config: TenantConfig, service_seed: u64) -> Self {
        assert!(config.items > 0, "tenant needs at least one item");
        let seed = mix2(service_seed, config.id);
        let estimator = EmaEstimator::new(config.items, config.alpha);
        let weights = estimator.weights();
        let tree = knary::build_weight_balanced_unlabeled(&weights, config.fanout)
            .expect("uniform weights build a valid tree");
        let mut publisher = Publisher::new();
        publisher
            .publish(
                &tree,
                config.channels,
                config.heuristic,
                PublishOptions::default(),
            )
            .expect("bundled heuristics produce feasible allocations");
        let data_nodes = tree.data_nodes().to_vec();
        let cycle = publisher.current().cycle_len() as u32;
        TenantRuntime {
            seed,
            tree,
            data_nodes,
            publisher,
            estimator,
            degradation: config.degradation.map(DegradationTracker::new),
            demand: DemandSpec::flat(bcast_workloads::DemandShape::Zipf { theta: 0.9 }, 0),
            faults: None,
            slo: SloSpec::default(),
            phase_slices: 0,
            slice_in_phase: 0,
            slices_run: 0,
            total_requests: 0,
            total_rebuilds: 0,
            pending_snapshot_loads: 0,
            window: Window::new(PHASE_HIST_CYCLES * cycle.max(1)),
            sampler: TaggedAliasTable::new(),
            sampler_shape: None,
            pmf: Vec::new(),
            chunk: Vec::with_capacity(SERVE_CHUNK),
            session: ServeSession::new(),
            ewma_cost: 0,
            weights,
            changes: Vec::new(),
            node_changes: Vec::new(),
            config,
        }
    }

    /// Boots a tenant from a validated snapshot image instead of a boot
    /// publish — the microsecond cold-start. The snapshot's program is
    /// installed directly (three memcpys, no heuristic run) and the
    /// item → node map comes from the image's catalog section, so
    /// nothing O(items · log) runs at all.
    ///
    /// A tenant booted from the image of an identical config's boot
    /// publish *serves bit-identically* to a cold [`new`]: every random
    /// draw derives from the tenant seed and slice counter alone, the
    /// adopted program equals the boot publish by snapshot round-trip
    /// exactness, and the estimator starts uniform either way. The only
    /// observable difference is the window's `snapshot_loads` count.
    ///
    /// The boot index tree is *not* reconstructed (that is the cost
    /// being skipped); a one-node stand-in holds its place until the
    /// first rebuild derives a fresh tree from estimator weights, which
    /// is why only [`RebuildLane::Full`] tenants may boot this way —
    /// the delta lane patches against the boot tree's structure.
    ///
    /// # Errors
    /// [`SnapshotError::Corrupt`] if the image's catalog size or channel
    /// count disagrees with `config` — a snapshot never silently serves
    /// the wrong catalog.
    ///
    /// # Panics
    /// Panics if `config.items == 0` or the lane is not `Full`.
    ///
    /// [`new`]: TenantRuntime::new
    pub fn from_snapshot(
        config: TenantConfig,
        service_seed: u64,
        view: &SnapshotView<'_>,
    ) -> Result<Self, SnapshotError> {
        assert!(config.items > 0, "tenant needs at least one item");
        assert!(
            config.rebuild_lane == RebuildLane::Full,
            "snapshot cold-start requires the full rebuild lane"
        );
        if view.num_data() != config.items {
            return Err(SnapshotError::Corrupt(
                "snapshot catalog size does not match the tenant config",
            ));
        }
        if view.channels() != config.channels {
            return Err(SnapshotError::Corrupt(
                "snapshot channel count does not match the tenant config",
            ));
        }
        let seed = mix2(service_seed, config.id);
        let estimator = EmaEstimator::new(config.items, config.alpha);
        let weights = estimator.weights();
        let data_nodes: Vec<NodeId> = view.data_nodes().collect();
        let mut publisher = Publisher::new();
        publisher.adopt_snapshot(view.to_program(), config.channels);
        // Stand-in tree (see the docs above): one leaf, O(1) to build.
        let tree = knary::build_weight_balanced_unlabeled(&weights[..1], config.fanout)
            .expect("a single uniform weight builds a valid tree");
        let cycle = publisher.current().cycle_len() as u32;
        Ok(TenantRuntime {
            seed,
            tree,
            data_nodes,
            publisher,
            estimator,
            degradation: config.degradation.map(DegradationTracker::new),
            demand: DemandSpec::flat(bcast_workloads::DemandShape::Zipf { theta: 0.9 }, 0),
            faults: None,
            slo: SloSpec::default(),
            phase_slices: 0,
            slice_in_phase: 0,
            slices_run: 0,
            total_requests: 0,
            total_rebuilds: 0,
            pending_snapshot_loads: 1,
            window: Window::new(PHASE_HIST_CYCLES * cycle.max(1)),
            sampler: TaggedAliasTable::new(),
            sampler_shape: None,
            pmf: Vec::new(),
            chunk: Vec::with_capacity(SERVE_CHUNK),
            session: ServeSession::new(),
            ewma_cost: 0,
            weights,
            changes: Vec::new(),
            node_changes: Vec::new(),
            config,
        })
    }

    /// Captures the tenant's *boot* program into a snapshot image — the
    /// persistence half of the cold-start path. Only meaningful before
    /// the first rebuild (the service's boot-image cache calls it right
    /// after [`new`](TenantRuntime::new)); after a rebuild the tree and
    /// program have moved on together and the image would simply record
    /// the newer epoch.
    pub fn snapshot_image(&self) -> bcast_channel::SnapshotImage {
        self.publisher.snapshot_image(&self.tree)
    }

    /// Stable tenant id.
    pub fn id(&self) -> u64 {
        self.config.id
    }

    /// The tenant's configuration.
    pub fn config(&self) -> &TenantConfig {
        &self.config
    }

    /// Cycle length (slots) of the program currently on air.
    pub fn cycle_len(&self) -> u32 {
        self.publisher.current().cycle_len() as u32
    }

    /// Lifetime requests offered to this tenant.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Lifetime programs published (boot publish excluded).
    pub fn total_rebuilds(&self) -> u64 {
        self.total_rebuilds
    }

    /// The SLO the current phase holds this tenant to.
    pub fn slo(&self) -> SloSpec {
        self.slo
    }

    /// Starts a new observation window with a new script: demand shape,
    /// channel condition and SLO for the next `slices` slices. Resets the
    /// window accumulator; estimator, tree and degradation state carry
    /// over (a tenant's demand history does not reset at phase
    /// boundaries).
    pub fn begin_phase(
        &mut self,
        demand: DemandSpec,
        faults: Option<FaultScenario>,
        slo: SloSpec,
        slices: u32,
    ) {
        self.demand = demand;
        self.faults = faults;
        self.slo = slo;
        self.phase_slices = slices;
        self.slice_in_phase = 0;
        self.window = Window::new(PHASE_HIST_CYCLES * self.cycle_len().max(1));
        self.window.snapshot_loads = std::mem::take(&mut self.pending_snapshot_loads);
    }

    /// Clears the degradation tracker's transient hysteresis/cooldown
    /// state (e.g. after an operator re-provisions the tenant's channel),
    /// keeping its lifetime rebuild count.
    pub fn reset_channel_state(&mut self) {
        if let Some(t) = &mut self.degradation {
            t.reset();
        }
    }

    /// Advances the tenant by one time slice: sample the slice's
    /// requests from the scripted demand, serve them against the program
    /// on air, feed the estimator, then run the between-slice control
    /// actions (degradation feedback, periodic republish). Both rebuild
    /// paths go through the double-buffered publisher swap, so requests
    /// are never held while a program compiles — the downtime counter
    /// stays at zero and the SLO check proves it.
    ///
    /// The steady-state slice is allocation-free: the alias sampler is
    /// cached across slices (rebuilt only on a demand-shape change),
    /// sampled targets stream through a reused [`SERVE_CHUNK`]-sized
    /// buffer straight into the chunked serve kernel, and the session's
    /// histogram shard is reset in place. Sampling draws, tune-in slots
    /// and fault links are all keyed by the slice seed and the global
    /// request index, so the streamed slice is bit-identical to the
    /// original build-a-batch-then-serve form.
    pub fn run_slice(&mut self) {
        let rate = self
            .demand
            .rate_at(self.slice_in_phase, self.phase_slices.max(1));
        let slice_seed = mix2(self.seed, self.slices_run);
        self.slice_in_phase = (self.slice_in_phase + 1).min(self.phase_slices.saturating_sub(1));
        self.slices_run += 1;
        // Cost hint for the service's lane assignment: an EWMA over
        // slice request counts, updated before the slice runs so the
        // scheduler could have used this very value. Pure integer
        // arithmetic on deterministic inputs.
        self.ewma_cost = (3 * self.ewma_cost + u64::from(rate)).div_ceil(4);

        if rate > 0 {
            // The demand *shape* is constant within a phase (only the
            // request rate interpolates slice to slice), so the Vose
            // construction runs once per shape change, not once per
            // slice — plus once after any full republish, which remints
            // the node ids the table's tags bake in. Same pmf → byte-
            // identical table → identical draws.
            if self.sampler_shape != Some(self.demand.shape) {
                self.demand.shape.pmf_into(self.config.items, &mut self.pmf);
                let data_nodes = &self.data_nodes;
                self.sampler.rebuild(&self.pmf, |i| data_nodes[i].0);
                self.sampler_shape = Some(self.demand.shape);
                self.window.alias_rebuilds += 1;
            }
            let mut state = mix2(slice_seed, 1);

            // Serve against the program on air. `current()` is always
            // servable — the publisher swaps buffers atomically between
            // slices — so the downtime branch is unreachable by
            // construction; the counter exists to *prove* that to the SLO
            // check rather than assume it.
            let program = self.publisher.current();
            if program.num_data_nodes() == 0 {
                // Demand still arrives during downtime: the estimator
                // sees what was *requested*, exactly as when serving.
                for _ in 0..rate {
                    let (item, _) = self.sampler.sample(&mut state);
                    self.estimator.observe(item as usize);
                }
                self.window.downtime_slots += 1;
            } else {
                let opts = ServeOptions {
                    threads: 1,
                    seed: mix2(slice_seed, 2),
                    faults: fault_plan(self.faults.as_ref(), mix2(slice_seed, 3)),
                    recovery: self.config.recovery,
                };
                program.begin_session(&mut self.session, &opts);
                let mut remaining = rate as usize;
                while remaining > 0 {
                    let n = remaining.min(SERVE_CHUNK);
                    self.chunk.clear();
                    for _ in 0..n {
                        // One fused draw: the item for the estimator and
                        // its serving node from the same cache line.
                        let (item, node) = self.sampler.sample(&mut state);
                        // The estimator sees what was *requested*
                        // (demand, not delivery — channel loss must not
                        // starve the allocator's view of popularity).
                        self.estimator.observe(item as usize);
                        self.chunk.push(NodeId(node));
                    }
                    program
                        .serve_chunk(&mut self.session, &self.chunk)
                        .expect("targets are data nodes of the published tree");
                    remaining -= n;
                }
                self.absorb_session();

                // Degradation feedback reacts to this slice's delivery.
                let rate_served = self.session.delivery_rate();
                let fire = self
                    .degradation
                    .as_mut()
                    .is_some_and(|t| t.observe(rate_served));
                if fire {
                    self.rebuild();
                    self.window.degraded_rebuilds += 1;
                }
            }
        }

        self.estimator.roll_epoch();
        if let Some(every) = self.config.rebuild_every {
            if every > 0 && self.slices_run.is_multiple_of(every) {
                // Drift gate: a converged stream makes the cadence
                // republish a no-op — skip it and keep serving the
                // program already on air. Degradation-fired rebuilds
                // (above) bypass this on purpose.
                let quiet = self
                    .config
                    .rebuild_min_drift
                    .is_some_and(|floor| self.estimator.drift_since_publish() < floor);
                if quiet {
                    self.window.skipped_rebuilds += 1;
                } else {
                    self.rebuild();
                }
            }
        }
    }

    /// Deterministic per-slice cost estimate for the service's
    /// load-balanced lane assignment (larger = more expensive). Derived
    /// only from the tenant's own scripted request rates, so schedules
    /// built from it are identical on every run and thread count. Never
    /// zero: even an idle tenant costs a slice call.
    #[inline]
    pub fn cost_hint(&self) -> u64 {
        self.ewma_cost.max(1)
    }

    /// The window accumulated so far, as plain data.
    pub fn phase_snapshot(&self) -> SloSnapshot {
        self.window.snapshot()
    }

    /// Checks the accumulated window against the phase's SLO.
    pub fn phase_violations(&self) -> Vec<SloViolation> {
        self.window.snapshot().check(&self.slo)
    }

    /// Folds the finished slice's session aggregates into the window —
    /// the streaming counterpart of the old `BatchMetrics` absorb, with
    /// no intermediate metrics struct (the histogram absorbs directly
    /// from the session's shard).
    fn absorb_session(&mut self) {
        self.window.requests += self.session.requests();
        self.window.delivered += self.session.delivered();
        self.window.failed += self.session.failed();
        self.window.retries += self.session.retries();
        self.window.hist.absorb(self.session.histogram());
        self.window.max_cycle_len = self.window.max_cycle_len.max(self.cycle_len());
        self.total_requests += self.session.requests();
    }

    /// Republishes from the estimator's current weights through the
    /// double-buffered swap: the old program serves until the new one is
    /// compiled, then `current()` flips. The configured [`RebuildLane`]
    /// picks the machinery — a full tree rebuild + publish, or the
    /// incremental delta lane patching the served schedule in place —
    /// and the window's lane counters and wall-clock side channel record
    /// which path ran and how much of the schedule it touched.
    fn rebuild(&mut self) {
        let started = Instant::now();
        // O(changed) estimator handoff, shared by both lanes: the
        // persistent snapshot absorbs only the weights that moved.
        self.changes.clear();
        self.estimator.drain_changed(&mut self.changes);
        for &(i, w) in &self.changes {
            self.weights[i as usize] = w;
        }
        match self.config.rebuild_lane {
            RebuildLane::Full => {
                let tree =
                    knary::build_weight_balanced_unlabeled(&self.weights, self.config.fanout)
                        .expect("estimator weights are positive");
                self.publisher
                    .publish(
                        &tree,
                        self.config.channels,
                        self.config.heuristic,
                        PublishOptions::default(),
                    )
                    .expect("bundled heuristics produce feasible allocations");
                self.data_nodes.clear();
                self.data_nodes.extend_from_slice(tree.data_nodes());
                self.tree = tree;
                // The sampler's tags bake in the item→node map this
                // rebuild just reminted — invalidate so the next serving
                // slice re-tags (the delta lane keeps node ids stable
                // and skips this).
                self.sampler_shape = None;
                self.window.full_rebuilds += 1;
                let total = self.tree.len() as u64;
                self.window.touched_nodes += total;
                self.window.touched_total += total;
            }
            RebuildLane::Delta { max_touched } => {
                // Structure stays at its boot shape: only weights move,
                // so `data_nodes` keeps mapping item i → leaf i.
                self.node_changes.clear();
                self.node_changes.extend(
                    self.changes
                        .iter()
                        .map(|&(i, w)| (self.data_nodes[i as usize], w)),
                );
                self.tree.reweight(&self.node_changes);
                let report = self
                    .publisher
                    .republish_delta(
                        &self.tree,
                        &self.node_changes,
                        self.config.channels,
                        self.config.heuristic,
                        PublishOptions::default(),
                        DeltaOptions { max_touched },
                    )
                    .expect("bundled heuristics produce feasible allocations");
                match report.lane {
                    DeltaLane::Patched => self.window.delta_rebuilds += 1,
                    DeltaLane::Full(_) => self.window.full_rebuilds += 1,
                }
                self.window.touched_nodes += report.touched as u64;
                self.window.touched_total += report.total as u64;
            }
        }
        self.window.rebuilds += 1;
        self.window.max_cycle_len = self.window.max_cycle_len.max(self.cycle_len());
        self.total_rebuilds += 1;
        self.window.rebuild_wall_ns += started.elapsed().as_nanos() as u64;
    }
}

/// Interprets a workload-crate [`FaultScenario`] (plain numbers) as a
/// channel-crate [`FaultPlan`] seeded for one slice.
fn fault_plan(scenario: Option<&FaultScenario>, seed: u64) -> FaultPlan {
    match scenario {
        None => FaultPlan::none(),
        Some(s) => match s.burst {
            Some(b) => FaultPlan::gilbert_elliott(
                GilbertElliott {
                    p_good_to_bad: b.p_good_to_bad,
                    p_bad_to_good: b.p_bad_to_good,
                    loss_good: b.loss_good,
                    loss_bad: b.loss_bad,
                },
                seed,
            )
            .expect("scenario presets are valid probabilities"),
            None if s.erasure_p > 0.0 => {
                FaultPlan::erasure(s.erasure_p, seed).expect("scenario presets are valid")
            }
            None => FaultPlan::none(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcast_workloads::DemandShape;

    fn demand(rate: u32) -> DemandSpec {
        DemandSpec::flat(DemandShape::Zipf { theta: 0.9 }, rate)
    }

    #[test]
    fn lossless_slices_deliver_everything_with_zero_downtime() {
        let mut t = TenantRuntime::new(TenantConfig::new(7, 32), 0xDA7);
        t.begin_phase(demand(200), None, SloSpec::lossless(), 10);
        for _ in 0..10 {
            t.run_slice();
        }
        let snap = t.phase_snapshot();
        assert_eq!(snap.requests, 2000);
        assert_eq!(snap.delivered, 2000);
        assert_eq!(snap.rebuild_downtime_slots, 0);
        assert!(snap.rebuilds >= 1, "periodic republish every 8 slices");
        assert!(
            t.phase_violations().is_empty(),
            "{:?}",
            t.phase_violations()
        );
    }

    #[test]
    fn same_seed_and_id_replay_bit_identically() {
        let run = |service_seed: u64| {
            let mut t = TenantRuntime::new(TenantConfig::new(3, 48), service_seed);
            t.begin_phase(demand(150), None, SloSpec::lossless(), 8);
            for _ in 0..8 {
                t.run_slice();
            }
            t.phase_snapshot()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn lossy_channel_still_bounded_by_degraded_slo() {
        let mut t = TenantRuntime::new(TenantConfig::new(0, 32), 0xBAD);
        t.begin_phase(
            demand(200),
            Some(bcast_workloads::brownout_channel()),
            SloSpec::degraded(0.90, 8.0),
            12,
        );
        for _ in 0..12 {
            t.run_slice();
        }
        let snap = t.phase_snapshot();
        assert!(snap.failed < snap.requests / 10, "{snap:?}");
        assert_eq!(snap.rebuild_downtime_slots, 0);
        assert!(t.phase_violations().is_empty(), "{:?}", t.phase_snapshot());
    }

    #[test]
    fn delta_lane_serves_with_zero_downtime_and_counts_lanes() {
        let mut config = TenantConfig::new(5, 64);
        config.rebuild_lane = RebuildLane::Delta { max_touched: 0.25 };
        let mut t = TenantRuntime::new(config, 0xDE17A);
        t.begin_phase(demand(300), None, SloSpec::lossless(), 24);
        for _ in 0..24 {
            t.run_slice();
        }
        let snap = t.phase_snapshot();
        assert_eq!(snap.requests, snap.delivered, "lossless channel");
        assert_eq!(snap.rebuild_downtime_slots, 0, "swap stays double-buffered");
        assert!(snap.rebuilds >= 2, "periodic republish every 8 slices");
        assert_eq!(
            snap.delta_rebuilds + snap.full_rebuilds,
            snap.rebuilds,
            "every rebuild is attributed to exactly one lane"
        );
        assert!(t.phase_violations().is_empty(), "{snap:?}");
    }

    #[test]
    fn delta_lane_replays_bit_identically() {
        let run = |_attempt: u64| {
            let mut config = TenantConfig::new(9, 48);
            config.rebuild_lane = RebuildLane::Delta { max_touched: 0.1 };
            let mut t = TenantRuntime::new(config, 0xFACE);
            t.begin_phase(demand(200), None, SloSpec::lossless(), 16);
            for _ in 0..16 {
                t.run_slice();
            }
            t.phase_snapshot()
        };
        // Wall ns differs between the runs; equality must hold anyway.
        assert_eq!(run(0), run(1));
    }

    #[test]
    fn snapshot_cold_start_serves_bit_identically() {
        let config = TenantConfig::new(4, 40);
        let mut cold = TenantRuntime::new(config.clone(), 0xB007);
        let image = cold.snapshot_image();
        let view = image.view().unwrap();
        let mut warm = TenantRuntime::from_snapshot(config, 0xB007, &view).unwrap();
        // 12 slices cross the periodic rebuild at slice 8, so the warm
        // tenant's first full rebuild (replacing the stand-in tree) is
        // inside the window being compared.
        for t in [&mut cold, &mut warm] {
            t.begin_phase(demand(150), None, SloSpec::lossless(), 12);
            for _ in 0..12 {
                t.run_slice();
            }
        }
        assert_eq!(cold.phase_snapshot(), warm.phase_snapshot());
        assert!(warm.phase_violations().is_empty());
        assert_eq!(cold.phase_snapshot().snapshot_loads, 0);
        assert_eq!(warm.phase_snapshot().snapshot_loads, 1);
    }

    #[test]
    fn snapshot_with_mismatched_config_is_rejected() {
        let cold = TenantRuntime::new(TenantConfig::new(1, 32), 7);
        let image = cold.snapshot_image();
        let view = image.view().unwrap();
        let wrong_items = TenantConfig::new(2, 33);
        assert!(TenantRuntime::from_snapshot(wrong_items, 7, &view).is_err());
        let mut wrong_channels = TenantConfig::new(2, 32);
        wrong_channels.channels = 2;
        assert!(TenantRuntime::from_snapshot(wrong_channels, 7, &view).is_err());
    }

    #[test]
    fn alias_table_rebuilds_only_on_shape_changes() {
        // Republishes disabled: only demand-shape changes can miss.
        let mut config = TenantConfig::new(2, 32);
        config.rebuild_every = None;
        config.degradation = None;
        let mut t = TenantRuntime::new(config, 0xA11A5);
        t.begin_phase(demand(100), None, SloSpec::lossless(), 6);
        for _ in 0..6 {
            t.run_slice();
        }
        assert_eq!(
            t.phase_snapshot().alias_rebuilds,
            1,
            "one Vose construction for six same-shape slices"
        );
        // A new phase with the same shape keeps the cached table.
        t.begin_phase(demand(50), None, SloSpec::lossless(), 4);
        for _ in 0..4 {
            t.run_slice();
        }
        assert_eq!(t.phase_snapshot().alias_rebuilds, 0);
        // A shape change rebuilds exactly once.
        let hot = DemandSpec::flat(
            DemandShape::HotSet {
                hot_items: 4,
                hot_mass: 0.8,
                offset: 0,
            },
            50,
        );
        t.begin_phase(hot, None, SloSpec::lossless(), 4);
        for _ in 0..4 {
            t.run_slice();
        }
        assert_eq!(t.phase_snapshot().alias_rebuilds, 1);
        assert!(t.cost_hint() >= 1);
    }

    #[test]
    fn full_republish_retags_the_sampler_and_the_delta_lane_does_not() {
        // The fused sampler bakes item→node tags in, so a *full*
        // republish (new tree, new node ids) must re-tag on the next
        // serving slice; the delta lane keeps node ids stable and the
        // cache survives its republishes.
        let run = |lane: RebuildLane| {
            let mut config = TenantConfig::new(3, 32);
            config.degradation = None; // periodic rebuilds only
            config.rebuild_lane = lane;
            let mut t = TenantRuntime::new(config, 0xA11A5);
            t.begin_phase(demand(100), None, SloSpec::lossless(), 12);
            for _ in 0..12 {
                t.run_slice();
            }
            let snap = t.phase_snapshot();
            assert_eq!(snap.rebuilds, 1, "one periodic republish at slice 8");
            snap.alias_rebuilds
        };
        assert_eq!(
            run(RebuildLane::Full),
            2,
            "cold build + post-republish re-tag"
        );
        assert_eq!(
            run(RebuildLane::Delta { max_touched: 0.5 }),
            1,
            "cold build only; delta republishes keep the cache"
        );
    }

    #[test]
    fn drift_gate_skips_quiet_cadences_but_not_real_shifts() {
        let mut config = TenantConfig::new(11, 64);
        config.rebuild_min_drift = Some(0.3);
        let mut t = TenantRuntime::new(config, 0x5EED);
        // Stationary phase crossing three cadence points (slices 8, 16,
        // 24): the first republish publishes the estimator for the first
        // time (everything counts as drifted), the remaining two see only
        // sampling noise and are gated off.
        t.begin_phase(demand(300), None, SloSpec::lossless(), 24);
        for _ in 0..24 {
            t.run_slice();
        }
        let quiet = t.phase_snapshot();
        assert_eq!(quiet.rebuilds, 1, "{quiet:?}");
        assert_eq!(quiet.skipped_rebuilds, 2, "{quiet:?}");
        assert_eq!(
            quiet.requests, quiet.delivered,
            "gate must not drop requests"
        );
        assert!(t.phase_violations().is_empty(), "{quiet:?}");
        // The hot set relocates: the mass itself moves, drift exceeds the
        // floor, and the next cadence point (slice 32) rebuilds through
        // the gate.
        let moved = DemandSpec::flat(
            DemandShape::HotSet {
                hot_items: 8,
                hot_mass: 0.9,
                offset: 32,
            },
            300,
        );
        t.begin_phase(moved, None, SloSpec::lossless(), 8);
        for _ in 0..8 {
            t.run_slice();
        }
        let shifted = t.phase_snapshot();
        assert_eq!(
            shifted.rebuilds, 1,
            "real shift must republish: {shifted:?}"
        );
        assert_eq!(shifted.skipped_rebuilds, 0, "{shifted:?}");
    }

    #[test]
    fn rate_zero_slices_are_idle_but_still_roll_epochs() {
        let mut t = TenantRuntime::new(TenantConfig::new(1, 16), 1);
        t.begin_phase(demand(0), None, SloSpec::lossless(), 4);
        for _ in 0..4 {
            t.run_slice();
        }
        let snap = t.phase_snapshot();
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.delivery_rate(), 1.0);
        assert!(t.phase_violations().is_empty());
    }
}
