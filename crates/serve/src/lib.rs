#![warn(missing_docs)]

//! A live multi-tenant serving loop over the broadcast machinery — the
//! "day in the life" harness that exercises everything the lower crates
//! provide (allocation heuristics, compiled serving, fault recovery,
//! online adaptation) as one long-lived service.
//!
//! * [`tenant`] — one tenant: tree + double-buffered publisher + EMA
//!   estimator + degradation tracker, advanced one time slice at a time;
//! * [`service`] — the [`ServeLoop`]: a roster of tenants advanced in
//!   lock-step slices, sharded across scoped worker threads;
//! * [`scenario`] — the [`run_scenario`] interpreter for the canonical
//!   [`bcast_workloads::scenario`] scripts, producing per-phase SLO
//!   verdicts.
//!
//! Determinism is the design invariant: tenants are self-contained (all
//! randomness derives from the service seed and the tenant's stable id),
//! so a scenario replays bit-identically at any thread count, and a
//! tenant's metrics are the same whether it serves alone or among noisy
//! neighbors — the property the tenant-isolation chaos tests pin down
//! with exact equality.

pub mod scenario;
pub mod service;
pub mod tenant;

pub use scenario::{run_scenario, PhaseReport, ScenarioOutcome, TenantPhaseReport};
pub use service::ServeLoop;
pub use tenant::{RebuildLane, TenantConfig, TenantRuntime};
