#![warn(missing_docs)]

//! A live multi-tenant serving loop over the broadcast machinery — the
//! "day in the life" harness that exercises everything the lower crates
//! provide (allocation heuristics, compiled serving, fault recovery,
//! online adaptation) as one long-lived service.
//!
//! * [`tenant`] — one tenant: tree + double-buffered publisher + EMA
//!   estimator + degradation tracker, advanced one time slice at a time;
//! * [`service`] — the [`ServeLoop`]: a roster of tenants advanced in
//!   lock-step slices across a persistent worker pool with deterministic
//!   load-balanced lane assignment, SLO-aware overload shedding under a
//!   per-slice request budget, and panic quarantine around every
//!   tenant's slice work;
//! * [`scenario`] — the steppable [`ScenarioDriver`] and the
//!   [`run_scenario`] interpreter for the canonical
//!   [`bcast_workloads::scenario`] scripts, producing per-phase SLO
//!   verdicts (plus [`run_scenario_with_stats`] for the pool's
//!   wall-clock side channel);
//! * [`checkpoint`] — crash safety: atomic, versioned, CRC-sealed
//!   manifests written at slice boundaries
//!   ([`ServeLoop::checkpoint`]) and restored cold
//!   ([`ServeLoop::restore`]) with bit-identical resumption.
//!
//! Determinism is the design invariant: tenants are self-contained (all
//! randomness derives from the service seed and the tenant's stable id),
//! so a scenario replays bit-identically at any thread count, and a
//! tenant's metrics are the same whether it serves alone or among noisy
//! neighbors — the property the tenant-isolation chaos tests pin down
//! with exact equality. Crash-restore leans on the same invariant: a
//! checkpoint carries every input the slice loop consumes, so a run
//! killed at any slice boundary and restored finishes with the same
//! outcome fingerprint as one that never crashed.

pub mod checkpoint;
pub mod scenario;
pub mod service;
pub mod tenant;

pub use checkpoint::CheckpointError;
pub use scenario::{
    run_scenario, run_scenario_with_stats, PhaseReport, ScenarioDriver, ScenarioOutcome,
    TenantPhaseReport,
};
pub use service::{PoolStats, ServeLoop};
pub use tenant::{RebuildLane, TenantConfig, TenantRuntime};

/// Installs (once, process-wide) a panic hook that swallows the report
/// for panics whose payload contains `"chaos poison"` — the marker every
/// injected chaos panic carries — and forwards everything else to the
/// previous hook. The quarantine machinery catches these panics anyway;
/// this only keeps chaos tests and storm harnesses from flooding stderr
/// with expected backtraces. Real panics still print.
pub fn silence_chaos_panic_reports() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("chaos poison") {
                prev(info);
            }
        }));
    });
}
