#![warn(missing_docs)]

//! A live multi-tenant serving loop over the broadcast machinery — the
//! "day in the life" harness that exercises everything the lower crates
//! provide (allocation heuristics, compiled serving, fault recovery,
//! online adaptation) as one long-lived service.
//!
//! * [`tenant`] — one tenant: tree + double-buffered publisher + EMA
//!   estimator + degradation tracker, advanced one time slice at a time;
//! * [`service`] — the [`ServeLoop`]: a roster of tenants advanced in
//!   lock-step slices across a persistent worker pool with deterministic
//!   load-balanced lane assignment;
//! * [`scenario`] — the [`run_scenario`] interpreter for the canonical
//!   [`bcast_workloads::scenario`] scripts, producing per-phase SLO
//!   verdicts (plus [`run_scenario_with_stats`] for the pool's wall-clock
//!   side channel).
//!
//! Determinism is the design invariant: tenants are self-contained (all
//! randomness derives from the service seed and the tenant's stable id),
//! so a scenario replays bit-identically at any thread count, and a
//! tenant's metrics are the same whether it serves alone or among noisy
//! neighbors — the property the tenant-isolation chaos tests pin down
//! with exact equality.

pub mod scenario;
pub mod service;
pub mod tenant;

pub use scenario::{
    run_scenario, run_scenario_with_stats, PhaseReport, ScenarioOutcome, TenantPhaseReport,
};
pub use service::{PoolStats, ServeLoop};
pub use tenant::{RebuildLane, TenantConfig, TenantRuntime};
