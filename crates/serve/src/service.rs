//! The multi-tenant event loop: a roster of [`TenantRuntime`]s advanced
//! in lock-step time slices across a persistent worker pool.
//!
//! Parallelism is pure partitioning: tenants are self-contained (every
//! random draw derives from the tenant's own seed), workers get disjoint
//! sets of tenants, and no state is merged across tenants — so the loop
//! produces bit-identical results at any thread count, and `threads == 1`
//! never spawns at all.
//!
//! Two execution properties distinguish the steady state from a naive
//! scoped-spawn loop:
//!
//! * **Persistent workers.** A slice is a few hundred microseconds of
//!   work; spawning OS threads per slice costs a comparable amount of
//!   kernel time. The loop parks a [`WorkerPool`] for its lifetime and
//!   wakes it with an epoch handshake each slice ([`ServeLoop::run_slice`]).
//!   The original spawn-per-slice executor survives as
//!   [`run_slice_scoped`](ServeLoop::run_slice_scoped) — the equivalence
//!   oracle the pooled path is property-tested against.
//! * **Load-balanced lanes.** Tenants are assigned to worker lanes by
//!   deterministic LPT (longest processing time first) over each tenant's
//!   [`cost_hint`](TenantRuntime::cost_hint) — an EWMA of its scripted
//!   request rate — instead of contiguous roster chunks, so one hot
//!   tenant no longer serializes a whole chunk's neighbors behind it.
//!   The assignment is a pure function of deterministic hints, and lane
//!   placement cannot affect any tenant's outcome anyway (isolation), so
//!   scheduling is free to chase balance.

use crate::checkpoint::{CheckpointError, WordReader, WordWriter};
use crate::tenant::{mix2, RebuildLane, TenantConfig, TenantRuntime};
use bcast_channel::SnapshotImage;
use bcast_core::publish::PublishHeuristic;
use bcast_types::WorkerPool;
use std::collections::HashMap;

/// Seed salt for the overload shedder's per-slice remainder lottery,
/// keeping its draw stream disjoint from every tenant's request stream
/// (which derives from `mix2(seed, id)` without the salt).
const ADMIT_SALT: u64 = 0x5AED_AD31_7B0D_6E75;

/// The boot-program identity: two tenants whose key matches publish the
/// exact same first program (boot weights are uniform, so the catalog
/// size, tree fanout, channel count and heuristic determine it fully).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct BootKey {
    items: usize,
    fanout: usize,
    channels: usize,
    heuristic: PublishHeuristic,
}

/// The boot identity of a tenant config — the cache key for shared boot
/// images, and the key a manifest's by-reference program record resolves
/// through on restore.
pub(crate) fn boot_key(c: &TenantConfig) -> BootKey {
    BootKey {
        items: c.items,
        fanout: c.fanout,
        channels: c.channels,
        heuristic: c.heuristic,
    }
}

/// A boot-cache image pre-decoded once per restore: the compiled
/// program and its data-node catalog, cloned (a pair of memcpys)
/// by every tenant whose manifest block references the image instead of
/// each tenant re-running the column decode and catalog walk on the
/// same bytes.
pub(crate) struct CachedProgram {
    pub(crate) program: bcast_channel::CompiledProgram,
    pub(crate) data_nodes: Vec<bcast_types::NodeId>,
    pub(crate) channels: usize,
}

/// Reused per-slice scheduling buffers — the lane assignment is computed
/// every slice without allocating.
#[derive(Debug, Default)]
struct SchedScratch {
    /// Tenant indices sorted heaviest-first (the LPT order).
    order: Vec<u32>,
    /// Assigned lane per tenant index.
    lane_of: Vec<u32>,
    /// Accumulated cost per lane during assignment.
    lane_load: Vec<u64>,
    /// Tenant indices grouped by lane (counting-sorted, roster order
    /// within a lane).
    perm: Vec<u32>,
    /// Lane group boundaries into `perm` (`starts[l]..starts[l + 1]`).
    starts: Vec<u32>,
    /// Write cursors for the counting sort.
    cursor: Vec<u32>,
}

/// Shared mutable access to the tenant array for the pool closure. Lanes
/// index **disjoint** tenant sets (the counting-sorted permutation
/// partitions `0..n`), so no element is touched by two lanes.
struct TenantsPtr(*mut TenantRuntime);
// SAFETY: see above — all concurrent accesses go to disjoint elements.
unsafe impl Sync for TenantsPtr {}

/// Wall-clock execution statistics of the serving loop's worker pool — a
/// side channel for operators and benches, never part of a deterministic
/// outcome (lane busy times are wall time).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    /// Pool lanes (caller thread included); `1` when running sequentially.
    pub workers: usize,
    /// Cumulative busy nanoseconds per lane since the pool started.
    pub busy_ns: Vec<u64>,
    /// Load imbalance across lanes in parts-per-million:
    /// `(max − min) · 10⁶ / max` over `busy_ns` (`0` = perfectly even,
    /// also `0` before any pooled slice ran).
    pub imbalance_ppm: u64,
    /// Slices executed through the pooled load-balanced path.
    pub scheduled_slices: u64,
}

/// A live multi-tenant serving loop.
#[derive(Debug)]
pub struct ServeLoop {
    tenants: Vec<TenantRuntime>,
    seed: u64,
    threads: usize,
    next_id: u64,
    slices_run: u64,
    /// Boot snapshot images by config identity: the first tenant of a
    /// given shape pays the boot publish and deposits its image; every
    /// later join of the same shape cold-starts from the image in
    /// microseconds. Scenario churn phases are exactly this pattern.
    boot_images: Vec<(BootKey, SnapshotImage)>,
    /// Joins served from the cache (lifetime).
    snapshot_boots: u64,
    /// Tenant id → roster index, rebuilt on join/leave so id lookups on
    /// the request path are O(1) instead of a roster scan.
    index_of: HashMap<u64, usize>,
    /// Persistent workers, created on the first pooled slice and parked
    /// between slices for the life of the loop.
    pool: Option<WorkerPool>,
    sched: SchedScratch,
    scheduled_slices: u64,
    /// Per-slice request budget across the whole roster; `None` admits
    /// everything. See [`set_slice_budget`](Self::set_slice_budget).
    slice_budget: Option<u64>,
    /// Scratch for the shedder's water-filling pass (tenant indices in
    /// rate order, then clipped indices in lottery order).
    admit_order: Vec<u32>,
    /// Scratch: per-roster-index admitted cap for the coming slice
    /// (`u64::MAX` = uncapped).
    admit_caps: Vec<u64>,
}

impl ServeLoop {
    /// An empty loop. `seed` roots every tenant's derived seed; `threads`
    /// is the worker count for [`run_slice`](Self::run_slice) (`0` and
    /// `1` both mean sequential — results never depend on it).
    pub fn new(seed: u64, threads: usize) -> Self {
        ServeLoop {
            tenants: Vec::new(),
            seed,
            threads,
            next_id: 0,
            slices_run: 0,
            boot_images: Vec::new(),
            snapshot_boots: 0,
            index_of: HashMap::new(),
            pool: None,
            sched: SchedScratch::default(),
            scheduled_slices: 0,
            slice_budget: None,
            admit_order: Vec::new(),
            admit_caps: Vec::new(),
        }
    }

    /// Caps the total requests admitted per slice across the roster.
    /// When the roster's scripted demand exceeds the budget, admission
    /// water-fills: every tenant at or below its fair share keeps its
    /// full rate (bit-identical to serving solo), and only over-quota
    /// tenants are clipped to the common level, with the remainder
    /// distributed one request each by a seeded per-slice lottery. Shed
    /// requests still count against the tenant's delivery rate (surfaced
    /// as [`shed_requests`](bcast_types::SloSnapshot::shed_requests)),
    /// so the existing SLO floor catches sustained overload.
    ///
    /// Deterministic: admission is a pure function of the roster's
    /// scripted rates, the service seed and the slice counter — thread
    /// count never enters.
    pub fn set_slice_budget(&mut self, budget: Option<u64>) {
        self.slice_budget = budget;
    }

    /// The per-slice admission budget, if one is set.
    pub fn slice_budget(&self) -> Option<u64> {
        self.slice_budget
    }

    /// Computes each tenant's admitted cap for the coming slice (the
    /// water-filling pass described on
    /// [`set_slice_budget`](Self::set_slice_budget)) and arms the caps.
    /// Runs on the caller thread before tenants fan out to lanes, in
    /// both the pooled path and the scoped oracle.
    fn admit_slice(&mut self) {
        let Some(budget) = self.slice_budget else {
            return;
        };
        let n = self.tenants.len();
        if n == 0 {
            return;
        }
        let total: u64 = self.tenants.iter().map(|t| u64::from(t.next_rate())).sum();
        if total <= budget {
            for t in &mut self.tenants {
                t.set_admitted_cap(None);
            }
            return;
        }
        // Water-fill: walk tenants cheapest-first; whoever fits under
        // the running fair share keeps its full rate, the rest split the
        // remaining budget evenly at the water level.
        let tenants = &self.tenants;
        let order = &mut self.admit_order;
        order.clear();
        order.extend(0..n as u32);
        order.sort_unstable_by_key(|&i| (tenants[i as usize].next_rate(), i));
        self.admit_caps.clear();
        self.admit_caps.resize(n, u64::MAX);
        let mut remaining = budget;
        let mut left = n as u64;
        let mut first_clipped = n;
        for (at, &i) in order.iter().enumerate() {
            let rate = u64::from(tenants[i as usize].next_rate());
            if rate <= remaining / left {
                remaining -= rate;
                left -= 1;
            } else {
                first_clipped = at;
                break;
            }
        }
        if first_clipped < n {
            let level = remaining / left;
            let extra = (remaining % left) as usize;
            // The remainder goes one request each to `extra` clipped
            // tenants, chosen by a seeded per-slice lottery over tenant
            // ids (stable under roster churn, fresh every slice).
            let slice_key = mix2(self.seed ^ ADMIT_SALT, self.slices_run);
            let clipped = &mut order[first_clipped..];
            clipped.sort_unstable_by_key(|&i| (mix2(slice_key, tenants[i as usize].id()), i));
            for (won, &i) in clipped.iter().enumerate() {
                self.admit_caps[i as usize] = level + u64::from(won < extra);
            }
        }
        for (t, &cap) in self.tenants.iter_mut().zip(&self.admit_caps) {
            t.set_admitted_cap((cap != u64::MAX).then(|| cap.min(u64::from(u32::MAX)) as u32));
        }
    }

    /// Boots a tenant and adds it to the roster, keeping the roster
    /// sorted by id. The tenant's seed derives from the service seed and
    /// `config.id` only — never from roster position — so a tenant
    /// behaves identically whether it serves alone or among neighbors.
    ///
    /// The boot path picks itself: if an earlier join with the same
    /// boot identity (items, fanout, channels, heuristic) deposited a
    /// snapshot image, a full-lane tenant cold-starts from it through
    /// the real binary round-trip ([`TenantRuntime::from_snapshot`]) —
    /// bit-identical serving, microseconds instead of a publish. The
    /// first join of each shape pays the boot publish and deposits its
    /// image for the rest.
    ///
    /// # Panics
    /// Panics if a tenant with the same id is already on the roster.
    pub fn join(&mut self, config: TenantConfig) -> u64 {
        let id = config.id;
        assert!(
            self.tenant(id).is_none(),
            "tenant id {id} already on the roster"
        );
        self.next_id = self.next_id.max(id + 1);
        let key = boot_key(&config);
        let cached = (config.rebuild_lane == RebuildLane::Full)
            .then(|| self.boot_images.iter().find(|(k, _)| *k == key))
            .flatten();
        let runtime = match cached {
            Some((_, image)) => {
                let view = image.view().expect("cached boot images are self-captured");
                let t = TenantRuntime::from_snapshot(config, self.seed, &view)
                    .expect("cached boot image matches the config it was keyed by");
                self.snapshot_boots += 1;
                t
            }
            None => {
                let t = TenantRuntime::new(config, self.seed);
                if t.config().rebuild_lane == RebuildLane::Full {
                    self.boot_images.push((key, t.snapshot_image()));
                }
                t
            }
        };
        let at = self.tenants.partition_point(|t| t.id() < id);
        self.tenants.insert(at, runtime);
        self.rebuild_index();
        id
    }

    /// Joins served from the boot-image cache over the loop's lifetime.
    pub fn snapshot_boots(&self) -> u64 {
        self.snapshot_boots
    }

    /// The next unused tenant id (for churn scripts that join anonymous
    /// tenants).
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Removes a tenant from the roster. Returns `false` if no tenant
    /// with that id is present.
    pub fn leave(&mut self, id: u64) -> bool {
        match self.index_of.get(&id).copied() {
            Some(at) => {
                self.tenants.remove(at);
                self.rebuild_index();
                true
            }
            None => false,
        }
    }

    /// Re-derives the id → index map after a roster mutation. O(roster),
    /// paid only on join/leave — every per-slice lookup stays O(1).
    fn rebuild_index(&mut self) {
        self.index_of.clear();
        for (i, t) in self.tenants.iter().enumerate() {
            self.index_of.insert(t.id(), i);
        }
    }

    /// The roster, in ascending id order.
    pub fn tenants(&self) -> &[TenantRuntime] {
        &self.tenants
    }

    /// Mutable roster access (for per-phase scripting).
    pub fn tenants_mut(&mut self) -> &mut [TenantRuntime] {
        &mut self.tenants
    }

    /// One tenant by id — an O(1) map lookup.
    pub fn tenant(&self, id: u64) -> Option<&TenantRuntime> {
        self.index_of.get(&id).map(|&i| &self.tenants[i])
    }

    /// One tenant by id, mutably — an O(1) map lookup.
    pub fn tenant_mut(&mut self, id: u64) -> Option<&mut TenantRuntime> {
        match self.index_of.get(&id).copied() {
            Some(i) => Some(&mut self.tenants[i]),
            None => None,
        }
    }

    /// Slices the loop has run.
    pub fn slices_run(&self) -> u64 {
        self.slices_run
    }

    /// The service seed every tenant's randomness derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Advances every tenant by one time slice.
    ///
    /// With more than one thread and more than one tenant, tenants are
    /// assigned to the persistent pool's lanes by deterministic LPT over
    /// their cost hints and executed in parallel; otherwise the roster
    /// runs sequentially on the calling thread. Either way the result is
    /// bit-identical to every other thread count — lanes own disjoint
    /// tenants and tenants are self-contained.
    pub fn run_slice(&mut self) {
        self.admit_slice();
        let lanes = self.threads.clamp(1, self.tenants.len().max(1));
        if lanes <= 1 {
            for t in &mut self.tenants {
                t.run_slice();
            }
        } else {
            let pool_lanes = self.threads;
            self.schedule(lanes, pool_lanes);
            let pool = self.pool.get_or_insert_with(|| WorkerPool::new(pool_lanes));
            let base = TenantsPtr(self.tenants.as_mut_ptr());
            // Capture the `Sync` wrapper by reference, not its raw-pointer
            // field (closure field-capture would otherwise grab the
            // non-`Sync` pointer itself).
            let base = &base;
            let perm = &self.sched.perm;
            let starts = &self.sched.starts;
            pool.run(|lane| {
                let lo = starts[lane] as usize;
                let hi = starts[lane + 1] as usize;
                for &ti in &perm[lo..hi] {
                    // SAFETY: `perm` is a permutation of the roster
                    // partitioned by lane, so every tenant index is
                    // visited by exactly one lane — accesses through the
                    // shared base pointer are disjoint.
                    unsafe { (*base.0.add(ti as usize)).run_slice() };
                }
            });
            self.scheduled_slices += 1;
        }
        self.slices_run += 1;
    }

    /// Assigns each tenant to one of `lanes` lanes by LPT: walk tenants
    /// heaviest-hint-first, always placing onto the least-loaded lane
    /// (ties → lowest lane). `pool_lanes ≥ lanes` sizes the boundary
    /// array — lanes past `lanes` get empty groups, which the pool
    /// tolerates (a roster smaller than the pool leaves workers idle).
    /// All buffers are retained scratch; no allocation in steady state.
    fn schedule(&mut self, lanes: usize, pool_lanes: usize) {
        let n = self.tenants.len();
        let tenants = &self.tenants;
        let s = &mut self.sched;
        s.order.clear();
        s.order.extend(0..n as u32);
        s.order
            .sort_unstable_by_key(|&i| (std::cmp::Reverse(tenants[i as usize].cost_hint()), i));
        s.lane_load.clear();
        s.lane_load.resize(lanes, 0);
        s.lane_of.clear();
        s.lane_of.resize(n, 0);
        for &i in &s.order {
            let lane = s
                .lane_load
                .iter()
                .enumerate()
                .min_by_key(|&(l, &c)| (c, l))
                .map(|(l, _)| l)
                .expect("lanes >= 1");
            s.lane_of[i as usize] = lane as u32;
            s.lane_load[lane] += tenants[i as usize].cost_hint();
        }
        // Counting-sort tenant indices by lane (roster order within each
        // lane group) so each lane walks one contiguous run of `perm`.
        s.starts.clear();
        s.starts.resize(pool_lanes + 1, 0);
        for &l in &s.lane_of {
            s.starts[l as usize + 1] += 1;
        }
        for k in 1..s.starts.len() {
            s.starts[k] += s.starts[k - 1];
        }
        s.cursor.clear();
        s.cursor.extend_from_slice(&s.starts);
        s.perm.clear();
        s.perm.resize(n, 0);
        for (i, &l) in s.lane_of.iter().enumerate() {
            let at = s.cursor[l as usize];
            s.perm[at as usize] = i as u32;
            s.cursor[l as usize] += 1;
        }
    }

    /// The original spawn-per-slice executor over contiguous roster
    /// chunks, retained verbatim as the equivalence oracle for the pooled
    /// path: property tests demand `run_slice` and `run_slice_scoped`
    /// produce bit-identical tenants at every thread count. Prefer
    /// [`run_slice`](Self::run_slice) — this one pays a thread spawn per
    /// worker per slice.
    pub fn run_slice_scoped(&mut self) {
        self.admit_slice();
        let threads = self.threads.clamp(1, self.tenants.len().max(1));
        if threads <= 1 {
            for t in &mut self.tenants {
                t.run_slice();
            }
        } else {
            let chunk = self.tenants.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for part in self.tenants.chunks_mut(chunk) {
                    scope.spawn(|| {
                        for t in part {
                            t.run_slice();
                        }
                    });
                }
            });
        }
        self.slices_run += 1;
    }

    /// Runs `n` consecutive slices.
    pub fn run_slices(&mut self, n: u32) {
        for _ in 0..n {
            self.run_slice();
        }
    }

    /// Wall-clock pool statistics (see [`PoolStats`]). Before any pooled
    /// slice has run — including always-sequential loops — reports one
    /// idle lane with no busy time.
    pub fn pool_stats(&self) -> PoolStats {
        let (workers, busy_ns) = match &self.pool {
            Some(p) => (p.size(), p.busy_ns()),
            None => (1, Vec::new()),
        };
        let max = busy_ns.iter().copied().max().unwrap_or(0);
        let min = busy_ns.iter().copied().min().unwrap_or(0);
        let imbalance_ppm = (max - min)
            .saturating_mul(1_000_000)
            .checked_div(max)
            .unwrap_or(0);
        PoolStats {
            workers,
            busy_ns,
            imbalance_ppm,
            scheduled_slices: self.scheduled_slices,
        }
    }

    /// Lifetime requests offered across the whole roster (tenants that
    /// already left are not counted).
    pub fn total_requests(&self) -> u64 {
        self.tenants.iter().map(|t| t.total_requests()).sum()
    }

    /// Serializes the full deterministic service state — everything the
    /// slice loop consumes — into the manifest word stream. The worker
    /// pool, scheduler scratch and wall-clock stats are execution-side
    /// and excluded (a restore at a different thread count is still
    /// bit-identical).
    ///
    /// # Errors
    /// [`CheckpointError::DeltaLaneUnsupported`] if any tenant rebuilds
    /// through the delta lane.
    pub(crate) fn export_state(&self, w: &mut WordWriter) -> Result<(), CheckpointError> {
        if self
            .tenants
            .iter()
            .any(|t| t.config().rebuild_lane != RebuildLane::Full)
        {
            return Err(CheckpointError::DeltaLaneUnsupported);
        }
        w.u64(self.seed);
        w.u64(self.next_id);
        w.u64(self.slices_run);
        w.u64(self.snapshot_boots);
        w.opt_u64(self.slice_budget);
        // The boot-image cache is part of the deterministic state:
        // churn joins after a restore must hit (or miss) the cache
        // exactly as the uninterrupted run would, and `snapshot_loads`
        // is fingerprinted.
        w.u64(self.boot_images.len() as u64);
        for (key, image) in &self.boot_images {
            w.u64(key.items as u64);
            w.u64(key.fanout as u64);
            w.u64(key.channels as u64);
            write_heuristic(w, key.heuristic);
            w.u32_slice(image.words());
        }
        w.u64(self.tenants.len() as u64);
        // Each tenant block carries a backpatched word-length prefix so
        // restore can split the roster into independent slices and decode
        // them in parallel — at snapshot scale the per-tenant payload
        // (estimator trajectory, weights, on-air program image) dominates
        // the manifest, and a sequential decode dominates the
        // restore-to-serving wall.
        for t in &self.tenants {
            let at = w.placeholder();
            let start = w.len();
            let key = boot_key(t.config());
            let boot = self
                .boot_images
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, image)| image);
            t.export_state(w, boot);
            let span = w.len() - start;
            w.patch(at, u32::try_from(span).expect("tenant block fits u32"));
        }
        Ok(())
    }

    /// Rebuilds a service from [`export_state`](Self::export_state)'s
    /// word stream. Fails closed (`None`) on any truncation or invariant
    /// violation — a roster out of id order, a boot image that does not
    /// self-validate, a tenant that does not decode. `threads` comes
    /// from the caller, not the manifest.
    pub(crate) fn import_state(r: &mut WordReader<'_>, threads: usize) -> Option<ServeLoop> {
        let seed = r.u64()?;
        let next_id = r.u64()?;
        let slices_run = r.u64()?;
        let snapshot_boots = r.u64()?;
        let slice_budget = r.opt_u64()?;
        let n_images = usize::try_from(r.u64()?).ok()?;
        let mut boot_images = Vec::with_capacity(n_images.min(64));
        let mut boot_programs = Vec::with_capacity(n_images.min(64));
        for _ in 0..n_images {
            let items = usize::try_from(r.u64()?).ok()?;
            let fanout = usize::try_from(r.u64()?).ok()?;
            let channels = usize::try_from(r.u64()?).ok()?;
            let heuristic = read_heuristic(r)?;
            let image = SnapshotImage::from_words(r.u32_vec()?);
            // Validate and decode the image exactly once here; every
            // tenant that references it clones the result instead of
            // re-walking the same megabytes.
            let view = image.view().ok()?;
            let key = BootKey {
                items,
                fanout,
                channels,
                heuristic,
            };
            if boot_images.iter().any(|(k, _)| *k == key) {
                return None;
            }
            boot_programs.push((
                key,
                CachedProgram {
                    program: view.to_program(),
                    data_nodes: view.data_nodes().collect(),
                    channels,
                },
            ));
            boot_images.push((key, image));
        }
        let n_tenants = usize::try_from(r.u64()?).ok()?;
        let mut blocks = Vec::with_capacity(n_tenants.min(1024));
        for _ in 0..n_tenants {
            let span = usize::try_from(r.u32()?).ok()?;
            blocks.push(r.take(span)?);
        }
        let tenants = decode_tenant_blocks(seed, &blocks, &boot_programs, threads)?;
        for (i, t) in tenants.iter().enumerate() {
            if t.id() >= next_id {
                return None;
            }
            if i > 0 && tenants[i - 1].id() >= t.id() {
                return None;
            }
        }
        let mut svc = ServeLoop {
            tenants,
            seed,
            threads,
            next_id,
            slices_run,
            boot_images,
            snapshot_boots,
            index_of: HashMap::new(),
            pool: None,
            sched: SchedScratch::default(),
            scheduled_slices: 0,
            slice_budget,
            admit_order: Vec::new(),
            admit_caps: Vec::new(),
        };
        svc.rebuild_index();
        Some(svc)
    }
}

/// Decodes the length-prefixed tenant blocks of a manifest, fanning the
/// work across up to `threads` scoped workers. The blocks are
/// independent by construction — each carries its full word span — so
/// order-preserving chunked decode is safe; any malformed or
/// not-fully-consumed block fails the whole restore closed (`None`).
/// Worker count is execution-only: the decoded roster is identical at
/// any `threads`.
fn decode_tenant_blocks(
    seed: u64,
    blocks: &[&[u32]],
    cache: &[(BootKey, CachedProgram)],
    threads: usize,
) -> Option<Vec<TenantRuntime>> {
    fn one(seed: u64, block: &[u32], cache: &[(BootKey, CachedProgram)]) -> Option<TenantRuntime> {
        let mut r = WordReader::new(block);
        let t = TenantRuntime::import_state(seed, &mut r, cache)?;
        r.is_empty().then_some(t)
    }
    let workers = threads.max(1).min(blocks.len());
    if workers <= 1 {
        return blocks.iter().map(|b| one(seed, b, cache)).collect();
    }
    let chunk = blocks.len().div_ceil(workers);
    let decoded: Vec<Option<TenantRuntime>> = std::thread::scope(|s| {
        let handles: Vec<_> = blocks
            .chunks(chunk)
            .map(|run| s.spawn(move || run.iter().map(|b| one(seed, b, cache)).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("tenant decode worker never panics"))
            .collect()
    });
    decoded.into_iter().collect()
}

/// Manifest tag for a [`PublishHeuristic`] (shared between the tenant
/// config section and the boot-image cache keys).
fn write_heuristic(w: &mut WordWriter, h: PublishHeuristic) {
    match h {
        PublishHeuristic::Sorting => w.u32(0),
        PublishHeuristic::Frontier => w.u32(1),
        PublishHeuristic::Shrink { max_nodes } => {
            w.u32(2);
            w.u64(max_nodes as u64);
        }
        PublishHeuristic::Preorder => w.u32(3),
    }
}

/// Inverse of [`write_heuristic`]; fails closed on unknown tags.
fn read_heuristic(r: &mut WordReader<'_>) -> Option<PublishHeuristic> {
    Some(match r.u32()? {
        0 => PublishHeuristic::Sorting,
        1 => PublishHeuristic::Frontier,
        2 => PublishHeuristic::Shrink {
            max_nodes: usize::try_from(r.u64()?).ok()?,
        },
        3 => PublishHeuristic::Preorder,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcast_types::SloSpec;
    use bcast_workloads::{DemandShape, DemandSpec};

    fn demand(rate: u32) -> DemandSpec {
        DemandSpec::flat(DemandShape::Zipf { theta: 0.9 }, rate)
    }

    fn boot(threads: usize, tenants: u64) -> ServeLoop {
        let mut svc = ServeLoop::new(0x5EED, threads);
        for id in 0..tenants {
            svc.join(TenantConfig::new(id, 32));
            svc.tenant_mut(id)
                .unwrap()
                .begin_phase(demand(120), None, SloSpec::lossless(), 6);
        }
        svc
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let snapshots = |threads: usize| {
            let mut svc = boot(threads, 5);
            svc.run_slices(6);
            svc.tenants()
                .iter()
                .map(|t| (t.id(), t.phase_snapshot()))
                .collect::<Vec<_>>()
        };
        let one = snapshots(1);
        assert_eq!(one, snapshots(2));
        assert_eq!(one, snapshots(4));
        assert_eq!(one, snapshots(16), "more threads than tenants");
    }

    #[test]
    fn pooled_executor_matches_the_scoped_oracle() {
        for threads in [1usize, 2, 4] {
            let mut pooled = boot(threads, 5);
            let mut scoped = boot(threads, 5);
            for _ in 0..6 {
                pooled.run_slice();
                scoped.run_slice_scoped();
            }
            let snap = |svc: &ServeLoop| {
                svc.tenants()
                    .iter()
                    .map(|t| (t.id(), t.phase_snapshot()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(snap(&pooled), snap(&scoped), "threads = {threads}");
            assert_eq!(pooled.slices_run(), scoped.slices_run());
        }
    }

    #[test]
    fn fewer_tenants_than_threads_leaves_lanes_empty() {
        // Regression: the old chunked split could produce fewer chunks
        // than workers; the pooled scheduler must tolerate a roster
        // smaller than the pool (idle lanes) and still match sequential.
        let mut wide = boot(8, 3);
        let mut narrow = boot(1, 3);
        for _ in 0..6 {
            wide.run_slice();
            narrow.run_slice();
        }
        let snap = |svc: &ServeLoop| {
            svc.tenants()
                .iter()
                .map(|t| (t.id(), t.phase_snapshot()))
                .collect::<Vec<_>>()
        };
        assert_eq!(snap(&wide), snap(&narrow));
        // Mid-run shrink to a single tenant: pooled path degrades to
        // sequential without touching the parked pool.
        wide.leave(1);
        wide.leave(2);
        narrow.leave(1);
        narrow.leave(2);
        for _ in 0..3 {
            wide.run_slice();
            narrow.run_slice();
        }
        assert_eq!(snap(&wide), snap(&narrow));
    }

    #[test]
    fn roster_position_does_not_change_a_tenant() {
        // Tenant 3 solo vs tenant 3 among neighbors: bit-identical.
        let mut solo = ServeLoop::new(9, 1);
        solo.join(TenantConfig::new(3, 24));
        solo.tenant_mut(3)
            .unwrap()
            .begin_phase(demand(90), None, SloSpec::lossless(), 5);
        solo.run_slices(5);

        let mut svc = ServeLoop::new(9, 2);
        for id in [0u64, 1, 3, 6] {
            svc.join(TenantConfig::new(id, 24));
            svc.tenant_mut(id)
                .unwrap()
                .begin_phase(demand(90), None, SloSpec::lossless(), 5);
        }
        svc.run_slices(5);
        assert_eq!(
            solo.tenant(3).unwrap().phase_snapshot(),
            svc.tenant(3).unwrap().phase_snapshot()
        );
    }

    #[test]
    fn boot_image_cache_serves_same_shape_joins() {
        let svc = boot(1, 5);
        // First join of the shape pays the publish; the other four
        // cold-start from its deposited image.
        assert_eq!(svc.snapshot_boots(), 4);
        let mut mixed = ServeLoop::new(1, 1);
        mixed.join(TenantConfig::new(0, 32));
        mixed.join(TenantConfig::new(1, 48));
        assert_eq!(mixed.snapshot_boots(), 0, "different shapes never share");
        mixed.join(TenantConfig::new(2, 48));
        assert_eq!(mixed.snapshot_boots(), 1);
    }

    #[test]
    fn churn_keeps_ids_stable_and_unique() {
        let mut svc = boot(1, 3);
        assert_eq!(svc.next_id(), 3);
        svc.leave(1);
        let id = svc.next_id();
        svc.join(TenantConfig::new(id, 32));
        assert_eq!(id, 3, "freed low ids are not recycled");
        assert_eq!(
            svc.tenants().iter().map(|t| t.id()).collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        assert!(!svc.leave(99), "unknown id");
    }

    #[test]
    fn id_lookups_stay_correct_across_churn() {
        let mut svc = boot(1, 4);
        // The map, not roster order, resolves ids: remove from the
        // middle, join a high id, then check every survivor.
        svc.leave(1);
        svc.join(TenantConfig::new(40, 32));
        svc.leave(0);
        for id in [2u64, 3, 40] {
            assert_eq!(svc.tenant(id).map(|t| t.id()), Some(id));
            assert_eq!(svc.tenant_mut(id).map(|t| t.id()), Some(id));
        }
        for id in [0u64, 1, 99] {
            assert!(svc.tenant(id).is_none());
            assert!(svc.tenant_mut(id).is_none());
        }
    }

    fn snap(svc: &ServeLoop) -> Vec<(u64, bcast_types::SloSnapshot)> {
        svc.tenants()
            .iter()
            .map(|t| (t.id(), t.phase_snapshot()))
            .collect()
    }

    #[test]
    fn budget_at_or_above_demand_is_a_no_op() {
        let mut capped = boot(1, 4);
        capped.set_slice_budget(Some(4 * 120));
        let mut free = boot(1, 4);
        for _ in 0..6 {
            capped.run_slice();
            free.run_slice();
        }
        assert_eq!(snap(&capped), snap(&free));
        assert!(snap(&capped).iter().all(|(_, s)| s.shed_requests == 0));
    }

    #[test]
    fn shedding_is_deterministic_across_threads_and_executors() {
        let run = |threads: usize, scoped: bool| {
            let mut svc = boot(threads, 5);
            svc.set_slice_budget(Some(300));
            for _ in 0..6 {
                if scoped {
                    svc.run_slice_scoped();
                } else {
                    svc.run_slice();
                }
            }
            snap(&svc)
        };
        let one = run(1, false);
        assert_eq!(one, run(2, false));
        assert_eq!(one, run(4, false));
        assert_eq!(one, run(2, true), "scoped oracle under budget");
        // 5 tenants at 120 against a budget of 300: every slice admits
        // exactly the budget and sheds the rest, and the floor keeps
        // delivery rate honest.
        let total_shed: u64 = one.iter().map(|(_, s)| s.shed_requests).sum();
        let total_requests: u64 = one.iter().map(|(_, s)| s.requests).sum();
        assert_eq!(total_requests, 5 * 120 * 6);
        assert_eq!(total_shed, (5 * 120 - 300) * 6);
        for (_, s) in &one {
            assert!(s.shed_requests > 0, "uniform roster: everyone clipped");
            assert!(s.delivery_rate() < 0.9, "shedding shows in the SLO");
        }
    }

    #[test]
    fn under_share_tenants_are_untouched_by_neighbors_shedding() {
        // Tenant 3 asks for far less than its fair share; three hot
        // neighbors blow the budget. Water-filling must leave tenant 3
        // bit-identical to serving solo with no budget at all.
        let script = |svc: &mut ServeLoop, id: u64, rate: u32| {
            svc.tenant_mut(id)
                .unwrap()
                .begin_phase(demand(rate), None, SloSpec::lossless(), 6)
        };
        let mut solo = ServeLoop::new(0x5EED, 1);
        solo.join(TenantConfig::new(3, 32));
        script(&mut solo, 3, 50);
        solo.run_slices(6);

        let mut crowded = ServeLoop::new(0x5EED, 2);
        for id in [0u64, 1, 2, 3] {
            crowded.join(TenantConfig::new(id, 32));
            script(&mut crowded, id, if id == 3 { 50 } else { 500 });
        }
        crowded.set_slice_budget(Some(800));
        crowded.run_slices(6);

        let quiet = crowded.tenant(3).unwrap().phase_snapshot();
        assert_eq!(solo.tenant(3).unwrap().phase_snapshot(), quiet);
        assert_eq!(quiet.shed_requests, 0);
        // The hot neighbors split the remaining 750 at the water level.
        for id in [0u64, 1, 2] {
            let s = crowded.tenant(id).unwrap().phase_snapshot();
            assert_eq!(s.requests, 500 * 6);
            assert_eq!(s.shed_requests, 250 * 6);
        }
    }

    #[test]
    fn poisoned_tenant_is_quarantined_and_neighbors_never_notice() {
        crate::silence_chaos_panic_reports();
        let mut clean = boot(2, 4);
        let mut poisoned = boot(2, 4);
        poisoned.tenant_mut(1).unwrap().inject_panic_after(2);
        for _ in 0..6 {
            clean.run_slice();
            poisoned.run_slice();
        }
        for id in [0u64, 2, 3] {
            assert_eq!(
                clean.tenant(id).unwrap().phase_snapshot(),
                poisoned.tenant(id).unwrap().phase_snapshot(),
                "neighbor {id} perturbed by the poisoned tenant"
            );
        }
        let sick = poisoned.tenant(1).unwrap().phase_snapshot();
        assert_eq!(sick.quarantined, 1);
        assert_eq!(sick.readmitted, 1, "probe after backoff readmits");
    }

    #[test]
    fn exported_state_restores_bit_identically_mid_run() {
        let mut svc = boot(2, 5);
        svc.set_slice_budget(Some(400));
        svc.run_slices(3);
        let mut w = WordWriter::new();
        svc.export_state(&mut w).unwrap();
        let words = w.into_words();
        let mut restored = ServeLoop::import_state(&mut WordReader::new(&words), 4)
            .expect("self-exported state must import");
        svc.run_slices(3);
        restored.run_slices(3);
        assert_eq!(svc.slices_run(), restored.slices_run());
        assert_eq!(snap(&svc), snap(&restored));
        assert_eq!(svc.snapshot_boots(), restored.snapshot_boots());
        // Post-restore churn must hit the boot-image cache exactly as
        // the uninterrupted run would.
        let id = restored.next_id();
        assert_eq!(id, svc.next_id());
        svc.join(TenantConfig::new(id, 32));
        restored.join(TenantConfig::new(id, 32));
        assert_eq!(svc.snapshot_boots(), restored.snapshot_boots());
        // Truncation at every cut fails closed, never half-restores.
        for cut in 0..words.len().min(200) {
            assert!(ServeLoop::import_state(&mut WordReader::new(&words[..cut]), 1).is_none());
        }
    }

    #[test]
    fn pool_stats_report_lanes_and_busy_time() {
        let mut svc = boot(1, 2);
        svc.run_slices(2);
        let seq = svc.pool_stats();
        assert_eq!(seq.workers, 1, "sequential loop never builds a pool");
        assert_eq!(seq.scheduled_slices, 0);
        assert_eq!(seq.imbalance_ppm, 0);

        let mut svc = boot(2, 4);
        svc.run_slices(4);
        let stats = svc.pool_stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.scheduled_slices, 4);
        assert_eq!(stats.busy_ns.len(), 2);
        assert!(stats.busy_ns.iter().all(|&ns| ns > 0));
        assert!(stats.imbalance_ppm <= 1_000_000);
    }
}
