//! The multi-tenant event loop: a roster of [`TenantRuntime`]s advanced
//! in lock-step time slices across a persistent worker pool.
//!
//! Parallelism is pure partitioning: tenants are self-contained (every
//! random draw derives from the tenant's own seed), workers get disjoint
//! sets of tenants, and no state is merged across tenants — so the loop
//! produces bit-identical results at any thread count, and `threads == 1`
//! never spawns at all.
//!
//! Two execution properties distinguish the steady state from a naive
//! scoped-spawn loop:
//!
//! * **Persistent workers.** A slice is a few hundred microseconds of
//!   work; spawning OS threads per slice costs a comparable amount of
//!   kernel time. The loop parks a [`WorkerPool`] for its lifetime and
//!   wakes it with an epoch handshake each slice ([`ServeLoop::run_slice`]).
//!   The original spawn-per-slice executor survives as
//!   [`run_slice_scoped`](ServeLoop::run_slice_scoped) — the equivalence
//!   oracle the pooled path is property-tested against.
//! * **Load-balanced lanes.** Tenants are assigned to worker lanes by
//!   deterministic LPT (longest processing time first) over each tenant's
//!   [`cost_hint`](TenantRuntime::cost_hint) — an EWMA of its scripted
//!   request rate — instead of contiguous roster chunks, so one hot
//!   tenant no longer serializes a whole chunk's neighbors behind it.
//!   The assignment is a pure function of deterministic hints, and lane
//!   placement cannot affect any tenant's outcome anyway (isolation), so
//!   scheduling is free to chase balance.

use crate::tenant::{RebuildLane, TenantConfig, TenantRuntime};
use bcast_channel::SnapshotImage;
use bcast_core::publish::PublishHeuristic;
use bcast_types::WorkerPool;
use std::collections::HashMap;

/// The boot-program identity: two tenants whose key matches publish the
/// exact same first program (boot weights are uniform, so the catalog
/// size, tree fanout, channel count and heuristic determine it fully).
#[derive(Debug, Clone, Copy, PartialEq)]
struct BootKey {
    items: usize,
    fanout: usize,
    channels: usize,
    heuristic: PublishHeuristic,
}

/// Reused per-slice scheduling buffers — the lane assignment is computed
/// every slice without allocating.
#[derive(Debug, Default)]
struct SchedScratch {
    /// Tenant indices sorted heaviest-first (the LPT order).
    order: Vec<u32>,
    /// Assigned lane per tenant index.
    lane_of: Vec<u32>,
    /// Accumulated cost per lane during assignment.
    lane_load: Vec<u64>,
    /// Tenant indices grouped by lane (counting-sorted, roster order
    /// within a lane).
    perm: Vec<u32>,
    /// Lane group boundaries into `perm` (`starts[l]..starts[l + 1]`).
    starts: Vec<u32>,
    /// Write cursors for the counting sort.
    cursor: Vec<u32>,
}

/// Shared mutable access to the tenant array for the pool closure. Lanes
/// index **disjoint** tenant sets (the counting-sorted permutation
/// partitions `0..n`), so no element is touched by two lanes.
struct TenantsPtr(*mut TenantRuntime);
// SAFETY: see above — all concurrent accesses go to disjoint elements.
unsafe impl Sync for TenantsPtr {}

/// Wall-clock execution statistics of the serving loop's worker pool — a
/// side channel for operators and benches, never part of a deterministic
/// outcome (lane busy times are wall time).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    /// Pool lanes (caller thread included); `1` when running sequentially.
    pub workers: usize,
    /// Cumulative busy nanoseconds per lane since the pool started.
    pub busy_ns: Vec<u64>,
    /// Load imbalance across lanes in parts-per-million:
    /// `(max − min) · 10⁶ / max` over `busy_ns` (`0` = perfectly even,
    /// also `0` before any pooled slice ran).
    pub imbalance_ppm: u64,
    /// Slices executed through the pooled load-balanced path.
    pub scheduled_slices: u64,
}

/// A live multi-tenant serving loop.
#[derive(Debug)]
pub struct ServeLoop {
    tenants: Vec<TenantRuntime>,
    seed: u64,
    threads: usize,
    next_id: u64,
    slices_run: u64,
    /// Boot snapshot images by config identity: the first tenant of a
    /// given shape pays the boot publish and deposits its image; every
    /// later join of the same shape cold-starts from the image in
    /// microseconds. Scenario churn phases are exactly this pattern.
    boot_images: Vec<(BootKey, SnapshotImage)>,
    /// Joins served from the cache (lifetime).
    snapshot_boots: u64,
    /// Tenant id → roster index, rebuilt on join/leave so id lookups on
    /// the request path are O(1) instead of a roster scan.
    index_of: HashMap<u64, usize>,
    /// Persistent workers, created on the first pooled slice and parked
    /// between slices for the life of the loop.
    pool: Option<WorkerPool>,
    sched: SchedScratch,
    scheduled_slices: u64,
}

impl ServeLoop {
    /// An empty loop. `seed` roots every tenant's derived seed; `threads`
    /// is the worker count for [`run_slice`](Self::run_slice) (`0` and
    /// `1` both mean sequential — results never depend on it).
    pub fn new(seed: u64, threads: usize) -> Self {
        ServeLoop {
            tenants: Vec::new(),
            seed,
            threads,
            next_id: 0,
            slices_run: 0,
            boot_images: Vec::new(),
            snapshot_boots: 0,
            index_of: HashMap::new(),
            pool: None,
            sched: SchedScratch::default(),
            scheduled_slices: 0,
        }
    }

    /// Boots a tenant and adds it to the roster, keeping the roster
    /// sorted by id. The tenant's seed derives from the service seed and
    /// `config.id` only — never from roster position — so a tenant
    /// behaves identically whether it serves alone or among neighbors.
    ///
    /// The boot path picks itself: if an earlier join with the same
    /// boot identity (items, fanout, channels, heuristic) deposited a
    /// snapshot image, a full-lane tenant cold-starts from it through
    /// the real binary round-trip ([`TenantRuntime::from_snapshot`]) —
    /// bit-identical serving, microseconds instead of a publish. The
    /// first join of each shape pays the boot publish and deposits its
    /// image for the rest.
    ///
    /// # Panics
    /// Panics if a tenant with the same id is already on the roster.
    pub fn join(&mut self, config: TenantConfig) -> u64 {
        let id = config.id;
        assert!(
            self.tenant(id).is_none(),
            "tenant id {id} already on the roster"
        );
        self.next_id = self.next_id.max(id + 1);
        let key = BootKey {
            items: config.items,
            fanout: config.fanout,
            channels: config.channels,
            heuristic: config.heuristic,
        };
        let cached = (config.rebuild_lane == RebuildLane::Full)
            .then(|| self.boot_images.iter().find(|(k, _)| *k == key))
            .flatten();
        let runtime = match cached {
            Some((_, image)) => {
                let view = image.view().expect("cached boot images are self-captured");
                let t = TenantRuntime::from_snapshot(config, self.seed, &view)
                    .expect("cached boot image matches the config it was keyed by");
                self.snapshot_boots += 1;
                t
            }
            None => {
                let t = TenantRuntime::new(config, self.seed);
                if t.config().rebuild_lane == RebuildLane::Full {
                    self.boot_images.push((key, t.snapshot_image()));
                }
                t
            }
        };
        let at = self.tenants.partition_point(|t| t.id() < id);
        self.tenants.insert(at, runtime);
        self.rebuild_index();
        id
    }

    /// Joins served from the boot-image cache over the loop's lifetime.
    pub fn snapshot_boots(&self) -> u64 {
        self.snapshot_boots
    }

    /// The next unused tenant id (for churn scripts that join anonymous
    /// tenants).
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Removes a tenant from the roster. Returns `false` if no tenant
    /// with that id is present.
    pub fn leave(&mut self, id: u64) -> bool {
        match self.index_of.get(&id).copied() {
            Some(at) => {
                self.tenants.remove(at);
                self.rebuild_index();
                true
            }
            None => false,
        }
    }

    /// Re-derives the id → index map after a roster mutation. O(roster),
    /// paid only on join/leave — every per-slice lookup stays O(1).
    fn rebuild_index(&mut self) {
        self.index_of.clear();
        for (i, t) in self.tenants.iter().enumerate() {
            self.index_of.insert(t.id(), i);
        }
    }

    /// The roster, in ascending id order.
    pub fn tenants(&self) -> &[TenantRuntime] {
        &self.tenants
    }

    /// Mutable roster access (for per-phase scripting).
    pub fn tenants_mut(&mut self) -> &mut [TenantRuntime] {
        &mut self.tenants
    }

    /// One tenant by id — an O(1) map lookup.
    pub fn tenant(&self, id: u64) -> Option<&TenantRuntime> {
        self.index_of.get(&id).map(|&i| &self.tenants[i])
    }

    /// One tenant by id, mutably — an O(1) map lookup.
    pub fn tenant_mut(&mut self, id: u64) -> Option<&mut TenantRuntime> {
        match self.index_of.get(&id).copied() {
            Some(i) => Some(&mut self.tenants[i]),
            None => None,
        }
    }

    /// Slices the loop has run.
    pub fn slices_run(&self) -> u64 {
        self.slices_run
    }

    /// Advances every tenant by one time slice.
    ///
    /// With more than one thread and more than one tenant, tenants are
    /// assigned to the persistent pool's lanes by deterministic LPT over
    /// their cost hints and executed in parallel; otherwise the roster
    /// runs sequentially on the calling thread. Either way the result is
    /// bit-identical to every other thread count — lanes own disjoint
    /// tenants and tenants are self-contained.
    pub fn run_slice(&mut self) {
        let lanes = self.threads.clamp(1, self.tenants.len().max(1));
        if lanes <= 1 {
            for t in &mut self.tenants {
                t.run_slice();
            }
        } else {
            let pool_lanes = self.threads;
            self.schedule(lanes, pool_lanes);
            let pool = self.pool.get_or_insert_with(|| WorkerPool::new(pool_lanes));
            let base = TenantsPtr(self.tenants.as_mut_ptr());
            // Capture the `Sync` wrapper by reference, not its raw-pointer
            // field (closure field-capture would otherwise grab the
            // non-`Sync` pointer itself).
            let base = &base;
            let perm = &self.sched.perm;
            let starts = &self.sched.starts;
            pool.run(|lane| {
                let lo = starts[lane] as usize;
                let hi = starts[lane + 1] as usize;
                for &ti in &perm[lo..hi] {
                    // SAFETY: `perm` is a permutation of the roster
                    // partitioned by lane, so every tenant index is
                    // visited by exactly one lane — accesses through the
                    // shared base pointer are disjoint.
                    unsafe { (*base.0.add(ti as usize)).run_slice() };
                }
            });
            self.scheduled_slices += 1;
        }
        self.slices_run += 1;
    }

    /// Assigns each tenant to one of `lanes` lanes by LPT: walk tenants
    /// heaviest-hint-first, always placing onto the least-loaded lane
    /// (ties → lowest lane). `pool_lanes ≥ lanes` sizes the boundary
    /// array — lanes past `lanes` get empty groups, which the pool
    /// tolerates (a roster smaller than the pool leaves workers idle).
    /// All buffers are retained scratch; no allocation in steady state.
    fn schedule(&mut self, lanes: usize, pool_lanes: usize) {
        let n = self.tenants.len();
        let tenants = &self.tenants;
        let s = &mut self.sched;
        s.order.clear();
        s.order.extend(0..n as u32);
        s.order
            .sort_unstable_by_key(|&i| (std::cmp::Reverse(tenants[i as usize].cost_hint()), i));
        s.lane_load.clear();
        s.lane_load.resize(lanes, 0);
        s.lane_of.clear();
        s.lane_of.resize(n, 0);
        for &i in &s.order {
            let lane = s
                .lane_load
                .iter()
                .enumerate()
                .min_by_key(|&(l, &c)| (c, l))
                .map(|(l, _)| l)
                .expect("lanes >= 1");
            s.lane_of[i as usize] = lane as u32;
            s.lane_load[lane] += tenants[i as usize].cost_hint();
        }
        // Counting-sort tenant indices by lane (roster order within each
        // lane group) so each lane walks one contiguous run of `perm`.
        s.starts.clear();
        s.starts.resize(pool_lanes + 1, 0);
        for &l in &s.lane_of {
            s.starts[l as usize + 1] += 1;
        }
        for k in 1..s.starts.len() {
            s.starts[k] += s.starts[k - 1];
        }
        s.cursor.clear();
        s.cursor.extend_from_slice(&s.starts);
        s.perm.clear();
        s.perm.resize(n, 0);
        for (i, &l) in s.lane_of.iter().enumerate() {
            let at = s.cursor[l as usize];
            s.perm[at as usize] = i as u32;
            s.cursor[l as usize] += 1;
        }
    }

    /// The original spawn-per-slice executor over contiguous roster
    /// chunks, retained verbatim as the equivalence oracle for the pooled
    /// path: property tests demand `run_slice` and `run_slice_scoped`
    /// produce bit-identical tenants at every thread count. Prefer
    /// [`run_slice`](Self::run_slice) — this one pays a thread spawn per
    /// worker per slice.
    pub fn run_slice_scoped(&mut self) {
        let threads = self.threads.clamp(1, self.tenants.len().max(1));
        if threads <= 1 {
            for t in &mut self.tenants {
                t.run_slice();
            }
        } else {
            let chunk = self.tenants.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for part in self.tenants.chunks_mut(chunk) {
                    scope.spawn(|| {
                        for t in part {
                            t.run_slice();
                        }
                    });
                }
            });
        }
        self.slices_run += 1;
    }

    /// Runs `n` consecutive slices.
    pub fn run_slices(&mut self, n: u32) {
        for _ in 0..n {
            self.run_slice();
        }
    }

    /// Wall-clock pool statistics (see [`PoolStats`]). Before any pooled
    /// slice has run — including always-sequential loops — reports one
    /// idle lane with no busy time.
    pub fn pool_stats(&self) -> PoolStats {
        let (workers, busy_ns) = match &self.pool {
            Some(p) => (p.size(), p.busy_ns()),
            None => (1, Vec::new()),
        };
        let max = busy_ns.iter().copied().max().unwrap_or(0);
        let min = busy_ns.iter().copied().min().unwrap_or(0);
        let imbalance_ppm = (max - min)
            .saturating_mul(1_000_000)
            .checked_div(max)
            .unwrap_or(0);
        PoolStats {
            workers,
            busy_ns,
            imbalance_ppm,
            scheduled_slices: self.scheduled_slices,
        }
    }

    /// Lifetime requests offered across the whole roster (tenants that
    /// already left are not counted).
    pub fn total_requests(&self) -> u64 {
        self.tenants.iter().map(|t| t.total_requests()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcast_types::SloSpec;
    use bcast_workloads::{DemandShape, DemandSpec};

    fn demand(rate: u32) -> DemandSpec {
        DemandSpec::flat(DemandShape::Zipf { theta: 0.9 }, rate)
    }

    fn boot(threads: usize, tenants: u64) -> ServeLoop {
        let mut svc = ServeLoop::new(0x5EED, threads);
        for id in 0..tenants {
            svc.join(TenantConfig::new(id, 32));
            svc.tenant_mut(id)
                .unwrap()
                .begin_phase(demand(120), None, SloSpec::lossless(), 6);
        }
        svc
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let snapshots = |threads: usize| {
            let mut svc = boot(threads, 5);
            svc.run_slices(6);
            svc.tenants()
                .iter()
                .map(|t| (t.id(), t.phase_snapshot()))
                .collect::<Vec<_>>()
        };
        let one = snapshots(1);
        assert_eq!(one, snapshots(2));
        assert_eq!(one, snapshots(4));
        assert_eq!(one, snapshots(16), "more threads than tenants");
    }

    #[test]
    fn pooled_executor_matches_the_scoped_oracle() {
        for threads in [1usize, 2, 4] {
            let mut pooled = boot(threads, 5);
            let mut scoped = boot(threads, 5);
            for _ in 0..6 {
                pooled.run_slice();
                scoped.run_slice_scoped();
            }
            let snap = |svc: &ServeLoop| {
                svc.tenants()
                    .iter()
                    .map(|t| (t.id(), t.phase_snapshot()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(snap(&pooled), snap(&scoped), "threads = {threads}");
            assert_eq!(pooled.slices_run(), scoped.slices_run());
        }
    }

    #[test]
    fn fewer_tenants_than_threads_leaves_lanes_empty() {
        // Regression: the old chunked split could produce fewer chunks
        // than workers; the pooled scheduler must tolerate a roster
        // smaller than the pool (idle lanes) and still match sequential.
        let mut wide = boot(8, 3);
        let mut narrow = boot(1, 3);
        for _ in 0..6 {
            wide.run_slice();
            narrow.run_slice();
        }
        let snap = |svc: &ServeLoop| {
            svc.tenants()
                .iter()
                .map(|t| (t.id(), t.phase_snapshot()))
                .collect::<Vec<_>>()
        };
        assert_eq!(snap(&wide), snap(&narrow));
        // Mid-run shrink to a single tenant: pooled path degrades to
        // sequential without touching the parked pool.
        wide.leave(1);
        wide.leave(2);
        narrow.leave(1);
        narrow.leave(2);
        for _ in 0..3 {
            wide.run_slice();
            narrow.run_slice();
        }
        assert_eq!(snap(&wide), snap(&narrow));
    }

    #[test]
    fn roster_position_does_not_change_a_tenant() {
        // Tenant 3 solo vs tenant 3 among neighbors: bit-identical.
        let mut solo = ServeLoop::new(9, 1);
        solo.join(TenantConfig::new(3, 24));
        solo.tenant_mut(3)
            .unwrap()
            .begin_phase(demand(90), None, SloSpec::lossless(), 5);
        solo.run_slices(5);

        let mut svc = ServeLoop::new(9, 2);
        for id in [0u64, 1, 3, 6] {
            svc.join(TenantConfig::new(id, 24));
            svc.tenant_mut(id)
                .unwrap()
                .begin_phase(demand(90), None, SloSpec::lossless(), 5);
        }
        svc.run_slices(5);
        assert_eq!(
            solo.tenant(3).unwrap().phase_snapshot(),
            svc.tenant(3).unwrap().phase_snapshot()
        );
    }

    #[test]
    fn boot_image_cache_serves_same_shape_joins() {
        let svc = boot(1, 5);
        // First join of the shape pays the publish; the other four
        // cold-start from its deposited image.
        assert_eq!(svc.snapshot_boots(), 4);
        let mut mixed = ServeLoop::new(1, 1);
        mixed.join(TenantConfig::new(0, 32));
        mixed.join(TenantConfig::new(1, 48));
        assert_eq!(mixed.snapshot_boots(), 0, "different shapes never share");
        mixed.join(TenantConfig::new(2, 48));
        assert_eq!(mixed.snapshot_boots(), 1);
    }

    #[test]
    fn churn_keeps_ids_stable_and_unique() {
        let mut svc = boot(1, 3);
        assert_eq!(svc.next_id(), 3);
        svc.leave(1);
        let id = svc.next_id();
        svc.join(TenantConfig::new(id, 32));
        assert_eq!(id, 3, "freed low ids are not recycled");
        assert_eq!(
            svc.tenants().iter().map(|t| t.id()).collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        assert!(!svc.leave(99), "unknown id");
    }

    #[test]
    fn id_lookups_stay_correct_across_churn() {
        let mut svc = boot(1, 4);
        // The map, not roster order, resolves ids: remove from the
        // middle, join a high id, then check every survivor.
        svc.leave(1);
        svc.join(TenantConfig::new(40, 32));
        svc.leave(0);
        for id in [2u64, 3, 40] {
            assert_eq!(svc.tenant(id).map(|t| t.id()), Some(id));
            assert_eq!(svc.tenant_mut(id).map(|t| t.id()), Some(id));
        }
        for id in [0u64, 1, 99] {
            assert!(svc.tenant(id).is_none());
            assert!(svc.tenant_mut(id).is_none());
        }
    }

    #[test]
    fn pool_stats_report_lanes_and_busy_time() {
        let mut svc = boot(1, 2);
        svc.run_slices(2);
        let seq = svc.pool_stats();
        assert_eq!(seq.workers, 1, "sequential loop never builds a pool");
        assert_eq!(seq.scheduled_slices, 0);
        assert_eq!(seq.imbalance_ppm, 0);

        let mut svc = boot(2, 4);
        svc.run_slices(4);
        let stats = svc.pool_stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.scheduled_slices, 4);
        assert_eq!(stats.busy_ns.len(), 2);
        assert!(stats.busy_ns.iter().all(|&ns| ns > 0));
        assert!(stats.imbalance_ppm <= 1_000_000);
    }
}
