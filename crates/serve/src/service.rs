//! The multi-tenant event loop: a roster of [`TenantRuntime`]s advanced
//! in lock-step time slices, sharded across scoped worker threads.
//!
//! Sharding is pure partitioning: tenants are self-contained (every
//! random draw derives from the tenant's own seed), workers get disjoint
//! contiguous chunks of the roster, and no state is merged across
//! tenants — so the loop produces bit-identical results at any thread
//! count, and `threads == 1` never spawns at all.

use crate::tenant::{RebuildLane, TenantConfig, TenantRuntime};
use bcast_channel::SnapshotImage;
use bcast_core::publish::PublishHeuristic;

/// The boot-program identity: two tenants whose key matches publish the
/// exact same first program (boot weights are uniform, so the catalog
/// size, tree fanout, channel count and heuristic determine it fully).
#[derive(Debug, Clone, Copy, PartialEq)]
struct BootKey {
    items: usize,
    fanout: usize,
    channels: usize,
    heuristic: PublishHeuristic,
}

/// A live multi-tenant serving loop.
#[derive(Debug)]
pub struct ServeLoop {
    tenants: Vec<TenantRuntime>,
    seed: u64,
    threads: usize,
    next_id: u64,
    slices_run: u64,
    /// Boot snapshot images by config identity: the first tenant of a
    /// given shape pays the boot publish and deposits its image; every
    /// later join of the same shape cold-starts from the image in
    /// microseconds. Scenario churn phases are exactly this pattern.
    boot_images: Vec<(BootKey, SnapshotImage)>,
    /// Joins served from the cache (lifetime).
    snapshot_boots: u64,
}

impl ServeLoop {
    /// An empty loop. `seed` roots every tenant's derived seed; `threads`
    /// is the worker count for [`run_slice`](Self::run_slice) (`0` and
    /// `1` both mean sequential — results never depend on it).
    pub fn new(seed: u64, threads: usize) -> Self {
        ServeLoop {
            tenants: Vec::new(),
            seed,
            threads,
            next_id: 0,
            slices_run: 0,
            boot_images: Vec::new(),
            snapshot_boots: 0,
        }
    }

    /// Boots a tenant and adds it to the roster, keeping the roster
    /// sorted by id. The tenant's seed derives from the service seed and
    /// `config.id` only — never from roster position — so a tenant
    /// behaves identically whether it serves alone or among neighbors.
    ///
    /// The boot path picks itself: if an earlier join with the same
    /// boot identity (items, fanout, channels, heuristic) deposited a
    /// snapshot image, a full-lane tenant cold-starts from it through
    /// the real binary round-trip ([`TenantRuntime::from_snapshot`]) —
    /// bit-identical serving, microseconds instead of a publish. The
    /// first join of each shape pays the boot publish and deposits its
    /// image for the rest.
    ///
    /// # Panics
    /// Panics if a tenant with the same id is already on the roster.
    pub fn join(&mut self, config: TenantConfig) -> u64 {
        let id = config.id;
        assert!(
            self.tenant(id).is_none(),
            "tenant id {id} already on the roster"
        );
        self.next_id = self.next_id.max(id + 1);
        let key = BootKey {
            items: config.items,
            fanout: config.fanout,
            channels: config.channels,
            heuristic: config.heuristic,
        };
        let cached = (config.rebuild_lane == RebuildLane::Full)
            .then(|| self.boot_images.iter().find(|(k, _)| *k == key))
            .flatten();
        let runtime = match cached {
            Some((_, image)) => {
                let view = image.view().expect("cached boot images are self-captured");
                let t = TenantRuntime::from_snapshot(config, self.seed, &view)
                    .expect("cached boot image matches the config it was keyed by");
                self.snapshot_boots += 1;
                t
            }
            None => {
                let t = TenantRuntime::new(config, self.seed);
                if t.config().rebuild_lane == RebuildLane::Full {
                    self.boot_images.push((key, t.snapshot_image()));
                }
                t
            }
        };
        let at = self.tenants.partition_point(|t| t.id() < id);
        self.tenants.insert(at, runtime);
        id
    }

    /// Joins served from the boot-image cache over the loop's lifetime.
    pub fn snapshot_boots(&self) -> u64 {
        self.snapshot_boots
    }

    /// The next unused tenant id (for churn scripts that join anonymous
    /// tenants).
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Removes a tenant from the roster. Returns `false` if no tenant
    /// with that id is present.
    pub fn leave(&mut self, id: u64) -> bool {
        match self.tenants.iter().position(|t| t.id() == id) {
            Some(at) => {
                self.tenants.remove(at);
                true
            }
            None => false,
        }
    }

    /// The roster, in ascending id order.
    pub fn tenants(&self) -> &[TenantRuntime] {
        &self.tenants
    }

    /// Mutable roster access (for per-phase scripting).
    pub fn tenants_mut(&mut self) -> &mut [TenantRuntime] {
        &mut self.tenants
    }

    /// One tenant by id.
    pub fn tenant(&self, id: u64) -> Option<&TenantRuntime> {
        self.tenants.iter().find(|t| t.id() == id)
    }

    /// One tenant by id, mutably.
    pub fn tenant_mut(&mut self, id: u64) -> Option<&mut TenantRuntime> {
        self.tenants.iter_mut().find(|t| t.id() == id)
    }

    /// Slices the loop has run.
    pub fn slices_run(&self) -> u64 {
        self.slices_run
    }

    /// Advances every tenant by one time slice, sharding the roster over
    /// the worker threads. Each worker owns a disjoint contiguous chunk,
    /// so there is no synchronization beyond the scope join and no
    /// execution-order dependence in the results.
    pub fn run_slice(&mut self) {
        let threads = self.threads.clamp(1, self.tenants.len().max(1));
        if threads <= 1 {
            for t in &mut self.tenants {
                t.run_slice();
            }
        } else {
            let chunk = self.tenants.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for part in self.tenants.chunks_mut(chunk) {
                    scope.spawn(|| {
                        for t in part {
                            t.run_slice();
                        }
                    });
                }
            });
        }
        self.slices_run += 1;
    }

    /// Runs `n` consecutive slices.
    pub fn run_slices(&mut self, n: u32) {
        for _ in 0..n {
            self.run_slice();
        }
    }

    /// Lifetime requests offered across the whole roster (tenants that
    /// already left are not counted).
    pub fn total_requests(&self) -> u64 {
        self.tenants.iter().map(|t| t.total_requests()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcast_types::SloSpec;
    use bcast_workloads::{DemandShape, DemandSpec};

    fn demand(rate: u32) -> DemandSpec {
        DemandSpec::flat(DemandShape::Zipf { theta: 0.9 }, rate)
    }

    fn boot(threads: usize, tenants: u64) -> ServeLoop {
        let mut svc = ServeLoop::new(0x5EED, threads);
        for id in 0..tenants {
            svc.join(TenantConfig::new(id, 32));
            svc.tenant_mut(id)
                .unwrap()
                .begin_phase(demand(120), None, SloSpec::lossless(), 6);
        }
        svc
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let snapshots = |threads: usize| {
            let mut svc = boot(threads, 5);
            svc.run_slices(6);
            svc.tenants()
                .iter()
                .map(|t| (t.id(), t.phase_snapshot()))
                .collect::<Vec<_>>()
        };
        let one = snapshots(1);
        assert_eq!(one, snapshots(2));
        assert_eq!(one, snapshots(4));
        assert_eq!(one, snapshots(16), "more threads than tenants");
    }

    #[test]
    fn roster_position_does_not_change_a_tenant() {
        // Tenant 3 solo vs tenant 3 among neighbors: bit-identical.
        let mut solo = ServeLoop::new(9, 1);
        solo.join(TenantConfig::new(3, 24));
        solo.tenant_mut(3)
            .unwrap()
            .begin_phase(demand(90), None, SloSpec::lossless(), 5);
        solo.run_slices(5);

        let mut svc = ServeLoop::new(9, 2);
        for id in [0u64, 1, 3, 6] {
            svc.join(TenantConfig::new(id, 24));
            svc.tenant_mut(id)
                .unwrap()
                .begin_phase(demand(90), None, SloSpec::lossless(), 5);
        }
        svc.run_slices(5);
        assert_eq!(
            solo.tenant(3).unwrap().phase_snapshot(),
            svc.tenant(3).unwrap().phase_snapshot()
        );
    }

    #[test]
    fn boot_image_cache_serves_same_shape_joins() {
        let svc = boot(1, 5);
        // First join of the shape pays the publish; the other four
        // cold-start from its deposited image.
        assert_eq!(svc.snapshot_boots(), 4);
        let mut mixed = ServeLoop::new(1, 1);
        mixed.join(TenantConfig::new(0, 32));
        mixed.join(TenantConfig::new(1, 48));
        assert_eq!(mixed.snapshot_boots(), 0, "different shapes never share");
        mixed.join(TenantConfig::new(2, 48));
        assert_eq!(mixed.snapshot_boots(), 1);
    }

    #[test]
    fn churn_keeps_ids_stable_and_unique() {
        let mut svc = boot(1, 3);
        assert_eq!(svc.next_id(), 3);
        svc.leave(1);
        let id = svc.next_id();
        svc.join(TenantConfig::new(id, 32));
        assert_eq!(id, 3, "freed low ids are not recycled");
        assert_eq!(
            svc.tenants().iter().map(|t| t.id()).collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        assert!(!svc.leave(99), "unknown id");
    }
}
