//! Interprets a [`ScenarioSpec`] against a [`ServeLoop`]: churn at phase
//! boundaries, per-tenant demand/fault/SLO scripts, and per-phase SLO
//! verdicts collected into a [`ScenarioOutcome`].
//!
//! The interpreter is the steppable [`ScenarioDriver`]: one slice per
//! [`step`](ScenarioDriver::step), phase boundaries collected as they
//! complete — so a run can be checkpointed at any slice boundary
//! ([`ScenarioDriver::checkpoint`]), killed, and restored
//! ([`ScenarioDriver::restore`]) to finish with the same outcome as a
//! run that never crashed. [`run_scenario`] is the drive-to-completion
//! convenience over it.
//!
//! The outcome derives `PartialEq`, and every number in it is either an
//! exact integer or an `f64` computed from exact integers — so "replays
//! bit-identically" is testable as plain `==` between outcomes from
//! different thread counts or reruns, and [`ScenarioOutcome::fingerprint`]
//! folds the whole outcome into one `u64` for cheap cross-run comparison.

use crate::checkpoint::{self, CheckpointError, WordReader, WordWriter, SECTION_DRIVER};
use crate::service::{PoolStats, ServeLoop};
use crate::tenant::{RebuildLane, TenantConfig};
use bcast_types::{SloSnapshot, SloSpec, SloViolation};
use bcast_workloads::{PhaseSpec, ScenarioSpec};
use std::path::{Path, PathBuf};

/// One tenant's verdict for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPhaseReport {
    /// Stable tenant id.
    pub tenant: u64,
    /// What the tenant measured over the phase.
    pub snapshot: SloSnapshot,
    /// The SLO it was held to.
    pub slo: SloSpec,
    /// Objectives violated (empty = the SLO held).
    pub violations: Vec<SloViolation>,
}

/// All tenants' verdicts for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase label from the spec.
    pub name: String,
    /// Slices the phase ran.
    pub slices: u32,
    /// Per-tenant verdicts, in ascending tenant id order.
    pub tenants: Vec<TenantPhaseReport>,
}

impl PhaseReport {
    /// Requests offered across all tenants in the phase.
    pub fn requests(&self) -> u64 {
        self.tenants.iter().map(|t| t.snapshot.requests).sum()
    }

    /// Worst per-tenant delivery rate in the phase.
    pub fn min_delivery_rate(&self) -> f64 {
        self.tenants
            .iter()
            .map(|t| t.snapshot.delivery_rate())
            .fold(1.0, f64::min)
    }
}

/// The full record of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario label from the spec.
    pub name: String,
    /// The seed the run derived all randomness from.
    pub seed: u64,
    /// Per-phase reports, in timeline order.
    pub phases: Vec<PhaseReport>,
}

impl ScenarioOutcome {
    /// Every violation in the run as `(phase, tenant, violation)`.
    pub fn violations(&self) -> Vec<(&str, u64, &SloViolation)> {
        self.phases
            .iter()
            .flat_map(|p| {
                p.tenants
                    .iter()
                    .flat_map(|t| t.violations.iter().map(|v| (p.name.as_str(), t.tenant, v)))
            })
            .collect()
    }

    /// Panics with a readable listing if any phase SLO was violated.
    pub fn assert_slos(&self) {
        let violations = self.violations();
        assert!(
            violations.is_empty(),
            "scenario '{}' (seed {:#x}) violated SLOs:\n{}",
            self.name,
            self.seed,
            violations
                .iter()
                .map(|(phase, tenant, v)| format!("  [{phase}] tenant {tenant}: {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Requests offered across the whole run.
    pub fn total_requests(&self) -> u64 {
        self.phases.iter().map(PhaseReport::requests).sum()
    }

    /// Programs published across the whole run (all tenants).
    pub fn total_rebuilds(&self) -> u64 {
        self.phases
            .iter()
            .flat_map(|p| &p.tenants)
            .map(|t| t.snapshot.rebuilds)
            .sum()
    }

    /// Slots any tenant spent without a servable program — zero by
    /// construction of the double-buffered swap.
    pub fn total_downtime_slots(&self) -> u64 {
        self.phases
            .iter()
            .flat_map(|p| &p.tenants)
            .map(|t| t.snapshot.rebuild_downtime_slots)
            .sum()
    }

    /// Worst per-tenant p99 access time (slots) across the run.
    pub fn worst_p99_slots(&self) -> u32 {
        self.phases
            .iter()
            .flat_map(|p| &p.tenants)
            .map(|t| t.snapshot.p99_slots)
            .max()
            .unwrap_or(0)
    }

    /// Folds every deterministic field of the outcome into one
    /// order-sensitive 64-bit FNV-1a digest (floats by bit pattern). Two
    /// runs are bit-identical iff their fingerprints match — the cheap
    /// cross-thread-count and cross-rerun determinism check. The
    /// snapshots' `rebuild_wall_ns` side channel is excluded, exactly as
    /// it is from `SloSnapshot`'s equality; the rebuild-lane counters
    /// (`delta_rebuilds`, `full_rebuilds`, `touched_ppm`) are *included*,
    /// so the delta/full fallback decision itself is pinned deterministic.
    /// `snapshot_loads` is also included (despite being excluded from
    /// snapshot equality): which joins took the boot-image fast path is
    /// deterministic in the scenario script, so churn runs pin it. The
    /// robustness counters (`quarantined`, `readmitted`, `shed_requests`)
    /// are included too — injected panics and budget admission are both
    /// deterministic, so crash-restore equivalence covers them.
    pub fn fingerprint(&self) -> u64 {
        fn eat(h: u64, x: u64) -> u64 {
            x.to_le_bytes().iter().fold(h, |h, &b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
            })
        }
        let mut h = self.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        h = eat(h, self.seed);
        for p in &self.phases {
            h = eat(h, u64::from(p.slices));
            for t in &p.tenants {
                let s = &t.snapshot;
                for x in [
                    t.tenant,
                    s.requests,
                    s.delivered,
                    s.failed,
                    s.retries,
                    u64::from(s.p99_slots),
                    s.mean_access_slots.to_bits(),
                    u64::from(s.max_cycle_len),
                    s.rebuilds,
                    s.degraded_rebuilds,
                    s.rebuild_downtime_slots,
                    s.delta_rebuilds,
                    s.full_rebuilds,
                    s.touched_ppm,
                    s.snapshot_loads,
                    s.quarantined,
                    s.readmitted,
                    s.shed_requests,
                    t.violations.len() as u64,
                ] {
                    h = eat(h, x);
                }
            }
        }
        h
    }
}

/// Tenant configuration the runner boots every scenario tenant with.
fn tenant_config(id: u64, spec: &ScenarioSpec) -> TenantConfig {
    let mut config = TenantConfig::new(id, spec.items_per_tenant);
    config.fanout = spec.fanout;
    config.channels = spec.channels;
    if let Some(max_touched) = spec.delta_max_touched {
        config.rebuild_lane = RebuildLane::Delta { max_touched };
    }
    config
}

/// Applies one phase's churn and scripts to the roster.
fn begin_phase(svc: &mut ServeLoop, phase: &PhaseSpec, spec: &ScenarioSpec) {
    for _ in 0..phase.join {
        let id = svc.next_id();
        svc.join(tenant_config(id, spec));
    }
    for _ in 0..phase.leave {
        let Some(last) = svc.tenants().last().map(|t| t.id()) else {
            break;
        };
        svc.leave(last);
    }
    for t in svc.tenants_mut() {
        let id = t.id();
        t.begin_phase(
            phase.demand_for(id),
            phase.faults_for(id),
            phase.slo_for(id),
            phase.slices,
        );
        if let Some(at) = phase.poison_for(id) {
            t.inject_panic_after(u64::from(at));
        }
    }
}

/// Runs a scenario to completion: boots `spec.tenants` tenants with ids
/// `0..tenants`, then for each phase applies churn, scripts every tenant
/// and advances the loop `slices` times. Deterministic in `(spec, seed)`
/// alone — `threads` only partitions work.
pub fn run_scenario(spec: &ScenarioSpec, seed: u64, threads: usize) -> ScenarioOutcome {
    run_scenario_with_stats(spec, seed, threads).0
}

/// [`run_scenario`] plus the serving loop's wall-clock [`PoolStats`] —
/// the observability side channel (lane busy times, imbalance, pooled
/// slice count) that the deterministic outcome deliberately excludes.
/// The outcome half is bit-identical to [`run_scenario`]'s.
pub fn run_scenario_with_stats(
    spec: &ScenarioSpec,
    seed: u64,
    threads: usize,
) -> (ScenarioOutcome, PoolStats) {
    let mut driver = ScenarioDriver::new(spec.clone(), seed, threads);
    while driver.step() {}
    driver.into_outcome_with_stats()
}

/// A scenario run held open between slices: the interpreter state
/// ([`run_scenario`] drives one to completion) exposed so callers can
/// advance one slice at a time and checkpoint at any boundary.
///
/// The driver owns its spec and a [`ServeLoop`]; phase churn and tenant
/// scripts apply exactly as the closed-loop runner applies them, so a
/// stepped run, a checkpoint-restored run and [`run_scenario`] all
/// produce bit-identical [`ScenarioOutcome`]s for the same `(spec,
/// seed)`.
#[derive(Debug)]
pub struct ScenarioDriver {
    spec: ScenarioSpec,
    svc: ServeLoop,
    seed: u64,
    /// Index of the phase currently running (== `spec.phases.len()` when
    /// the run is complete).
    phase_idx: usize,
    /// Slices already run inside the current phase.
    slices_done: u32,
    /// Reports of phases that finished, in timeline order.
    completed: Vec<PhaseReport>,
}

impl ScenarioDriver {
    /// Boots the scenario's initial roster and applies the first phase's
    /// scripts. `threads` is an execution parameter only.
    pub fn new(spec: ScenarioSpec, seed: u64, threads: usize) -> Self {
        let mut svc = ServeLoop::new(seed, threads);
        svc.set_slice_budget(spec.slice_budget);
        for id in 0..spec.tenants as u64 {
            svc.join(tenant_config(id, &spec));
        }
        let mut driver = ScenarioDriver {
            spec,
            svc,
            seed,
            phase_idx: 0,
            slices_done: 0,
            completed: Vec::new(),
        };
        if !driver.spec.phases.is_empty() {
            begin_phase(&mut driver.svc, &driver.spec.phases[0], &driver.spec);
        }
        driver.finish_completed_phases();
        driver
    }

    /// Runs one slice, collecting any phase that completes (and applying
    /// the next phase's churn and scripts). Returns `false` once the
    /// scenario is complete — calling again is a no-op.
    pub fn step(&mut self) -> bool {
        if self.is_done() {
            return false;
        }
        self.svc.run_slice();
        self.slices_done += 1;
        self.finish_completed_phases();
        !self.is_done()
    }

    /// Collects every phase the slice counter has closed out, advancing
    /// through zero-slice phases in the same pass.
    fn finish_completed_phases(&mut self) {
        while self.phase_idx < self.spec.phases.len()
            && self.slices_done >= self.spec.phases[self.phase_idx].slices
        {
            let phase = &self.spec.phases[self.phase_idx];
            self.completed.push(PhaseReport {
                name: phase.name.to_string(),
                slices: phase.slices,
                tenants: self
                    .svc
                    .tenants()
                    .iter()
                    .map(|t| TenantPhaseReport {
                        tenant: t.id(),
                        snapshot: t.phase_snapshot(),
                        slo: t.slo(),
                        violations: t.phase_violations(),
                    })
                    .collect(),
            });
            self.phase_idx += 1;
            self.slices_done = 0;
            if self.phase_idx < self.spec.phases.len() {
                begin_phase(&mut self.svc, &self.spec.phases[self.phase_idx], &self.spec);
            }
        }
    }

    /// `true` once every phase has run and been collected.
    pub fn is_done(&self) -> bool {
        self.phase_idx >= self.spec.phases.len()
    }

    /// The underlying service (read-only; stepping owns mutation).
    pub fn service(&self) -> &ServeLoop {
        &self.svc
    }

    /// Reports of the phases completed so far, in timeline order.
    pub fn completed_phases(&self) -> &[PhaseReport] {
        &self.completed
    }

    /// The outcome of the run so far (all phases when
    /// [`is_done`](Self::is_done), the completed prefix otherwise).
    pub fn into_outcome(self) -> ScenarioOutcome {
        ScenarioOutcome {
            name: self.spec.name.to_string(),
            seed: self.seed,
            phases: self.completed,
        }
    }

    /// [`into_outcome`](Self::into_outcome) plus the pool's wall-clock
    /// side channel.
    pub fn into_outcome_with_stats(self) -> (ScenarioOutcome, PoolStats) {
        let stats = self.svc.pool_stats();
        (self.into_outcome(), stats)
    }

    /// Checkpoints the whole run — service state plus the driver's phase
    /// cursor and completed reports — as an atomic manifest in `dir`.
    /// Restorable by [`restore`](Self::restore) with the same spec.
    ///
    /// # Errors
    /// Propagates [`ServeLoop::checkpoint`]'s error conditions.
    pub fn checkpoint(&self, dir: impl AsRef<Path>) -> Result<PathBuf, CheckpointError> {
        checkpoint::write_driver_manifest(dir.as_ref(), self.svc.slices_run(), |w| {
            w.u32(SECTION_DRIVER);
            self.svc.export_state(w)?;
            w.u64(spec_tag(&self.spec));
            w.u64(self.phase_idx as u64);
            w.u32(self.slices_done);
            w.u64(self.completed.len() as u64);
            for report in &self.completed {
                w.u64(report.tenants.len() as u64);
                for t in &report.tenants {
                    w.u64(t.tenant);
                    w.f64(t.slo.min_delivery_rate);
                    w.f64(t.slo.max_p99_cycles);
                    w.u64(t.slo.max_rebuild_downtime_slots);
                    write_snapshot(w, &t.snapshot);
                }
            }
            Ok(())
        })
    }

    /// Restores a run from the newest valid driver manifest in `dir`,
    /// resuming mid-phase at the checkpointed slice. Corrupt or torn
    /// newer generations fall back to older ones, exactly like
    /// [`ServeLoop::restore`]. The caller supplies the spec (manifests
    /// carry a structural tag of it, not the spec itself); a tag
    /// mismatch is [`CheckpointError::SpecMismatch`], never a silent
    /// cross-scenario resume.
    pub fn restore(
        dir: impl AsRef<Path>,
        spec: &ScenarioSpec,
        threads: usize,
    ) -> Result<ScenarioDriver, CheckpointError> {
        let mut mismatched = false;
        let result = checkpoint::restore_first_valid(dir.as_ref(), |r| {
            Self::decode(r, spec, threads, &mut mismatched)
        });
        match result {
            Err(CheckpointError::NoValidManifest) if mismatched => {
                Err(CheckpointError::SpecMismatch)
            }
            other => other,
        }
    }

    /// Decodes one manifest payload into a driver. `None` falls back to
    /// the next generation; `mismatched` records that an otherwise-valid
    /// manifest belonged to a different spec.
    fn decode(
        r: &mut WordReader<'_>,
        spec: &ScenarioSpec,
        threads: usize,
        mismatched: &mut bool,
    ) -> Option<ScenarioDriver> {
        if r.u32()? != SECTION_DRIVER {
            return None;
        }
        let svc = ServeLoop::import_state(r, threads)?;
        if r.u64()? != spec_tag(spec) {
            *mismatched = true;
            return None;
        }
        let phase_idx = usize::try_from(r.u64()?).ok()?;
        if phase_idx > spec.phases.len() {
            return None;
        }
        let slices_done = r.u32()?;
        if phase_idx < spec.phases.len() && slices_done >= spec.phases[phase_idx].slices {
            return None;
        }
        let n_reports = usize::try_from(r.u64()?).ok()?;
        // Every phase before the cursor has exactly one report.
        if n_reports != phase_idx {
            return None;
        }
        let mut completed = Vec::with_capacity(n_reports);
        for phase in &spec.phases[..n_reports] {
            let n_tenants = usize::try_from(r.u64()?).ok()?;
            let mut tenants = Vec::with_capacity(n_tenants.min(1024));
            for _ in 0..n_tenants {
                let tenant = r.u64()?;
                let slo = SloSpec {
                    min_delivery_rate: r.f64()?,
                    max_p99_cycles: r.f64()?,
                    max_rebuild_downtime_slots: r.u64()?,
                };
                let snapshot = read_snapshot(r)?;
                // Verdicts are derived data: recompute instead of trust.
                let violations = snapshot.check(&slo);
                tenants.push(TenantPhaseReport {
                    tenant,
                    snapshot,
                    slo,
                    violations,
                });
            }
            completed.push(PhaseReport {
                name: phase.name.to_string(),
                slices: phase.slices,
                tenants,
            });
        }
        Some(ScenarioDriver {
            spec: spec.clone(),
            seed: svc.seed(),
            svc,
            phase_idx,
            slices_done,
            completed,
        })
    }
}

/// Folds the structural identity of a spec into a tag the manifest
/// carries: a restore against a different scenario shape must fail
/// loudly, not resume into the wrong script. Field *values* that tenants
/// consume every slice (rates, fault probabilities) live in the restored
/// tenant state itself, so the tag only needs to pin the shape.
fn spec_tag(spec: &ScenarioSpec) -> u64 {
    fn eat(h: u64, x: u64) -> u64 {
        x.to_le_bytes().iter().fold(h, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        })
    }
    let mut h = spec.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    });
    h = eat(h, spec.tenants as u64);
    h = eat(h, spec.items_per_tenant as u64);
    h = eat(h, spec.fanout as u64);
    h = eat(h, spec.channels as u64);
    h = eat(h, spec.delta_max_touched.map_or(0, f64::to_bits));
    h = eat(h, spec.slice_budget.unwrap_or(u64::MAX));
    h = eat(h, spec.phases.len() as u64);
    for p in &spec.phases {
        h = p.name.bytes().fold(h, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        h = eat(h, u64::from(p.slices));
        h = eat(h, p.join as u64);
        h = eat(h, p.leave as u64);
        h = eat(h, p.overrides.len() as u64);
    }
    h
}

/// Serializes every field of a snapshot (wall-clock side channels
/// included — a restored report prints what the original measured).
fn write_snapshot(w: &mut WordWriter, s: &SloSnapshot) {
    w.u64(s.requests);
    w.u64(s.delivered);
    w.u64(s.failed);
    w.u64(s.retries);
    w.u32(s.p99_slots);
    w.f64(s.mean_access_slots);
    w.u32(s.max_cycle_len);
    w.u64(s.rebuilds);
    w.u64(s.degraded_rebuilds);
    w.u64(s.rebuild_downtime_slots);
    w.u64(s.delta_rebuilds);
    w.u64(s.full_rebuilds);
    w.u64(s.touched_ppm);
    w.u64(s.snapshot_loads);
    w.u64(s.skipped_rebuilds);
    w.u64(s.rebuild_wall_ns);
    w.u64(s.alias_rebuilds);
    w.u64(s.quarantined);
    w.u64(s.readmitted);
    w.u64(s.shed_requests);
}

/// Inverse of [`write_snapshot`].
fn read_snapshot(r: &mut WordReader<'_>) -> Option<SloSnapshot> {
    Some(SloSnapshot {
        requests: r.u64()?,
        delivered: r.u64()?,
        failed: r.u64()?,
        retries: r.u64()?,
        p99_slots: r.u32()?,
        mean_access_slots: r.f64()?,
        max_cycle_len: r.u32()?,
        rebuilds: r.u64()?,
        degraded_rebuilds: r.u64()?,
        rebuild_downtime_slots: r.u64()?,
        delta_rebuilds: r.u64()?,
        full_rebuilds: r.u64()?,
        touched_ppm: r.u64()?,
        snapshot_loads: r.u64()?,
        skipped_rebuilds: r.u64()?,
        rebuild_wall_ns: r.u64()?,
        alias_rebuilds: r.u64()?,
        quarantined: r.u64()?,
        readmitted: r.u64()?,
        shed_requests: r.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcast_workloads::{flash_crowd, overload_storm, poison_pill, tenant_churn};

    #[test]
    fn runner_follows_the_phase_timeline() {
        let spec = flash_crowd(3, 32, 80, 6);
        let out = run_scenario(&spec, 0xF1A5, 1);
        assert_eq!(out.phases.len(), 3);
        assert_eq!(out.phases[0].name, "calm");
        // The spike phase multiplies tenant 0's rate by 8.
        let calm = out.phases[0].tenants[0].snapshot.requests;
        let spike = out.phases[1].tenants[0].snapshot.requests;
        assert_eq!(spike, calm * 8);
        out.assert_slos();
        assert_eq!(out.total_downtime_slots(), 0);
    }

    #[test]
    fn churn_changes_the_roster_between_phases() {
        let spec = tenant_churn(3, 32, 60, 5);
        let out = run_scenario(&spec, 7, 2);
        assert_eq!(out.phases[0].tenants.len(), 3);
        assert_eq!(out.phases[1].tenants.len(), 5, "2 joined");
        assert_eq!(out.phases[2].tenants.len(), 3, "2 newest left");
        let ids: Vec<u64> = out.phases[2].tenants.iter().map(|t| t.tenant).collect();
        assert_eq!(ids, vec![0, 1, 2], "original cohort keeps its ids");
        out.assert_slos();
    }

    #[test]
    fn churn_joins_cold_start_from_the_boot_image_cache() {
        let spec = tenant_churn(3, 32, 60, 5);
        let out = run_scenario(&spec, 7, 1);
        // The three boot tenants share one shape: tenant 0 publishes,
        // tenants 1-2 load its image; the join phase's two newcomers
        // load it too. Loads land in the first window begun after boot.
        let steady: u64 = out.phases[0]
            .tenants
            .iter()
            .map(|t| t.snapshot.snapshot_loads)
            .sum();
        assert_eq!(steady, 2);
        let joiners: Vec<u64> = out.phases[1]
            .tenants
            .iter()
            .filter(|t| t.tenant >= 3)
            .map(|t| t.snapshot.snapshot_loads)
            .collect();
        assert_eq!(joiners, vec![1, 1]);
        out.assert_slos();
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bcast-drv-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn stepped_driver_matches_the_closed_loop_runner() {
        let spec = flash_crowd(3, 24, 40, 4);
        let baseline = run_scenario(&spec, 0xC0DE, 2);
        let mut driver = ScenarioDriver::new(spec.clone(), 0xC0DE, 1);
        let mut steps = 0;
        while driver.step() {
            steps += 1;
        }
        assert_eq!(steps + 1, spec.total_slices());
        assert!(driver.is_done());
        assert_eq!(driver.into_outcome(), baseline);
    }

    #[test]
    fn checkpointed_driver_finishes_bit_identically() {
        let spec = flash_crowd(3, 24, 40, 4);
        let baseline = run_scenario(&spec, 0xBEEF, 1);
        let dir = temp_dir("resume");
        let mut driver = ScenarioDriver::new(spec.clone(), 0xBEEF, 1);
        for _ in 0..5 {
            driver.step();
        }
        driver.checkpoint(&dir).unwrap();
        drop(driver); // the crash
        let mut restored = ScenarioDriver::restore(&dir, &spec, 4).unwrap();
        assert_eq!(restored.service().slices_run(), 5);
        assert_eq!(
            restored.completed_phases().len(),
            1,
            "phase 0 is in the manifest"
        );
        while restored.step() {}
        let out = restored.into_outcome();
        assert_eq!(out, baseline);
        assert_eq!(out.fingerprint(), baseline.fingerprint());

        // Restoring against a different scenario shape fails loudly.
        let other = tenant_churn(3, 24, 40, 4);
        assert_eq!(
            ScenarioDriver::restore(&dir, &other, 1).err(),
            Some(crate::CheckpointError::SpecMismatch)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overload_storm_sheds_the_storm_and_spares_neighbors() {
        let spec = overload_storm(4, 32, 60, 5);
        let out = run_scenario(&spec, 0x570, 2);
        out.assert_slos();
        let storm = &out.phases[1];
        let spiker = &storm.tenants[0].snapshot;
        assert!(spiker.shed_requests > 0, "the storm is clipped");
        assert!(spiker.delivery_rate() < 1.0);
        for t in &storm.tenants[1..] {
            assert_eq!(t.snapshot.shed_requests, 0, "neighbors admitted in full");
            assert_eq!(t.snapshot.delivery_rate(), 1.0);
        }
        for phase in [&out.phases[0], &out.phases[2]] {
            assert!(
                phase.tenants.iter().all(|t| t.snapshot.shed_requests == 0),
                "calm phases fit under the budget"
            );
        }
    }

    #[test]
    fn poison_pill_quarantines_without_any_slo_damage() {
        crate::silence_chaos_panic_reports();
        let spec = poison_pill(3, 32, 60, 6);
        let out = run_scenario(&spec, 0xDEAD, 2);
        out.assert_slos();
        let poisoned = &out.phases[1].tenants[0].snapshot;
        assert_eq!(poisoned.quarantined, 1);
        assert_eq!(poisoned.readmitted, 1);
        for t in &out.phases[1].tenants[1..] {
            assert_eq!(t.snapshot.quarantined, 0);
        }
        // Determinism holds through injected panics.
        assert_eq!(out, run_scenario(&spec, 0xDEAD, 4));
    }

    #[test]
    fn fingerprint_distinguishes_runs_and_matches_replays() {
        let spec = flash_crowd(2, 24, 50, 4);
        let a = run_scenario(&spec, 11, 1);
        let b = run_scenario(&spec, 11, 4);
        assert_eq!(a, b, "thread count is invisible");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = run_scenario(&spec, 12, 1);
        assert_ne!(a.fingerprint(), c.fingerprint(), "seed changes the run");
    }
}
