//! Interprets a [`ScenarioSpec`] against a [`ServeLoop`]: churn at phase
//! boundaries, per-tenant demand/fault/SLO scripts, and per-phase SLO
//! verdicts collected into a [`ScenarioOutcome`].
//!
//! The outcome derives `PartialEq`, and every number in it is either an
//! exact integer or an `f64` computed from exact integers — so "replays
//! bit-identically" is testable as plain `==` between outcomes from
//! different thread counts or reruns, and [`ScenarioOutcome::fingerprint`]
//! folds the whole outcome into one `u64` for cheap cross-run comparison.

use crate::service::{PoolStats, ServeLoop};
use crate::tenant::{RebuildLane, TenantConfig};
use bcast_types::{SloSnapshot, SloSpec, SloViolation};
use bcast_workloads::{PhaseSpec, ScenarioSpec};

/// One tenant's verdict for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPhaseReport {
    /// Stable tenant id.
    pub tenant: u64,
    /// What the tenant measured over the phase.
    pub snapshot: SloSnapshot,
    /// The SLO it was held to.
    pub slo: SloSpec,
    /// Objectives violated (empty = the SLO held).
    pub violations: Vec<SloViolation>,
}

/// All tenants' verdicts for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase label from the spec.
    pub name: String,
    /// Slices the phase ran.
    pub slices: u32,
    /// Per-tenant verdicts, in ascending tenant id order.
    pub tenants: Vec<TenantPhaseReport>,
}

impl PhaseReport {
    /// Requests offered across all tenants in the phase.
    pub fn requests(&self) -> u64 {
        self.tenants.iter().map(|t| t.snapshot.requests).sum()
    }

    /// Worst per-tenant delivery rate in the phase.
    pub fn min_delivery_rate(&self) -> f64 {
        self.tenants
            .iter()
            .map(|t| t.snapshot.delivery_rate())
            .fold(1.0, f64::min)
    }
}

/// The full record of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario label from the spec.
    pub name: String,
    /// The seed the run derived all randomness from.
    pub seed: u64,
    /// Per-phase reports, in timeline order.
    pub phases: Vec<PhaseReport>,
}

impl ScenarioOutcome {
    /// Every violation in the run as `(phase, tenant, violation)`.
    pub fn violations(&self) -> Vec<(&str, u64, &SloViolation)> {
        self.phases
            .iter()
            .flat_map(|p| {
                p.tenants
                    .iter()
                    .flat_map(|t| t.violations.iter().map(|v| (p.name.as_str(), t.tenant, v)))
            })
            .collect()
    }

    /// Panics with a readable listing if any phase SLO was violated.
    pub fn assert_slos(&self) {
        let violations = self.violations();
        assert!(
            violations.is_empty(),
            "scenario '{}' (seed {:#x}) violated SLOs:\n{}",
            self.name,
            self.seed,
            violations
                .iter()
                .map(|(phase, tenant, v)| format!("  [{phase}] tenant {tenant}: {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Requests offered across the whole run.
    pub fn total_requests(&self) -> u64 {
        self.phases.iter().map(PhaseReport::requests).sum()
    }

    /// Programs published across the whole run (all tenants).
    pub fn total_rebuilds(&self) -> u64 {
        self.phases
            .iter()
            .flat_map(|p| &p.tenants)
            .map(|t| t.snapshot.rebuilds)
            .sum()
    }

    /// Slots any tenant spent without a servable program — zero by
    /// construction of the double-buffered swap.
    pub fn total_downtime_slots(&self) -> u64 {
        self.phases
            .iter()
            .flat_map(|p| &p.tenants)
            .map(|t| t.snapshot.rebuild_downtime_slots)
            .sum()
    }

    /// Worst per-tenant p99 access time (slots) across the run.
    pub fn worst_p99_slots(&self) -> u32 {
        self.phases
            .iter()
            .flat_map(|p| &p.tenants)
            .map(|t| t.snapshot.p99_slots)
            .max()
            .unwrap_or(0)
    }

    /// Folds every deterministic field of the outcome into one
    /// order-sensitive 64-bit FNV-1a digest (floats by bit pattern). Two
    /// runs are bit-identical iff their fingerprints match — the cheap
    /// cross-thread-count and cross-rerun determinism check. The
    /// snapshots' `rebuild_wall_ns` side channel is excluded, exactly as
    /// it is from `SloSnapshot`'s equality; the rebuild-lane counters
    /// (`delta_rebuilds`, `full_rebuilds`, `touched_ppm`) are *included*,
    /// so the delta/full fallback decision itself is pinned deterministic.
    /// `snapshot_loads` is also included (despite being excluded from
    /// snapshot equality): which joins took the boot-image fast path is
    /// deterministic in the scenario script, so churn runs pin it.
    pub fn fingerprint(&self) -> u64 {
        fn eat(h: u64, x: u64) -> u64 {
            x.to_le_bytes().iter().fold(h, |h, &b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
            })
        }
        let mut h = self.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        h = eat(h, self.seed);
        for p in &self.phases {
            h = eat(h, u64::from(p.slices));
            for t in &p.tenants {
                let s = &t.snapshot;
                for x in [
                    t.tenant,
                    s.requests,
                    s.delivered,
                    s.failed,
                    s.retries,
                    u64::from(s.p99_slots),
                    s.mean_access_slots.to_bits(),
                    u64::from(s.max_cycle_len),
                    s.rebuilds,
                    s.degraded_rebuilds,
                    s.rebuild_downtime_slots,
                    s.delta_rebuilds,
                    s.full_rebuilds,
                    s.touched_ppm,
                    s.snapshot_loads,
                    t.violations.len() as u64,
                ] {
                    h = eat(h, x);
                }
            }
        }
        h
    }
}

/// Tenant configuration the runner boots every scenario tenant with.
fn tenant_config(id: u64, spec: &ScenarioSpec) -> TenantConfig {
    let mut config = TenantConfig::new(id, spec.items_per_tenant);
    config.fanout = spec.fanout;
    config.channels = spec.channels;
    if let Some(max_touched) = spec.delta_max_touched {
        config.rebuild_lane = RebuildLane::Delta { max_touched };
    }
    config
}

/// Applies one phase's churn and scripts to the roster.
fn begin_phase(svc: &mut ServeLoop, phase: &PhaseSpec, spec: &ScenarioSpec) {
    for _ in 0..phase.join {
        let id = svc.next_id();
        svc.join(tenant_config(id, spec));
    }
    for _ in 0..phase.leave {
        let Some(last) = svc.tenants().last().map(|t| t.id()) else {
            break;
        };
        svc.leave(last);
    }
    for t in svc.tenants_mut() {
        let id = t.id();
        t.begin_phase(
            phase.demand_for(id),
            phase.faults_for(id),
            phase.slo_for(id),
            phase.slices,
        );
    }
}

/// Runs a scenario to completion: boots `spec.tenants` tenants with ids
/// `0..tenants`, then for each phase applies churn, scripts every tenant
/// and advances the loop `slices` times. Deterministic in `(spec, seed)`
/// alone — `threads` only partitions work.
pub fn run_scenario(spec: &ScenarioSpec, seed: u64, threads: usize) -> ScenarioOutcome {
    run_scenario_with_stats(spec, seed, threads).0
}

/// [`run_scenario`] plus the serving loop's wall-clock [`PoolStats`] —
/// the observability side channel (lane busy times, imbalance, pooled
/// slice count) that the deterministic outcome deliberately excludes.
/// The outcome half is bit-identical to [`run_scenario`]'s.
pub fn run_scenario_with_stats(
    spec: &ScenarioSpec,
    seed: u64,
    threads: usize,
) -> (ScenarioOutcome, PoolStats) {
    let mut svc = ServeLoop::new(seed, threads);
    for id in 0..spec.tenants as u64 {
        svc.join(tenant_config(id, spec));
    }
    let mut phases = Vec::with_capacity(spec.phases.len());
    for phase in &spec.phases {
        begin_phase(&mut svc, phase, spec);
        svc.run_slices(phase.slices);
        phases.push(PhaseReport {
            name: phase.name.to_string(),
            slices: phase.slices,
            tenants: svc
                .tenants()
                .iter()
                .map(|t| TenantPhaseReport {
                    tenant: t.id(),
                    snapshot: t.phase_snapshot(),
                    slo: t.slo(),
                    violations: t.phase_violations(),
                })
                .collect(),
        });
    }
    let stats = svc.pool_stats();
    (
        ScenarioOutcome {
            name: spec.name.to_string(),
            seed,
            phases,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcast_workloads::{flash_crowd, tenant_churn};

    #[test]
    fn runner_follows_the_phase_timeline() {
        let spec = flash_crowd(3, 32, 80, 6);
        let out = run_scenario(&spec, 0xF1A5, 1);
        assert_eq!(out.phases.len(), 3);
        assert_eq!(out.phases[0].name, "calm");
        // The spike phase multiplies tenant 0's rate by 8.
        let calm = out.phases[0].tenants[0].snapshot.requests;
        let spike = out.phases[1].tenants[0].snapshot.requests;
        assert_eq!(spike, calm * 8);
        out.assert_slos();
        assert_eq!(out.total_downtime_slots(), 0);
    }

    #[test]
    fn churn_changes_the_roster_between_phases() {
        let spec = tenant_churn(3, 32, 60, 5);
        let out = run_scenario(&spec, 7, 2);
        assert_eq!(out.phases[0].tenants.len(), 3);
        assert_eq!(out.phases[1].tenants.len(), 5, "2 joined");
        assert_eq!(out.phases[2].tenants.len(), 3, "2 newest left");
        let ids: Vec<u64> = out.phases[2].tenants.iter().map(|t| t.tenant).collect();
        assert_eq!(ids, vec![0, 1, 2], "original cohort keeps its ids");
        out.assert_slos();
    }

    #[test]
    fn churn_joins_cold_start_from_the_boot_image_cache() {
        let spec = tenant_churn(3, 32, 60, 5);
        let out = run_scenario(&spec, 7, 1);
        // The three boot tenants share one shape: tenant 0 publishes,
        // tenants 1-2 load its image; the join phase's two newcomers
        // load it too. Loads land in the first window begun after boot.
        let steady: u64 = out.phases[0]
            .tenants
            .iter()
            .map(|t| t.snapshot.snapshot_loads)
            .sum();
        assert_eq!(steady, 2);
        let joiners: Vec<u64> = out.phases[1]
            .tenants
            .iter()
            .filter(|t| t.tenant >= 3)
            .map(|t| t.snapshot.snapshot_loads)
            .collect();
        assert_eq!(joiners, vec![1, 1]);
        out.assert_slos();
    }

    #[test]
    fn fingerprint_distinguishes_runs_and_matches_replays() {
        let spec = flash_crowd(2, 24, 50, 4);
        let a = run_scenario(&spec, 11, 1);
        let b = run_scenario(&spec, 11, 4);
        assert_eq!(a, b, "thread count is invisible");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = run_scenario(&spec, 12, 1);
        assert_ne!(a.fingerprint(), c.fingerprint(), "seed changes the run");
    }
}
