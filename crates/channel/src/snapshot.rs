//! Zero-copy program snapshots: a versioned, checksummed, fixed-layout
//! binary image of a [`CompiledProgram`] plus the serving metadata a
//! tenant needs to cold-start.
//!
//! A cold tenant boot normally pays a full publish — heuristic schedule,
//! feasibility sweep, route compilation — which is ~0.4 s warm at one
//! million items. Everything that publish produces, though, is a few
//! flat `u32` arrays; persisting them turns the next boot into a file
//! map, a checksum, and a column widen. The image is *fixed-layout by
//! construction*: loading is a bounds-check-and-cast, never a parse, and
//! [`MappedSnapshot`] validates the page cache's copy in place without
//! ever materializing a second one.
//!
//! # Format
//!
//! A snapshot is a sequence of little-endian `u32` words:
//!
//! ```text
//! word  0   magic        0x42435053
//! word  1   version      1
//! word  2   endian mark  0x01020304 (readers on any byte order agree)
//! word  3   k            broadcast channels of the publish
//! word  4   cycle_len    slots per broadcast cycle
//! word  5   n            nodes covered by the route tables
//! word  6   num_data     routed data nodes
//! word  7   reserved     0
//! then      slot[n]      T(Di) column (1-based; 0 = unrouted)
//! then      route[n]     path_len in the low 16 bits, channel switches
//!                        in the high 16 (both are per-access counters
//!                        bounded by the tree height, so 16 bits each is
//!                        generous — capture asserts the bound)
//! then      data[num_data] data-node ids, item order (the tenant's
//!                          item → node map)
//! last      crc          CRC-32C over every preceding word's LE bytes
//! ```
//!
//! Packing the two metric counters into one route word cuts the 1M-item
//! image from ~20 MB to ~15 MB; at cold-start the dominant cost is
//! faulting the image through the CPU, so bytes saved are microseconds
//! saved.
//!
//! # Versioning and endianness
//!
//! The header pins all three compatibility axes. An unknown `magic` or
//! `version` fails closed ([`SnapshotError::BadMagic`] /
//! [`SnapshotError::UnsupportedVersion`]) — version 1 readers never
//! guess at future layouts. The endian mark is written as the native
//! byte interpretation of `0x01020304`; since the format is defined as
//! little-endian and [`SnapshotImage::from_bytes`] decodes words with
//! explicit LE reads, the mark is a tripwire for images produced by a
//! (hypothetical) writer that dumped native big-endian memory instead
//! of the defined layout.
//!
//! # Integrity
//!
//! The trailing word seals the image with CRC-32C (Castagnoli, the
//! polynomial with hardware support on x86_64 SSE4.2 — the checker runs
//! three interleaved `crc32` instruction streams merged with a GF(2)
//! combine when available and a compile-time table otherwise, and the
//! two are property-tested equal). A truncated file,
//! a flipped bit, or a wrong-length column region is always a typed
//! [`SnapshotError`], never a silently wrong route table; beyond the
//! checksum, [`SnapshotView::new`] re-validates the structural
//! invariants the serving kernel relies on (every slot within the
//! cycle, sentinel count matching `num_data`, every data id routed).

use crate::compiled::CompiledProgram;
use crate::wire::crc_table;
use bcast_types::NodeId;
use std::fmt;
use std::path::Path;

/// First word of every snapshot image.
pub const SNAPSHOT_MAGIC: u32 = 0x4243_5053;
/// Format version this module writes and the only one it reads.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Byte-order tripwire (see the module docs).
const ENDIAN_MARK: u32 = 0x0102_0304;
/// Header words before the column regions.
const HEADER_WORDS: usize = 8;

/// CRC-32C (Castagnoli, reflected) lookup table, sharing the wire
/// module's compile-time builder.
const CRC32C_TABLE: [u32; 256] = crc_table(0x82F6_3B78);

/// CRC-32C over the little-endian byte serialization of `words`
/// (init all-ones, final xor, reflected) — table-driven fallback.
fn crc32c_soft(words: &[u32]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &w in words {
        for b in w.to_le_bytes() {
            c = CRC32C_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

/// CRC-32C over `words`, using the SSE4.2 `crc32` instruction when the
/// CPU has it and the table otherwise. Both paths compute the identical
/// function (pinned by a test below).
fn crc32c(words: &[u32]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: the feature check above guards the intrinsic.
        return unsafe { crc32c_hw(words) };
    }
    crc32c_soft(words)
}

/// Applies a GF(2) linear operator (32×32 bit matrix, `mat[i]` = the
/// image of bit `i`) to a CRC register.
fn gf2_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// `square = mat ∘ mat` over GF(2).
fn gf2_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for i in 0..32 {
        square[i] = gf2_times(mat, mat[i]);
    }
}

/// Advances a raw (reflected, un-finalized) CRC-32C register across
/// `len` zero bytes in O(log len) matrix squarings — zlib's
/// `crc32_combine` construction with the Castagnoli polynomial. This is
/// what lets [`crc32c_hw`] split the message into three independent
/// instruction streams and still produce the one defined checksum:
/// `crc(A‖B) = shift(crc(A), len(B)) ^ crc0(B)` by linearity.
fn crc32c_shift(crc: u32, mut len: usize) -> u32 {
    if len == 0 || crc == 0 {
        return crc;
    }
    // Operator for one zero *bit* in the reflected representation:
    // bit 0 folds into the polynomial, every other bit shifts down.
    let mut odd = [0u32; 32];
    odd[0] = 0x82F6_3B78;
    for (i, op) in odd.iter_mut().enumerate().skip(1) {
        *op = 1u32 << (i - 1);
    }
    // Square three times: 1 bit → 2 → 4 → 8 = the one-zero-byte operator.
    let mut even = [0u32; 32];
    gf2_square(&mut even, &odd); // 2 bits
    gf2_square(&mut odd, &even); // 4 bits
    gf2_square(&mut even, &odd); // 8 bits = 1 byte
                                 // Binary ladder over `len`: `even` holds advance-by-2^k bytes.
    let mut result = crc;
    let mut next = odd;
    loop {
        if len & 1 != 0 {
            result = gf2_times(&even, result);
        }
        len >>= 1;
        if len == 0 {
            return result;
        }
        gf2_square(&mut next, &even);
        std::mem::swap(&mut next, &mut even);
    }
}

/// One unaligned 8-byte little-endian load from a `u32` slice.
///
/// # Safety
/// `i + 1 < words.len()` must hold.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn load_u64(words: &[u32], i: usize) -> u64 {
    debug_assert!(i + 1 < words.len());
    (words.as_ptr().add(i).cast::<u64>()).read_unaligned()
}

/// Hardware CRC-32C. The `crc32` instruction has 3-cycle latency but
/// 1-cycle throughput, so a single chained stream leaves two thirds of
/// the unit idle; this splits the message into three independent
/// streams of 8-byte steps and merges them with [`crc32c_shift`] — ~3×
/// the bytes per cycle, bit-identical result.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_hw(words: &[u32]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u32, _mm_crc32_u64};
    // The instruction consumes its operand as the next message bytes in
    // little-endian order — exactly the defined layout.
    let total = words.len();
    if total < 48 {
        let mut c = 0xFFFF_FFFFu32;
        for &w in words {
            c = _mm_crc32_u32(c, w);
        }
        return c ^ 0xFFFF_FFFF;
    }
    // Streams A and B get the same even word count; C takes the rest
    // (at least as long as A, so the interleaved loop never overruns it).
    let a_len = (total / 3) & !1;
    let (a, rest) = words.split_at(a_len);
    let (b, c) = rest.split_at(a_len);
    let mut ra = 0xFFFF_FFFFu64;
    let mut rb = 0u64;
    let mut rc = 0u64;
    let mut i = 0;
    while i < a_len {
        // SAFETY: i + 1 < a_len ≤ b.len() ≤ c.len() inside the loop.
        ra = _mm_crc32_u64(ra, load_u64(a, i));
        rb = _mm_crc32_u64(rb, load_u64(b, i));
        rc = _mm_crc32_u64(rc, load_u64(c, i));
        i += 2;
    }
    let mut rc = rc as u32;
    for &w in &c[i..] {
        rc = _mm_crc32_u32(rc, w);
    }
    let ab = crc32c_shift(ra as u32, a_len * 4) ^ rb as u32;
    let abc = crc32c_shift(ab, c.len() * 4) ^ rc;
    abc ^ 0xFFFF_FFFF
}

/// Why a snapshot image was rejected. Every variant is fail-closed: a
/// rejected image yields no program at all, never a partial one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Shorter than a header plus checksum — nothing to validate.
    TooShort,
    /// Byte length is not a whole number of `u32` words.
    NotWordSized(usize),
    /// First word is not [`SNAPSHOT_MAGIC`].
    BadMagic(u32),
    /// Version word names a layout this reader does not know.
    UnsupportedVersion(u32),
    /// The endian tripwire word was byte-swapped (see the module docs).
    BadEndianMark(u32),
    /// Header counts disagree with the actual image length.
    LengthMismatch {
        /// Words the header's `n`/`num_data` imply.
        expected_words: usize,
        /// Words actually present.
        found_words: usize,
    },
    /// The trailing CRC-32C does not match the image contents.
    ChecksumMismatch {
        /// CRC computed over the received words.
        expected: u32,
        /// CRC carried by the image.
        found: u32,
    },
    /// The image decodes structurally but violates a route-table
    /// invariant the serving kernel relies on.
    Corrupt(&'static str),
    /// The underlying file operation failed.
    Io(std::io::ErrorKind),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TooShort => write!(f, "snapshot shorter than header + checksum"),
            SnapshotError::NotWordSized(len) => {
                write!(f, "snapshot length {len} is not a multiple of 4 bytes")
            }
            SnapshotError::BadMagic(m) => write!(f, "bad snapshot magic {m:#010x}"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadEndianMark(m) => {
                write!(f, "byte-swapped snapshot (endian mark {m:#010x})")
            }
            SnapshotError::LengthMismatch {
                expected_words,
                found_words,
            } => write!(
                f,
                "snapshot length mismatch (header implies {expected_words} words, found {found_words})"
            ),
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch (computed {expected:#010x}, carried {found:#010x})"
            ),
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            SnapshotError::Io(kind) => write!(f, "snapshot io error: {kind}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.kind())
    }
}

/// An owned snapshot image: the word buffer exactly as it lives on disk
/// (modulo byte order — words are held natively, serialized LE).
///
/// Capturing, saving, loading and validating are all methods here;
/// [`view`](SnapshotImage::view) produces the borrowed, validated
/// [`SnapshotView`] that actual consumers read through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotImage {
    words: Vec<u32>,
}

impl SnapshotImage {
    /// Captures `program` (published on `channels` channels, serving the
    /// item catalog `data_nodes`, in item order) into an image, sealing
    /// it with the trailing CRC-32C.
    ///
    /// # Panics
    /// Panics if `data_nodes` disagrees with the program's routed-node
    /// count — the caller hands in the catalog of the publish that
    /// produced `program`, so a mismatch is a programming error — or if
    /// a per-node metric overflows the packed route word's 16 bits
    /// (both counters are bounded by the tree height; every real tree
    /// is orders of magnitude below the bound).
    pub fn capture(program: &CompiledProgram, channels: usize, data_nodes: &[NodeId]) -> Self {
        let (cycle_len, slot, path_len, switches, num_data) = program.columns();
        assert_eq!(
            data_nodes.len(),
            num_data,
            "catalog size must match the program's routed nodes"
        );
        let n = slot.len();
        let mut words = Vec::with_capacity(HEADER_WORDS + 2 * n + num_data + 1);
        words.extend_from_slice(&[
            SNAPSHOT_MAGIC,
            SNAPSHOT_VERSION,
            ENDIAN_MARK,
            u32::try_from(channels).expect("channel count fits u32"),
            cycle_len,
            u32::try_from(n).expect("node count fits u32"),
            u32::try_from(num_data).expect("data count fits u32"),
            0,
        ]);
        words.extend_from_slice(slot);
        words.extend(path_len.iter().zip(switches).map(|(&p, &s)| {
            assert!(
                p <= 0xFFFF && s <= 0xFFFF,
                "route metrics overflow the packed word (path_len {p}, switches {s})"
            );
            p | (s << 16)
        }));
        words.extend(data_nodes.iter().map(|d| d.0));
        words.push(crc32c(&words));
        SnapshotImage { words }
    }

    /// Decodes an image from its on-disk byte serialization. Only the
    /// word framing is checked here; header, checksum and invariants are
    /// [`view`](SnapshotImage::view)'s job, so a caller holding bytes
    /// from an untrusted source gets every failure as a typed error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if !bytes.len().is_multiple_of(4) {
            return Err(SnapshotError::NotWordSized(bytes.len()));
        }
        let mut words = vec![0u32; bytes.len() / 4];
        // SAFETY: `u32` is plain old data; the byte view covers exactly
        // the buffer we just allocated.
        let dst =
            unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), bytes.len()) };
        dst.copy_from_slice(bytes);
        #[cfg(target_endian = "big")]
        for w in &mut words {
            *w = u32::from_le(*w);
        }
        Ok(SnapshotImage { words })
    }

    /// The on-disk byte serialization (little-endian words).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 4);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Writes the image to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads an image from `path` (framing only; validate via
    /// [`view`](SnapshotImage::view)). The file is read straight into
    /// the word buffer — one copy, no intermediate byte vector. For a
    /// boot path that never needs an owned copy at all, use
    /// [`MappedSnapshot::open`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        use std::io::Read;
        let mut file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len()).expect("snapshot fits in memory");
        if len % 4 != 0 {
            return Err(SnapshotError::NotWordSized(len));
        }
        let mut words = vec![0u32; len / 4];
        // SAFETY: `u32` is plain old data; the byte view covers exactly
        // the buffer we just allocated.
        let dst = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len) };
        file.read_exact(dst)?;
        #[cfg(target_endian = "big")]
        for w in &mut words {
            *w = u32::from_le(*w);
        }
        Ok(SnapshotImage { words })
    }

    /// Size of the serialized image in bytes.
    pub fn byte_len(&self) -> usize {
        self.words.len() * 4
    }

    /// Validates the image and borrows it as a [`SnapshotView`].
    pub fn view(&self) -> Result<SnapshotView<'_>, SnapshotError> {
        SnapshotView::new(&self.words)
    }
}

/// A validated, zero-copy window over a snapshot's words: the column
/// regions are subslices of the image, borrowed, never re-allocated.
/// Constructing one performs the full validation (header, length,
/// CRC-32C, route-table invariants); everything after that is
/// infallible.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    channels: u32,
    cycle_len: u32,
    slot: &'a [u32],
    route: &'a [u32],
    data_nodes: &'a [u32],
}

impl<'a> SnapshotView<'a> {
    /// Validates `words` as a version-1 snapshot image. The checks run
    /// in cheapest-first order; each failure names exactly what broke.
    pub fn new(words: &'a [u32]) -> Result<Self, SnapshotError> {
        if words.len() < HEADER_WORDS + 1 {
            return Err(SnapshotError::TooShort);
        }
        if words[0] != SNAPSHOT_MAGIC {
            // A byte-swapped magic means the whole image is byte-swapped;
            // report that specifically before the generic bad-magic case.
            if words[0] == SNAPSHOT_MAGIC.swap_bytes() {
                return Err(SnapshotError::BadEndianMark(words[2]));
            }
            return Err(SnapshotError::BadMagic(words[0]));
        }
        if words[1] != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(words[1]));
        }
        if words[2] != ENDIAN_MARK {
            return Err(SnapshotError::BadEndianMark(words[2]));
        }
        let channels = words[3];
        let cycle_len = words[4];
        let n = words[5] as usize;
        let num_data = words[6] as usize;
        let expected_words = HEADER_WORDS + 2 * n + num_data + 1;
        if words.len() != expected_words {
            return Err(SnapshotError::LengthMismatch {
                expected_words,
                found_words: words.len(),
            });
        }
        let expected = crc32c(&words[..words.len() - 1]);
        let found = words[words.len() - 1];
        if expected != found {
            return Err(SnapshotError::ChecksumMismatch { expected, found });
        }

        // The bounds-check-and-cast: columns are subslices of the image.
        let slot = &words[HEADER_WORDS..HEADER_WORDS + n];
        let route = &words[HEADER_WORDS + n..HEADER_WORDS + 2 * n];
        let data_nodes = &words[HEADER_WORDS + 2 * n..HEADER_WORDS + 2 * n + num_data];

        // Route-table invariants the serving kernel relies on. The CRC
        // already rules out transport corruption; these rule out a
        // well-sealed image of a program that was never valid. The scans
        // are branchless folds (max / count / all) so the compiler can
        // vectorize them — this runs on the boot path at full image
        // width — with a slow second pass only on failure to name the
        // exact violation.
        if num_data > n {
            return Err(SnapshotError::Corrupt("more data nodes than nodes"));
        }
        if channels == 0 && n > 0 {
            return Err(SnapshotError::Corrupt("routed program on zero channels"));
        }
        let mut max_slot = 0u32;
        let mut routed = 0usize;
        for &s in slot {
            max_slot = max_slot.max(s);
            routed += usize::from(s != 0);
        }
        if max_slot > cycle_len {
            return Err(SnapshotError::Corrupt("slot beyond the cycle"));
        }
        if routed != num_data {
            return Err(SnapshotError::Corrupt(
                "sentinel count disagrees with num_data",
            ));
        }
        let mut all_routed = true;
        for &d in data_nodes {
            all_routed &= slot.get(d as usize).is_some_and(|&s| s != 0);
        }
        if !all_routed {
            for &d in data_nodes {
                if slot.get(d as usize).is_none() {
                    return Err(SnapshotError::Corrupt("catalog id outside the node table"));
                }
            }
            return Err(SnapshotError::Corrupt("catalog id is not a routed node"));
        }
        Ok(SnapshotView {
            channels,
            cycle_len,
            slot,
            route,
            data_nodes,
        })
    }

    /// Broadcast channels of the publish that produced the program.
    pub fn channels(&self) -> usize {
        self.channels as usize
    }

    /// Cycle length in slots.
    pub fn cycle_len(&self) -> u32 {
        self.cycle_len
    }

    /// Nodes covered by the route tables.
    pub fn num_nodes(&self) -> usize {
        self.slot.len()
    }

    /// Routed data nodes (the catalog size).
    pub fn num_data(&self) -> usize {
        self.data_nodes.len()
    }

    /// The item → data-node map, in item order.
    pub fn data_nodes(&self) -> impl Iterator<Item = NodeId> + 'a {
        self.data_nodes.iter().map(|&d| NodeId(d))
    }

    /// Reconstructs the compiled program: one slot memcpy plus a fused
    /// route-word widen that fills the metric columns and the packed
    /// mirror — the entire cost of installing a snapshot beyond the
    /// file map and checksum.
    pub fn to_program(&self) -> CompiledProgram {
        CompiledProgram::from_columns(self.cycle_len, self.slot, self.route, self.num_data())
    }
}

/// A read-only memory mapping of a snapshot file: the zero-copy load
/// path. Where [`SnapshotImage::load`] copies the file into an owned
/// buffer, `open` maps the page cache's copy directly and
/// [`view`](MappedSnapshot::view) validates it in place — a 1M-item
/// cold-start touches each image byte exactly once, for the checksum.
///
/// The mapping is private to this process, but it still windows the
/// file: truncating the file while mapped is undefined behaviour at the
/// OS level (`SIGBUS` on access). Callers own the file's lifecycle, as
/// they do for any mapped file; the boot paths here read images they
/// wrote themselves.
///
/// On targets without the fast path (non-Unix, or big-endian hosts
/// where the little-endian words must be swapped anyway) the type
/// transparently falls back to an owned [`SnapshotImage`] — same API,
/// one extra copy.
#[cfg(all(unix, target_endian = "little"))]
#[derive(Debug)]
pub struct MappedSnapshot {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ) for its whole lifetime,
// so sharing or sending it across threads is no different from an
// owned, never-written buffer.
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Send for MappedSnapshot {}
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Sync for MappedSnapshot {}

/// Raw bindings for the three calls the mapping needs. The workspace
/// vendors no `libc` crate; the platform C library is always linked, so
/// declaring the symbols directly is dependency-free.
#[cfg(all(unix, target_endian = "little"))]
mod mm {
    pub const PROT_READ: i32 = 1;
    pub const MAP_SHARED: i32 = 1;
    /// Linux: fault the whole mapping in up front (readahead included),
    /// so the validation pass that follows never minor-faults per page.
    #[cfg(target_os = "linux")]
    pub const MAP_POPULATE: i32 = 0x8000;
    #[cfg(not(target_os = "linux"))]
    pub const MAP_POPULATE: i32 = 0;
    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
    }
}

#[cfg(all(unix, target_endian = "little"))]
impl MappedSnapshot {
    /// Maps the snapshot file at `path` read-only. Framing only, like
    /// [`SnapshotImage::load`]; validation is
    /// [`view`](MappedSnapshot::view)'s job.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len()).expect("snapshot fits in memory");
        if len % 4 != 0 {
            return Err(SnapshotError::NotWordSized(len));
        }
        if len == 0 {
            return Err(SnapshotError::TooShort);
        }
        // SAFETY: a fresh read-only shared mapping of `len` bytes; the
        // fd may close after this call (the mapping holds its own
        // reference to the file).
        let ptr = unsafe {
            mm::mmap(
                std::ptr::null_mut(),
                len,
                mm::PROT_READ,
                mm::MAP_SHARED | mm::MAP_POPULATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(SnapshotError::Io(std::io::Error::last_os_error().kind()));
        }
        Ok(MappedSnapshot { ptr, len })
    }

    /// The mapped image as words. The format is little-endian and so is
    /// this target (the `cfg` above), so the cast is the identity.
    pub fn words(&self) -> &[u32] {
        // SAFETY: mmap returns page-aligned (hence u32-aligned) memory;
        // the mapping is `len` bytes, lives as long as `self`, and
        // `len % 4 == 0` was checked at open.
        unsafe { std::slice::from_raw_parts(self.ptr.cast::<u32>(), self.len / 4) }
    }

    /// Size of the mapped image in bytes.
    pub fn byte_len(&self) -> usize {
        self.len
    }

    /// Validates the mapping in place as a [`SnapshotView`].
    pub fn view(&self) -> Result<SnapshotView<'_>, SnapshotError> {
        SnapshotView::new(self.words())
    }
}

#[cfg(all(unix, target_endian = "little"))]
impl Drop for MappedSnapshot {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` are the exact mapping from `open`.
        unsafe { mm::munmap(self.ptr, self.len) };
    }
}

/// Fallback for targets without the mapped fast path: an owned image
/// behind the same API.
#[cfg(not(all(unix, target_endian = "little")))]
#[derive(Debug)]
pub struct MappedSnapshot {
    image: SnapshotImage,
}

#[cfg(not(all(unix, target_endian = "little")))]
impl MappedSnapshot {
    /// Loads the snapshot file at `path` into an owned buffer (this
    /// target has no zero-copy path). Framing only; validation is
    /// [`view`](MappedSnapshot::view)'s job.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Ok(MappedSnapshot {
            image: SnapshotImage::load(path)?,
        })
    }

    /// The loaded image as words.
    pub fn words(&self) -> &[u32] {
        &self.image.words
    }

    /// Size of the loaded image in bytes.
    pub fn byte_len(&self) -> usize {
        self.image.byte_len()
    }

    /// Validates the image as a [`SnapshotView`].
    pub fn view(&self) -> Result<SnapshotView<'_>, SnapshotError> {
        self.image.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;
    use crate::program::BroadcastProgram;
    use bcast_index_tree::builders;

    fn compiled() -> (CompiledProgram, Vec<NodeId>) {
        let t = builders::paper_example();
        let slots: Vec<Vec<NodeId>> = [
            vec!["1"],
            vec!["2", "3"],
            vec!["A", "B"],
            vec!["4", "E"],
            vec!["C", "D"],
        ]
        .iter()
        .map(|ls| {
            ls.iter()
                .map(|l| t.find_by_label(l).expect("label exists"))
                .collect()
        })
        .collect();
        let a = Allocation::from_slot_schedule(&slots, &t, 2).unwrap();
        let p = BroadcastProgram::build(&a, &t).unwrap();
        (
            CompiledProgram::compile(&p, &t).unwrap(),
            t.data_nodes().to_vec(),
        )
    }

    #[test]
    fn roundtrip_is_exact_equality() {
        let (program, data) = compiled();
        let image = SnapshotImage::capture(&program, 2, &data);
        let view = image.view().unwrap();
        assert_eq!(view.channels(), 2);
        assert_eq!(view.cycle_len() as usize, program.cycle_len());
        assert_eq!(view.num_data(), program.num_data_nodes());
        assert_eq!(view.data_nodes().collect::<Vec<_>>(), data);
        assert_eq!(view.to_program(), program);
    }

    #[test]
    fn byte_serialization_roundtrips() {
        let (program, data) = compiled();
        let image = SnapshotImage::capture(&program, 2, &data);
        let back = SnapshotImage::from_bytes(&image.to_bytes()).unwrap();
        assert_eq!(back, image);
        assert_eq!(back.view().unwrap().to_program(), program);
    }

    #[test]
    fn file_roundtrip() {
        let (program, data) = compiled();
        let image = SnapshotImage::capture(&program, 2, &data);
        let path = std::env::temp_dir().join("bcast_snapshot_test.bin");
        image.save(&path).unwrap();
        let back = SnapshotImage::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, image);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = SnapshotImage::load("/nonexistent/bcast.snap").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
    }

    #[test]
    fn every_truncation_fails_closed() {
        let (program, data) = compiled();
        let bytes = SnapshotImage::capture(&program, 2, &data).to_bytes();
        for cut in 0..bytes.len() {
            let result = SnapshotImage::from_bytes(&bytes[..cut]).and_then(|i| {
                i.view()?;
                Ok(())
            });
            assert!(result.is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn every_single_bit_flip_fails_closed() {
        let (program, data) = compiled();
        let bytes = SnapshotImage::capture(&program, 2, &data).to_bytes();
        let mut checksum_hits = 0usize;
        for byte in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut raw = bytes.clone();
                raw[byte] ^= 1 << bit;
                let image = SnapshotImage::from_bytes(&raw).unwrap();
                match image.view() {
                    Err(SnapshotError::ChecksumMismatch { expected, found }) => {
                        assert_ne!(expected, found);
                        checksum_hits += 1;
                    }
                    // Header-field flips may fail structurally first —
                    // any error is a detection.
                    Err(_) => {}
                    Ok(_) => panic!("byte {byte} bit {bit}: corruption decoded silently"),
                }
            }
        }
        assert!(checksum_hits > bytes.len(), "CRC barely exercised");
    }

    #[test]
    fn wrong_version_and_magic_are_rejected() {
        let (program, data) = compiled();
        let image = SnapshotImage::capture(&program, 2, &data);
        let mut words = image.words.clone();
        words[1] = 2;
        assert_eq!(
            SnapshotView::new(&words).unwrap_err(),
            SnapshotError::UnsupportedVersion(2)
        );
        let mut words = image.words.clone();
        words[0] = 0xDEAD_BEEF;
        assert_eq!(
            SnapshotView::new(&words).unwrap_err(),
            SnapshotError::BadMagic(0xDEAD_BEEF)
        );
        let swapped: Vec<u32> = image.words.iter().map(|w| w.swap_bytes()).collect();
        assert!(matches!(
            SnapshotView::new(&swapped).unwrap_err(),
            SnapshotError::BadEndianMark(_)
        ));
    }

    #[test]
    fn invariant_violations_are_corrupt_even_with_a_valid_seal() {
        let (program, data) = compiled();
        let image = SnapshotImage::capture(&program, 2, &data);
        // Point a slot beyond the cycle and re-seal — only the semantic
        // validation can catch this.
        let reseal = |mutate: &dyn Fn(&mut Vec<u32>)| {
            let mut words = image.words.clone();
            words.pop();
            mutate(&mut words);
            let crc = crc32c(&words);
            words.push(crc);
            words
        };
        let routed_at = (HEADER_WORDS..HEADER_WORDS + program.num_nodes())
            .find(|&i| image.words[i] != 0)
            .unwrap();
        let bad_slot = reseal(&|w: &mut Vec<u32>| w[routed_at] = w[4] + 1);
        assert_eq!(
            SnapshotView::new(&bad_slot).unwrap_err(),
            SnapshotError::Corrupt("slot beyond the cycle")
        );
        let bad_count = reseal(&|w: &mut Vec<u32>| w[routed_at] = 0);
        assert_eq!(
            SnapshotView::new(&bad_count).unwrap_err(),
            SnapshotError::Corrupt("sentinel count disagrees with num_data")
        );
        let n = program.num_nodes() as u32;
        let data_at = HEADER_WORDS + 2 * program.num_nodes();
        let bad_catalog = reseal(&|w: &mut Vec<u32>| w[data_at] = n);
        assert_eq!(
            SnapshotView::new(&bad_catalog).unwrap_err(),
            SnapshotError::Corrupt("catalog id outside the node table")
        );
        // Point the catalog at a node that exists but is unrouted (an
        // index node has slot 0).
        let unrouted = (0..program.num_nodes() as u32)
            .find(|&i| image.words[HEADER_WORDS + i as usize] == 0)
            .unwrap();
        let bad_target = reseal(&|w: &mut Vec<u32>| w[data_at] = unrouted);
        assert_eq!(
            SnapshotView::new(&bad_target).unwrap_err(),
            SnapshotError::Corrupt("catalog id is not a routed node")
        );
    }

    #[test]
    fn mapped_snapshot_matches_owned_load() {
        let (program, data) = compiled();
        let image = SnapshotImage::capture(&program, 2, &data);
        let path = std::env::temp_dir().join("bcast_snapshot_map_test.bin");
        image.save(&path).unwrap();
        let mapped = MappedSnapshot::open(&path).unwrap();
        assert_eq!(mapped.byte_len(), image.byte_len());
        assert_eq!(mapped.words(), &image.words[..]);
        assert_eq!(mapped.view().unwrap().to_program(), program);
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            MappedSnapshot::open(&path).unwrap_err(),
            SnapshotError::Io(_)
        ));
    }

    #[test]
    fn mapped_snapshot_rejects_bad_framing() {
        let dir = std::env::temp_dir();
        let odd = dir.join("bcast_snapshot_map_odd.bin");
        std::fs::write(&odd, [1, 2, 3]).unwrap();
        assert_eq!(
            MappedSnapshot::open(&odd).unwrap_err(),
            SnapshotError::NotWordSized(3)
        );
        std::fs::remove_file(&odd).ok();
        let empty = dir.join("bcast_snapshot_map_empty.bin");
        std::fs::write(&empty, []).unwrap();
        assert_eq!(
            MappedSnapshot::open(&empty).unwrap_err(),
            SnapshotError::TooShort
        );
        std::fs::remove_file(&empty).ok();
    }

    #[test]
    fn hardware_and_software_crc32c_agree() {
        // Known-answer pinning the polynomial: CRC-32C of the ASCII
        // bytes "12345678" (two LE words) is 0x6087809A.
        let words = [0x3433_3231u32, 0x3837_3635]; // "12345678" LE
        assert_eq!(crc32c_soft(&words), 0x6087_809A);
        // Every length from the single-stream short path through the
        // 3-stream split (≥48 words), including each split remainder
        // class, plus larger lengths exercising deep combine ladders.
        let lengths = (0..160usize).chain([1000, 4093, 4096, 65_537]);
        for len in lengths {
            let words: Vec<u32> = (0..len as u32)
                .map(|i| i.wrapping_mul(0x9E37_79B9) ^ 0xA5A5_5A5A)
                .collect();
            assert_eq!(crc32c(&words), crc32c_soft(&words), "len {len}");
        }
    }

    #[test]
    fn crc_shift_matches_explicit_zero_padding() {
        // shift(reg, z) must equal running the register through z zero
        // bytes — checked against the table path on raw registers.
        for zeros in [0usize, 1, 2, 3, 7, 64, 1000] {
            for reg in [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF] {
                let mut slow = reg;
                for _ in 0..zeros {
                    slow = CRC32C_TABLE[(slow & 0xFF) as usize] ^ (slow >> 8);
                }
                assert_eq!(crc32c_shift(reg, zeros), slow, "reg {reg:#x} zeros {zeros}");
            }
        }
    }
}
