//! Zero-copy program snapshots: a versioned, checksummed, fixed-layout
//! binary image of a [`CompiledProgram`] plus the serving metadata a
//! tenant needs to cold-start.
//!
//! A cold tenant boot normally pays a full publish — heuristic schedule,
//! feasibility sweep, route compilation — which is ~0.4 s warm at one
//! million items. Everything that publish produces, though, is a few
//! flat `u32` arrays; persisting them turns the next boot into a file
//! map, a checksum, and a column widen. The image is *fixed-layout by
//! construction*: loading is a bounds-check-and-cast, never a parse, and
//! [`MappedSnapshot`] validates the page cache's copy in place without
//! ever materializing a second one.
//!
//! # Format
//!
//! A snapshot is a sequence of little-endian `u32` words:
//!
//! ```text
//! word  0   magic        0x42435053
//! word  1   version      1
//! word  2   endian mark  0x01020304 (readers on any byte order agree)
//! word  3   k            broadcast channels of the publish
//! word  4   cycle_len    slots per broadcast cycle
//! word  5   n            nodes covered by the route tables
//! word  6   num_data     routed data nodes
//! word  7   reserved     0
//! then      slot[n]      T(Di) column (1-based; 0 = unrouted)
//! then      route[n]     path_len in the low 16 bits, channel switches
//!                        in the high 16 (both are per-access counters
//!                        bounded by the tree height, so 16 bits each is
//!                        generous — capture asserts the bound)
//! then      data[num_data] data-node ids, item order (the tenant's
//!                          item → node map)
//! last      crc          CRC-32C over every preceding word's LE bytes
//! ```
//!
//! Packing the two metric counters into one route word cuts the 1M-item
//! image from ~20 MB to ~15 MB; at cold-start the dominant cost is
//! faulting the image through the CPU, so bytes saved are microseconds
//! saved.
//!
//! # Versioning and endianness
//!
//! The header pins all three compatibility axes. An unknown `magic` or
//! `version` fails closed ([`SnapshotError::BadMagic`] /
//! [`SnapshotError::UnsupportedVersion`]) — version 1 readers never
//! guess at future layouts. The endian mark is written as the native
//! byte interpretation of `0x01020304`; since the format is defined as
//! little-endian and [`SnapshotImage::from_bytes`] decodes words with
//! explicit LE reads, the mark is a tripwire for images produced by a
//! (hypothetical) writer that dumped native big-endian memory instead
//! of the defined layout.
//!
//! # Integrity
//!
//! The trailing word seals the image with CRC-32C (Castagnoli, the
//! polynomial with hardware support on x86_64 SSE4.2 — the checker runs
//! three interleaved `crc32` instruction streams merged with a GF(2)
//! combine when available and a compile-time table otherwise, and the
//! two are property-tested equal). A truncated file,
//! a flipped bit, or a wrong-length column region is always a typed
//! [`SnapshotError`], never a silently wrong route table; beyond the
//! checksum, [`SnapshotView::new`] re-validates the structural
//! invariants the serving kernel relies on (every slot within the
//! cycle, sentinel count matching `num_data`, every data id routed).

use crate::compiled::CompiledProgram;
use bcast_types::crc::crc32c;
use bcast_types::NodeId;
use std::fmt;
use std::path::Path;

/// First word of every snapshot image.
pub const SNAPSHOT_MAGIC: u32 = 0x4243_5053;
/// Format version this module writes and the only one it reads.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Byte-order tripwire (see the module docs).
const ENDIAN_MARK: u32 = 0x0102_0304;
/// Header words before the column regions.
const HEADER_WORDS: usize = 8;

/// Why a snapshot image was rejected. Every variant is fail-closed: a
/// rejected image yields no program at all, never a partial one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Shorter than a header plus checksum — nothing to validate.
    TooShort,
    /// Byte length is not a whole number of `u32` words.
    NotWordSized(usize),
    /// First word is not [`SNAPSHOT_MAGIC`].
    BadMagic(u32),
    /// Version word names a layout this reader does not know.
    UnsupportedVersion(u32),
    /// The endian tripwire word was byte-swapped (see the module docs).
    BadEndianMark(u32),
    /// Header counts disagree with the actual image length.
    LengthMismatch {
        /// Words the header's `n`/`num_data` imply.
        expected_words: usize,
        /// Words actually present.
        found_words: usize,
    },
    /// The trailing CRC-32C does not match the image contents.
    ChecksumMismatch {
        /// CRC computed over the received words.
        expected: u32,
        /// CRC carried by the image.
        found: u32,
    },
    /// The image decodes structurally but violates a route-table
    /// invariant the serving kernel relies on.
    Corrupt(&'static str),
    /// The underlying file operation failed.
    Io(std::io::ErrorKind),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TooShort => write!(f, "snapshot shorter than header + checksum"),
            SnapshotError::NotWordSized(len) => {
                write!(f, "snapshot length {len} is not a multiple of 4 bytes")
            }
            SnapshotError::BadMagic(m) => write!(f, "bad snapshot magic {m:#010x}"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadEndianMark(m) => {
                write!(f, "byte-swapped snapshot (endian mark {m:#010x})")
            }
            SnapshotError::LengthMismatch {
                expected_words,
                found_words,
            } => write!(
                f,
                "snapshot length mismatch (header implies {expected_words} words, found {found_words})"
            ),
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch (computed {expected:#010x}, carried {found:#010x})"
            ),
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            SnapshotError::Io(kind) => write!(f, "snapshot io error: {kind}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.kind())
    }
}

/// An owned snapshot image: the word buffer exactly as it lives on disk
/// (modulo byte order — words are held natively, serialized LE).
///
/// Capturing, saving, loading and validating are all methods here;
/// [`view`](SnapshotImage::view) produces the borrowed, validated
/// [`SnapshotView`] that actual consumers read through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotImage {
    words: Vec<u32>,
}

impl SnapshotImage {
    /// Captures `program` (published on `channels` channels, serving the
    /// item catalog `data_nodes`, in item order) into an image, sealing
    /// it with the trailing CRC-32C.
    ///
    /// # Panics
    /// Panics if `data_nodes` disagrees with the program's routed-node
    /// count — the caller hands in the catalog of the publish that
    /// produced `program`, so a mismatch is a programming error — or if
    /// a per-node metric overflows the packed route word's 16 bits
    /// (both counters are bounded by the tree height; every real tree
    /// is orders of magnitude below the bound).
    pub fn capture(program: &CompiledProgram, channels: usize, data_nodes: &[NodeId]) -> Self {
        let (cycle_len, slot, path_len, switches, num_data) = program.columns();
        assert_eq!(
            data_nodes.len(),
            num_data,
            "catalog size must match the program's routed nodes"
        );
        let n = slot.len();
        let mut words = Vec::with_capacity(HEADER_WORDS + 2 * n + num_data + 1);
        words.extend_from_slice(&[
            SNAPSHOT_MAGIC,
            SNAPSHOT_VERSION,
            ENDIAN_MARK,
            u32::try_from(channels).expect("channel count fits u32"),
            cycle_len,
            u32::try_from(n).expect("node count fits u32"),
            u32::try_from(num_data).expect("data count fits u32"),
            0,
        ]);
        words.extend_from_slice(slot);
        words.extend(path_len.iter().zip(switches).map(|(&p, &s)| {
            assert!(
                p <= 0xFFFF && s <= 0xFFFF,
                "route metrics overflow the packed word (path_len {p}, switches {s})"
            );
            p | (s << 16)
        }));
        words.extend(data_nodes.iter().map(|d| d.0));
        words.push(crc32c(&words));
        SnapshotImage { words }
    }

    /// Decodes an image from its on-disk byte serialization. Only the
    /// word framing is checked here; header, checksum and invariants are
    /// [`view`](SnapshotImage::view)'s job, so a caller holding bytes
    /// from an untrusted source gets every failure as a typed error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if !bytes.len().is_multiple_of(4) {
            return Err(SnapshotError::NotWordSized(bytes.len()));
        }
        let mut words = vec![0u32; bytes.len() / 4];
        // SAFETY: `u32` is plain old data; the byte view covers exactly
        // the buffer we just allocated.
        let dst =
            unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), bytes.len()) };
        dst.copy_from_slice(bytes);
        #[cfg(target_endian = "big")]
        for w in &mut words {
            *w = u32::from_le(*w);
        }
        Ok(SnapshotImage { words })
    }

    /// The on-disk byte serialization (little-endian words).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 4);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Writes the image to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads an image from `path` (framing only; validate via
    /// [`view`](SnapshotImage::view)). The file is read straight into
    /// the word buffer — one copy, no intermediate byte vector. For a
    /// boot path that never needs an owned copy at all, use
    /// [`MappedSnapshot::open`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        use std::io::Read;
        let mut file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len()).expect("snapshot fits in memory");
        if len % 4 != 0 {
            return Err(SnapshotError::NotWordSized(len));
        }
        let mut words = vec![0u32; len / 4];
        // SAFETY: `u32` is plain old data; the byte view covers exactly
        // the buffer we just allocated.
        let dst = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len) };
        file.read_exact(dst)?;
        #[cfg(target_endian = "big")]
        for w in &mut words {
            *w = u32::from_le(*w);
        }
        Ok(SnapshotImage { words })
    }

    /// Size of the serialized image in bytes.
    pub fn byte_len(&self) -> usize {
        self.words.len() * 4
    }

    /// The image's native word buffer — embedding an image inside a
    /// larger word-oriented container (the serve crate's checkpoint
    /// manifest) copies these directly, no byte re-framing.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Rewraps a word buffer as an image. Framing-only, exactly like
    /// [`from_bytes`](SnapshotImage::from_bytes) — header, checksum and
    /// invariants are still [`view`](SnapshotImage::view)'s job.
    pub fn from_words(words: Vec<u32>) -> Self {
        SnapshotImage { words }
    }

    /// Validates the image and borrows it as a [`SnapshotView`].
    pub fn view(&self) -> Result<SnapshotView<'_>, SnapshotError> {
        SnapshotView::new(&self.words)
    }
}

/// A validated, zero-copy window over a snapshot's words: the column
/// regions are subslices of the image, borrowed, never re-allocated.
/// Constructing one performs the full validation (header, length,
/// CRC-32C, route-table invariants); everything after that is
/// infallible.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    channels: u32,
    cycle_len: u32,
    slot: &'a [u32],
    route: &'a [u32],
    data_nodes: &'a [u32],
}

impl<'a> SnapshotView<'a> {
    /// Validates `words` as a version-1 snapshot image. The checks run
    /// in cheapest-first order; each failure names exactly what broke.
    pub fn new(words: &'a [u32]) -> Result<Self, SnapshotError> {
        if words.len() < HEADER_WORDS + 1 {
            return Err(SnapshotError::TooShort);
        }
        if words[0] != SNAPSHOT_MAGIC {
            // A byte-swapped magic means the whole image is byte-swapped;
            // report that specifically before the generic bad-magic case.
            if words[0] == SNAPSHOT_MAGIC.swap_bytes() {
                return Err(SnapshotError::BadEndianMark(words[2]));
            }
            return Err(SnapshotError::BadMagic(words[0]));
        }
        if words[1] != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(words[1]));
        }
        if words[2] != ENDIAN_MARK {
            return Err(SnapshotError::BadEndianMark(words[2]));
        }
        let channels = words[3];
        let cycle_len = words[4];
        let n = words[5] as usize;
        let num_data = words[6] as usize;
        let expected_words = HEADER_WORDS + 2 * n + num_data + 1;
        if words.len() != expected_words {
            return Err(SnapshotError::LengthMismatch {
                expected_words,
                found_words: words.len(),
            });
        }
        let expected = crc32c(&words[..words.len() - 1]);
        let found = words[words.len() - 1];
        if expected != found {
            return Err(SnapshotError::ChecksumMismatch { expected, found });
        }

        // The bounds-check-and-cast: columns are subslices of the image.
        let slot = &words[HEADER_WORDS..HEADER_WORDS + n];
        let route = &words[HEADER_WORDS + n..HEADER_WORDS + 2 * n];
        let data_nodes = &words[HEADER_WORDS + 2 * n..HEADER_WORDS + 2 * n + num_data];

        // Route-table invariants the serving kernel relies on. The CRC
        // already rules out transport corruption; these rule out a
        // well-sealed image of a program that was never valid. The scans
        // are branchless folds (max / count / all) so the compiler can
        // vectorize them — this runs on the boot path at full image
        // width — with a slow second pass only on failure to name the
        // exact violation.
        if num_data > n {
            return Err(SnapshotError::Corrupt("more data nodes than nodes"));
        }
        if channels == 0 && n > 0 {
            return Err(SnapshotError::Corrupt("routed program on zero channels"));
        }
        let mut max_slot = 0u32;
        let mut routed = 0usize;
        for &s in slot {
            max_slot = max_slot.max(s);
            routed += usize::from(s != 0);
        }
        if max_slot > cycle_len {
            return Err(SnapshotError::Corrupt("slot beyond the cycle"));
        }
        if routed != num_data {
            return Err(SnapshotError::Corrupt(
                "sentinel count disagrees with num_data",
            ));
        }
        let mut all_routed = true;
        for &d in data_nodes {
            all_routed &= slot.get(d as usize).is_some_and(|&s| s != 0);
        }
        if !all_routed {
            for &d in data_nodes {
                if slot.get(d as usize).is_none() {
                    return Err(SnapshotError::Corrupt("catalog id outside the node table"));
                }
            }
            return Err(SnapshotError::Corrupt("catalog id is not a routed node"));
        }
        Ok(SnapshotView {
            channels,
            cycle_len,
            slot,
            route,
            data_nodes,
        })
    }

    /// Broadcast channels of the publish that produced the program.
    pub fn channels(&self) -> usize {
        self.channels as usize
    }

    /// Cycle length in slots.
    pub fn cycle_len(&self) -> u32 {
        self.cycle_len
    }

    /// Nodes covered by the route tables.
    pub fn num_nodes(&self) -> usize {
        self.slot.len()
    }

    /// Routed data nodes (the catalog size).
    pub fn num_data(&self) -> usize {
        self.data_nodes.len()
    }

    /// The item → data-node map, in item order.
    pub fn data_nodes(&self) -> impl Iterator<Item = NodeId> + 'a {
        self.data_nodes.iter().map(|&d| NodeId(d))
    }

    /// Reconstructs the compiled program: one slot memcpy plus a fused
    /// route-word widen that fills the metric columns and the packed
    /// mirror — the entire cost of installing a snapshot beyond the
    /// file map and checksum.
    pub fn to_program(&self) -> CompiledProgram {
        CompiledProgram::from_columns(self.cycle_len, self.slot, self.route, self.num_data())
    }
}

/// A read-only memory mapping of a snapshot file: the zero-copy load
/// path. Where [`SnapshotImage::load`] copies the file into an owned
/// buffer, `open` maps the page cache's copy directly and
/// [`view`](MappedSnapshot::view) validates it in place — a 1M-item
/// cold-start touches each image byte exactly once, for the checksum.
///
/// The mapping is private to this process, but it still windows the
/// file: truncating the file while mapped is undefined behaviour at the
/// OS level (`SIGBUS` on access). Callers own the file's lifecycle, as
/// they do for any mapped file; the boot paths here read images they
/// wrote themselves.
///
/// On targets without the fast path (non-Unix, or big-endian hosts
/// where the little-endian words must be swapped anyway) the type
/// transparently falls back to an owned [`SnapshotImage`] — same API,
/// one extra copy.
#[cfg(all(unix, target_endian = "little"))]
#[derive(Debug)]
pub struct MappedSnapshot {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ) for its whole lifetime,
// so sharing or sending it across threads is no different from an
// owned, never-written buffer.
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Send for MappedSnapshot {}
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Sync for MappedSnapshot {}

/// Raw bindings for the three calls the mapping needs. The workspace
/// vendors no `libc` crate; the platform C library is always linked, so
/// declaring the symbols directly is dependency-free.
#[cfg(all(unix, target_endian = "little"))]
mod mm {
    pub const PROT_READ: i32 = 1;
    pub const MAP_SHARED: i32 = 1;
    /// Linux: fault the whole mapping in up front (readahead included),
    /// so the validation pass that follows never minor-faults per page.
    #[cfg(target_os = "linux")]
    pub const MAP_POPULATE: i32 = 0x8000;
    #[cfg(not(target_os = "linux"))]
    pub const MAP_POPULATE: i32 = 0;
    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
    }
}

#[cfg(all(unix, target_endian = "little"))]
impl MappedSnapshot {
    /// Maps the snapshot file at `path` read-only. Framing only, like
    /// [`SnapshotImage::load`]; validation is
    /// [`view`](MappedSnapshot::view)'s job.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len()).expect("snapshot fits in memory");
        if len % 4 != 0 {
            return Err(SnapshotError::NotWordSized(len));
        }
        if len == 0 {
            return Err(SnapshotError::TooShort);
        }
        // SAFETY: a fresh read-only shared mapping of `len` bytes; the
        // fd may close after this call (the mapping holds its own
        // reference to the file).
        let ptr = unsafe {
            mm::mmap(
                std::ptr::null_mut(),
                len,
                mm::PROT_READ,
                mm::MAP_SHARED | mm::MAP_POPULATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(SnapshotError::Io(std::io::Error::last_os_error().kind()));
        }
        Ok(MappedSnapshot { ptr, len })
    }

    /// The mapped image as words. The format is little-endian and so is
    /// this target (the `cfg` above), so the cast is the identity.
    pub fn words(&self) -> &[u32] {
        // SAFETY: mmap returns page-aligned (hence u32-aligned) memory;
        // the mapping is `len` bytes, lives as long as `self`, and
        // `len % 4 == 0` was checked at open.
        unsafe { std::slice::from_raw_parts(self.ptr.cast::<u32>(), self.len / 4) }
    }

    /// Size of the mapped image in bytes.
    pub fn byte_len(&self) -> usize {
        self.len
    }

    /// Validates the mapping in place as a [`SnapshotView`].
    pub fn view(&self) -> Result<SnapshotView<'_>, SnapshotError> {
        SnapshotView::new(self.words())
    }
}

#[cfg(all(unix, target_endian = "little"))]
impl Drop for MappedSnapshot {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` are the exact mapping from `open`.
        unsafe { mm::munmap(self.ptr, self.len) };
    }
}

/// Fallback for targets without the mapped fast path: an owned image
/// behind the same API.
#[cfg(not(all(unix, target_endian = "little")))]
#[derive(Debug)]
pub struct MappedSnapshot {
    image: SnapshotImage,
}

#[cfg(not(all(unix, target_endian = "little")))]
impl MappedSnapshot {
    /// Loads the snapshot file at `path` into an owned buffer (this
    /// target has no zero-copy path). Framing only; validation is
    /// [`view`](MappedSnapshot::view)'s job.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Ok(MappedSnapshot {
            image: SnapshotImage::load(path)?,
        })
    }

    /// The loaded image as words.
    pub fn words(&self) -> &[u32] {
        &self.image.words
    }

    /// Size of the loaded image in bytes.
    pub fn byte_len(&self) -> usize {
        self.image.byte_len()
    }

    /// Validates the image as a [`SnapshotView`].
    pub fn view(&self) -> Result<SnapshotView<'_>, SnapshotError> {
        self.image.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;
    use crate::program::BroadcastProgram;
    use bcast_index_tree::builders;

    fn compiled() -> (CompiledProgram, Vec<NodeId>) {
        let t = builders::paper_example();
        let slots: Vec<Vec<NodeId>> = [
            vec!["1"],
            vec!["2", "3"],
            vec!["A", "B"],
            vec!["4", "E"],
            vec!["C", "D"],
        ]
        .iter()
        .map(|ls| {
            ls.iter()
                .map(|l| t.find_by_label(l).expect("label exists"))
                .collect()
        })
        .collect();
        let a = Allocation::from_slot_schedule(&slots, &t, 2).unwrap();
        let p = BroadcastProgram::build(&a, &t).unwrap();
        (
            CompiledProgram::compile(&p, &t).unwrap(),
            t.data_nodes().to_vec(),
        )
    }

    #[test]
    fn roundtrip_is_exact_equality() {
        let (program, data) = compiled();
        let image = SnapshotImage::capture(&program, 2, &data);
        let view = image.view().unwrap();
        assert_eq!(view.channels(), 2);
        assert_eq!(view.cycle_len() as usize, program.cycle_len());
        assert_eq!(view.num_data(), program.num_data_nodes());
        assert_eq!(view.data_nodes().collect::<Vec<_>>(), data);
        assert_eq!(view.to_program(), program);
    }

    #[test]
    fn byte_serialization_roundtrips() {
        let (program, data) = compiled();
        let image = SnapshotImage::capture(&program, 2, &data);
        let back = SnapshotImage::from_bytes(&image.to_bytes()).unwrap();
        assert_eq!(back, image);
        assert_eq!(back.view().unwrap().to_program(), program);
    }

    #[test]
    fn file_roundtrip() {
        let (program, data) = compiled();
        let image = SnapshotImage::capture(&program, 2, &data);
        let path = std::env::temp_dir().join("bcast_snapshot_test.bin");
        image.save(&path).unwrap();
        let back = SnapshotImage::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, image);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = SnapshotImage::load("/nonexistent/bcast.snap").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
    }

    #[test]
    fn every_truncation_fails_closed() {
        let (program, data) = compiled();
        let bytes = SnapshotImage::capture(&program, 2, &data).to_bytes();
        for cut in 0..bytes.len() {
            let result = SnapshotImage::from_bytes(&bytes[..cut]).and_then(|i| {
                i.view()?;
                Ok(())
            });
            assert!(result.is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn every_single_bit_flip_fails_closed() {
        let (program, data) = compiled();
        let bytes = SnapshotImage::capture(&program, 2, &data).to_bytes();
        let mut checksum_hits = 0usize;
        for byte in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut raw = bytes.clone();
                raw[byte] ^= 1 << bit;
                let image = SnapshotImage::from_bytes(&raw).unwrap();
                match image.view() {
                    Err(SnapshotError::ChecksumMismatch { expected, found }) => {
                        assert_ne!(expected, found);
                        checksum_hits += 1;
                    }
                    // Header-field flips may fail structurally first —
                    // any error is a detection.
                    Err(_) => {}
                    Ok(_) => panic!("byte {byte} bit {bit}: corruption decoded silently"),
                }
            }
        }
        assert!(checksum_hits > bytes.len(), "CRC barely exercised");
    }

    #[test]
    fn wrong_version_and_magic_are_rejected() {
        let (program, data) = compiled();
        let image = SnapshotImage::capture(&program, 2, &data);
        let mut words = image.words.clone();
        words[1] = 2;
        assert_eq!(
            SnapshotView::new(&words).unwrap_err(),
            SnapshotError::UnsupportedVersion(2)
        );
        let mut words = image.words.clone();
        words[0] = 0xDEAD_BEEF;
        assert_eq!(
            SnapshotView::new(&words).unwrap_err(),
            SnapshotError::BadMagic(0xDEAD_BEEF)
        );
        let swapped: Vec<u32> = image.words.iter().map(|w| w.swap_bytes()).collect();
        assert!(matches!(
            SnapshotView::new(&swapped).unwrap_err(),
            SnapshotError::BadEndianMark(_)
        ));
    }

    #[test]
    fn invariant_violations_are_corrupt_even_with_a_valid_seal() {
        let (program, data) = compiled();
        let image = SnapshotImage::capture(&program, 2, &data);
        // Point a slot beyond the cycle and re-seal — only the semantic
        // validation can catch this.
        let reseal = |mutate: &dyn Fn(&mut Vec<u32>)| {
            let mut words = image.words.clone();
            words.pop();
            mutate(&mut words);
            let crc = crc32c(&words);
            words.push(crc);
            words
        };
        let routed_at = (HEADER_WORDS..HEADER_WORDS + program.num_nodes())
            .find(|&i| image.words[i] != 0)
            .unwrap();
        let bad_slot = reseal(&|w: &mut Vec<u32>| w[routed_at] = w[4] + 1);
        assert_eq!(
            SnapshotView::new(&bad_slot).unwrap_err(),
            SnapshotError::Corrupt("slot beyond the cycle")
        );
        let bad_count = reseal(&|w: &mut Vec<u32>| w[routed_at] = 0);
        assert_eq!(
            SnapshotView::new(&bad_count).unwrap_err(),
            SnapshotError::Corrupt("sentinel count disagrees with num_data")
        );
        let n = program.num_nodes() as u32;
        let data_at = HEADER_WORDS + 2 * program.num_nodes();
        let bad_catalog = reseal(&|w: &mut Vec<u32>| w[data_at] = n);
        assert_eq!(
            SnapshotView::new(&bad_catalog).unwrap_err(),
            SnapshotError::Corrupt("catalog id outside the node table")
        );
        // Point the catalog at a node that exists but is unrouted (an
        // index node has slot 0).
        let unrouted = (0..program.num_nodes() as u32)
            .find(|&i| image.words[HEADER_WORDS + i as usize] == 0)
            .unwrap();
        let bad_target = reseal(&|w: &mut Vec<u32>| w[data_at] = unrouted);
        assert_eq!(
            SnapshotView::new(&bad_target).unwrap_err(),
            SnapshotError::Corrupt("catalog id is not a routed node")
        );
    }

    #[test]
    fn mapped_snapshot_matches_owned_load() {
        let (program, data) = compiled();
        let image = SnapshotImage::capture(&program, 2, &data);
        let path = std::env::temp_dir().join("bcast_snapshot_map_test.bin");
        image.save(&path).unwrap();
        let mapped = MappedSnapshot::open(&path).unwrap();
        assert_eq!(mapped.byte_len(), image.byte_len());
        assert_eq!(mapped.words(), &image.words[..]);
        assert_eq!(mapped.view().unwrap().to_program(), program);
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            MappedSnapshot::open(&path).unwrap_err(),
            SnapshotError::Io(_)
        ));
    }

    #[test]
    fn mapped_snapshot_rejects_bad_framing() {
        let dir = std::env::temp_dir();
        let odd = dir.join("bcast_snapshot_map_odd.bin");
        std::fs::write(&odd, [1, 2, 3]).unwrap();
        assert_eq!(
            MappedSnapshot::open(&odd).unwrap_err(),
            SnapshotError::NotWordSized(3)
        );
        std::fs::remove_file(&odd).ok();
        let empty = dir.join("bcast_snapshot_map_empty.bin");
        std::fs::write(&empty, []).unwrap();
        assert_eq!(
            MappedSnapshot::open(&empty).unwrap_err(),
            SnapshotError::TooShort
        );
        std::fs::remove_file(&empty).ok();
    }
}
