//! A streaming fixed-bucket latency histogram.
//!
//! Broadcast access times are small bounded integers (probe wait ≤ cycle,
//! data wait < cycle), so a bucket width of one slot makes the histogram
//! *exact*: recording is a single counter increment — no per-request
//! allocation, no sample vector to sort — and every quantile query returns
//! the same value a sorted sample array would. Shards produced by parallel
//! serving merge by element-wise addition.

/// Exact integer-valued histogram with unit-width buckets `0..=bound`.
///
/// Values above the bound are clamped into the top bucket for counting
/// purposes (quantiles then saturate at `bound`), but [`max`](Self::max)
/// always reports the true maximum observed value. Callers that size the
/// bound from a known worst case (the serving engine uses `2 × cycle_len`)
/// never clamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u32,
    max: u32,
}

impl LatencyHistogram {
    /// Creates an empty histogram covering values `0..=bound`.
    pub fn with_bound(bound: u32) -> Self {
        LatencyHistogram {
            counts: vec![0; bound as usize + 1],
            total: 0,
            sum: 0,
            min: u32::MAX,
            max: 0,
        }
    }

    /// Largest value representable without clamping.
    #[inline]
    pub fn bound(&self) -> u32 {
        (self.counts.len() - 1) as u32
    }

    /// Empties the histogram and re-covers `0..=bound`, reusing the
    /// bucket vector's capacity — the serving session's per-batch reset
    /// (allocation-free once the buffer has grown to the largest bound
    /// seen). The result is indistinguishable from a fresh
    /// [`with_bound`](Self::with_bound).
    pub fn reset(&mut self, bound: u32) {
        self.counts.clear();
        self.counts.resize(bound as usize + 1, 0);
        self.total = 0;
        self.sum = 0;
        self.min = u32::MAX;
        self.max = 0;
    }

    /// Records one observation. O(1), allocation-free.
    #[inline]
    pub fn record(&mut self, value: u32) {
        let idx = (value as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += u64::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a batch of observations in one call — the serving kernel's
    /// per-chunk flush. Bit-identical to calling [`record`](Self::record)
    /// on each value in order (every update is commutative integer
    /// arithmetic), but keeps the counts base pointer and min/max in
    /// registers across the whole batch.
    #[inline]
    pub fn record_batch(&mut self, values: &[u32]) {
        let top = self.counts.len() - 1;
        let mut min = self.min;
        let mut max = self.max;
        let mut sum = self.sum;
        for &value in values {
            self.counts[(value as usize).min(top)] += 1;
            sum += u64::from(value);
            min = min.min(value);
            max = max.max(value);
        }
        self.min = min;
        self.max = max;
        self.sum = sum;
        self.total += values.len() as u64;
    }

    /// Folds another histogram (e.g. a per-thread shard) into this one.
    ///
    /// # Panics
    /// Panics if the bounds differ — shards of one batch always agree.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge histograms with different bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Folds another histogram into this one, clamping values above this
    /// histogram's bound into the top bucket — the cross-window variant of
    /// [`merge`](Self::merge) for accumulators whose source bounds vary
    /// (a tenant's cycle length, hence its per-batch histogram bound,
    /// changes across rebuilds; its phase-level accumulator does not).
    /// The true sum/min/max are carried over exactly, so the mean never
    /// drifts; only above-bound quantiles saturate, as documented on the
    /// type.
    pub fn absorb(&mut self, other: &LatencyHistogram) {
        let top = self.counts.len() - 1;
        for (value, &c) in other.counts.iter().enumerate() {
            self.counts[value.min(top)] += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations (true values, not clamped) — lets callers
    /// combine histograms with externally tracked totals (e.g. delivered
    /// vs failed request accounting) without floating-point drift.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True if nothing has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of all observations (true values, not clamped).
    ///
    /// # Panics
    /// Panics on an empty histogram.
    pub fn mean(&self) -> f64 {
        assert!(self.total > 0, "mean of an empty histogram");
        self.sum as f64 / self.total as f64
    }

    /// The value at sorted rank `⌊count · p⌋` (capped at the last rank) —
    /// exactly what indexing a sorted sample array at that position would
    /// return, so quantiles are exact, not interpolated.
    ///
    /// # Panics
    /// Panics on an empty histogram or `p` outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> u32 {
        assert!(self.total > 0, "percentile of an empty histogram");
        assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0, 1]");
        let rank = ((self.total as f64 * p) as u64).min(self.total - 1);
        let mut seen = 0u64;
        for (value, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return value as u32;
            }
        }
        unreachable!("total matches sum of counts")
    }

    /// Smallest observed value.
    ///
    /// # Panics
    /// Panics on an empty histogram.
    pub fn min(&self) -> u32 {
        assert!(self.total > 0, "min of an empty histogram");
        self.min
    }

    /// Largest observed value (never clamped).
    ///
    /// # Panics
    /// Panics on an empty histogram.
    pub fn max(&self) -> u32 {
        assert!(self.total > 0, "max of an empty histogram");
        self.max
    }

    /// Appends the histogram's complete state (bucket counts and exact
    /// moments) to `out` as `u64` words, for checkpointing. Inverse of
    /// [`import_state`](Self::import_state).
    ///
    /// Occupied buckets are encoded sparsely as ascending
    /// `(index, count)` pairs: a serving-latency histogram is bounded by
    /// the broadcast cycle length but populated only around the cycle
    /// positions traffic actually hits, so the dense bucket array would
    /// be megabytes of zeros per tenant at snapshot scale.
    pub fn export_state(&self, out: &mut Vec<u64>) {
        out.push(self.counts.len() as u64);
        out.push(self.total);
        out.push(self.sum);
        out.push(u64::from(self.min));
        out.push(u64::from(self.max));
        let occupied = self.counts.iter().filter(|&&c| c != 0).count();
        out.push(occupied as u64);
        out.reserve(2 * occupied);
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                out.push(i as u64);
                out.push(c);
            }
        }
    }

    /// Rebuilds a histogram from a word stream written by
    /// [`export_state`](Self::export_state), consuming exactly the words
    /// it reads. Fails closed: a truncated stream, out-of-order or
    /// out-of-range bucket indices, or counts that do not sum to `total`
    /// yield `None`.
    pub fn import_state(words: &mut &[u64]) -> Option<Self> {
        if words.len() < 6 {
            return None;
        }
        let (head, rest) = words.split_at(6);
        let buckets = usize::try_from(head[0]).ok()?;
        let occupied = usize::try_from(head[5]).ok()?;
        if buckets == 0 || occupied > buckets || rest.len() < 2 * occupied {
            return None;
        }
        let (pairs, rest) = rest.split_at(2 * occupied);
        *words = rest;
        let mut counts = vec![0u64; buckets];
        let mut prev: Option<usize> = None;
        let mut total_check = 0u64;
        for pair in pairs.chunks_exact(2) {
            let i = usize::try_from(pair[0]).ok()?;
            if i >= buckets || prev.is_some_and(|p| p >= i) || pair[1] == 0 {
                return None;
            }
            prev = Some(i);
            counts[i] = pair[1];
            total_check = total_check.checked_add(pair[1])?;
        }
        let total = head[1];
        if total_check != total {
            return None;
        }
        Some(LatencyHistogram {
            counts,
            total,
            sum: head[2],
            min: u32::try_from(head[3]).ok()?,
            max: u32::try_from(head[4]).ok()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sorted_array_semantics() {
        let samples: Vec<u32> = vec![9, 1, 4, 4, 7, 2, 2, 2, 30, 5];
        let mut h = LatencyHistogram::with_bound(64);
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
            assert_eq!(h.percentile(p), sorted[rank], "p = {p}");
        }
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 30);
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), samples.iter().map(|&s| u64::from(s)).sum::<u64>());
        let mean: f64 = samples.iter().map(|&s| f64::from(s)).sum::<f64>() / 10.0;
        assert!((h.mean() - mean).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut all = LatencyHistogram::with_bound(20);
        let mut a = LatencyHistogram::with_bound(20);
        let mut b = LatencyHistogram::with_bound(20);
        for v in 0..=20u32 {
            all.record(v);
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn record_batch_equals_repeated_record() {
        let values: Vec<u32> = (0..257u32).map(|i| (i * 37) % 90).collect();
        let mut one = LatencyHistogram::with_bound(64);
        let mut batch = LatencyHistogram::with_bound(64);
        for &v in &values {
            one.record(v);
        }
        // Mixed chunk sizes, including empty and clamping values.
        batch.record_batch(&values[..0]);
        batch.record_batch(&values[..1]);
        batch.record_batch(&values[1..64]);
        batch.record_batch(&values[64..]);
        assert_eq!(one, batch);
    }

    #[test]
    fn clamps_counts_but_reports_true_max() {
        let mut h = LatencyHistogram::with_bound(4);
        h.record(100);
        h.record(1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.percentile(1.0), 4); // clamped into the top bucket
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn absorb_accepts_mismatched_bounds() {
        // Same-bound absorb is exactly merge.
        let mut a = LatencyHistogram::with_bound(20);
        let mut b = LatencyHistogram::with_bound(20);
        let mut m = LatencyHistogram::with_bound(20);
        for v in [1u32, 5, 19] {
            a.record(v);
            m.record(v);
        }
        for v in [0u32, 20] {
            b.record(v);
            m.record(v);
        }
        a.absorb(&b);
        assert_eq!(a, m);
        // Wider source clamps into the top bucket but keeps exact moments.
        let mut narrow = LatencyHistogram::with_bound(4);
        let mut wide = LatencyHistogram::with_bound(100);
        wide.record(2);
        wide.record(90);
        narrow.absorb(&wide);
        assert_eq!(narrow.count(), 2);
        assert_eq!(narrow.sum(), 92);
        assert_eq!(narrow.max(), 90);
        assert_eq!(narrow.percentile(1.0), 4);
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn empty_percentile_panics() {
        let _ = LatencyHistogram::with_bound(4).percentile(0.5);
    }

    #[test]
    fn reset_equals_a_fresh_histogram() {
        let mut reused = LatencyHistogram::with_bound(100);
        for v in [3u32, 90, 7] {
            reused.record(v);
        }
        for bound in [4u32, 100, 250] {
            reused.reset(bound);
            assert_eq!(reused, LatencyHistogram::with_bound(bound));
            reused.record(2);
            reused.record(bound + 5);
        }
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn mismatched_merge_panics() {
        let mut a = LatencyHistogram::with_bound(4);
        a.merge(&LatencyHistogram::with_bound(5));
    }

    #[test]
    fn state_roundtrip_is_exact_and_fails_closed_on_truncation() {
        let mut h = LatencyHistogram::with_bound(32);
        for v in [0u32, 3, 3, 31, 200, 7] {
            h.record(v);
        }
        let mut words = Vec::new();
        h.export_state(&mut words);
        let mut cursor = &words[..];
        let back = LatencyHistogram::import_state(&mut cursor).expect("valid stream");
        assert!(cursor.is_empty());
        assert_eq!(back, h);
        for cut in 0..words.len() {
            let mut cursor = &words[..cut];
            assert!(
                LatencyHistogram::import_state(&mut cursor).is_none(),
                "cut {cut}"
            );
        }
        // A tampered total is rejected, not adopted.
        let mut bad = words.clone();
        bad[1] += 1;
        let mut cursor = &bad[..];
        assert!(LatencyHistogram::import_state(&mut cursor).is_none());
    }
}
