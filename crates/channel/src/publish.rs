//! The fused publish pipeline: slot plan → channels → route tables, one
//! pass, no intermediate per-node allocations.
//!
//! The classic path from a heuristic schedule to a servable program is
//! three separate passes, each materializing an intermediate:
//!
//! 1. [`Allocation::from_slot_schedule`](crate::Allocation::from_slot_schedule)
//!    — clones and rank-sorts every slot's member list, hashes every bucket
//!    into a collision set, then re-validates the whole mapping;
//! 2. [`BroadcastProgram::build`](crate::BroadcastProgram::build) — walks
//!    the allocation again, allocating a pointer vector per index bucket;
//! 3. [`CompiledProgram::compile`](crate::CompiledProgram::compile) — walks
//!    the pointer graph a third time to derive the flat route tables.
//!
//! Every quantity those passes compute is already determined by the slot
//! plan plus the §3.1 channel rules, so [`PublishPipeline::publish`] fuses
//! them: one sweep over the plan assigns channels (identical rule order:
//! rank-sorted members, root/parent preference, then lowest-free), checks
//! feasibility inline with flat arrays instead of a hash set, and writes
//! `T(Di)`, path lengths and cumulative channel switches directly into a
//! [`CompiledProgram`] — the same single-DFS argument as PR 3's compile
//! step, except the "DFS" degenerates to the slot sweep because parents
//! always occupy strictly earlier slots. The pipeline is double-buffered:
//! each publish builds into the back buffer and swaps, so the previously
//! served tables stay untouched mid-rebuild and their capacity is recycled
//! on the next epoch. After warm-up the whole fused path performs zero
//! heap allocations (asserted by `tests/publish_pipeline.rs` under the
//! `alloc-count` counting allocator).
//!
//! [`SlotPlan`] is the flat schedule representation the heuristics emit
//! into: one members array plus slot boundaries, reusable across rebuilds.
//! The pointer-grid [`BroadcastProgram`] is *not* built on the hot path;
//! [`PublishPipeline::materialize_program`] reconstructs it bit-identically
//! on demand for oracle tests and wire serialization.
//!
//! Programs published here serve lossy channels unchanged: fault injection
//! and client recovery ([`crate::faults`]) operate on the compiled route
//! tables at request time via
//! [`ServeOptions::faults`](crate::compiled::ServeOptions), so a rebuild
//! under degraded delivery (see `bcast-adaptive`'s `DegradationPolicy`)
//! reuses this exact pipeline.

use crate::allocation::FeasibilityError;
use crate::compiled::CompiledProgram;
use crate::program::{Bucket, Pointer};
use crate::BroadcastProgram;
use bcast_index_tree::IndexTree;
use bcast_types::{BucketAddr, ChannelId, NodeId, Slot};

/// A flat slot schedule: the concatenated member lists of every slot plus
/// the slot boundaries. The zero-allocation twin of a `Vec<Vec<NodeId>>`
/// slot schedule — heuristics emit into a reused plan, the pipeline reads
/// slots as subslices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotPlan {
    members: Vec<NodeId>,
    /// `slot_ends[i]` = end offset of slot `i` in `members`; committed
    /// slots only (an open slot's members trail past the last end).
    slot_ends: Vec<u32>,
}

impl SlotPlan {
    /// An empty plan.
    pub fn new() -> Self {
        SlotPlan::default()
    }

    /// Removes all slots, keeping both buffers' capacity.
    pub fn clear(&mut self) {
        self.members.clear();
        self.slot_ends.clear();
    }

    /// Number of committed slots (the cycle length).
    pub fn len(&self) -> usize {
        self.slot_ends.len()
    }

    /// True if no slot has been committed.
    pub fn is_empty(&self) -> bool {
        self.slot_ends.is_empty()
    }

    /// Total members across committed slots.
    pub fn node_count(&self) -> usize {
        self.slot_ends.last().map_or(0, |&e| e as usize)
    }

    /// Appends a member to the currently open (uncommitted) slot.
    #[inline]
    pub fn push(&mut self, node: NodeId) {
        self.members.push(node);
    }

    /// Members appended to the open slot since the last commit.
    #[inline]
    pub fn open_len(&self) -> usize {
        self.members.len() - self.node_count()
    }

    /// The members of the open (uncommitted) slot.
    #[inline]
    pub fn open_members(&self) -> &[NodeId] {
        &self.members[self.node_count()..]
    }

    /// Commits the open slot.
    ///
    /// # Panics
    /// Panics if the open slot is empty — schedules never contain empty
    /// slots, and committing one would silently corrupt the cycle length.
    #[inline]
    pub fn commit_slot(&mut self) {
        assert!(self.open_len() > 0, "cannot commit an empty slot");
        self.slot_ends
            .push(u32::try_from(self.members.len()).expect("members fit in u32"));
    }

    /// Discards any uncommitted members of the open slot.
    #[inline]
    pub fn abandon_open_slot(&mut self) {
        self.members.truncate(self.node_count());
    }

    /// Appends one single-member slot per node of `sequence` (the `k = 1`
    /// plan shape).
    pub fn push_sequence(&mut self, sequence: &[NodeId]) {
        for &n in sequence {
            self.push(n);
            self.commit_slot();
        }
    }

    /// The members of committed slot `i` (0-based).
    #[inline]
    pub fn slot(&self, i: usize) -> &[NodeId] {
        &self.members[self.slot_range(i)]
    }

    /// The `members` index range of committed slot `i` (0-based) — the
    /// delta republish lane maps its position-space repairs through these
    /// global offsets.
    #[inline]
    pub fn slot_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = if i == 0 {
            0
        } else {
            self.slot_ends[i - 1] as usize
        };
        start..self.slot_ends[i] as usize
    }

    /// The concatenated member array across committed slots, in slot-major
    /// order (see [`slot_range`](SlotPlan::slot_range) for the boundaries).
    #[inline]
    pub fn members(&self) -> &[NodeId] {
        &self.members[..self.node_count()]
    }

    /// Overwrites the member at global offset `idx` — the delta lane's
    /// patch-in-place primitive. The slot boundaries are invariant under a
    /// repack (validated repairs never change per-slot counts), so only
    /// member identities move.
    #[inline]
    pub fn set_member(&mut self, idx: usize, node: NodeId) {
        debug_assert!(idx < self.node_count(), "patch lands in a committed slot");
        self.members[idx] = node;
    }

    /// Iterates the committed slots as subslices.
    pub fn slots(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        (0..self.len()).map(move |i| self.slot(i))
    }

    /// Widest committed slot (minimum feasible channel count).
    pub fn max_width(&self) -> usize {
        self.slots().map(<[NodeId]>::len).max().unwrap_or(0)
    }

    /// Average data wait (formula 1) of this plan against `tree` — the flat
    /// twin of `Schedule::average_data_wait`, bit-identical because both
    /// fold `weight · slot` in the same slot-major, member order.
    pub fn average_data_wait(&self, tree: &IndexTree) -> f64 {
        let total = tree.total_weight();
        if total.is_zero() {
            return 0.0;
        }
        let mut sum = 0.0;
        for (offset, members) in self.slots().enumerate() {
            for &n in members {
                if tree.is_data(n) {
                    sum += tree.weight(n) * (offset as u64 + 1);
                }
            }
        }
        sum / total.get()
    }
}

/// The fused publisher: reusable flat state turning a [`SlotPlan`] into a
/// servable [`CompiledProgram`] in one pass (see the module docs).
#[derive(Debug, Default)]
pub struct PublishPipeline {
    /// Channel of each placed node this publish; `u16::MAX` = unplaced.
    channel_of: Vec<u16>,
    /// 1-based slot of each placed node; `0` = unplaced.
    slot_of: Vec<u32>,
    /// Cumulative channel switches on the root path, per placed node.
    switches: Vec<u32>,
    /// Per-channel occupancy of the slot being assigned.
    used: Vec<bool>,
    /// Rank-sort scratch for one slot's members.
    ordered: Vec<NodeId>,
    /// Members deferred to the lowest-free pass, in rank order.
    deferred: Vec<NodeId>,
    /// Channel count of the last successful publish.
    num_channels: usize,
    /// The program currently being served (last successful publish).
    front: CompiledProgram,
    /// The buffer the next publish builds into (previous epoch's tables,
    /// capacity recycled).
    back: CompiledProgram,
    /// Data nodes whose route records the last `republish_delta` patched —
    /// exactly where `front` and `back` may differ while `back_journaled`
    /// holds, so the next patch reconciles in O(patched) instead of
    /// copying every record.
    journal: Vec<NodeId>,
    /// True when `back` is the previous epoch's program, stale only at
    /// `journal`'s records; false after a full publish (the spare buffer
    /// is then arbitrarily stale and must be seeded by a full copy).
    back_journaled: bool,
}

impl PublishPipeline {
    /// A pipeline with empty buffers; the first publish sizes everything.
    pub fn new() -> Self {
        PublishPipeline::default()
    }

    /// The route tables of the most recent successful [`publish`]
    /// (empty tables if none yet).
    ///
    /// [`publish`]: PublishPipeline::publish
    pub fn current(&self) -> &CompiledProgram {
        &self.front
    }

    /// Fused publish: assigns channels to `plan`'s slots with the §3.1
    /// rules, validates feasibility inline, and emits the compiled route
    /// tables — all in one pass over flat arrays. On success the new
    /// program is swapped to the front buffer and returned; on error the
    /// front buffer (the program being served) is left untouched.
    ///
    /// The result is bit-identical to the three-pass path
    /// `Allocation::from_slot_schedule` → `BroadcastProgram::build` →
    /// `CompiledProgram::compile` on the same plan (property-tested in
    /// `tests/publish_pipeline.rs`).
    ///
    /// # Errors
    /// The same feasibility classes the three-pass path surfaces:
    /// [`FeasibilityError::BucketCollision`] when a slot holds more members
    /// than channels, [`FeasibilityError::NodePlacedTwice`] /
    /// [`FeasibilityError::NodeUnplaced`] when the plan is not a partition
    /// of the tree, [`FeasibilityError::ChildBeforeParent`] when a member's
    /// parent does not occupy a strictly earlier slot, and
    /// [`FeasibilityError::RootNotAtOrigin`] when slot 1 does not lead with
    /// the root (the fused path reports it as the collision-free errors
    /// arise, not after a separate validation sweep).
    ///
    /// # Panics
    /// Panics if `num_channels == 0` or the plan references node ids
    /// outside `tree` (both programming errors in the caller, as in the
    /// three-pass path).
    pub fn publish(
        &mut self,
        tree: &IndexTree,
        plan: &SlotPlan,
        num_channels: usize,
    ) -> Result<&CompiledProgram, FeasibilityError> {
        assert!(num_channels > 0, "need at least one channel");
        let n = tree.len();
        let k = num_channels;

        // The full rebuild overwrites the spare buffer wholesale (and on
        // error leaves it half-written), so the journal no longer bounds
        // the front/back divergence either way.
        self.back_journaled = false;
        self.journal.clear();
        self.channel_of.clear();
        self.channel_of.resize(n, u16::MAX);
        self.slot_of.clear();
        self.slot_of.resize(n, 0);
        self.switches.clear();
        self.switches.resize(n, 0);
        self.used.clear();
        self.used.resize(k, false);
        self.back
            .reset(n, u32::try_from(plan.len()).expect("cycle fits in u32"));

        let levels = tree.level_table();
        let mut placed = 0usize;
        for (offset, members) in plan.slots().enumerate() {
            let slot = offset as u32 + 1;
            // Same member order as the three-pass path: ascending preorder
            // rank (ranks are unique, so unstable sorting is equivalent).
            self.ordered.clear();
            self.ordered.extend_from_slice(members);
            self.ordered
                .sort_unstable_by_key(|&m| tree.preorder_rank(m));
            self.used.fill(false);
            self.deferred.clear();

            // Pass 1: honor root / parent-channel preferences.
            for i in 0..self.ordered.len() {
                let node = self.ordered[i];
                let preferred = if node == tree.root() {
                    Some(0usize)
                } else {
                    match tree.parent(node) {
                        Some(p) if self.slot_of[p.index()] != 0 => {
                            Some(usize::from(self.channel_of[p.index()]))
                        }
                        _ => None,
                    }
                };
                match preferred {
                    Some(c) if c < k && !self.used[c] => {
                        self.used[c] = true;
                        self.place(tree, levels, node, c, slot)?;
                        placed += 1;
                    }
                    _ => self.deferred.push(node),
                }
            }
            // Pass 2: everything else onto the lowest free channels.
            let mut next_free = 0usize;
            for i in 0..self.deferred.len() {
                let node = self.deferred[i];
                while next_free < k && self.used[next_free] {
                    next_free += 1;
                }
                if next_free >= k {
                    return Err(FeasibilityError::BucketCollision(BucketAddr::new(
                        k - 1,
                        offset,
                    )));
                }
                self.used[next_free] = true;
                self.place(tree, levels, node, next_free, slot)?;
                placed += 1;
            }
        }

        if placed != n {
            let unplaced = (0..n)
                .find(|&i| self.slot_of[i] == 0)
                .expect("placed < n implies a hole");
            return Err(FeasibilityError::NodeUnplaced(NodeId::from_index(unplaced)));
        }
        let root = tree.root().index();
        if self.channel_of[root] != 0 || self.slot_of[root] != 1 {
            return Err(FeasibilityError::RootNotAtOrigin);
        }

        self.num_channels = k;
        std::mem::swap(&mut self.front, &mut self.back);
        Ok(&self.front)
    }

    /// Pre-seeds the spare buffer as a bit-copy of the served program, so
    /// the *next* [`republish_delta`] finds it journal-reconciled and pays
    /// no O(n) copy on the patch path. Callers that maintain a delta
    /// snapshot (the `bcast_core` publisher after a `Sorting` publish)
    /// invoke this at full-publish time, where one extra table copy is
    /// noise against the rebuild it rides on; pure full-publish users skip
    /// it and keep the copy lazy.
    ///
    /// [`republish_delta`]: PublishPipeline::republish_delta
    pub fn preseed_back(&mut self) {
        if self.back_journaled {
            return;
        }
        self.back.copy_from(&self.front);
        self.journal.clear();
        self.back_journaled = true;
    }

    /// Delta republish: patches the compiled tables instead of rebuilding
    /// them. `plan` must be the last published plan with only *validated*
    /// in-place repairs applied (same cycle length, same per-slot member
    /// counts, every member's parent still in a strictly earlier slot —
    /// `bcast_core`'s delta engine falls back to [`publish`] otherwise),
    /// and `dirty[i]` must be true for every slot whose member set changed
    /// (both the old and new slot of every moved node).
    ///
    /// The back buffer is first reconciled with the served front program:
    /// after a previous patch the two halves differ only at the records
    /// that patch journaled, so reconciliation replays the journal in
    /// O(patched); after a full publish the spare buffer is arbitrarily
    /// stale and a full bit-copy seeds it instead. The patch lane's
    /// steady-state cost therefore has no O(n) copy floor — it scales
    /// with what actually changed. Dirty slots are then re-assigned
    /// ascending with the *identical* §3.1 per-slot rules as [`publish`]:
    /// rank-sorted members, root/parent preference, lowest-free fallback.
    /// Whenever a node's `(channel, slot, switches)` triple moves, its
    /// children's slots are marked dirty — channel switches are cumulative
    /// along root paths, and children always air in strictly later slots,
    /// so the ascending sweep carries every cascade. Slots never marked
    /// dirty provably re-derive their old assignment (same members, same
    /// parent state), which is why skipping them is exact: the result is
    /// bit-identical to a full [`publish`] of the patched plan, pinned by
    /// `tests/delta_republish.rs`.
    ///
    /// On return the patched program has been swapped to the front buffer.
    ///
    /// # Panics
    /// Panics if no publish succeeded yet, or `tree` / `num_channels` /
    /// `dirty.len()` disagree with the last published epoch.
    ///
    /// [`publish`]: PublishPipeline::publish
    pub fn republish_delta(
        &mut self,
        tree: &IndexTree,
        plan: &SlotPlan,
        num_channels: usize,
        dirty: &mut [bool],
    ) -> &CompiledProgram {
        let k = num_channels;
        assert_eq!(
            k, self.num_channels,
            "channel count changed; full publish required"
        );
        assert_eq!(
            self.channel_of.len(),
            tree.len(),
            "tree changed; full publish required"
        );
        assert_eq!(dirty.len(), plan.len(), "one dirty flag per slot");
        assert_eq!(
            self.front.cycle_len(),
            plan.len(),
            "cycle length is repack-invariant"
        );
        if self.back_journaled {
            // The spare half is last epoch's program, stale only at the
            // records the last patch journaled.
            for i in 0..self.journal.len() {
                self.back.copy_record_from(&self.front, self.journal[i]);
            }
        } else {
            self.back.copy_from(&self.front);
        }
        self.journal.clear();

        for offset in 0..plan.len() {
            if !dirty[offset] {
                continue;
            }
            let slot = offset as u32 + 1;
            let members = plan.slot(offset);
            self.ordered.clear();
            self.ordered.extend_from_slice(members);
            self.ordered
                .sort_unstable_by_key(|&m| tree.preorder_rank(m));
            self.used.fill(false);
            self.deferred.clear();

            // Pass 1: honor root / parent-channel preferences.
            for i in 0..self.ordered.len() {
                let node = self.ordered[i];
                let preferred = if node == tree.root() {
                    Some(0usize)
                } else {
                    // Parents air strictly earlier, so their patched
                    // assignment is already final in this ascending sweep.
                    tree.parent(node)
                        .map(|p| usize::from(self.channel_of[p.index()]))
                };
                match preferred {
                    Some(c) if c < k && !self.used[c] => {
                        self.used[c] = true;
                        self.patch_place(tree, node, c, slot, dirty);
                    }
                    _ => self.deferred.push(node),
                }
            }
            // Pass 2: everything else onto the lowest free channels.
            let mut next_free = 0usize;
            for i in 0..self.deferred.len() {
                let node = self.deferred[i];
                while next_free < k && self.used[next_free] {
                    next_free += 1;
                }
                debug_assert!(next_free < k, "validated repairs never widen a slot past k");
                self.used[next_free] = true;
                self.patch_place(tree, node, next_free, slot, dirty);
            }
        }

        std::mem::swap(&mut self.front, &mut self.back);
        self.back_journaled = true;
        &self.front
    }

    /// [`republish_delta`]'s placement: recomputes `node`'s
    /// `(channel, slot, switches)` and, only if the triple moved, updates
    /// the flat arrays, patches the route record (data nodes), and marks
    /// the children's slots dirty to carry the cascade.
    ///
    /// [`republish_delta`]: PublishPipeline::republish_delta
    #[inline]
    fn patch_place(
        &mut self,
        tree: &IndexTree,
        node: NodeId,
        channel: usize,
        slot: u32,
        dirty: &mut [bool],
    ) {
        let i = node.index();
        let switches = match tree.parent(node) {
            None => 0,
            Some(p) => {
                debug_assert!(
                    self.slot_of[p.index()] != 0 && self.slot_of[p.index()] < slot,
                    "validated repairs keep parents strictly earlier"
                );
                self.switches[p.index()] + u32::from(self.channel_of[p.index()] != channel as u16)
            }
        };
        let ch = u16::try_from(channel).expect("channel fits ChannelId");
        if self.channel_of[i] == ch && self.slot_of[i] == slot && self.switches[i] == switches {
            return;
        }
        self.channel_of[i] = ch;
        self.slot_of[i] = slot;
        self.switches[i] = switches;
        if tree.is_data(node) {
            self.back.patch_data(node, slot, switches);
            self.journal.push(node);
        } else {
            for &c in tree.children(node) {
                // A moved child's *new* slot is already dirty (the core
                // engine seeds both endpoints), so marking its possibly
                // stale stored slot here is safe either way.
                dirty[self.slot_of[c.index()] as usize - 1] = true;
            }
        }
    }

    /// Places `node` on `(channel, slot)`: feasibility checks, switch
    /// accumulation, and the route-table write for data nodes.
    #[inline]
    fn place(
        &mut self,
        tree: &IndexTree,
        levels: &[u32],
        node: NodeId,
        channel: usize,
        slot: u32,
    ) -> Result<(), FeasibilityError> {
        let i = node.index();
        if self.slot_of[i] != 0 {
            return Err(FeasibilityError::NodePlacedTwice(node));
        }
        let switches = match tree.parent(node) {
            None => 0,
            Some(p) => {
                let ps = self.slot_of[p.index()];
                // The three-pass path finds both "parent later" and "parent
                // missing" in its final validation sweep; inline they are
                // indistinguishable (the parent is simply not yet placed)
                // and both mean the child does not air strictly after it.
                if ps == 0 || ps >= slot {
                    return Err(FeasibilityError::ChildBeforeParent {
                        parent: p,
                        child: node,
                    });
                }
                self.switches[p.index()] + u32::from(self.channel_of[p.index()] != channel as u16)
            }
        };
        self.channel_of[i] = u16::try_from(channel).expect("channel fits ChannelId");
        self.slot_of[i] = slot;
        self.switches[i] = switches;
        if tree.is_data(node) {
            // `path_len` is the bucket count on the root..=data pointer
            // path, which the pointer-graph DFS counts one hop at a time —
            // but it is exactly the node's level, already cached.
            self.back.record_data(node, slot, levels[i], switches);
        }
        Ok(())
    }

    /// Channel count of the last successful publish (`0` if none yet).
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// Captures the served program into a [`SnapshotImage`]
    /// (`data_nodes` is the publish's item catalog, in item order) —
    /// the persistence half of the microsecond cold-start path.
    ///
    /// [`SnapshotImage`]: crate::snapshot::SnapshotImage
    pub fn snapshot_image(&self, data_nodes: &[NodeId]) -> crate::snapshot::SnapshotImage {
        crate::snapshot::SnapshotImage::capture(&self.front, self.num_channels, data_nodes)
    }

    /// Installs an externally built program (a validated snapshot load)
    /// as the served front buffer — the restore half of the cold-start
    /// path. The placement arrays stay empty: [`addr`] answers `None`
    /// and [`materialize_program`] is unavailable until the next full
    /// [`publish`] re-derives them, but serving and a full republish
    /// need only the route tables installed here.
    ///
    /// [`addr`]: PublishPipeline::addr
    /// [`materialize_program`]: PublishPipeline::materialize_program
    /// [`publish`]: PublishPipeline::publish
    pub fn adopt_program(&mut self, program: CompiledProgram, num_channels: usize) {
        assert!(num_channels > 0, "need at least one channel");
        self.front = program;
        self.num_channels = num_channels;
        // No placement state: the adopted program serves, but the delta
        // lane and the address queries must not trust stale arrays.
        self.channel_of.clear();
        self.slot_of.clear();
        self.switches.clear();
        self.journal.clear();
        self.back_journaled = false;
    }

    /// Reconstructs the full pointer-grid [`BroadcastProgram`] of the last
    /// successful publish — bit-identical to what
    /// [`BroadcastProgram::build`] produces from the equivalent allocation.
    /// Off the hot path by design: serving needs only the compiled tables,
    /// so the grid (and its per-bucket pointer vectors) is materialized
    /// lazily for oracle tests, rendering and wire serialization.
    ///
    /// # Panics
    /// Panics if no publish succeeded yet or `tree` is not the tree of the
    /// last publish.
    pub fn materialize_program(&self, tree: &IndexTree) -> BroadcastProgram {
        assert_eq!(
            self.channel_of.len(),
            tree.len(),
            "materialize_program requires a prior publish over the same tree"
        );
        let cycle_len = self.front.cycle_len();
        let mut grid = vec![vec![Bucket::Empty; cycle_len]; self.num_channels];
        for i in 0..tree.len() {
            let node = NodeId::from_index(i);
            let bucket = if tree.is_data(node) {
                Bucket::Data { node }
            } else {
                let pointers = tree
                    .children(node)
                    .iter()
                    .map(|&child| Pointer {
                        child,
                        channel: ChannelId(self.channel_of[child.index()]),
                        offset: self.slot_of[child.index()] - self.slot_of[i],
                    })
                    .collect();
                Bucket::Index { node, pointers }
            };
            grid[usize::from(self.channel_of[i])][self.slot_of[i] as usize - 1] = bucket;
        }
        BroadcastProgram::from_parts(grid, cycle_len)
    }

    /// `(channel, slot)` of `node` in the last successful publish, if
    /// placed — the pipeline's equivalent of
    /// [`Allocation::addr`](crate::Allocation::addr).
    pub fn addr(&self, node: NodeId) -> Option<BucketAddr> {
        let i = node.index();
        (i < self.slot_of.len() && self.slot_of[i] != 0).then(|| BucketAddr {
            channel: ChannelId(self.channel_of[i]),
            slot: Slot(self.slot_of[i]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Allocation;
    use bcast_index_tree::builders;

    fn ids(tree: &IndexTree, labels: &[&str]) -> Vec<NodeId> {
        labels
            .iter()
            .map(|l| tree.find_by_label(l).expect("label exists"))
            .collect()
    }

    fn fig2b_plan(tree: &IndexTree) -> SlotPlan {
        let mut plan = SlotPlan::new();
        for slot in [
            vec!["1"],
            vec!["2", "3"],
            vec!["A", "B"],
            vec!["4", "E"],
            vec!["C", "D"],
        ] {
            for n in ids(tree, &slot) {
                plan.push(n);
            }
            plan.commit_slot();
        }
        plan
    }

    #[test]
    fn plan_accessors() {
        let t = builders::paper_example();
        let plan = fig2b_plan(&t);
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.node_count(), 9);
        assert_eq!(plan.max_width(), 2);
        assert_eq!(plan.slot(0), &ids(&t, &["1"])[..]);
        assert_eq!(plan.slot(4), &ids(&t, &["C", "D"])[..]);
        assert!((plan.average_data_wait(&t) - 272.0 / 70.0).abs() < 1e-12);
    }

    #[test]
    fn fused_publish_matches_three_pass_path() {
        let t = builders::paper_example();
        let plan = fig2b_plan(&t);
        let slots: Vec<Vec<NodeId>> = plan.slots().map(<[NodeId]>::to_vec).collect();
        let alloc = Allocation::from_slot_schedule(&slots, &t, 2).unwrap();
        let program = BroadcastProgram::build(&alloc, &t).unwrap();
        let compiled = CompiledProgram::compile(&program, &t).unwrap();

        let mut pipe = PublishPipeline::new();
        let fused = pipe.publish(&t, &plan, 2).unwrap();
        assert_eq!(*fused, compiled);
        assert_eq!(pipe.materialize_program(&t), program);
        for i in 0..t.len() {
            let n = NodeId::from_index(i);
            assert_eq!(pipe.addr(n), alloc.addr(n));
        }
    }

    #[test]
    fn republish_reuses_buffers_and_preserves_front_on_error() {
        let t = builders::paper_example();
        let plan = fig2b_plan(&t);
        let mut pipe = PublishPipeline::new();
        pipe.publish(&t, &plan, 2).unwrap();
        let good = pipe.current().clone();

        // An infeasible plan: three members into two channels.
        let mut bad = SlotPlan::new();
        for slot in [vec!["1"], vec!["2", "3"], vec!["A", "B", "E"]] {
            for n in ids(&t, &slot) {
                bad.push(n);
            }
            bad.commit_slot();
        }
        let err = pipe.publish(&t, &bad, 2).unwrap_err();
        assert!(matches!(err, FeasibilityError::BucketCollision(_)));
        // The served program is untouched by the failed rebuild.
        assert_eq!(*pipe.current(), good);

        // And a successful republish swaps buffers without losing content.
        let again = pipe.publish(&t, &plan, 2).unwrap();
        assert_eq!(*again, good);
    }

    #[test]
    fn child_before_parent_is_rejected() {
        let t = builders::paper_example();
        let mut plan = SlotPlan::new();
        // A airs in slot 1 alongside the root; its parent 2 airs later.
        for n in ids(&t, &["1", "A"]) {
            plan.push(n);
        }
        plan.commit_slot();
        for n in ids(&t, &["2", "3"]) {
            plan.push(n);
        }
        plan.commit_slot();
        let mut pipe = PublishPipeline::new();
        let err = pipe.publish(&t, &plan, 2).unwrap_err();
        assert!(matches!(err, FeasibilityError::ChildBeforeParent { .. }));
    }

    #[test]
    fn incomplete_plan_is_rejected() {
        let t = builders::paper_example();
        let mut plan = SlotPlan::new();
        for n in ids(&t, &["1"]) {
            plan.push(n);
        }
        plan.commit_slot();
        let mut pipe = PublishPipeline::new();
        let err = pipe.publish(&t, &plan, 2).unwrap_err();
        assert!(matches!(err, FeasibilityError::NodeUnplaced(_)));
    }

    #[test]
    fn sequence_plan_matches_one_channel_path() {
        let t = builders::paper_example();
        let seq = ids(&t, &["1", "3", "E", "4", "C", "D", "2", "A", "B"]);
        let mut plan = SlotPlan::new();
        plan.push_sequence(&seq);
        assert_eq!(plan.len(), 9);

        let alloc = Allocation::from_sequence(&seq, &t).unwrap();
        let program = BroadcastProgram::build(&alloc, &t).unwrap();
        let compiled = CompiledProgram::compile(&program, &t).unwrap();
        let mut pipe = PublishPipeline::new();
        assert_eq!(*pipe.publish(&t, &plan, 1).unwrap(), compiled);
        assert_eq!(pipe.materialize_program(&t), program);
    }
}
