//! Compiled route tables and the batched serving engine.
//!
//! [`simulator::access`](crate::simulator::access) re-walks the pointer
//! path through the bucket grid for every request — an O(path) walk plus an
//! O(tree) ancestor-marking allocation. Every quantity it reports, however,
//! is a pure function of `(target, tune-in residue)`:
//!
//! * probe wait depends only on the tune-in residue within the cycle,
//! * data wait, tuning time and channel switches depend only on the target,
//!   because the pointer route from the root to a data bucket is fixed by
//!   the program.
//!
//! [`CompiledProgram::compile`] therefore walks the pointer graph **once**
//! (each bucket is visited exactly once — O(buckets)), validating every
//! pointer on the way, and stores per-node route records in flat
//! structure-of-arrays tables. A single access becomes three array reads
//! and one subtraction; [`CompiledProgram::serve_batch`] feeds millions of
//! requests through those tables with per-thread sharding and a streaming
//! [`LatencyHistogram`], never allocating per request. The pointer-chasing
//! simulator remains the oracle the tables are property-tested against.
//!
//! # Kernel layout
//!
//! The route tables are three dense `u32` columns (`slot`, `path_len`,
//! `switches`). Slots are 1-based, so `slot == 0` doubles as the
//! "unrouted" sentinel — there is no separate `routed` bitmap to load per
//! request. The columns remain the canonical representation (the oracle
//! path, the delta patch lanes and the snapshot format all read them), but
//! the batch engine serves from an interleaved mirror: one 16-byte record
//! `[slot, path_len, switches, 0]` per node, so a request's entire route
//! costs **one** cache-line touch instead of three — on a Zipf workload
//! whose tables exceed L1 that is the dominant cost, not arithmetic.
//!
//! [`serve_batch`](CompiledProgram::serve_batch) processes requests in
//! fixed-size chunks: per chunk it draws all tune-in residues, gathers the
//! packed records (with an explicit AVX2 gather under the `simd` cargo
//! feature, or an autovectorization-friendly scalar loop by default),
//! validates the chunk with a folded sentinel flag (re-scanned in order
//! only on failure, so the reported error is identical to the reference
//! loop's), prefetches the next chunk's records, and records access times
//! into the histogram in one [`LatencyHistogram::record_batch`] call. The
//! original per-request loop over the SoA columns survives as
//! [`serve_batch_scalar`](CompiledProgram::serve_batch_scalar) — the
//! oracle the chunked kernel is pinned bit-identical to at any thread
//! count.

use crate::faults::{self, FaultPlan, RecoveryPolicy, RequestOutcome};
use crate::hist::LatencyHistogram;
use crate::program::{BroadcastProgram, Bucket};
use crate::simulator::{AccessTrace, SimError};
use bcast_index_tree::IndexTree;
use bcast_types::{BucketAddr, ChannelId, NodeId, Slot};

/// SplitMix64 finalizer: spreads a request index into an independent
/// 64-bit draw, so per-request tune-in slots depend only on the *global*
/// request index — sharded serving is thread-count invariant.
#[inline]
fn mix64(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Division-free remainder by a fixed cycle length (Lemire's fastmod).
///
/// `c = ⌈2^128 / d⌉` is the 128-bit fixed-point inverse of `d`; the
/// remainder of `x mod d` is the high 64 bits of `(c·x mod 2^128) · d`.
/// With a 128-bit fraction this is **exact** for every `x < 2^64` and
/// `d ≤ 2^32` (the fraction width 128 ≥ 64 + log2(d) bound from the
/// fastmod paper), so it can replace the hardware `%` in the serving
/// kernel without perturbing a single tune-in draw. Property tests pin it
/// against `%` directly.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FastMod {
    d: u64,
    c: u128,
}

impl FastMod {
    /// Precomputes the inverse of `d`. `d` must be nonzero and fit in 32
    /// bits (cycle lengths are `u32`).
    #[inline]
    pub(crate) fn new(d: u64) -> Self {
        debug_assert!(d != 0, "modulus must be nonzero");
        debug_assert!(d <= u64::from(u32::MAX) + 1, "modulus must fit 32 bits");
        // For d = 1 the fraction wraps to 0, which still yields the
        // correct remainder (always 0) — hence the wrapping add.
        FastMod {
            d,
            c: (u128::MAX / u128::from(d)).wrapping_add(1),
        }
    }

    /// `x % d`, exactly, with two multiplies instead of a division.
    #[inline]
    pub(crate) fn rem(self, x: u64) -> u64 {
        let lowbits = self.c.wrapping_mul(u128::from(x));
        // High 64 bits of the 192-bit product `lowbits · d`.
        let bottom = ((lowbits & u128::from(u64::MAX)) * u128::from(self.d)) >> 64;
        let top = (lowbits >> 64) * u128::from(self.d);
        ((top + bottom) >> 64) as u64
    }
}

/// Chunk size of the batched serving kernel: big enough to amortize the
/// histogram flush and validation fold, small enough that the per-chunk
/// probe/total buffers live in registers and L1. Public so streaming
/// callers ([`ServeSession`]) can size their staging buffers to feed the
/// kernel whole chunks.
pub const SERVE_CHUNK: usize = 256;

/// Per-node route tables compiled from a [`BroadcastProgram`].
///
/// Construction validates the whole pointer graph (every child reachable,
/// every pointer landing on the bucket it promises), so lookups are
/// infallible for any data node of the source tree — the O(1) answers are
/// *exact*, not approximations, by the argument in the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompiledProgram {
    cycle_len: u32,
    /// `T(Di)`: absolute 1-based slot of the node's data bucket, or `0`
    /// for unrouted nodes — the sentinel doubles as the lookup guard, so
    /// the hot columns stay three cache-dense `u32` lanes.
    slot: Vec<u32>,
    /// Buckets read on the pointer path root..=data (tuning time minus the
    /// initial probe bucket).
    path_len: Vec<u32>,
    /// Channel switches performed after the probe.
    switches: Vec<u32>,
    /// Interleaved serve-kernel mirror of the columns: one 16-byte record
    /// `[slot, path_len, switches, 0]` per node, kept in sync by every
    /// mutation path, so a request's whole route is one cache-line touch.
    packed: Vec<[u32; 4]>,
    num_data: usize,
}

impl CompiledProgram {
    /// Compiles `program` (built over `tree`) into flat route tables in one
    /// pass over the pointer graph.
    ///
    /// # Errors
    /// Surfaces the same corruption classes the walking simulator would hit
    /// at request time, but eagerly: [`SimError::NoRoute`] if an index
    /// bucket lacks a pointer to one of its children, and
    /// [`SimError::BrokenPointer`] if a pointer leads outside the grid or
    /// to a bucket not holding the promised node.
    pub fn compile(program: &BroadcastProgram, tree: &IndexTree) -> Result<Self, SimError> {
        let n = tree.len();
        let mut this = CompiledProgram {
            cycle_len: program.cycle_len() as u32,
            slot: vec![0; n],
            path_len: vec![0; n],
            switches: vec![0; n],
            packed: vec![[0; 4]; n],
            num_data: 0,
        };
        // Depth-first over the pointer graph; the tree structure guarantees
        // each node (hence each occupied bucket) is pushed exactly once.
        let root_addr = BucketAddr {
            channel: ChannelId::FIRST,
            slot: Slot::FIRST,
        };
        let mut stack: Vec<(BucketAddr, NodeId, u32, u32)> = vec![(root_addr, tree.root(), 1, 0)];
        while let Some((at, expect, path_len, switches)) = stack.pop() {
            if at.channel.index() >= program.num_channels()
                || at.slot.offset() >= program.cycle_len()
            {
                // A corrupt pointer escaping the grid: report it instead of
                // indexing out of bounds.
                return Err(SimError::BrokenPointer {
                    at,
                    expected: expect,
                });
            }
            match program.bucket(at) {
                Bucket::Data { node } if *node == expect && tree.is_data(expect) => {
                    let i = expect.index();
                    debug_assert!(at.slot.0 != 0, "slots are 1-based");
                    this.slot[i] = at.slot.0;
                    this.path_len[i] = path_len;
                    this.switches[i] = switches;
                    this.packed[i] = [at.slot.0, path_len, switches, 0];
                    this.num_data += 1;
                }
                Bucket::Index { node, pointers } if *node == expect => {
                    for &child in tree.children(expect) {
                        let Some(ptr) = pointers.iter().find(|p| p.child == child) else {
                            return Err(SimError::NoRoute {
                                at: expect,
                                target: child,
                            });
                        };
                        stack.push((
                            BucketAddr {
                                channel: ptr.channel,
                                slot: Slot(at.slot.0 + ptr.offset),
                            },
                            child,
                            path_len + 1,
                            switches + u32::from(ptr.channel != at.channel),
                        ));
                    }
                }
                // Bucket holds something other than the routed-to node (or
                // a data payload where the tree expects an index node).
                Bucket::Data { .. } | Bucket::Index { .. } | Bucket::Empty => {
                    return Err(SimError::BrokenPointer {
                        at,
                        expected: expect,
                    });
                }
            }
        }
        Ok(this)
    }

    /// Resets the tables for `n` nodes and `cycle_len` slots, keeping the
    /// backing capacity — the fused pipeline's rebuild entry point
    /// (`clear` + `resize` never reallocates once the buffers have grown
    /// to steady-state size).
    pub(crate) fn reset(&mut self, n: usize, cycle_len: u32) {
        self.cycle_len = cycle_len;
        self.slot.clear();
        self.slot.resize(n, 0);
        self.path_len.clear();
        self.path_len.resize(n, 0);
        self.switches.clear();
        self.switches.resize(n, 0);
        self.packed.clear();
        self.packed.resize(n, [0; 4]);
        self.num_data = 0;
    }

    /// Writes one data node's route record — the fused pipeline's
    /// equivalent of the DFS leaf case in [`CompiledProgram::compile`].
    #[inline]
    pub(crate) fn record_data(&mut self, node: NodeId, slot: u32, path_len: u32, switches: u32) {
        let i = node.index();
        debug_assert!(self.slot[i] == 0, "data node recorded twice");
        debug_assert!(slot != 0, "slots are 1-based");
        self.slot[i] = slot;
        self.path_len[i] = path_len;
        self.switches[i] = switches;
        self.packed[i] = [slot, path_len, switches, 0];
        self.num_data += 1;
    }

    /// Overwrites an *existing* data route record in place — the delta
    /// republish lane's counterpart of [`record_data`]: `path_len` (the
    /// node's level) and `num_data` are invariant under a repack, so only
    /// the slot and switch count move.
    ///
    /// [`record_data`]: CompiledProgram::record_data
    #[inline]
    pub(crate) fn patch_data(&mut self, node: NodeId, slot: u32, switches: u32) {
        let i = node.index();
        debug_assert!(self.slot[i] != 0, "patch_data targets an existing record");
        debug_assert!(slot != 0, "slots are 1-based");
        self.slot[i] = slot;
        self.switches[i] = switches;
        self.packed[i][0] = slot;
        self.packed[i][2] = switches;
    }

    /// Reconciles one node's route record from `other` — the delta lane's
    /// journal replay. Only `slot` and `switches` can differ between the
    /// double-buffer halves after an in-place patch: `path_len`,
    /// `num_data` and the cycle length are all repack-invariant.
    #[inline]
    pub(crate) fn copy_record_from(&mut self, other: &CompiledProgram, node: NodeId) {
        let i = node.index();
        self.slot[i] = other.slot[i];
        self.switches[i] = other.switches[i];
        self.packed[i] = other.packed[i];
    }

    /// Makes `self` a bit-identical copy of `other`, reusing this buffer's
    /// capacity (`Vec::clone_from` per column — memcpy-grade, no
    /// allocation once capacities match). The delta lane seeds the back
    /// buffer from the served front program before patching dirty records.
    pub(crate) fn copy_from(&mut self, other: &CompiledProgram) {
        self.cycle_len = other.cycle_len;
        self.slot.clone_from(&other.slot);
        self.path_len.clone_from(&other.path_len);
        self.switches.clone_from(&other.switches);
        self.packed.clone_from(&other.packed);
        self.num_data = other.num_data;
    }

    /// Cycle length in slots.
    #[inline]
    pub fn cycle_len(&self) -> usize {
        self.cycle_len as usize
    }

    /// Number of routed data nodes.
    #[inline]
    pub fn num_data_nodes(&self) -> usize {
        self.num_data
    }

    /// The absolute slot `T(Di)` of a data node's bucket, or `None` for
    /// index nodes / foreign ids.
    #[inline]
    pub fn data_slot(&self, node: NodeId) -> Option<Slot> {
        self.slot
            .get(node.index())
            .copied()
            .filter(|&s| s != 0)
            .map(Slot)
    }

    /// Number of nodes the route tables cover (data and index alike) —
    /// the length of every column.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.slot.len()
    }

    /// Every routed data node, in node-id order — lets snapshot consumers
    /// build request batches without the source tree.
    pub fn routed_nodes(&self) -> Vec<NodeId> {
        self.slot
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s != 0)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Borrows the raw SoA columns `(cycle_len, slot, path_len, switches,
    /// num_data)` for the snapshot writer.
    pub(crate) fn columns(&self) -> (u32, &[u32], &[u32], &[u32], usize) {
        (
            self.cycle_len,
            &self.slot,
            &self.path_len,
            &self.switches,
            self.num_data,
        )
    }

    /// Rebuilds a program from validated snapshot columns: one slot
    /// memcpy plus a single fused pass that widens each packed route
    /// word (`path_len | switches << 16`) into the two metric columns
    /// and the packed mirror. The caller (the snapshot loader) has
    /// already checked the sentinel invariants (`count(slot != 0) ==
    /// num_data`, `max(slot) ≤ cycle_len`), so this is infallible.
    pub(crate) fn from_columns(
        cycle_len: u32,
        slot: &[u32],
        route: &[u32],
        num_data: usize,
    ) -> Self {
        debug_assert_eq!(slot.len(), route.len());
        let n = slot.len();
        let mut path_len = Vec::with_capacity(n);
        let mut switches = Vec::with_capacity(n);
        let mut packed = Vec::with_capacity(n);
        for (&s, &r) in slot.iter().zip(route) {
            let p = r & 0xFFFF;
            let w = r >> 16;
            path_len.push(p);
            switches.push(w);
            packed.push([s, p, w, 0]);
        }
        CompiledProgram {
            cycle_len,
            slot: slot.to_vec(),
            path_len,
            switches,
            packed,
            num_data,
        }
    }

    /// Probe wait for a tune-in slot: slots until the next cycle's root
    /// bucket has been read, with cyclic wraparound for tune-ins past the
    /// cycle (matching the walking simulator's normalization).
    #[inline]
    pub fn probe_wait(&self, tune_in: Slot) -> u32 {
        self.cycle_len - (tune_in.offset() as u32 % self.cycle_len)
    }

    /// O(1) equivalent of [`simulator::access`](crate::simulator::access):
    /// three table reads and the probe-wait subtraction.
    ///
    /// # Errors
    /// [`SimError::NotADataNode`] for index nodes or foreign ids; routing
    /// errors cannot occur here because compilation validated every route.
    #[inline]
    pub fn access(&self, target: NodeId, tune_in: Slot) -> Result<AccessTrace, SimError> {
        let i = target.index();
        let slot = self.slot.get(i).copied().unwrap_or(0);
        if slot == 0 {
            return Err(SimError::NotADataNode(target));
        }
        Ok(AccessTrace {
            probe_wait: self.probe_wait(tune_in),
            data_wait: slot - 1,
            tuning_time: self.path_len[i] + 1,
            channel_switches: self.switches[i],
        })
    }

    /// Serves a batch of requests through the route tables, optionally
    /// sharded over `opts.threads` OS threads, and aggregates exact means
    /// plus a streaming latency histogram (no per-request allocation).
    ///
    /// Each request's tune-in slot is drawn uniformly over the cycle from
    /// `opts.seed` and the request's **global index**, so the result is
    /// bit-identical for every thread count — and because
    /// [`FaultPlan::link`] is keyed by the same global index, that also
    /// holds with `opts.faults` enabled. With [`FaultPlan::none`] the
    /// engine takes the original fault-free fast path unchanged; with
    /// faults, each lost read is recovered per `opts.recovery`, delivered
    /// requests record their **total** access time (recovery wait
    /// included) in the histogram, and failed requests are counted in
    /// [`BatchMetrics::failed`] instead of aborting the batch.
    ///
    /// # Errors
    /// [`SimError::NotADataNode`] if any target is not a routed data node.
    pub fn serve_batch(
        &self,
        targets: &[NodeId],
        opts: &ServeOptions,
    ) -> Result<BatchMetrics, SimError> {
        self.serve_batch_with(targets, opts, Kernel::Chunked)
    }

    /// [`serve_batch`](Self::serve_batch) through the original per-request
    /// scalar loop — the bit-identity oracle for the chunked/SIMD kernel.
    /// Results are pinned equal to `serve_batch` for every input and
    /// thread count (property-tested); the only difference is speed.
    ///
    /// # Errors
    /// [`SimError::NotADataNode`] if any target is not a routed data node.
    pub fn serve_batch_scalar(
        &self,
        targets: &[NodeId],
        opts: &ServeOptions,
    ) -> Result<BatchMetrics, SimError> {
        self.serve_batch_with(targets, opts, Kernel::Reference)
    }

    fn serve_batch_with(
        &self,
        targets: &[NodeId],
        opts: &ServeOptions,
        kernel: Kernel,
    ) -> Result<BatchMetrics, SimError> {
        let threads = opts.threads.max(1);
        // Replica-gap overlay shared by every shard (empty when unused).
        let root_gaps = if opts.faults.is_none() {
            Vec::new()
        } else {
            faults::root_occurrence_gaps(self.cycle_len(), opts.recovery.root_replicas)
        };
        let shard = if threads <= 1 || targets.len() < threads {
            self.serve_shard(targets, 0, opts, &root_gaps, kernel)?
        } else {
            let chunk = targets.len().div_ceil(threads);
            let mut shards: Vec<Result<Shard, SimError>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = targets
                    .chunks(chunk)
                    .enumerate()
                    .map(|(t, part)| {
                        let start = (t * chunk) as u64;
                        let gaps = &root_gaps;
                        scope.spawn(move || self.serve_shard(part, start, opts, gaps, kernel))
                    })
                    .collect();
                shards = handles
                    .into_iter()
                    .map(|h| h.join().expect("no panics"))
                    .collect();
            });
            let mut merged: Option<Shard> = None;
            for s in shards {
                let s = s?;
                match &mut merged {
                    None => merged = Some(s),
                    Some(m) => m.merge(&s),
                }
            }
            merged.expect("at least one shard")
        };
        Ok(shard.into_metrics(targets.len()))
    }

    /// Sequential serving of one shard; `start` is the shard's global
    /// request offset (keeps tune-in and fault draws shard-layout
    /// independent).
    fn serve_shard(
        &self,
        targets: &[NodeId],
        start: u64,
        opts: &ServeOptions,
        root_gaps: &[u64],
        kernel: Kernel,
    ) -> Result<Shard, SimError> {
        if opts.faults.is_none() {
            return match kernel {
                Kernel::Reference => self.serve_shard_reference(targets, start, opts),
                Kernel::Chunked => self.serve_shard_chunked(targets, start, opts),
            };
        }
        // Lossy path: replay the recovery protocol over each request's
        // fault-free trace. Recovery can add many cycles of wait, so the
        // histogram bound gets headroom (values beyond it clamp in
        // percentile queries; the mean stays exact).
        let mut shard = Shard::new(LOSSY_HIST_CYCLES * self.cycle_len);
        self.serve_lossy_into(&mut shard, targets, start, opts, root_gaps)?;
        Ok(shard)
    }

    /// Lossy per-request loop, accumulating into a caller-owned shard —
    /// shared by [`serve_shard`](Self::serve_shard) and the streaming
    /// [`serve_chunk`](Self::serve_chunk) path. `start` is the global
    /// index of `targets[0]`, which keys both the tune-in draw and the
    /// fault link, so feeding any chunking of a batch through this loop
    /// is bit-identical to one pass over the whole batch.
    fn serve_lossy_into(
        &self,
        shard: &mut Shard,
        targets: &[NodeId],
        start: u64,
        opts: &ServeOptions,
        root_gaps: &[u64],
    ) -> Result<(), SimError> {
        let cycle = u64::from(self.cycle_len);
        for (j, &target) in targets.iter().enumerate() {
            let i = target.index();
            let slot = self.slot.get(i).copied().unwrap_or(0);
            if slot == 0 {
                return Err(SimError::NotADataNode(target));
            }
            let index = start + j as u64;
            let s = (mix64(opts.seed, index) % cycle) as u32 + 1;
            let base = AccessTrace {
                probe_wait: self.cycle_len - (s - 1),
                data_wait: slot - 1,
                tuning_time: self.path_len[i] + 1,
                channel_switches: self.switches[i],
            };
            let mut link = opts.faults.link(index);
            let outcome = faults::recover_access(
                base,
                Slot(s),
                self.cycle_len,
                &mut link,
                &opts.recovery,
                root_gaps,
            );
            match outcome {
                RequestOutcome::Delivered(d) => {
                    let total = u32::try_from(d.total_access_time()).unwrap_or(u32::MAX);
                    shard.hist.record(total);
                    shard.wait_sum += u64::from(d.trace.data_wait);
                    shard.tune_sum += u64::from(d.trace.tuning_time);
                    shard.switch_sum += u64::from(d.trace.channel_switches);
                    shard.extra_sum += d.extra_wait;
                    shard.retries += u64::from(d.retries);
                    shard.delivered += 1;
                }
                RequestOutcome::Failed(f) => {
                    shard.retries += u64::from(f.retries);
                    shard.failed += 1;
                }
            }
        }
        Ok(())
    }

    /// Fault-free serving, one request at a time — the original engine,
    /// kept verbatim as the oracle the chunked kernel is pinned against.
    fn serve_shard_reference(
        &self,
        targets: &[NodeId],
        start: u64,
        opts: &ServeOptions,
    ) -> Result<Shard, SimError> {
        let cycle = u64::from(self.cycle_len);
        let mut shard = Shard::new(2 * self.cycle_len);
        for (j, &target) in targets.iter().enumerate() {
            let i = target.index();
            let slot = self.slot.get(i).copied().unwrap_or(0);
            if slot == 0 {
                return Err(SimError::NotADataNode(target));
            }
            let probe = self.cycle_len - (mix64(opts.seed, start + j as u64) % cycle) as u32;
            let wait = slot - 1;
            shard.hist.record(probe + wait);
            shard.wait_sum += u64::from(wait);
            shard.tune_sum += u64::from(self.path_len[i] + 1);
            shard.switch_sum += u64::from(self.switches[i]);
            shard.delivered += 1;
        }
        Ok(shard)
    }

    /// Fault-free serving in [`SERVE_CHUNK`]-request chunks: division-free
    /// tune-in draws, a folded sentinel validation (re-scanned in order
    /// only on failure so the error matches the reference loop's), column
    /// gathers (AVX2 under the `simd` feature), batched histogram flush,
    /// and a prefetch of the next chunk's `slot` records.
    ///
    /// Every arithmetic step is exact integer work in the same order as
    /// the reference loop (sums are commutative u64 adds), so the shard it
    /// produces is bit-identical to [`serve_shard_reference`]'s.
    ///
    /// [`serve_shard_reference`]: CompiledProgram::serve_shard_reference
    fn serve_shard_chunked(
        &self,
        targets: &[NodeId],
        start: u64,
        opts: &ServeOptions,
    ) -> Result<Shard, SimError> {
        let mut shard = Shard::new(2 * self.cycle_len);
        self.serve_chunks_into(&mut shard, targets, start, opts.seed)?;
        Ok(shard)
    }

    /// Chunked fault-free kernel body, accumulating into a caller-owned
    /// shard — shared by [`serve_shard_chunked`] and the streaming
    /// [`serve_chunk`](Self::serve_chunk) path. `start` is the global
    /// index of `targets[0]`. Every per-request quantity depends only on
    /// that global index and the target, and every accumulation is
    /// commutative exact integer arithmetic, so feeding a batch through
    /// this body in *any* chunking produces a bit-identical shard.
    ///
    /// [`serve_shard_chunked`]: CompiledProgram::serve_shard_chunked
    fn serve_chunks_into(
        &self,
        shard: &mut Shard,
        targets: &[NodeId],
        start: u64,
        seed: u64,
    ) -> Result<(), SimError> {
        if targets.is_empty() {
            return Ok(());
        }
        let n = self.slot.len();
        if n == 0 {
            return Err(SimError::NotADataNode(targets[0]));
        }
        let fm = FastMod::new(u64::from(self.cycle_len));
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        let use_avx2 = std::arch::is_x86_feature_detected!("avx2") && n <= i32::MAX as usize / 4;
        let mut totals = [0u32; SERVE_CHUNK];
        for (chunk_no, chunk) in targets.chunks(SERVE_CHUNK).enumerate() {
            let base = chunk_no * SERVE_CHUNK;
            // Hint the next chunk's route records first, so the prefetches
            // land while this whole chunk is processed and flushed.
            self.prefetch_slots(targets, base + SERVE_CHUNK);
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if use_avx2 && chunk.len() == SERVE_CHUNK {
                // SAFETY: AVX2 availability was checked once up front.
                let ok = unsafe {
                    self.gather_chunk_avx2(chunk, start + base as u64, fm, seed, &mut totals, shard)
                };
                if !ok {
                    return Err(self.first_unrouted(chunk));
                }
                shard.hist.record_batch(&totals[..chunk.len()]);
                shard.delivered += chunk.len() as u64;
                continue;
            }
            // One fused pass per chunk: draw the tune-in residue with the
            // division-free reduction, read the node's packed route record
            // (one 16-byte load), fold the sentinel check into one flag
            // (a bad lane yields the zero record; the chunk is rejected
            // before anything is recorded, so its garbage never escapes),
            // and buffer the access totals for one batched histogram
            // flush.
            let mut bad = false;
            let mut wait_sum = 0u64;
            let mut tune_sum = 0u64;
            let mut switch_sum = 0u64;
            for (c, &target) in chunk.iter().enumerate() {
                let rec = self.packed.get(target.index()).copied().unwrap_or([0; 4]);
                bad |= rec[0] == 0;
                let probe = self.cycle_len - fm.rem(mix64(seed, start + (base + c) as u64)) as u32;
                let wait = rec[0].wrapping_sub(1);
                totals[c] = probe.wrapping_add(wait);
                wait_sum += u64::from(wait);
                tune_sum += u64::from(rec[1] + 1);
                switch_sum += u64::from(rec[2]);
            }
            if bad {
                return Err(self.first_unrouted(chunk));
            }
            shard.hist.record_batch(&totals[..chunk.len()]);
            shard.wait_sum += wait_sum;
            shard.tune_sum += tune_sum;
            shard.switch_sum += switch_sum;
            shard.delivered += chunk.len() as u64;
        }
        Ok(())
    }

    /// In-order scan for the first unrouted target of a rejected chunk —
    /// reports exactly the error the reference loop would.
    #[cold]
    fn first_unrouted(&self, chunk: &[NodeId]) -> SimError {
        for &target in chunk {
            if self.slot.get(target.index()).copied().unwrap_or(0) == 0 {
                return SimError::NotADataNode(target);
            }
        }
        unreachable!("rejected chunk contains an unrouted target")
    }

    /// Prefetches the packed route records of the next chunk's targets
    /// (x86_64; a no-op elsewhere). One 16-byte record per node means one
    /// hint per target covers everything the fused loop will load.
    #[inline]
    fn prefetch_slots(&self, targets: &[NodeId], from: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            let n = self.packed.len();
            let upto = (from + SERVE_CHUNK).min(targets.len());
            for &t in targets.get(from..upto).unwrap_or(&[]) {
                let i = t.index();
                if i < n {
                    // SAFETY: `i < n` keeps the address inside the table;
                    // prefetch has no other safety requirements.
                    unsafe {
                        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                        _mm_prefetch(self.packed.as_ptr().add(i).cast::<i8>(), _MM_HINT_T0);
                    }
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (targets, from);
        }
    }

    /// AVX2 chunk body for a **full** chunk: draws the residues scalar
    /// (the 64-bit mixes and the 128-bit fastmod multiply have no AVX2
    /// equivalent), then gathers the three route columns eight lanes at a
    /// time, computes `total = probe + (slot − 1)` per lane, stores the
    /// totals for the batched histogram flush, and accumulates the wait /
    /// tune / switch sums in 64-bit lanes. Exact integer arithmetic —
    /// bit-identical to the scalar chunk body by construction. Returns
    /// `false` (recording nothing) if any target is unrouted.
    ///
    /// # Safety
    /// Caller guarantees AVX2 is available, `chunk.len() == SERVE_CHUNK`,
    /// the route columns are non-empty, and their length fits `i32`.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2")]
    unsafe fn gather_chunk_avx2(
        &self,
        chunk: &[NodeId],
        global_start: u64,
        fm: FastMod,
        seed: u64,
        totals: &mut [u32; SERVE_CHUNK],
        shard: &mut Shard,
    ) -> bool {
        use std::arch::x86_64::*;
        let n = self.packed.len();
        let mut probes = [0u32; SERVE_CHUNK];
        let mut idx = [0i32; SERVE_CHUNK];
        let mut bad = false;
        for (c, &target) in chunk.iter().take(SERVE_CHUNK).enumerate() {
            let i = target.index();
            let slot = self.packed.get(i).map_or(0, |r| r[0]);
            bad |= slot == 0;
            // Clamped lane index keeps the gather in bounds; a bad chunk
            // is rejected before anything is recorded. Scaled by 4: the
            // gathers index u32 lanes of the packed records.
            idx[c] = (i.min(n - 1) * 4) as i32;
            probes[c] = self.cycle_len - fm.rem(mix64(seed, global_start + c as u64)) as u32;
        }
        if bad {
            return false;
        }
        let base_ptr = self.packed.as_ptr().cast::<i32>();
        let ones = _mm256_set1_epi32(1);
        let mut wait_acc = _mm256_setzero_si256();
        let mut tune_acc = _mm256_setzero_si256();
        let mut switch_acc = _mm256_setzero_si256();
        // Widens 8 u32 lanes into two 4×u64 halves and adds both into acc.
        #[inline]
        unsafe fn accumulate(acc: __m256i, v: __m256i) -> __m256i {
            let lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v));
            let hi = _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v, 1));
            _mm256_add_epi64(_mm256_add_epi64(acc, lo), hi)
        }
        let mut c = 0;
        while c < SERVE_CHUNK {
            let vi = _mm256_loadu_si256(idx.as_ptr().add(c).cast::<__m256i>());
            let vslot = _mm256_i32gather_epi32(base_ptr, vi, 4);
            let vpath = _mm256_i32gather_epi32(base_ptr, _mm256_add_epi32(vi, ones), 4);
            let vswitch =
                _mm256_i32gather_epi32(base_ptr, _mm256_add_epi32(vi, _mm256_set1_epi32(2)), 4);
            let vprobe = _mm256_loadu_si256(probes.as_ptr().add(c).cast::<__m256i>());
            let vwait = _mm256_sub_epi32(vslot, ones);
            let vtotal = _mm256_add_epi32(vprobe, vwait);
            _mm256_storeu_si256(totals.as_mut_ptr().add(c).cast::<__m256i>(), vtotal);
            wait_acc = accumulate(wait_acc, vwait);
            tune_acc = accumulate(tune_acc, _mm256_add_epi32(vpath, ones));
            switch_acc = accumulate(switch_acc, vswitch);
            c += 8;
        }
        let mut lanes64 = [0u64; 4];
        for (acc, sum) in [
            (wait_acc, &mut shard.wait_sum),
            (tune_acc, &mut shard.tune_sum),
            (switch_acc, &mut shard.switch_sum),
        ] {
            _mm256_storeu_si256(lanes64.as_mut_ptr().cast::<__m256i>(), acc);
            *sum += lanes64.iter().sum::<u64>();
        }
        true
    }

    /// Single lossy access through the route tables: the compiled
    /// equivalent of [`faults::access_lossy`] (which walks the real bucket
    /// grid — property tests pin the two together).
    ///
    /// # Errors
    /// [`SimError::NotADataNode`] for unrouted targets; losses are not
    /// errors, they surface in the [`RequestOutcome`].
    pub fn access_lossy(
        &self,
        target: NodeId,
        tune_in: Slot,
        plan: &FaultPlan,
        request_index: u64,
        policy: &RecoveryPolicy,
    ) -> Result<RequestOutcome, SimError> {
        let base = self.access(target, tune_in)?;
        let root_gaps = faults::root_occurrence_gaps(self.cycle_len(), policy.root_replicas);
        let s = (tune_in.offset() as u32 % self.cycle_len) + 1;
        let mut link = plan.link(request_index);
        Ok(faults::recover_access(
            base,
            Slot(s),
            self.cycle_len,
            &mut link,
            policy,
            &root_gaps,
        ))
    }

    /// Arms `session` to stream one logical batch through this program,
    /// reusing all of the session's buffers — allocation-free on the
    /// fault-free path once the histogram has grown to this program's
    /// bound. The result of feeding any chunking of a batch through
    /// [`serve_chunk`](Self::serve_chunk) is bit-identical to one
    /// [`serve_batch`](Self::serve_batch) call over the concatenation, at
    /// any thread count (the batch kernel is itself sharding-invariant).
    pub fn begin_session(&self, session: &mut ServeSession, opts: &ServeOptions) {
        let lossy = !opts.faults.is_none();
        let bound = if lossy {
            LOSSY_HIST_CYCLES * self.cycle_len
        } else {
            2 * self.cycle_len
        };
        session.shard.reset(bound);
        session.opts = *opts;
        session.lossy = lossy;
        if lossy {
            faults::root_occurrence_gaps_into(
                self.cycle_len(),
                opts.recovery.root_replicas,
                &mut session.root_gaps,
            );
        } else {
            session.root_gaps.clear();
        }
        session.next_index = 0;
        session.requests = 0;
    }

    /// Serves the next `targets.len()` requests of the session's batch,
    /// accumulating into the session's shard. Global request indices
    /// (which key tune-in and fault draws) advance automatically, so the
    /// caller only streams target chunks — feed [`SERVE_CHUNK`]-sized
    /// slices to hand the kernel whole chunks.
    ///
    /// # Errors
    /// [`SimError::NotADataNode`] if any target is not a routed data
    /// node. The session is left mid-batch and should be re-armed with
    /// [`begin_session`](Self::begin_session) before reuse.
    pub fn serve_chunk(
        &self,
        session: &mut ServeSession,
        targets: &[NodeId],
    ) -> Result<(), SimError> {
        let start = session.next_index;
        session.next_index += targets.len() as u64;
        session.requests += targets.len() as u64;
        if session.lossy {
            let ServeSession {
                shard,
                opts,
                root_gaps,
                ..
            } = session;
            self.serve_lossy_into(shard, targets, start, opts, root_gaps)
        } else {
            self.serve_chunks_into(&mut session.shard, targets, start, session.opts.seed)
        }
    }
}

/// Histogram headroom for lossy serving, in multiples of the cycle length
/// (fault-free serving needs exactly 2 — probe ≤ cycle, data wait <
/// cycle; recovery waits can add several more).
const LOSSY_HIST_CYCLES: u32 = 8;

/// Which fault-free shard body to run — the production chunked kernel or
/// the per-request reference loop it is pinned bit-identical to.
#[derive(Debug, Clone, Copy)]
enum Kernel {
    Chunked,
    Reference,
}

/// Options for [`CompiledProgram::serve_batch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeOptions {
    /// OS threads to shard the batch over (`0` and `1` both mean
    /// sequential). Results do not depend on this value.
    pub threads: usize,
    /// Seed for the per-request tune-in draws.
    pub seed: u64,
    /// Channel fault model ([`FaultPlan::none`] = the perfect channel and
    /// the original fast path).
    pub faults: FaultPlan,
    /// Recovery budget applied when `faults` is not the perfect channel.
    pub recovery: RecoveryPolicy,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 1,
            seed: 0x5EED,
            faults: FaultPlan::none(),
            recovery: RecoveryPolicy::default(),
        }
    }
}

impl ServeOptions {
    /// The tune-in slot `serve_batch` uses for the request at `index` in a
    /// cycle of `cycle_len` slots — exposed so oracle tests can replay the
    /// exact same request against the walking simulator.
    #[inline]
    pub fn tune_in(&self, index: u64, cycle_len: usize) -> Slot {
        Slot((mix64(self.seed, index) % cycle_len as u64) as u32 + 1)
    }
}

/// Reusable state for streaming one logical batch through
/// [`CompiledProgram::serve_chunk`] without per-slice allocation.
///
/// A session owns the accumulator shard, the armed [`ServeOptions`] and
/// the lossy path's replica-gap overlay; [`CompiledProgram::begin_session`]
/// resets all of them in place (reusing buffer capacity), and the
/// accessors read the accumulated aggregates at any point mid-stream.
#[derive(Debug, Clone)]
pub struct ServeSession {
    shard: Shard,
    opts: ServeOptions,
    root_gaps: Vec<u64>,
    lossy: bool,
    next_index: u64,
    requests: u64,
}

impl ServeSession {
    /// Creates an idle session. Arm it with
    /// [`CompiledProgram::begin_session`] before feeding chunks.
    pub fn new() -> Self {
        ServeSession {
            shard: Shard::new(0),
            opts: ServeOptions::default(),
            root_gaps: Vec::new(),
            lossy: false,
            next_index: 0,
            requests: 0,
        }
    }

    /// Requests fed so far in the current batch.
    #[inline]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Requests delivered so far.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.shard.delivered
    }

    /// Requests failed so far (always 0 on the fault-free path).
    #[inline]
    pub fn failed(&self) -> u64 {
        self.shard.failed
    }

    /// Failed reads recovered from (or charged by failed requests).
    #[inline]
    pub fn retries(&self) -> u64 {
        self.shard.retries
    }

    /// Fraction of fed requests delivered (`1.0` before any are fed).
    #[inline]
    pub fn delivery_rate(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.shard.delivered as f64 / self.requests as f64
        }
    }

    /// The access-time histogram accumulated so far.
    #[inline]
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.shard.hist
    }

    /// Snapshots the session's aggregates as a [`BatchMetrics`] — the
    /// same value [`CompiledProgram::serve_batch`] would return for the
    /// concatenation of every chunk fed so far. Clones the histogram, so
    /// this is for batch boundaries and tests, not the per-chunk path.
    pub fn to_metrics(&self) -> BatchMetrics {
        self.shard
            .clone()
            .into_metrics(usize::try_from(self.requests).unwrap_or(usize::MAX))
    }
}

impl Default for ServeSession {
    fn default() -> Self {
        ServeSession::new()
    }
}

/// Per-thread accumulator: integer sums (exact, order independent) plus a
/// histogram shard.
#[derive(Debug, Clone)]
struct Shard {
    hist: LatencyHistogram,
    wait_sum: u64,
    tune_sum: u64,
    switch_sum: u64,
    extra_sum: u64,
    retries: u64,
    delivered: u64,
    failed: u64,
}

impl Shard {
    fn new(bound: u32) -> Self {
        Shard {
            hist: LatencyHistogram::with_bound(bound),
            wait_sum: 0,
            tune_sum: 0,
            switch_sum: 0,
            extra_sum: 0,
            retries: 0,
            delivered: 0,
            failed: 0,
        }
    }

    /// Empties the accumulator and re-covers histogram values
    /// `0..=bound`, reusing buffer capacity — bit-equivalent to a fresh
    /// [`Shard::new`], without the allocation.
    fn reset(&mut self, bound: u32) {
        self.hist.reset(bound);
        self.wait_sum = 0;
        self.tune_sum = 0;
        self.switch_sum = 0;
        self.extra_sum = 0;
        self.retries = 0;
        self.delivered = 0;
        self.failed = 0;
    }

    fn merge(&mut self, other: &Shard) {
        self.hist.merge(&other.hist);
        self.wait_sum += other.wait_sum;
        self.tune_sum += other.tune_sum;
        self.switch_sum += other.switch_sum;
        self.extra_sum += other.extra_sum;
        self.retries += other.retries;
        self.delivered += other.delivered;
        self.failed += other.failed;
    }

    fn into_metrics(self, requests: usize) -> BatchMetrics {
        // Means are over *delivered* requests; failed ones contribute only
        // to the failure/retry columns.
        let n = self.delivered as f64;
        BatchMetrics {
            requests,
            mean_access_time: if self.delivered == 0 {
                0.0
            } else {
                self.hist.mean()
            },
            mean_data_wait: if self.delivered == 0 {
                0.0
            } else {
                self.wait_sum as f64 / n
            },
            mean_tuning_time: if self.delivered == 0 {
                0.0
            } else {
                self.tune_sum as f64 / n
            },
            mean_channel_switches: if self.delivered == 0 {
                0.0
            } else {
                self.switch_sum as f64 / n
            },
            mean_extra_wait: if self.delivered == 0 {
                0.0
            } else {
                self.extra_sum as f64 / n
            },
            delivered: self.delivered,
            failed: self.failed,
            retries: self.retries,
            histogram: self.hist,
        }
    }
}

/// Aggregated result of one [`CompiledProgram::serve_batch`] call.
///
/// All `mean_*` columns average over **delivered** requests; failed
/// requests are counted in [`failed`](Self::failed) (and their retries in
/// [`retries`](Self::retries)) but never skew the means. On the perfect
/// channel every request is delivered and the metrics are bit-identical
/// to the fault-free engine's.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMetrics {
    /// Requests served (delivered + failed).
    pub requests: usize,
    /// Mean access time in slots (probe wait + data wait; plus recovery
    /// wait under faults).
    pub mean_access_time: f64,
    /// Mean data wait in slots, measured from the root bucket (i.e.
    /// `T(Di) − 1` averaged over requests).
    pub mean_data_wait: f64,
    /// Mean tuning time in buckets (failed reads included for delivered
    /// requests).
    pub mean_tuning_time: f64,
    /// Mean channel switches per access.
    pub mean_channel_switches: f64,
    /// Mean slots of recovery wait added on top of the fault-free access
    /// (0 on the perfect channel).
    pub mean_extra_wait: f64,
    /// Requests delivered within their recovery budget.
    pub delivered: u64,
    /// Requests abandoned after exhausting their retry/timeout budget.
    pub failed: u64,
    /// Total failed reads recovered from (or charged by failed requests).
    pub retries: u64,
    /// Exact access-time histogram over delivered requests (quantiles via
    /// [`LatencyHistogram::percentile`]; under faults the recorded value
    /// is the total access time, recovery wait included).
    pub histogram: LatencyHistogram,
}

impl BatchMetrics {
    /// Fraction of requests delivered (`1.0` for an empty batch).
    pub fn delivery_rate(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.delivered as f64 / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;
    use crate::simulator;
    use bcast_index_tree::builders;

    fn ids(tree: &IndexTree, labels: &[&str]) -> Vec<NodeId> {
        labels
            .iter()
            .map(|l| tree.find_by_label(l).expect("label exists"))
            .collect()
    }

    fn fig2b() -> (IndexTree, BroadcastProgram) {
        let t = builders::paper_example();
        let slots = vec![
            ids(&t, &["1"]),
            ids(&t, &["2", "3"]),
            ids(&t, &["A", "B"]),
            ids(&t, &["4", "E"]),
            ids(&t, &["C", "D"]),
        ];
        let a = Allocation::from_slot_schedule(&slots, &t, 2).unwrap();
        let p = BroadcastProgram::build(&a, &t).unwrap();
        (t, p)
    }

    #[test]
    fn compiled_access_matches_oracle_on_every_pair() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        assert_eq!(c.num_data_nodes(), t.num_data_nodes());
        let cycle = p.cycle_len() as u32;
        for &d in t.data_nodes() {
            // Including tune-ins past the cycle (wraparound).
            for tune in 1..=(2 * cycle + 3) {
                let oracle = simulator::access(&p, &t, d, Slot(tune)).unwrap();
                let fast = c.access(d, Slot(tune)).unwrap();
                assert_eq!(oracle, fast, "node {} tune {tune}", t.label(d));
            }
        }
    }

    #[test]
    fn rejects_index_targets() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let idx = t.find_by_label("2").unwrap();
        assert_eq!(
            c.access(idx, Slot::FIRST).unwrap_err(),
            SimError::NotADataNode(idx)
        );
        assert_eq!(c.data_slot(idx), None);
    }

    #[test]
    fn dropped_pointer_fails_compilation_with_no_route() {
        let (t, mut p) = fig2b();
        let root_addr = BucketAddr::new(0, 0);
        let Bucket::Index { pointers, .. } = p.bucket_mut(root_addr) else {
            panic!("root bucket is an index bucket");
        };
        pointers.pop().expect("root has children");
        assert!(matches!(
            CompiledProgram::compile(&p, &t),
            Err(SimError::NoRoute { .. })
        ));
    }

    #[test]
    fn redirected_pointer_fails_compilation_with_broken_pointer() {
        let (t, mut p) = fig2b();
        let root_addr = BucketAddr::new(0, 0);
        let Bucket::Index { pointers, .. } = p.bucket_mut(root_addr) else {
            panic!("root bucket is an index bucket");
        };
        // Point the first child pointer at a different occupied bucket.
        pointers[0].offset += 1;
        assert!(matches!(
            CompiledProgram::compile(&p, &t),
            Err(SimError::BrokenPointer { .. })
        ));
    }

    #[test]
    fn serve_batch_is_thread_count_invariant() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let data = t.data_nodes();
        let targets: Vec<NodeId> = (0..1000).map(|i| data[i % data.len()]).collect();
        let base = ServeOptions {
            threads: 1,
            seed: 42,
            ..ServeOptions::default()
        };
        let m1 = c.serve_batch(&targets, &base).unwrap();
        for threads in [2, 3, 8] {
            let mt = c
                .serve_batch(&targets, &ServeOptions { threads, ..base })
                .unwrap();
            assert_eq!(m1, mt, "threads = {threads}");
        }
        assert_eq!(m1.requests, 1000);
        assert_eq!(m1.histogram.count(), 1000);
    }

    #[test]
    fn serve_batch_matches_oracle_fold() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let data = t.data_nodes();
        let targets: Vec<NodeId> = (0..257).map(|i| data[(i * 7) % data.len()]).collect();
        let opts = ServeOptions {
            threads: 1,
            seed: 7,
            ..ServeOptions::default()
        };
        let m = c.serve_batch(&targets, &opts).unwrap();
        let mut access_sum = 0u64;
        let mut wait_sum = 0u64;
        for (i, &target) in targets.iter().enumerate() {
            let tune = opts.tune_in(i as u64, c.cycle_len());
            let trace = simulator::access(&p, &t, target, tune).unwrap();
            access_sum += u64::from(trace.access_time());
            wait_sum += u64::from(trace.data_wait);
        }
        let n = targets.len() as f64;
        assert!((m.mean_access_time - access_sum as f64 / n).abs() < 1e-12);
        assert!((m.mean_data_wait - wait_sum as f64 / n).abs() < 1e-12);
    }

    #[test]
    fn serve_batch_rejects_bad_targets() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let idx = t.find_by_label("3").unwrap();
        let err = c.serve_batch(&[idx], &ServeOptions::default()).unwrap_err();
        assert_eq!(err, SimError::NotADataNode(idx));
        // The chunked kernel reports the same first error the reference
        // loop would, even when the bad target is mid-chunk.
        let data = t.data_nodes();
        let mut targets: Vec<NodeId> = (0..100).map(|i| data[i % data.len()]).collect();
        targets[37] = idx;
        targets[61] = NodeId::from_index(100_000); // out of bounds too
        let opts = ServeOptions::default();
        assert_eq!(
            c.serve_batch(&targets, &opts).unwrap_err(),
            c.serve_batch_scalar(&targets, &opts).unwrap_err(),
        );
    }

    #[test]
    fn chunked_kernel_matches_scalar_oracle() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let data = t.data_nodes();
        // Sizes around the chunk boundary, plus empty and single-request.
        for len in [0usize, 1, 7, 63, 64, 65, 127, 128, 1000] {
            let targets: Vec<NodeId> = (0..len).map(|i| data[(i * 5) % data.len()]).collect();
            for threads in [1, 3] {
                let opts = ServeOptions {
                    threads,
                    seed: 0xC0FFEE,
                    ..ServeOptions::default()
                };
                let fast = c.serve_batch(&targets, &opts).unwrap();
                let oracle = c.serve_batch_scalar(&targets, &opts).unwrap();
                assert_eq!(fast, oracle, "len {len} threads {threads}");
            }
        }
    }

    #[test]
    fn fastmod_matches_hardware_remainder() {
        for d in [
            1u64,
            2,
            3,
            5,
            9,
            255,
            256,
            1023,
            65_536,
            u64::from(u32::MAX),
        ] {
            let fm = FastMod::new(d);
            let mut x = 0x1234_5678_9ABC_DEF0u64;
            for _ in 0..1000 {
                x = mix64(x, d);
                assert_eq!(fm.rem(x), x % d, "x {x} d {d}");
            }
            assert_eq!(fm.rem(0), 0);
            assert_eq!(fm.rem(u64::MAX), u64::MAX % d);
        }
    }

    #[test]
    fn empty_batch_yields_zero_metrics() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let m = c.serve_batch(&[], &ServeOptions::default()).unwrap();
        assert_eq!(m.requests, 0);
        assert_eq!(m.mean_access_time, 0.0);
        assert!(m.histogram.is_empty());
        assert_eq!(m.delivery_rate(), 1.0);
    }

    #[test]
    fn lossy_serving_is_thread_count_invariant_and_deterministic() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let data = t.data_nodes();
        let targets: Vec<NodeId> = (0..2000).map(|i| data[(i * 3) % data.len()]).collect();
        let base = ServeOptions {
            threads: 1,
            seed: 42,
            faults: FaultPlan::erasure(0.15, 0xFA11).unwrap(),
            recovery: RecoveryPolicy {
                max_retries: 5,
                timeout_slots: 64,
                ..RecoveryPolicy::default()
            },
        };
        let m1 = c.serve_batch(&targets, &base).unwrap();
        assert!(m1.failed > 0, "tight budget at 15% loss must fail some");
        assert!(m1.retries > 0);
        assert_eq!(m1.delivered + m1.failed, targets.len() as u64);
        for threads in [2, 3, 8] {
            let mt = c
                .serve_batch(&targets, &ServeOptions { threads, ..base })
                .unwrap();
            assert_eq!(m1, mt, "threads = {threads}");
        }
        // Rerun with the same seed: bit-identical.
        assert_eq!(m1, c.serve_batch(&targets, &base).unwrap());
        // A different fault seed changes the outcome.
        let other = ServeOptions {
            faults: FaultPlan::erasure(0.15, 0xFA12).unwrap(),
            ..base
        };
        assert_ne!(m1, c.serve_batch(&targets, &other).unwrap());
    }

    #[test]
    fn zero_probability_faults_match_the_fault_free_fast_path() {
        // p = 0 exercises the lossy code path but loses nothing: every
        // aggregate must equal the fast path's (histogram bounds differ by
        // design, so compare fields, not the whole struct).
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let data = t.data_nodes();
        let targets: Vec<NodeId> = (0..500).map(|i| data[i % data.len()]).collect();
        let clean = c.serve_batch(&targets, &ServeOptions::default()).unwrap();
        let lossy_opts = ServeOptions {
            faults: FaultPlan::erasure(0.0, 9).unwrap(),
            ..ServeOptions::default()
        };
        let lossy = c.serve_batch(&targets, &lossy_opts).unwrap();
        assert_eq!(lossy.delivered, clean.delivered);
        assert_eq!(lossy.failed, 0);
        assert_eq!(lossy.retries, 0);
        assert_eq!(lossy.mean_access_time, clean.mean_access_time);
        assert_eq!(lossy.mean_data_wait, clean.mean_data_wait);
        assert_eq!(lossy.mean_tuning_time, clean.mean_tuning_time);
        assert_eq!(lossy.mean_extra_wait, 0.0);
        assert_eq!(lossy.histogram.mean(), clean.histogram.mean());
    }

    #[test]
    fn total_loss_fails_everything_without_aborting() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let data = t.data_nodes();
        let targets: Vec<NodeId> = (0..100).map(|i| data[i % data.len()]).collect();
        let opts = ServeOptions {
            faults: FaultPlan::erasure(1.0, 1).unwrap(),
            ..ServeOptions::default()
        };
        let m = c.serve_batch(&targets, &opts).unwrap();
        assert_eq!(m.delivered, 0);
        assert_eq!(m.failed, 100);
        assert_eq!(m.delivery_rate(), 0.0);
        assert_eq!(m.mean_access_time, 0.0);
        assert!(m.histogram.is_empty());
        // Every request charged its full retry budget, nothing more.
        assert_eq!(m.retries, 100 * u64::from(opts.recovery.max_retries));
    }

    #[test]
    fn session_chunk_feed_matches_serve_batch_bit_for_bit() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let data = t.data_nodes();
        let targets: Vec<NodeId> = (0..1000).map(|i| data[(i * 3) % data.len()]).collect();
        let lossless = ServeOptions {
            seed: 0xABCD,
            ..ServeOptions::default()
        };
        let lossy = ServeOptions {
            seed: 0xABCD,
            faults: FaultPlan::erasure(0.15, 0xFA11).unwrap(),
            recovery: RecoveryPolicy {
                max_retries: 5,
                timeout_slots: 64,
                ..RecoveryPolicy::default()
            },
            ..ServeOptions::default()
        };
        // One session reused across batches pins both the chunk-feed
        // equivalence and the begin_session reset (lossless after lossy
        // shrinks the histogram bound, lossy after lossless regrows it).
        let mut session = ServeSession::new();
        for opts in [&lossless, &lossy, &lossless, &lossy] {
            let oracle = c.serve_batch(&targets, opts).unwrap();
            // Odd chunk sizes, never aligned to SERVE_CHUNK.
            for chunk in [1usize, 7, 100, 255, 257, 999] {
                c.begin_session(&mut session, opts);
                for part in targets.chunks(chunk) {
                    c.serve_chunk(&mut session, part).unwrap();
                }
                assert_eq!(session.requests(), targets.len() as u64);
                assert_eq!(session.to_metrics(), oracle, "chunk {chunk}");
                assert_eq!(session.delivered(), oracle.delivered);
                assert_eq!(session.failed(), oracle.failed);
                assert_eq!(session.retries(), oracle.retries);
                assert_eq!(session.delivery_rate(), oracle.delivery_rate());
                assert_eq!(session.histogram(), &oracle.histogram);
            }
        }
    }

    #[test]
    fn session_rejects_bad_targets_like_the_batch_engine() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let idx = t.find_by_label("3").unwrap();
        let mut session = ServeSession::new();
        c.begin_session(&mut session, &ServeOptions::default());
        let data = t.data_nodes();
        let mut targets: Vec<NodeId> = (0..64).map(|i| data[i % data.len()]).collect();
        targets[37] = idx;
        assert_eq!(
            c.serve_chunk(&mut session, &targets).unwrap_err(),
            SimError::NotADataNode(idx)
        );
        // An empty session reports the empty-batch identity rate.
        c.begin_session(&mut session, &ServeOptions::default());
        assert_eq!(session.delivery_rate(), 1.0);
        assert_eq!(session.requests(), 0);
    }

    #[test]
    fn compiled_lossy_access_matches_walking_oracle() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let plan = FaultPlan::erasure(0.3, 0xABCD).unwrap();
        let policy = RecoveryPolicy {
            max_retries: 10,
            timeout_slots: 200,
            backoff_cap: 3,
            root_replicas: 2,
        };
        for &d in t.data_nodes() {
            for tune in 1..=p.cycle_len() as u32 {
                for req in 0..8u64 {
                    let walk =
                        faults::access_lossy(&p, &t, d, Slot(tune), &plan, req, &policy).unwrap();
                    let fast = c.access_lossy(d, Slot(tune), &plan, req, &policy).unwrap();
                    assert_eq!(walk, fast, "node {} tune {tune} req {req}", t.label(d));
                }
            }
        }
    }
}
