//! Compiled route tables and the batched serving engine.
//!
//! [`simulator::access`](crate::simulator::access) re-walks the pointer
//! path through the bucket grid for every request — an O(path) walk plus an
//! O(tree) ancestor-marking allocation. Every quantity it reports, however,
//! is a pure function of `(target, tune-in residue)`:
//!
//! * probe wait depends only on the tune-in residue within the cycle,
//! * data wait, tuning time and channel switches depend only on the target,
//!   because the pointer route from the root to a data bucket is fixed by
//!   the program.
//!
//! [`CompiledProgram::compile`] therefore walks the pointer graph **once**
//! (each bucket is visited exactly once — O(buckets)), validating every
//! pointer on the way, and stores per-node route records in flat
//! structure-of-arrays tables. A single access becomes three array reads
//! and one subtraction; [`CompiledProgram::serve_batch`] feeds millions of
//! requests through those tables with per-thread sharding and a streaming
//! [`LatencyHistogram`], never allocating per request. The pointer-chasing
//! simulator remains the oracle the tables are property-tested against.

use crate::faults::{self, FaultPlan, RecoveryPolicy, RequestOutcome};
use crate::hist::LatencyHistogram;
use crate::program::{BroadcastProgram, Bucket};
use crate::simulator::{AccessTrace, SimError};
use bcast_index_tree::IndexTree;
use bcast_types::{BucketAddr, ChannelId, NodeId, Slot};

/// SplitMix64 finalizer: spreads a request index into an independent
/// 64-bit draw, so per-request tune-in slots depend only on the *global*
/// request index — sharded serving is thread-count invariant.
#[inline]
fn mix64(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-node route tables compiled from a [`BroadcastProgram`].
///
/// Construction validates the whole pointer graph (every child reachable,
/// every pointer landing on the bucket it promises), so lookups are
/// infallible for any data node of the source tree — the O(1) answers are
/// *exact*, not approximations, by the argument in the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompiledProgram {
    cycle_len: u32,
    /// `T(Di)`: absolute 1-based slot of the node's data bucket.
    slot: Vec<u32>,
    /// Buckets read on the pointer path root..=data (tuning time minus the
    /// initial probe bucket).
    path_len: Vec<u32>,
    /// Channel switches performed after the probe.
    switches: Vec<u32>,
    /// Whether the node is a routed data node (lookup guard).
    routed: Vec<bool>,
    num_data: usize,
}

impl CompiledProgram {
    /// Compiles `program` (built over `tree`) into flat route tables in one
    /// pass over the pointer graph.
    ///
    /// # Errors
    /// Surfaces the same corruption classes the walking simulator would hit
    /// at request time, but eagerly: [`SimError::NoRoute`] if an index
    /// bucket lacks a pointer to one of its children, and
    /// [`SimError::BrokenPointer`] if a pointer leads outside the grid or
    /// to a bucket not holding the promised node.
    pub fn compile(program: &BroadcastProgram, tree: &IndexTree) -> Result<Self, SimError> {
        let n = tree.len();
        let mut this = CompiledProgram {
            cycle_len: program.cycle_len() as u32,
            slot: vec![0; n],
            path_len: vec![0; n],
            switches: vec![0; n],
            routed: vec![false; n],
            num_data: 0,
        };
        // Depth-first over the pointer graph; the tree structure guarantees
        // each node (hence each occupied bucket) is pushed exactly once.
        let root_addr = BucketAddr {
            channel: ChannelId::FIRST,
            slot: Slot::FIRST,
        };
        let mut stack: Vec<(BucketAddr, NodeId, u32, u32)> = vec![(root_addr, tree.root(), 1, 0)];
        while let Some((at, expect, path_len, switches)) = stack.pop() {
            if at.channel.index() >= program.num_channels()
                || at.slot.offset() >= program.cycle_len()
            {
                // A corrupt pointer escaping the grid: report it instead of
                // indexing out of bounds.
                return Err(SimError::BrokenPointer {
                    at,
                    expected: expect,
                });
            }
            match program.bucket(at) {
                Bucket::Data { node } if *node == expect && tree.is_data(expect) => {
                    let i = expect.index();
                    this.slot[i] = at.slot.0;
                    this.path_len[i] = path_len;
                    this.switches[i] = switches;
                    this.routed[i] = true;
                    this.num_data += 1;
                }
                Bucket::Index { node, pointers } if *node == expect => {
                    for &child in tree.children(expect) {
                        let Some(ptr) = pointers.iter().find(|p| p.child == child) else {
                            return Err(SimError::NoRoute {
                                at: expect,
                                target: child,
                            });
                        };
                        stack.push((
                            BucketAddr {
                                channel: ptr.channel,
                                slot: Slot(at.slot.0 + ptr.offset),
                            },
                            child,
                            path_len + 1,
                            switches + u32::from(ptr.channel != at.channel),
                        ));
                    }
                }
                // Bucket holds something other than the routed-to node (or
                // a data payload where the tree expects an index node).
                Bucket::Data { .. } | Bucket::Index { .. } | Bucket::Empty => {
                    return Err(SimError::BrokenPointer {
                        at,
                        expected: expect,
                    });
                }
            }
        }
        Ok(this)
    }

    /// Resets the tables for `n` nodes and `cycle_len` slots, keeping the
    /// backing capacity — the fused pipeline's rebuild entry point
    /// (`clear` + `resize` never reallocates once the buffers have grown
    /// to steady-state size).
    pub(crate) fn reset(&mut self, n: usize, cycle_len: u32) {
        self.cycle_len = cycle_len;
        self.slot.clear();
        self.slot.resize(n, 0);
        self.path_len.clear();
        self.path_len.resize(n, 0);
        self.switches.clear();
        self.switches.resize(n, 0);
        self.routed.clear();
        self.routed.resize(n, false);
        self.num_data = 0;
    }

    /// Writes one data node's route record — the fused pipeline's
    /// equivalent of the DFS leaf case in [`CompiledProgram::compile`].
    #[inline]
    pub(crate) fn record_data(&mut self, node: NodeId, slot: u32, path_len: u32, switches: u32) {
        let i = node.index();
        debug_assert!(!self.routed[i], "data node recorded twice");
        self.slot[i] = slot;
        self.path_len[i] = path_len;
        self.switches[i] = switches;
        self.routed[i] = true;
        self.num_data += 1;
    }

    /// Overwrites an *existing* data route record in place — the delta
    /// republish lane's counterpart of [`record_data`]: `path_len` (the
    /// node's level) and `num_data` are invariant under a repack, so only
    /// the slot and switch count move.
    ///
    /// [`record_data`]: CompiledProgram::record_data
    #[inline]
    pub(crate) fn patch_data(&mut self, node: NodeId, slot: u32, switches: u32) {
        let i = node.index();
        debug_assert!(self.routed[i], "patch_data targets an existing record");
        self.slot[i] = slot;
        self.switches[i] = switches;
    }

    /// Reconciles one node's route record from `other` — the delta lane's
    /// journal replay. Only `slot` and `switches` can differ between the
    /// double-buffer halves after an in-place patch: `path_len`, `routed`,
    /// `num_data` and the cycle length are all repack-invariant.
    #[inline]
    pub(crate) fn copy_record_from(&mut self, other: &CompiledProgram, node: NodeId) {
        let i = node.index();
        self.slot[i] = other.slot[i];
        self.switches[i] = other.switches[i];
    }

    /// Makes `self` a bit-identical copy of `other`, reusing this buffer's
    /// capacity (`Vec::clone_from` per column — memcpy-grade, no
    /// allocation once capacities match). The delta lane seeds the back
    /// buffer from the served front program before patching dirty records.
    pub(crate) fn copy_from(&mut self, other: &CompiledProgram) {
        self.cycle_len = other.cycle_len;
        self.slot.clone_from(&other.slot);
        self.path_len.clone_from(&other.path_len);
        self.switches.clone_from(&other.switches);
        self.routed.clone_from(&other.routed);
        self.num_data = other.num_data;
    }

    /// Cycle length in slots.
    #[inline]
    pub fn cycle_len(&self) -> usize {
        self.cycle_len as usize
    }

    /// Number of routed data nodes.
    #[inline]
    pub fn num_data_nodes(&self) -> usize {
        self.num_data
    }

    /// The absolute slot `T(Di)` of a data node's bucket, or `None` for
    /// index nodes / foreign ids.
    #[inline]
    pub fn data_slot(&self, node: NodeId) -> Option<Slot> {
        let i = node.index();
        (i < self.routed.len() && self.routed[i]).then(|| Slot(self.slot[i]))
    }

    /// Probe wait for a tune-in slot: slots until the next cycle's root
    /// bucket has been read, with cyclic wraparound for tune-ins past the
    /// cycle (matching the walking simulator's normalization).
    #[inline]
    pub fn probe_wait(&self, tune_in: Slot) -> u32 {
        self.cycle_len - (tune_in.offset() as u32 % self.cycle_len)
    }

    /// O(1) equivalent of [`simulator::access`](crate::simulator::access):
    /// three table reads and the probe-wait subtraction.
    ///
    /// # Errors
    /// [`SimError::NotADataNode`] for index nodes or foreign ids; routing
    /// errors cannot occur here because compilation validated every route.
    #[inline]
    pub fn access(&self, target: NodeId, tune_in: Slot) -> Result<AccessTrace, SimError> {
        let i = target.index();
        if i >= self.routed.len() || !self.routed[i] {
            return Err(SimError::NotADataNode(target));
        }
        Ok(AccessTrace {
            probe_wait: self.probe_wait(tune_in),
            data_wait: self.slot[i] - 1,
            tuning_time: self.path_len[i] + 1,
            channel_switches: self.switches[i],
        })
    }

    /// Serves a batch of requests through the route tables, optionally
    /// sharded over `opts.threads` OS threads, and aggregates exact means
    /// plus a streaming latency histogram (no per-request allocation).
    ///
    /// Each request's tune-in slot is drawn uniformly over the cycle from
    /// `opts.seed` and the request's **global index**, so the result is
    /// bit-identical for every thread count — and because
    /// [`FaultPlan::link`] is keyed by the same global index, that also
    /// holds with `opts.faults` enabled. With [`FaultPlan::none`] the
    /// engine takes the original fault-free fast path unchanged; with
    /// faults, each lost read is recovered per `opts.recovery`, delivered
    /// requests record their **total** access time (recovery wait
    /// included) in the histogram, and failed requests are counted in
    /// [`BatchMetrics::failed`] instead of aborting the batch.
    ///
    /// # Errors
    /// [`SimError::NotADataNode`] if any target is not a routed data node.
    pub fn serve_batch(
        &self,
        targets: &[NodeId],
        opts: &ServeOptions,
    ) -> Result<BatchMetrics, SimError> {
        let threads = opts.threads.max(1);
        // Replica-gap overlay shared by every shard (empty when unused).
        let root_gaps = if opts.faults.is_none() {
            Vec::new()
        } else {
            faults::root_occurrence_gaps(self.cycle_len(), opts.recovery.root_replicas)
        };
        let shard = if threads <= 1 || targets.len() < threads {
            self.serve_shard(targets, 0, opts, &root_gaps)?
        } else {
            let chunk = targets.len().div_ceil(threads);
            let mut shards: Vec<Result<Shard, SimError>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = targets
                    .chunks(chunk)
                    .enumerate()
                    .map(|(t, part)| {
                        let start = (t * chunk) as u64;
                        let gaps = &root_gaps;
                        scope.spawn(move || self.serve_shard(part, start, opts, gaps))
                    })
                    .collect();
                shards = handles
                    .into_iter()
                    .map(|h| h.join().expect("no panics"))
                    .collect();
            });
            let mut merged: Option<Shard> = None;
            for s in shards {
                let s = s?;
                match &mut merged {
                    None => merged = Some(s),
                    Some(m) => m.merge(&s),
                }
            }
            merged.expect("at least one shard")
        };
        Ok(shard.into_metrics(targets.len()))
    }

    /// Sequential serving of one shard; `start` is the shard's global
    /// request offset (keeps tune-in and fault draws shard-layout
    /// independent).
    fn serve_shard(
        &self,
        targets: &[NodeId],
        start: u64,
        opts: &ServeOptions,
        root_gaps: &[u64],
    ) -> Result<Shard, SimError> {
        let cycle = u64::from(self.cycle_len);
        if opts.faults.is_none() {
            // Fault-free fast path: identical to the pre-fault engine.
            let mut shard = Shard::new(2 * self.cycle_len);
            for (j, &target) in targets.iter().enumerate() {
                let i = target.index();
                if i >= self.routed.len() || !self.routed[i] {
                    return Err(SimError::NotADataNode(target));
                }
                let probe = self.cycle_len - (mix64(opts.seed, start + j as u64) % cycle) as u32;
                let wait = self.slot[i] - 1;
                shard.hist.record(probe + wait);
                shard.wait_sum += u64::from(wait);
                shard.tune_sum += u64::from(self.path_len[i] + 1);
                shard.switch_sum += u64::from(self.switches[i]);
                shard.delivered += 1;
            }
            return Ok(shard);
        }
        // Lossy path: replay the recovery protocol over each request's
        // fault-free trace. Recovery can add many cycles of wait, so the
        // histogram bound gets headroom (values beyond it clamp in
        // percentile queries; the mean stays exact).
        let mut shard = Shard::new(LOSSY_HIST_CYCLES * self.cycle_len);
        for (j, &target) in targets.iter().enumerate() {
            let i = target.index();
            if i >= self.routed.len() || !self.routed[i] {
                return Err(SimError::NotADataNode(target));
            }
            let index = start + j as u64;
            let s = (mix64(opts.seed, index) % cycle) as u32 + 1;
            let base = AccessTrace {
                probe_wait: self.cycle_len - (s - 1),
                data_wait: self.slot[i] - 1,
                tuning_time: self.path_len[i] + 1,
                channel_switches: self.switches[i],
            };
            let mut link = opts.faults.link(index);
            let outcome = faults::recover_access(
                base,
                Slot(s),
                self.cycle_len,
                &mut link,
                &opts.recovery,
                root_gaps,
            );
            match outcome {
                RequestOutcome::Delivered(d) => {
                    let total = u32::try_from(d.total_access_time()).unwrap_or(u32::MAX);
                    shard.hist.record(total);
                    shard.wait_sum += u64::from(d.trace.data_wait);
                    shard.tune_sum += u64::from(d.trace.tuning_time);
                    shard.switch_sum += u64::from(d.trace.channel_switches);
                    shard.extra_sum += d.extra_wait;
                    shard.retries += u64::from(d.retries);
                    shard.delivered += 1;
                }
                RequestOutcome::Failed(f) => {
                    shard.retries += u64::from(f.retries);
                    shard.failed += 1;
                }
            }
        }
        Ok(shard)
    }

    /// Single lossy access through the route tables: the compiled
    /// equivalent of [`faults::access_lossy`] (which walks the real bucket
    /// grid — property tests pin the two together).
    ///
    /// # Errors
    /// [`SimError::NotADataNode`] for unrouted targets; losses are not
    /// errors, they surface in the [`RequestOutcome`].
    pub fn access_lossy(
        &self,
        target: NodeId,
        tune_in: Slot,
        plan: &FaultPlan,
        request_index: u64,
        policy: &RecoveryPolicy,
    ) -> Result<RequestOutcome, SimError> {
        let base = self.access(target, tune_in)?;
        let root_gaps = faults::root_occurrence_gaps(self.cycle_len(), policy.root_replicas);
        let s = (tune_in.offset() as u32 % self.cycle_len) + 1;
        let mut link = plan.link(request_index);
        Ok(faults::recover_access(
            base,
            Slot(s),
            self.cycle_len,
            &mut link,
            policy,
            &root_gaps,
        ))
    }
}

/// Histogram headroom for lossy serving, in multiples of the cycle length
/// (fault-free serving needs exactly 2 — probe ≤ cycle, data wait <
/// cycle; recovery waits can add several more).
const LOSSY_HIST_CYCLES: u32 = 8;

/// Options for [`CompiledProgram::serve_batch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeOptions {
    /// OS threads to shard the batch over (`0` and `1` both mean
    /// sequential). Results do not depend on this value.
    pub threads: usize,
    /// Seed for the per-request tune-in draws.
    pub seed: u64,
    /// Channel fault model ([`FaultPlan::none`] = the perfect channel and
    /// the original fast path).
    pub faults: FaultPlan,
    /// Recovery budget applied when `faults` is not the perfect channel.
    pub recovery: RecoveryPolicy,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 1,
            seed: 0x5EED,
            faults: FaultPlan::none(),
            recovery: RecoveryPolicy::default(),
        }
    }
}

impl ServeOptions {
    /// The tune-in slot `serve_batch` uses for the request at `index` in a
    /// cycle of `cycle_len` slots — exposed so oracle tests can replay the
    /// exact same request against the walking simulator.
    #[inline]
    pub fn tune_in(&self, index: u64, cycle_len: usize) -> Slot {
        Slot((mix64(self.seed, index) % cycle_len as u64) as u32 + 1)
    }
}

/// Per-thread accumulator: integer sums (exact, order independent) plus a
/// histogram shard.
struct Shard {
    hist: LatencyHistogram,
    wait_sum: u64,
    tune_sum: u64,
    switch_sum: u64,
    extra_sum: u64,
    retries: u64,
    delivered: u64,
    failed: u64,
}

impl Shard {
    fn new(bound: u32) -> Self {
        Shard {
            hist: LatencyHistogram::with_bound(bound),
            wait_sum: 0,
            tune_sum: 0,
            switch_sum: 0,
            extra_sum: 0,
            retries: 0,
            delivered: 0,
            failed: 0,
        }
    }

    fn merge(&mut self, other: &Shard) {
        self.hist.merge(&other.hist);
        self.wait_sum += other.wait_sum;
        self.tune_sum += other.tune_sum;
        self.switch_sum += other.switch_sum;
        self.extra_sum += other.extra_sum;
        self.retries += other.retries;
        self.delivered += other.delivered;
        self.failed += other.failed;
    }

    fn into_metrics(self, requests: usize) -> BatchMetrics {
        // Means are over *delivered* requests; failed ones contribute only
        // to the failure/retry columns.
        let n = self.delivered as f64;
        BatchMetrics {
            requests,
            mean_access_time: if self.delivered == 0 {
                0.0
            } else {
                self.hist.mean()
            },
            mean_data_wait: if self.delivered == 0 {
                0.0
            } else {
                self.wait_sum as f64 / n
            },
            mean_tuning_time: if self.delivered == 0 {
                0.0
            } else {
                self.tune_sum as f64 / n
            },
            mean_channel_switches: if self.delivered == 0 {
                0.0
            } else {
                self.switch_sum as f64 / n
            },
            mean_extra_wait: if self.delivered == 0 {
                0.0
            } else {
                self.extra_sum as f64 / n
            },
            delivered: self.delivered,
            failed: self.failed,
            retries: self.retries,
            histogram: self.hist,
        }
    }
}

/// Aggregated result of one [`CompiledProgram::serve_batch`] call.
///
/// All `mean_*` columns average over **delivered** requests; failed
/// requests are counted in [`failed`](Self::failed) (and their retries in
/// [`retries`](Self::retries)) but never skew the means. On the perfect
/// channel every request is delivered and the metrics are bit-identical
/// to the fault-free engine's.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMetrics {
    /// Requests served (delivered + failed).
    pub requests: usize,
    /// Mean access time in slots (probe wait + data wait; plus recovery
    /// wait under faults).
    pub mean_access_time: f64,
    /// Mean data wait in slots, measured from the root bucket (i.e.
    /// `T(Di) − 1` averaged over requests).
    pub mean_data_wait: f64,
    /// Mean tuning time in buckets (failed reads included for delivered
    /// requests).
    pub mean_tuning_time: f64,
    /// Mean channel switches per access.
    pub mean_channel_switches: f64,
    /// Mean slots of recovery wait added on top of the fault-free access
    /// (0 on the perfect channel).
    pub mean_extra_wait: f64,
    /// Requests delivered within their recovery budget.
    pub delivered: u64,
    /// Requests abandoned after exhausting their retry/timeout budget.
    pub failed: u64,
    /// Total failed reads recovered from (or charged by failed requests).
    pub retries: u64,
    /// Exact access-time histogram over delivered requests (quantiles via
    /// [`LatencyHistogram::percentile`]; under faults the recorded value
    /// is the total access time, recovery wait included).
    pub histogram: LatencyHistogram,
}

impl BatchMetrics {
    /// Fraction of requests delivered (`1.0` for an empty batch).
    pub fn delivery_rate(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.delivered as f64 / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;
    use crate::simulator;
    use bcast_index_tree::builders;

    fn ids(tree: &IndexTree, labels: &[&str]) -> Vec<NodeId> {
        labels
            .iter()
            .map(|l| tree.find_by_label(l).expect("label exists"))
            .collect()
    }

    fn fig2b() -> (IndexTree, BroadcastProgram) {
        let t = builders::paper_example();
        let slots = vec![
            ids(&t, &["1"]),
            ids(&t, &["2", "3"]),
            ids(&t, &["A", "B"]),
            ids(&t, &["4", "E"]),
            ids(&t, &["C", "D"]),
        ];
        let a = Allocation::from_slot_schedule(&slots, &t, 2).unwrap();
        let p = BroadcastProgram::build(&a, &t).unwrap();
        (t, p)
    }

    #[test]
    fn compiled_access_matches_oracle_on_every_pair() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        assert_eq!(c.num_data_nodes(), t.num_data_nodes());
        let cycle = p.cycle_len() as u32;
        for &d in t.data_nodes() {
            // Including tune-ins past the cycle (wraparound).
            for tune in 1..=(2 * cycle + 3) {
                let oracle = simulator::access(&p, &t, d, Slot(tune)).unwrap();
                let fast = c.access(d, Slot(tune)).unwrap();
                assert_eq!(oracle, fast, "node {} tune {tune}", t.label(d));
            }
        }
    }

    #[test]
    fn rejects_index_targets() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let idx = t.find_by_label("2").unwrap();
        assert_eq!(
            c.access(idx, Slot::FIRST).unwrap_err(),
            SimError::NotADataNode(idx)
        );
        assert_eq!(c.data_slot(idx), None);
    }

    #[test]
    fn dropped_pointer_fails_compilation_with_no_route() {
        let (t, mut p) = fig2b();
        let root_addr = BucketAddr::new(0, 0);
        let Bucket::Index { pointers, .. } = p.bucket_mut(root_addr) else {
            panic!("root bucket is an index bucket");
        };
        pointers.pop().expect("root has children");
        assert!(matches!(
            CompiledProgram::compile(&p, &t),
            Err(SimError::NoRoute { .. })
        ));
    }

    #[test]
    fn redirected_pointer_fails_compilation_with_broken_pointer() {
        let (t, mut p) = fig2b();
        let root_addr = BucketAddr::new(0, 0);
        let Bucket::Index { pointers, .. } = p.bucket_mut(root_addr) else {
            panic!("root bucket is an index bucket");
        };
        // Point the first child pointer at a different occupied bucket.
        pointers[0].offset += 1;
        assert!(matches!(
            CompiledProgram::compile(&p, &t),
            Err(SimError::BrokenPointer { .. })
        ));
    }

    #[test]
    fn serve_batch_is_thread_count_invariant() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let data = t.data_nodes();
        let targets: Vec<NodeId> = (0..1000).map(|i| data[i % data.len()]).collect();
        let base = ServeOptions {
            threads: 1,
            seed: 42,
            ..ServeOptions::default()
        };
        let m1 = c.serve_batch(&targets, &base).unwrap();
        for threads in [2, 3, 8] {
            let mt = c
                .serve_batch(&targets, &ServeOptions { threads, ..base })
                .unwrap();
            assert_eq!(m1, mt, "threads = {threads}");
        }
        assert_eq!(m1.requests, 1000);
        assert_eq!(m1.histogram.count(), 1000);
    }

    #[test]
    fn serve_batch_matches_oracle_fold() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let data = t.data_nodes();
        let targets: Vec<NodeId> = (0..257).map(|i| data[(i * 7) % data.len()]).collect();
        let opts = ServeOptions {
            threads: 1,
            seed: 7,
            ..ServeOptions::default()
        };
        let m = c.serve_batch(&targets, &opts).unwrap();
        let mut access_sum = 0u64;
        let mut wait_sum = 0u64;
        for (i, &target) in targets.iter().enumerate() {
            let tune = opts.tune_in(i as u64, c.cycle_len());
            let trace = simulator::access(&p, &t, target, tune).unwrap();
            access_sum += u64::from(trace.access_time());
            wait_sum += u64::from(trace.data_wait);
        }
        let n = targets.len() as f64;
        assert!((m.mean_access_time - access_sum as f64 / n).abs() < 1e-12);
        assert!((m.mean_data_wait - wait_sum as f64 / n).abs() < 1e-12);
    }

    #[test]
    fn serve_batch_rejects_bad_targets() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let idx = t.find_by_label("3").unwrap();
        let err = c.serve_batch(&[idx], &ServeOptions::default()).unwrap_err();
        assert_eq!(err, SimError::NotADataNode(idx));
    }

    #[test]
    fn empty_batch_yields_zero_metrics() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let m = c.serve_batch(&[], &ServeOptions::default()).unwrap();
        assert_eq!(m.requests, 0);
        assert_eq!(m.mean_access_time, 0.0);
        assert!(m.histogram.is_empty());
        assert_eq!(m.delivery_rate(), 1.0);
    }

    #[test]
    fn lossy_serving_is_thread_count_invariant_and_deterministic() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let data = t.data_nodes();
        let targets: Vec<NodeId> = (0..2000).map(|i| data[(i * 3) % data.len()]).collect();
        let base = ServeOptions {
            threads: 1,
            seed: 42,
            faults: FaultPlan::erasure(0.15, 0xFA11).unwrap(),
            recovery: RecoveryPolicy {
                max_retries: 5,
                timeout_slots: 64,
                ..RecoveryPolicy::default()
            },
        };
        let m1 = c.serve_batch(&targets, &base).unwrap();
        assert!(m1.failed > 0, "tight budget at 15% loss must fail some");
        assert!(m1.retries > 0);
        assert_eq!(m1.delivered + m1.failed, targets.len() as u64);
        for threads in [2, 3, 8] {
            let mt = c
                .serve_batch(&targets, &ServeOptions { threads, ..base })
                .unwrap();
            assert_eq!(m1, mt, "threads = {threads}");
        }
        // Rerun with the same seed: bit-identical.
        assert_eq!(m1, c.serve_batch(&targets, &base).unwrap());
        // A different fault seed changes the outcome.
        let other = ServeOptions {
            faults: FaultPlan::erasure(0.15, 0xFA12).unwrap(),
            ..base
        };
        assert_ne!(m1, c.serve_batch(&targets, &other).unwrap());
    }

    #[test]
    fn zero_probability_faults_match_the_fault_free_fast_path() {
        // p = 0 exercises the lossy code path but loses nothing: every
        // aggregate must equal the fast path's (histogram bounds differ by
        // design, so compare fields, not the whole struct).
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let data = t.data_nodes();
        let targets: Vec<NodeId> = (0..500).map(|i| data[i % data.len()]).collect();
        let clean = c.serve_batch(&targets, &ServeOptions::default()).unwrap();
        let lossy_opts = ServeOptions {
            faults: FaultPlan::erasure(0.0, 9).unwrap(),
            ..ServeOptions::default()
        };
        let lossy = c.serve_batch(&targets, &lossy_opts).unwrap();
        assert_eq!(lossy.delivered, clean.delivered);
        assert_eq!(lossy.failed, 0);
        assert_eq!(lossy.retries, 0);
        assert_eq!(lossy.mean_access_time, clean.mean_access_time);
        assert_eq!(lossy.mean_data_wait, clean.mean_data_wait);
        assert_eq!(lossy.mean_tuning_time, clean.mean_tuning_time);
        assert_eq!(lossy.mean_extra_wait, 0.0);
        assert_eq!(lossy.histogram.mean(), clean.histogram.mean());
    }

    #[test]
    fn total_loss_fails_everything_without_aborting() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let data = t.data_nodes();
        let targets: Vec<NodeId> = (0..100).map(|i| data[i % data.len()]).collect();
        let opts = ServeOptions {
            faults: FaultPlan::erasure(1.0, 1).unwrap(),
            ..ServeOptions::default()
        };
        let m = c.serve_batch(&targets, &opts).unwrap();
        assert_eq!(m.delivered, 0);
        assert_eq!(m.failed, 100);
        assert_eq!(m.delivery_rate(), 0.0);
        assert_eq!(m.mean_access_time, 0.0);
        assert!(m.histogram.is_empty());
        // Every request charged its full retry budget, nothing more.
        assert_eq!(m.retries, 100 * u64::from(opts.recovery.max_retries));
    }

    #[test]
    fn compiled_lossy_access_matches_walking_oracle() {
        let (t, p) = fig2b();
        let c = CompiledProgram::compile(&p, &t).unwrap();
        let plan = FaultPlan::erasure(0.3, 0xABCD).unwrap();
        let policy = RecoveryPolicy {
            max_retries: 10,
            timeout_slots: 200,
            backoff_cap: 3,
            root_replicas: 2,
        };
        for &d in t.data_nodes() {
            for tune in 1..=p.cycle_len() as u32 {
                for req in 0..8u64 {
                    let walk =
                        faults::access_lossy(&p, &t, d, Slot(tune), &plan, req, &policy).unwrap();
                    let fast = c.access_lossy(d, Slot(tune), &plan, req, &policy).unwrap();
                    assert_eq!(walk, fast, "node {} tune {tune} req {req}", t.label(d));
                }
            }
        }
    }
}
