#![warn(missing_docs)]

//! Broadcast-channel substrate.
//!
//! Models the physical layer of the paper: `k` channels transmitting one
//! bucket per slot, a broadcast cycle repeated periodically, buckets holding
//! either an index node (with `(channel, offset)` pointers to its children)
//! or a data node.
//!
//! The crate provides, bottom-up:
//!
//! * [`Allocation`] — the paper's mapping `f : I ∪ D → C × S`, with
//!   feasibility validation (injective, child strictly after parent) and the
//!   §3.1 channel-assignment rules for turning a *slot schedule* (the
//!   compound-node path found by the search algorithms) into concrete
//!   channel positions;
//! * [`cost`] — formula (1): the average data wait, plus probe-wait and
//!   access-time expectations;
//! * [`BroadcastProgram`] — the fully materialized bucket grid with forward
//!   pointers, validated so every pointer is followable;
//! * [`simulator`] — a client that tunes in at an arbitrary slot, follows
//!   pointers, and reports access time / tuning time / channel switches,
//!   used to cross-validate the analytic cost model and to measure the
//!   tuning-time effects the paper's introduction discusses;
//! * [`compiled`] — the compile-then-serve layer: per-node route tables
//!   precomputed in one pass ([`CompiledProgram`]), turning each simulated
//!   access into an O(1) table read, plus the sharded batched serving
//!   engine ([`CompiledProgram::serve_batch`]) and its exact streaming
//!   [`LatencyHistogram`];
//! * [`publish`] — the fused zero-allocation path from a heuristic's
//!   [`SlotPlan`] straight to a servable [`CompiledProgram`]
//!   ([`PublishPipeline`]), double-buffered so a rebuild never disturbs
//!   the program currently being served;
//! * [`snapshot`] — versioned, CRC-sealed, fixed-layout binary images
//!   of a [`CompiledProgram`] ([`SnapshotImage`]): a publish persisted
//!   once cold-starts any number of later tenants with a bounds-checked
//!   cast instead of a re-publish;
//! * [`faults`] — deterministic lossy-channel fault injection
//!   ([`FaultPlan`]: seeded erasure and Gilbert–Elliott burst loss) and
//!   the bounded-budget client recovery protocol ([`RecoveryPolicy`]),
//!   injectable into both the pointer-walk oracle
//!   ([`faults::access_lossy`]) and the batched serving engine.

mod allocation;
pub mod compiled;
pub mod cost;
pub mod faults;
pub mod hist;
mod program;
pub mod publish;
pub mod simulator;
pub mod snapshot;
pub mod wire;

pub use allocation::{Allocation, FeasibilityError};
pub use compiled::{BatchMetrics, CompiledProgram, ServeOptions, ServeSession, SERVE_CHUNK};
pub use faults::{
    ClientLink, DeliveredTrace, FailReason, FaultError, FaultPlan, GilbertElliott, RecoveryFailure,
    RecoveryPolicy, RequestOutcome,
};
pub use hist::LatencyHistogram;
pub use program::{BroadcastProgram, Bucket, Pointer, ProgramError};
pub use publish::{PublishPipeline, SlotPlan};
pub use simulator::SimError;
pub use snapshot::{MappedSnapshot, SnapshotError, SnapshotImage, SnapshotView};
