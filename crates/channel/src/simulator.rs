//! A mobile-client simulator over a [`BroadcastProgram`].
//!
//! The paper splits a request's life into **probe wait** (tune in on channel
//! `C1`, read the current bucket, learn the offset of the next cycle's
//! root) and **data wait** (follow index pointers from the root to the data
//! bucket). Between reads the client dozes, so *tuning time* — the number of
//! buckets actually listened to, the paper's proxy for battery drain
//! \[IVB94a\] — is the pointer-path length plus the initial probe.
//!
//! The simulator executes exactly that protocol and reports every metric,
//! giving an end-to-end check of the analytic cost model
//! ([`crate::cost::average_data_wait`]) and enabling the tuning-time
//! comparisons between index-tree shapes that motivated the paper's choice
//! of alphabetic trees.

use crate::compiled::CompiledProgram;
use crate::hist::LatencyHistogram;
use crate::program::{BroadcastProgram, Bucket};
use bcast_index_tree::IndexTree;
use bcast_types::{BucketAddr, ChannelId, NodeId, Slot};
use std::fmt;

/// The trace of one simulated access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTrace {
    /// Slots from tune-in until the root bucket has been read (inclusive).
    pub probe_wait: u32,
    /// Slots from the root bucket (exclusive) to the data bucket
    /// (inclusive); equals the paper's `T(Di)` minus the root's slot when
    /// the root sits at slot 1 — i.e. `T(Di) - 1`.
    pub data_wait: u32,
    /// Buckets actually read (probe bucket + root + index path + data).
    pub tuning_time: u32,
    /// Channel switches performed after the probe.
    pub channel_switches: u32,
}

impl AccessTrace {
    /// Total slots from tune-in to data retrieval.
    pub fn access_time(&self) -> u32 {
        self.probe_wait + self.data_wait
    }
}

/// Errors from a simulated access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The requested node is not a data node.
    NotADataNode(NodeId),
    /// A followed pointer led to a bucket not holding the expected node —
    /// the program is corrupt.
    BrokenPointer {
        /// Bucket the pointer led to.
        at: BucketAddr,
        /// Node the client expected there.
        expected: NodeId,
    },
    /// An index bucket had no pointer toward the target (routing failure).
    NoRoute {
        /// The index node where routing stopped.
        at: NodeId,
        /// The unreachable target.
        target: NodeId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotADataNode(n) => write!(f, "{n} is not a data node"),
            SimError::BrokenPointer { at, expected } => {
                write!(f, "bucket {at} does not hold expected node {expected}")
            }
            SimError::NoRoute { at, target } => {
                write!(f, "no pointer from {at} toward {target}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Simulates one access to `target`, tuning in during slot `tune_in` of the
/// cycle (1-based, on channel `C1`).
///
/// Protocol:
/// 1. read the current `C1` bucket (1 tuning bucket) and learn the offset
///    to the next cycle's first bucket;
/// 2. doze until that bucket — the index root — and read it;
/// 3. at each index bucket, follow the pointer to the child that is an
///    ancestor-or-self of `target` (a key-range lookup in the real system);
/// 4. repeat until the data bucket is read.
pub fn access(
    program: &BroadcastProgram,
    tree: &IndexTree,
    target: NodeId,
    tune_in: Slot,
) -> Result<AccessTrace, SimError> {
    if !tree.is_data(target) {
        return Err(SimError::NotADataNode(target));
    }
    // The broadcast is cyclic: a tune-in past the cycle length is the same
    // physical moment as its in-cycle residue.
    let tune_in = Slot::from_offset(tune_in.offset() % program.cycle_len());
    // Ancestor chain of the target (self included) for routing.
    let mut on_path = vec![false; tree.len()];
    on_path[target.index()] = true;
    for a in tree.ancestors(target) {
        on_path[a.index()] = true;
    }

    // Step 1: probe. Reading the tune-in bucket costs one listening slot and
    // tells us where the next cycle starts.
    let mut tuning_time = 1u32;
    let probe_wait = program.next_cycle_offset(tune_in);
    let mut channel_switches = 0u32;

    // Step 2 onward: walk pointers from the root at (C1, s1).
    let mut at = BucketAddr {
        channel: ChannelId::FIRST,
        slot: Slot::FIRST,
    };
    let mut clock = 1u32; // slots elapsed since cycle start, = at.slot
    loop {
        tuning_time += 1;
        match program.bucket(at) {
            Bucket::Data { node } if on_path[node.index()] => {
                return Ok(AccessTrace {
                    probe_wait,
                    data_wait: clock - 1,
                    tuning_time,
                    channel_switches,
                });
            }
            Bucket::Index { node, pointers } if on_path[node.index()] => {
                let Some(ptr) = pointers.iter().find(|p| on_path[p.child.index()]) else {
                    return Err(SimError::NoRoute { at: *node, target });
                };
                if ptr.channel != at.channel {
                    channel_switches += 1;
                }
                clock += ptr.offset;
                at = BucketAddr {
                    channel: ptr.channel,
                    slot: Slot(at.slot.0 + ptr.offset),
                };
            }
            Bucket::Data { node } | Bucket::Index { node, .. } => {
                return Err(SimError::BrokenPointer {
                    at,
                    expected: *node,
                })
            }
            Bucket::Empty => {
                return Err(SimError::BrokenPointer {
                    at,
                    expected: target,
                })
            }
        }
    }
}

/// Aggregate metrics over every data node (weighted by access frequency)
/// and every tune-in slot (uniform).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateMetrics {
    /// Expected access time (probe + data wait) in slots.
    pub avg_access_time: f64,
    /// Expected data wait in slots, measured from cycle start (the paper's
    /// formula-1 quantity).
    pub avg_data_wait: f64,
    /// Expected tuning time in buckets.
    pub avg_tuning_time: f64,
    /// Expected channel switches per access.
    pub avg_channel_switches: f64,
}

/// Exhaustively simulates every `(data node, tune-in slot)` pair and
/// averages, weighting data nodes by access frequency.
///
/// The returned `avg_data_wait` equals
/// [`crate::cost::average_data_wait`] — asserted by integration tests —
/// because the simulator's `data_wait` is `T(Di) - 1` and the root
/// consumes slot 1 exactly as formula (1) assumes.
pub fn aggregate_metrics(
    program: &BroadcastProgram,
    tree: &IndexTree,
) -> Result<AggregateMetrics, SimError> {
    // One O(buckets) compile validates every route; each per-node read is
    // then O(1) instead of a pointer walk.
    let compiled = CompiledProgram::compile(program, tree)?;
    let total_w = tree.total_weight().get();
    let cycle = program.cycle_len() as f64;
    let mut access_acc = 0.0;
    let mut wait_acc = 0.0;
    let mut tune_acc = 0.0;
    let mut switch_acc = 0.0;
    for &d in tree.data_nodes() {
        let w = tree.weight(d).get();
        // Probe wait depends only on the tune-in slot; average it once.
        // data wait / tuning / switches are tune-in independent.
        let trace = compiled.access(d, Slot::FIRST)?;
        let avg_probe = (cycle + 1.0) / 2.0;
        access_acc += w * (avg_probe + f64::from(trace.data_wait));
        wait_acc += w * f64::from(trace.data_wait + 1); // + root slot
        tune_acc += w * f64::from(trace.tuning_time);
        switch_acc += w * f64::from(trace.channel_switches);
    }
    if total_w == 0.0 {
        return Ok(AggregateMetrics {
            avg_access_time: 0.0,
            avg_data_wait: 0.0,
            avg_tuning_time: 0.0,
            avg_channel_switches: 0.0,
        });
    }
    Ok(AggregateMetrics {
        avg_access_time: access_acc / total_w,
        avg_data_wait: wait_acc / total_w,
        avg_tuning_time: tune_acc / total_w,
        avg_channel_switches: switch_acc / total_w,
    })
}

/// Latency distribution of simulated accesses — tail behavior the paper's
/// mean-only formula (1) cannot show.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyDistribution {
    /// Mean access time (slots).
    pub mean: f64,
    /// Median access time.
    pub p50: u32,
    /// 90th percentile.
    pub p90: u32,
    /// 99th percentile.
    pub p99: u32,
    /// Worst observed access.
    pub max: u32,
    /// Number of simulated requests.
    pub samples: usize,
}

/// Simulates `requests` independent accesses — target drawn proportionally
/// to access weight, tune-in slot uniform over the cycle — and reports the
/// realized access-time distribution. Deterministic per `seed`
/// (xorshift64*).
///
/// Each access is an O(1) read of the compiled route tables, and samples
/// stream through an exact fixed-bucket [`LatencyHistogram`] — no
/// per-request allocation or sort, so request counts in the millions are
/// routine (see `CompiledProgram::serve_batch` for the sharded engine).
///
/// # Errors
/// Propagates any routing failure (a corrupt program).
///
/// # Panics
/// Panics if `requests == 0` or the tree has zero total weight (no
/// distribution to draw targets from).
pub fn latency_distribution(
    program: &BroadcastProgram,
    tree: &IndexTree,
    requests: usize,
    seed: u64,
) -> Result<LatencyDistribution, SimError> {
    assert!(requests > 0, "need at least one request");
    let total = tree.total_weight().get();
    assert!(
        total > 0.0,
        "cannot draw targets from an all-zero-weight tree"
    );
    let compiled = CompiledProgram::compile(program, tree)?;
    // Cumulative weights for inverse-CDF target sampling.
    let data = tree.data_nodes();
    let mut cdf = Vec::with_capacity(data.len());
    let mut acc = 0.0;
    for &d in data {
        acc += tree.weight(d).get();
        cdf.push(acc);
    }
    let mut state = seed | 1;
    let mut next_u64 = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let cycle = program.cycle_len() as u64;
    // Access time is bounded by probe (≤ cycle) + data wait (< cycle).
    let mut hist = LatencyHistogram::with_bound(2 * cycle as u32);
    for _ in 0..requests {
        let u = (next_u64() >> 11) as f64 / (1u64 << 53) as f64 * total;
        let idx = match cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) | Err(i) => i.min(data.len() - 1),
        };
        let tune = Slot((next_u64() % cycle) as u32 + 1);
        let trace = compiled.access(data[idx], tune)?;
        hist.record(trace.access_time());
    }
    Ok(LatencyDistribution {
        mean: hist.mean(),
        p50: hist.percentile(0.50),
        p90: hist.percentile(0.90),
        p99: hist.percentile(0.99),
        max: hist.max(),
        samples: requests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;
    use crate::cost;
    use bcast_index_tree::builders;

    fn ids(tree: &IndexTree, labels: &[&str]) -> Vec<NodeId> {
        labels
            .iter()
            .map(|l| tree.find_by_label(l).expect("label exists"))
            .collect()
    }

    fn fig2a() -> (IndexTree, Allocation, BroadcastProgram) {
        let t = builders::paper_example();
        let seq = ids(&t, &["1", "3", "E", "4", "C", "D", "2", "A", "B"]);
        let a = Allocation::from_sequence(&seq, &t).unwrap();
        let p = BroadcastProgram::build(&a, &t).unwrap();
        (t, a, p)
    }

    fn fig2b() -> (IndexTree, Allocation, BroadcastProgram) {
        let t = builders::paper_example();
        let slots = vec![
            ids(&t, &["1"]),
            ids(&t, &["2", "3"]),
            ids(&t, &["A", "B"]),
            ids(&t, &["4", "E"]),
            ids(&t, &["C", "D"]),
        ];
        let a = Allocation::from_slot_schedule(&slots, &t, 2).unwrap();
        let p = BroadcastProgram::build(&a, &t).unwrap();
        (t, a, p)
    }

    #[test]
    fn simulated_wait_matches_analytic_one_channel() {
        let (t, a, p) = fig2a();
        for &d in t.data_nodes() {
            let trace = access(&p, &t, d, Slot::FIRST).unwrap();
            let analytic = a.slot_of(d).unwrap().wait() as u32;
            assert_eq!(trace.data_wait + 1, analytic, "node {}", t.label(d));
        }
        let agg = aggregate_metrics(&p, &t).unwrap();
        assert!((agg.avg_data_wait - cost::average_data_wait(&a, &t)).abs() < 1e-9);
    }

    #[test]
    fn simulated_wait_matches_analytic_two_channels() {
        let (t, a, p) = fig2b();
        let agg = aggregate_metrics(&p, &t).unwrap();
        assert!((agg.avg_data_wait - cost::average_data_wait(&a, &t)).abs() < 1e-9);
        // Some accesses must hop channels in the Fig. 2(b) layout.
        assert!(agg.avg_channel_switches > 0.0);
    }

    #[test]
    fn tuning_time_is_path_length_plus_probe() {
        let (t, _, p) = fig2a();
        let c = t.find_by_label("C").unwrap();
        // Path 1 → 3 → 4 → C: read probe bucket + 4 path buckets.
        let trace = access(&p, &t, c, Slot(4)).unwrap();
        assert_eq!(trace.tuning_time, 5);
        // Probe: tuned at slot 4 of a 9-slot cycle → root read 6 slots on.
        assert_eq!(trace.probe_wait, 6);
        assert_eq!(trace.access_time(), 6 + trace.data_wait);
    }

    #[test]
    fn tune_in_past_cycle_wraps() {
        let (t, _, p) = fig2a();
        let c = t.find_by_label("C").unwrap();
        // Slot 13 of a 9-slot cycle is physically slot 4.
        let a = access(&p, &t, c, Slot(13)).unwrap();
        let b = access(&p, &t, c, Slot(4)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_index_node_target() {
        let (t, _, p) = fig2a();
        let idx = t.find_by_label("2").unwrap();
        assert_eq!(
            access(&p, &t, idx, Slot::FIRST).unwrap_err(),
            SimError::NotADataNode(idx)
        );
    }

    #[test]
    fn latency_distribution_is_consistent() {
        let (t, a, p) = fig2b();
        let d = latency_distribution(&p, &t, 20_000, 9).unwrap();
        assert_eq!(d.samples, 20_000);
        assert!(d.p50 <= d.p90 && d.p90 <= d.p99 && d.p99 <= d.max);
        // Mean access ≈ expected probe + expected data wait − 1 (the
        // simulator measures from tune-in; formula-1 counts the root slot).
        let expected = crate::cost::expected_probe_wait(a.cycle_len())
            + crate::cost::average_data_wait(&a, &t)
            - 1.0;
        assert!(
            (d.mean - expected).abs() < 0.1,
            "sampled mean {} vs analytic {expected}",
            d.mean
        );
        // Worst case bounded by cycle + deepest path.
        assert!(d.max as usize <= 2 * a.cycle_len() + t.depth() as usize);
    }

    #[test]
    fn latency_distribution_is_deterministic() {
        let (t, _, p) = fig2a();
        let a = latency_distribution(&p, &t, 500, 7).unwrap();
        let b = latency_distribution(&p, &t, 500, 7).unwrap();
        assert_eq!(a, b);
        let c = latency_distribution(&p, &t, 500, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn all_targets_reachable_in_both_layouts() {
        for (t, _, p) in [fig2a(), fig2b()] {
            for &d in t.data_nodes() {
                access(&p, &t, d, Slot::FIRST).unwrap();
            }
        }
    }
}
