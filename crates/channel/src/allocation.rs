//! The allocation mapping `f : I ∪ D → C × S` and its feasibility rules.

use bcast_index_tree::IndexTree;
use bcast_types::{BucketAddr, ChannelId, NodeId, Slot};
use std::fmt;

/// A (partial, while being built) assignment of tree nodes to buckets.
///
/// Invariants enforced by [`Allocation::place`] and re-checked wholesale by
/// [`Allocation::validate`]:
///
/// * injective — at most one node per bucket, at most one bucket per node
///   (the paper assumes "no index or data nodes replicate in a broadcast
///   cycle");
/// * within `num_channels`.
///
/// The *ordering* constraint — every child broadcast strictly after its
/// parent — needs the tree and is checked by [`Allocation::validate`].
#[derive(Clone, Debug)]
pub struct Allocation {
    addr: Vec<Option<BucketAddr>>,
    /// Occupied buckets, for O(1) collision checks while building.
    occupied: std::collections::HashSet<BucketAddr>,
    num_channels: usize,
    /// Highest slot used so far (cycle length once complete).
    cycle_len: u32,
    placed: usize,
}

/// A violated allocation-feasibility rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeasibilityError {
    /// Two nodes were assigned the same bucket.
    BucketCollision(BucketAddr),
    /// The same node was placed twice.
    NodePlacedTwice(NodeId),
    /// A channel id ≥ the declared channel count was used.
    ChannelOutOfRange(ChannelId),
    /// Some tree node was never placed.
    NodeUnplaced(NodeId),
    /// A child is broadcast no later than its parent.
    ChildBeforeParent {
        /// The offending parent.
        parent: NodeId,
        /// The offending child.
        child: NodeId,
    },
    /// The root is not at slot 1 of channel `C1` (clients must find it
    /// there at the start of every cycle).
    RootNotAtOrigin,
    /// The allocation refers to nodes outside the tree.
    SizeMismatch {
        /// Nodes in the allocation table.
        allocation: usize,
        /// Nodes in the tree.
        tree: usize,
    },
}

impl fmt::Display for FeasibilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeasibilityError::BucketCollision(a) => write!(f, "two nodes in bucket {a}"),
            FeasibilityError::NodePlacedTwice(n) => write!(f, "node {n} placed twice"),
            FeasibilityError::ChannelOutOfRange(c) => write!(f, "channel {c} out of range"),
            FeasibilityError::NodeUnplaced(n) => write!(f, "node {n} never placed"),
            FeasibilityError::ChildBeforeParent { parent, child } => {
                write!(f, "child {child} not strictly after parent {parent}")
            }
            FeasibilityError::RootNotAtOrigin => {
                write!(f, "index root must occupy slot 1 of channel C1")
            }
            FeasibilityError::SizeMismatch { allocation, tree } => {
                write!(
                    f,
                    "allocation for {allocation} nodes used with {tree}-node tree"
                )
            }
        }
    }
}

impl std::error::Error for FeasibilityError {}

impl Allocation {
    /// Creates an empty allocation for `num_nodes` nodes over
    /// `num_channels` channels.
    ///
    /// # Panics
    /// Panics if `num_channels == 0`.
    pub fn new(num_nodes: usize, num_channels: usize) -> Self {
        assert!(num_channels > 0, "need at least one channel");
        Allocation {
            addr: vec![None; num_nodes],
            occupied: std::collections::HashSet::with_capacity(num_nodes),
            num_channels,
            cycle_len: 0,
            placed: 0,
        }
    }

    /// Number of broadcast channels.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// Cycle length in slots (max slot used).
    #[inline]
    pub fn cycle_len(&self) -> usize {
        self.cycle_len as usize
    }

    /// Number of nodes placed.
    #[inline]
    pub fn placed(&self) -> usize {
        self.placed
    }

    /// True once every node has a bucket.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.placed == self.addr.len()
    }

    /// Bucket of `node`, if placed.
    #[inline]
    pub fn addr(&self, node: NodeId) -> Option<BucketAddr> {
        self.addr.get(node.index()).copied().flatten()
    }

    /// Slot of `node` (its `T(·)` contribution), if placed.
    #[inline]
    pub fn slot_of(&self, node: NodeId) -> Option<Slot> {
        self.addr(node).map(|a| a.slot)
    }

    /// Places `node` at `addr`, rejecting duplicates and collisions.
    pub fn place(&mut self, node: NodeId, addr: BucketAddr) -> Result<(), FeasibilityError> {
        if addr.channel.index() >= self.num_channels {
            return Err(FeasibilityError::ChannelOutOfRange(addr.channel));
        }
        if self.addr[node.index()].is_some() {
            return Err(FeasibilityError::NodePlacedTwice(node));
        }
        if !self.occupied.insert(addr) {
            return Err(FeasibilityError::BucketCollision(addr));
        }
        self.addr[node.index()] = Some(addr);
        self.cycle_len = self.cycle_len.max(addr.slot.0);
        self.placed += 1;
        Ok(())
    }

    /// Builds a 1-channel allocation from a broadcast sequence
    /// (slot `i+1` holds `sequence[i]`).
    pub fn from_sequence(
        sequence: &[NodeId],
        tree: &IndexTree,
    ) -> Result<Allocation, FeasibilityError> {
        let mut alloc = Allocation::new(tree.len(), 1);
        for (i, &node) in sequence.iter().enumerate() {
            alloc.place(node, BucketAddr::new(0, i))?;
        }
        alloc.validate(tree)?;
        Ok(alloc)
    }

    /// Builds a k-channel allocation from a *slot schedule*: `slots[i]` is
    /// the set of nodes transmitted at slot `i+1` (the "compound node" of
    /// the paper's topological tree), at most `num_channels` of them.
    ///
    /// Channels are assigned with the paper's §3.1 rules:
    ///
    /// 1. the root element goes to channel `C1`;
    /// 2. an element whose index-tree parent occupied channel `c` in an
    ///    earlier slot prefers channel `c` ("put the elements of nodes which
    ///    have the parent-child relationship ... into the same broadcast
    ///    channel if possible");
    /// 3. remaining elements fill the lowest free channels in preorder-rank
    ///    order, deterministically.
    pub fn from_slot_schedule(
        slots: &[Vec<NodeId>],
        tree: &IndexTree,
        num_channels: usize,
    ) -> Result<Allocation, FeasibilityError> {
        let mut alloc = Allocation::new(tree.len(), num_channels);
        for (slot_offset, members) in slots.iter().enumerate() {
            let mut used = vec![false; num_channels];
            let mut deferred: Vec<NodeId> = Vec::new();
            // Pass 1: honor root / parent-channel preferences.
            let mut ordered = members.clone();
            ordered.sort_by_key(|&n| tree.preorder_rank(n));
            for &node in &ordered {
                let preferred = if node == tree.root() {
                    Some(ChannelId::FIRST)
                } else {
                    tree.parent(node)
                        .and_then(|p| alloc.addr(p))
                        .map(|a| a.channel)
                };
                match preferred {
                    Some(c) if c.index() < num_channels && !used[c.index()] => {
                        used[c.index()] = true;
                        alloc.place(
                            node,
                            BucketAddr {
                                channel: c,
                                slot: Slot::from_offset(slot_offset),
                            },
                        )?;
                    }
                    _ => deferred.push(node),
                }
            }
            // Pass 2: everything else onto the lowest free channels.
            let mut next_free = 0usize;
            for node in deferred {
                while next_free < num_channels && used[next_free] {
                    next_free += 1;
                }
                if next_free >= num_channels {
                    // More members than channels in this slot.
                    return Err(FeasibilityError::BucketCollision(BucketAddr::new(
                        num_channels - 1,
                        slot_offset,
                    )));
                }
                used[next_free] = true;
                alloc.place(node, BucketAddr::new(next_free, slot_offset))?;
            }
        }
        alloc.validate(tree)?;
        Ok(alloc)
    }

    /// Full feasibility check against `tree`.
    pub fn validate(&self, tree: &IndexTree) -> Result<(), FeasibilityError> {
        if self.addr.len() != tree.len() {
            return Err(FeasibilityError::SizeMismatch {
                allocation: self.addr.len(),
                tree: tree.len(),
            });
        }
        // Everything placed, in range, no collisions.
        let mut seen: Vec<Option<NodeId>> = vec![None; self.num_channels * self.cycle_len as usize];
        for i in 0..self.addr.len() {
            let node = NodeId::from_index(i);
            let Some(addr) = self.addr[i] else {
                return Err(FeasibilityError::NodeUnplaced(node));
            };
            if addr.channel.index() >= self.num_channels {
                return Err(FeasibilityError::ChannelOutOfRange(addr.channel));
            }
            let key = addr.channel.index() * self.cycle_len as usize + addr.slot.offset();
            if seen[key].is_some() {
                return Err(FeasibilityError::BucketCollision(addr));
            }
            seen[key] = Some(node);
        }
        // Root at the cycle origin.
        if self.addr(tree.root())
            != Some(BucketAddr {
                channel: ChannelId::FIRST,
                slot: Slot::FIRST,
            })
        {
            return Err(FeasibilityError::RootNotAtOrigin);
        }
        // Children strictly after parents.
        for i in 0..tree.len() {
            let child = NodeId::from_index(i);
            if let Some(parent) = tree.parent(child) {
                let ps = self.addr[parent.index()].expect("checked above").slot;
                let cs = self.addr[i].expect("checked above").slot;
                if cs <= ps {
                    return Err(FeasibilityError::ChildBeforeParent { parent, child });
                }
            }
        }
        Ok(())
    }

    /// Iterates `(node, addr)` pairs for all placed nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, BucketAddr)> + '_ {
        self.addr
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|addr| (NodeId::from_index(i), addr)))
    }

    /// Renders the bucket grid like the paper's Fig. 2, one channel a row:
    ///
    /// ```text
    /// C1 | 1 2 A 4 C
    /// C2 | . 3 B E D
    /// ```
    pub fn render(&self, tree: &IndexTree) -> String {
        let mut grid = vec![vec![".".to_string(); self.cycle_len as usize]; self.num_channels];
        for (node, addr) in self.iter() {
            grid[addr.channel.index()][addr.slot.offset()] = tree.label(node);
        }
        let mut out = String::new();
        for (c, row) in grid.iter().enumerate() {
            out.push_str(&format!("C{} | {}\n", c + 1, row.join(" ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcast_index_tree::builders;

    fn ids(tree: &IndexTree, labels: &[&str]) -> Vec<NodeId> {
        labels
            .iter()
            .map(|l| tree.find_by_label(l).expect("label exists"))
            .collect()
    }

    #[test]
    fn fig2a_sequence_is_feasible() {
        let t = builders::paper_example();
        let seq = ids(&t, &["1", "3", "E", "4", "C", "D", "2", "A", "B"]);
        let a = Allocation::from_sequence(&seq, &t).unwrap();
        assert_eq!(a.cycle_len(), 9);
        assert!(a.is_complete());
        assert_eq!(a.slot_of(t.find_by_label("E").unwrap()), Some(Slot(3)));
    }

    #[test]
    fn infeasible_sequence_rejected() {
        let t = builders::paper_example();
        // A before its parent 2.
        let seq = ids(&t, &["1", "A", "2", "B", "3", "E", "4", "C", "D"]);
        let err = Allocation::from_sequence(&seq, &t).unwrap_err();
        assert!(matches!(err, FeasibilityError::ChildBeforeParent { .. }));
    }

    #[test]
    fn sequence_missing_node_rejected() {
        let t = builders::paper_example();
        let seq = ids(&t, &["1", "2", "3", "A", "B", "E", "4", "C"]);
        let err = Allocation::from_sequence(&seq, &t).unwrap_err();
        assert!(matches!(err, FeasibilityError::NodeUnplaced(_)));
    }

    #[test]
    fn root_must_start_cycle() {
        let t = builders::paper_example();
        // Feasible ordering, but the root sits on channel C2.
        let seq = ids(&t, &["1", "2", "3", "A", "B", "E", "4", "C", "D"]);
        let mut a = Allocation::new(t.len(), 2);
        for (i, &n) in seq.iter().enumerate() {
            let ch = usize::from(n == t.root());
            a.place(n, BucketAddr::new(ch, i)).unwrap();
        }
        assert_eq!(
            a.validate(&t).unwrap_err(),
            FeasibilityError::RootNotAtOrigin
        );
    }

    #[test]
    fn fig2b_schedule_assigns_channels_like_paper() {
        let t = builders::paper_example();
        // Slot sets of Fig. 2(b): {1},{2,3},{A,B},{4,E},{C,D}.
        let slots = vec![
            ids(&t, &["1"]),
            ids(&t, &["2", "3"]),
            ids(&t, &["A", "B"]),
            ids(&t, &["4", "E"]),
            ids(&t, &["C", "D"]),
        ];
        let a = Allocation::from_slot_schedule(&slots, &t, 2).unwrap();
        // Root on C1; 2 prefers C1 (parent 1 on C1), so 3 goes to C2.
        let ch = |l: &str| a.addr(t.find_by_label(l).unwrap()).unwrap().channel.0;
        assert_eq!(ch("1"), 0);
        assert_eq!(ch("2"), 0);
        assert_eq!(ch("3"), 1);
        // A prefers C1 (parent 2 on C1); B also prefers C1 but it is taken,
        // so B lands on C2. 4 and E prefer C2 (parent 3), 4 wins by preorder
        // rank? E's rank is smaller (E comes before 4 in preorder of Fig 1a?
        // preorder: 1,2,A,B,3,E,4,C,D → E rank 5, 4 rank 6). E wins C2.
        assert_eq!(ch("A"), 0);
        assert_eq!(ch("B"), 1);
        assert_eq!(ch("E"), 1);
        assert_eq!(ch("4"), 0);
        a.validate(&t).unwrap();
        let rendered = a.render(&t);
        assert!(rendered.starts_with("C1 | 1 2 A 4"));
    }

    #[test]
    fn schedule_overflow_rejected() {
        let t = builders::paper_example();
        let slots = vec![ids(&t, &["1"]), ids(&t, &["2", "3", "A"])];
        assert!(Allocation::from_slot_schedule(&slots, &t, 2).is_err());
    }

    #[test]
    fn place_rejects_collision_and_duplicate() {
        let t = builders::paper_example();
        let mut a = Allocation::new(t.len(), 2);
        a.place(NodeId(0), BucketAddr::new(0, 0)).unwrap();
        assert_eq!(
            a.place(NodeId(1), BucketAddr::new(0, 0)).unwrap_err(),
            FeasibilityError::BucketCollision(BucketAddr::new(0, 0))
        );
        assert_eq!(
            a.place(NodeId(0), BucketAddr::new(1, 0)).unwrap_err(),
            FeasibilityError::NodePlacedTwice(NodeId(0))
        );
        assert!(matches!(
            a.place(NodeId(1), BucketAddr::new(7, 0)).unwrap_err(),
            FeasibilityError::ChannelOutOfRange(_)
        ));
    }
}
