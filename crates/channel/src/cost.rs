//! The paper's cost model.
//!
//! Formula (1): the **average data wait** of an allocation is
//!
//! ```text
//!        Σ_{Di ∈ D} W(Di)·T(Di)
//!        ──────────────────────        T(Di) = slot of Di (1-based)
//!          Σ_{Di ∈ D} W(Di)
//! ```
//!
//! The paper's worked examples (Fig. 2): the one-channel allocation
//! `1 3 E 4 C D 2 A B` costs `(18·3 + 15·5 + 7·6 + 20·8 + 10·9)/70 ≈ 6.01`,
//! the two-channel allocation costs `≈ 3.88`. Both are pinned by tests here.
//!
//! Access time additionally includes the **probe wait**: the time from
//! tuning in until the bucket holding the index root arrives. In the
//! paper's model every bucket of channel `C1` carries a pointer to the first
//! bucket of the next cycle, so a client tuning in during slot `t` of an
//! `L`-slot cycle reads the root `L - t + 1` slots later; uniformly over
//! `t`, the expected probe wait is `(L + 1) / 2`.

use crate::allocation::Allocation;
use bcast_index_tree::IndexTree;
use bcast_types::Weight;

/// Fixed-point mirror of the cost domain, re-exported for the parallel
/// branch-and-bound engines.
///
/// Costs are `f64` everywhere in this module; the parallel searches
/// additionally share their incumbent cost across threads as a fixed-point
/// `u64` (atomic `fetch_min` needs a totally ordered integer). The
/// conversion discipline — incumbents rounded up with [`to_fixed_ceil`],
/// bounds rounded down with [`to_fixed_floor`] — keeps pruning exact; see
/// [`bcast_types::incumbent`] for the argument.
pub use bcast_types::incumbent::{from_fixed, to_fixed_ceil, to_fixed_floor, FRAC_BITS};

/// Weighted wait numerator `Σ W(Di)·T(Di)` of formula (1).
///
/// # Panics
/// Panics if some data node of `tree` is unplaced (validate first).
pub fn weighted_wait_sum(alloc: &Allocation, tree: &IndexTree) -> f64 {
    tree.data_nodes()
        .iter()
        .map(|&d| {
            let slot = alloc
                .slot_of(d)
                .expect("data node must be placed to have a wait");
            tree.weight(d) * slot.wait()
        })
        .sum()
}

/// Formula (1): average data wait in buckets.
///
/// Returns 0 for the degenerate all-zero-weight tree (no requests → no
/// waiting) rather than dividing by zero.
pub fn average_data_wait(alloc: &Allocation, tree: &IndexTree) -> f64 {
    let total = tree.total_weight();
    if total.is_zero() {
        return 0.0;
    }
    weighted_wait_sum(alloc, tree) / total.get()
}

/// Expected probe wait `(L + 1) / 2` for cycle length `L`, in slots.
pub fn expected_probe_wait(cycle_len: usize) -> f64 {
    (cycle_len as f64 + 1.0) / 2.0
}

/// Expected total access time: probe wait plus average data wait.
pub fn expected_access_time(alloc: &Allocation, tree: &IndexTree) -> f64 {
    expected_probe_wait(alloc.cycle_len()) + average_data_wait(alloc, tree)
}

/// A simple analytic lower bound on the average data wait of *any* feasible
/// k-channel allocation of `tree`:
///
/// * slot 1 is consumed by the root index node, so data starts at slot 2;
/// * at most `k` nodes fit per slot;
/// * the best case packs data nodes heaviest-first into the earliest slots.
///
/// Used by tests to sanity-check optimal-search results and by benches to
/// report optimality gaps without running the exact search.
pub fn data_wait_lower_bound(tree: &IndexTree, num_channels: usize) -> f64 {
    let total = tree.total_weight();
    if total.is_zero() {
        return 0.0;
    }
    let mut weights: Vec<Weight> = tree.data_nodes().iter().map(|&d| tree.weight(d)).collect();
    weights.sort_unstable_by(|a, b| b.cmp(a));
    let mut sum = 0.0;
    for (i, w) in weights.into_iter().enumerate() {
        let slot = 2 + (i / num_channels) as u64;
        sum += w * slot;
    }
    sum / total.get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcast_index_tree::builders;
    use bcast_types::NodeId;

    fn ids(tree: &IndexTree, labels: &[&str]) -> Vec<NodeId> {
        labels
            .iter()
            .map(|l| tree.find_by_label(l).expect("label exists"))
            .collect()
    }

    #[test]
    fn paper_fig2a_one_channel_cost() {
        let t = builders::paper_example();
        let seq = ids(&t, &["1", "3", "E", "4", "C", "D", "2", "A", "B"]);
        let a = Allocation::from_sequence(&seq, &t).unwrap();
        let wait = average_data_wait(&a, &t);
        // (18·3 + 15·5 + 7·6 + 20·8 + 10·9) / 70 = 421/70.
        assert!((wait - 421.0 / 70.0).abs() < 1e-12);
        assert!((wait - 6.01).abs() < 0.01, "paper rounds to 6.01");
    }

    #[test]
    fn paper_fig2b_two_channel_cost() {
        let t = builders::paper_example();
        let slots = vec![
            ids(&t, &["1"]),
            ids(&t, &["2", "3"]),
            ids(&t, &["A", "B"]),
            ids(&t, &["4", "E"]),
            ids(&t, &["C", "D"]),
        ];
        let a = Allocation::from_slot_schedule(&slots, &t, 2).unwrap();
        let wait = average_data_wait(&a, &t);
        // (20·3 + 10·3 + 18·4 + 15·5 + 7·5) / 70 = 272/70 ≈ 3.885…
        assert!((wait - 272.0 / 70.0).abs() < 1e-12);
        assert!((wait - 3.89).abs() < 0.01);
    }

    #[test]
    fn probe_wait_expectation() {
        assert_eq!(expected_probe_wait(9), 5.0);
        assert_eq!(expected_probe_wait(1), 1.0);
    }

    #[test]
    fn access_time_combines_both() {
        let t = builders::paper_example();
        let seq = ids(&t, &["1", "3", "E", "4", "C", "D", "2", "A", "B"]);
        let a = Allocation::from_sequence(&seq, &t).unwrap();
        let access = expected_access_time(&a, &t);
        assert!((access - (5.0 + 421.0 / 70.0)).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_is_below_known_allocations() {
        let t = builders::paper_example();
        let lb1 = data_wait_lower_bound(&t, 1);
        assert!(lb1 <= 421.0 / 70.0);
        let lb2 = data_wait_lower_bound(&t, 2);
        assert!(lb2 <= 272.0 / 70.0);
        // With 2 channels: heaviest at slot 2: (20·2+18·2+15·3+10·3+7·4)/70.
        assert!(
            (lb2 - (20.0 * 2.0 + 18.0 * 2.0 + 15.0 * 3.0 + 10.0 * 3.0 + 7.0 * 4.0) / 70.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn fixed_point_brackets_exact_costs() {
        // The re-exported conversions bracket every cost this module
        // produces: floor ≤ exact ≤ ceil, and the pair never inverts a
        // strict comparison between two allocations' costs.
        let t = builders::paper_example();
        let one = {
            let seq = ids(&t, &["1", "3", "E", "4", "C", "D", "2", "A", "B"]);
            average_data_wait(&Allocation::from_sequence(&seq, &t).unwrap(), &t)
        };
        let two = 272.0 / 70.0;
        for &c in &[one, two] {
            assert!(from_fixed(to_fixed_floor(c)) <= c);
            assert!(from_fixed(to_fixed_ceil(c)) >= c);
        }
        // two < one, and floor(one) >= ceil(two) certifies it in fixed point.
        assert!(to_fixed_floor(one) >= to_fixed_ceil(two));
    }

    #[test]
    fn zero_weight_tree_has_zero_wait() {
        use bcast_index_tree::TreeBuilder;
        use bcast_types::Weight;
        let mut b = TreeBuilder::new();
        let root = b.root("r");
        b.add_data(root, Weight::ZERO, "d").unwrap();
        let t = b.build().unwrap();
        let seq = vec![t.root(), t.find_by_label("d").unwrap()];
        let a = Allocation::from_sequence(&seq, &t).unwrap();
        assert_eq!(average_data_wait(&a, &t), 0.0);
        assert_eq!(data_wait_lower_bound(&t, 3), 0.0);
    }
}
