//! The materialized broadcast program: a bucket grid with forward pointers.
//!
//! "The pointer data in each index node are represented by the pair,
//! indicating the channel number and the offset in number of buckets for
//! retrieving the next relevant bucket." A [`BroadcastProgram`] realizes a
//! validated [`Allocation`] as exactly that: each index bucket carries one
//! [`Pointer`] per child of its index node; every bucket on channel `C1`
//! additionally knows the offset to the first bucket of the next cycle, so a
//! client can tune in anywhere and find the root.

use crate::allocation::{Allocation, FeasibilityError};
use bcast_index_tree::IndexTree;
use bcast_types::{BucketAddr, ChannelId, NodeId, Slot};
use std::fmt;

/// A forward pointer to a child's bucket, as broadcast inside an index
/// bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pointer {
    /// The child node the pointer leads to.
    pub child: NodeId,
    /// Channel to switch to.
    pub channel: ChannelId,
    /// Offset in slots, relative to the bucket holding the pointer
    /// (strictly positive: children are always broadcast later).
    pub offset: u32,
}

/// Contents of one bucket of the grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bucket {
    /// Nothing scheduled (possible on later channels of sparse slots).
    Empty,
    /// An index node with pointers to each of its children, in child order.
    Index {
        /// The index node occupying the bucket.
        node: NodeId,
        /// One pointer per child of `node`.
        pointers: Vec<Pointer>,
    },
    /// A data node's payload.
    Data {
        /// The data node occupying the bucket.
        node: NodeId,
    },
}

/// Errors raised while materializing or validating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The underlying allocation is infeasible.
    Infeasible(FeasibilityError),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Infeasible(e) => write!(f, "infeasible allocation: {e}"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl From<FeasibilityError> for ProgramError {
    fn from(e: FeasibilityError) -> Self {
        ProgramError::Infeasible(e)
    }
}

/// A complete, validated broadcast cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastProgram {
    /// `grid[channel][slot_offset]`.
    grid: Vec<Vec<Bucket>>,
    cycle_len: usize,
}

impl BroadcastProgram {
    /// Materializes `alloc` (validated against `tree`) into a bucket grid
    /// with child pointers.
    pub fn build(alloc: &Allocation, tree: &IndexTree) -> Result<Self, ProgramError> {
        alloc.validate(tree)?;
        let cycle_len = alloc.cycle_len();
        let mut grid = vec![vec![Bucket::Empty; cycle_len]; alloc.num_channels()];
        for (node, addr) in alloc.iter() {
            let bucket = if tree.is_data(node) {
                Bucket::Data { node }
            } else {
                let pointers = tree
                    .children(node)
                    .iter()
                    .map(|&child| {
                        let target = alloc.addr(child).expect("validated: all placed");
                        Pointer {
                            child,
                            channel: target.channel,
                            // Validated: child slot strictly greater.
                            offset: target.slot.0 - addr.slot.0,
                        }
                    })
                    .collect();
                Bucket::Index { node, pointers }
            };
            grid[addr.channel.index()][addr.slot.offset()] = bucket;
        }
        Ok(BroadcastProgram { grid, cycle_len })
    }

    /// Assembles a program from an already-validated grid — used by the
    /// fused pipeline's [`materialize_program`], whose inline feasibility
    /// checks subsume [`build`]'s validation.
    ///
    /// [`materialize_program`]: crate::publish::PublishPipeline::materialize_program
    /// [`build`]: BroadcastProgram::build
    pub(crate) fn from_parts(grid: Vec<Vec<Bucket>>, cycle_len: usize) -> Self {
        BroadcastProgram { grid, cycle_len }
    }

    /// Cycle length in slots.
    #[inline]
    pub fn cycle_len(&self) -> usize {
        self.cycle_len
    }

    /// Number of channels.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.grid.len()
    }

    /// The bucket at `addr`.
    #[inline]
    pub fn bucket(&self, addr: BucketAddr) -> &Bucket {
        &self.grid[addr.channel.index()][addr.slot.offset()]
    }

    /// Mutable access to the bucket at `addr` — a fault-injection hook for
    /// corruption tests (dropped pointers, redirected offsets). A program
    /// mutated through this no longer carries `build`'s validity guarantee;
    /// the simulator and `CompiledProgram::compile` must surface such
    /// corruption as [`crate::simulator::SimError`]s, never panic.
    #[inline]
    pub fn bucket_mut(&mut self, addr: BucketAddr) -> &mut Bucket {
        &mut self.grid[addr.channel.index()][addr.slot.offset()]
    }

    /// Slots until the start of the next cycle, as seen by a client reading
    /// the bucket at `slot` — the "pointer to the first bucket of the next
    /// broadcast cycle" carried by every `C1` bucket.
    ///
    /// `slot` must lie within the cycle; out-of-range slots saturate to the
    /// minimum offset of 1 instead of underflowing (callers that model
    /// cyclic tune-in normalize first, as the simulator does).
    #[inline]
    pub fn next_cycle_offset(&self, slot: Slot) -> u32 {
        debug_assert!(
            (1..=self.cycle_len as u32).contains(&slot.0),
            "slot {slot} outside cycle of {} slots",
            self.cycle_len
        );
        (self.cycle_len as u32).saturating_sub(slot.0) + 1
    }

    /// Number of non-empty buckets (= tree nodes).
    pub fn occupancy(&self) -> usize {
        self.grid
            .iter()
            .flatten()
            .filter(|b| !matches!(b, Bucket::Empty))
            .count()
    }

    /// Fraction of the `channels × cycle_len` grid actually used; the §1.1
    /// "waste of channel space" metric.
    pub fn utilization(&self) -> f64 {
        self.occupancy() as f64 / (self.num_channels() * self.cycle_len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcast_index_tree::builders;

    fn ids(tree: &IndexTree, labels: &[&str]) -> Vec<NodeId> {
        labels
            .iter()
            .map(|l| tree.find_by_label(l).expect("label exists"))
            .collect()
    }

    fn fig2b_program() -> (IndexTree, BroadcastProgram, Allocation) {
        let t = builders::paper_example();
        let slots = vec![
            ids(&t, &["1"]),
            ids(&t, &["2", "3"]),
            ids(&t, &["A", "B"]),
            ids(&t, &["4", "E"]),
            ids(&t, &["C", "D"]),
        ];
        let a = Allocation::from_slot_schedule(&slots, &t, 2).unwrap();
        let p = BroadcastProgram::build(&a, &t).unwrap();
        (t, p, a)
    }

    #[test]
    fn pointers_are_forward_and_correct() {
        let (t, p, a) = fig2b_program();
        let root_addr = a.addr(t.root()).unwrap();
        let Bucket::Index { node, pointers } = p.bucket(root_addr) else {
            panic!("root bucket must be an index bucket");
        };
        assert_eq!(*node, t.root());
        assert_eq!(pointers.len(), 2);
        for ptr in pointers {
            assert!(ptr.offset > 0);
            let target = BucketAddr {
                channel: ptr.channel,
                slot: Slot(root_addr.slot.0 + ptr.offset),
            };
            match p.bucket(target) {
                Bucket::Index { node, .. } => assert_eq!(*node, ptr.child),
                Bucket::Data { node } => assert_eq!(*node, ptr.child),
                Bucket::Empty => panic!("pointer to empty bucket"),
            }
        }
    }

    #[test]
    fn full_grid_has_no_empty_buckets() {
        let (_, p, _) = fig2b_program();
        // 9 nodes in 2 channels × 5 slots: one empty bucket.
        assert_eq!(p.occupancy(), 9);
        assert!((p.utilization() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn next_cycle_offset_wraps() {
        let (_, p, _) = fig2b_program();
        assert_eq!(p.cycle_len(), 5);
        assert_eq!(p.next_cycle_offset(Slot(5)), 1);
        assert_eq!(p.next_cycle_offset(Slot(1)), 5);
    }

    #[test]
    fn one_channel_program() {
        let t = builders::paper_example();
        let seq = ids(&t, &["1", "3", "E", "4", "C", "D", "2", "A", "B"]);
        let a = Allocation::from_sequence(&seq, &t).unwrap();
        let p = BroadcastProgram::build(&a, &t).unwrap();
        assert_eq!(p.num_channels(), 1);
        assert_eq!(p.occupancy(), 9);
        assert_eq!(p.utilization(), 1.0);
    }
}
