//! Bucket wire format: what actually goes over the air.
//!
//! The paper treats a bucket as "the logical unit of a broadcast" holding an
//! index node (with `(channel, offset)` pointers) or a data node. A real
//! base station has to serialize those buckets; this module defines a
//! compact, self-describing little-endian format and a round-trip-safe
//! decoder, so downstream users can feed a [`BroadcastProgram`] straight
//! into a transmitter.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! bucket      := header body crc:u32
//! header      := kind:u8  node:u32  next_cycle:u32
//! body(EMPTY) := ε
//! body(INDEX) := n_ptrs:u16  ptr*      ptr := child:u32 channel:u16 offset:u32
//! body(DATA)  := payload_len:u32 payload
//! ```
//!
//! `next_cycle` is the every-bucket "offset of the first bucket of the next
//! broadcast cycle" the paper requires on channel `C1`; we stamp it on all
//! channels (harmless, and lets clients recover after drift). Data payloads
//! are caller-supplied opaque bytes; by the paper's model one bucket holds
//! one node, so the transmitter is responsible for sizing buckets to its
//! MTU.
//!
//! Every bucket is sealed with a CRC-32 (IEEE polynomial) over its header
//! and body. Wireless broadcast corrupts buckets routinely; the checksum
//! turns a flipped bit into a detected [`WireError::ChecksumMismatch`] —
//! never a silently wrong pointer — which is what lets the recovery
//! protocol of [`crate::faults`] treat "corrupt" and "lost" identically.

use crate::program::{BroadcastProgram, Bucket, Pointer};
use bcast_types::crc::crc_table;
use bcast_types::{BucketAddr, ChannelId, NodeId, Slot};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const KIND_EMPTY: u8 = 0;
const KIND_INDEX: u8 = 1;
const KIND_DATA: u8 = 2;
/// `node` field value for empty buckets.
const NO_NODE: u32 = u32::MAX;

/// CRC-32 (IEEE, reflected) lookup table for the bucket seal, built by
/// the shared compile-time builder in [`bcast_types::crc`].
const CRC_TABLE: [u32; 256] = crc_table(0xEDB8_8320);

/// CRC-32 of `bytes` (IEEE: init all-ones, final xor, reflected).
fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// A decoded over-the-air bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireBucket {
    /// Contents (node ids and pointers), as in the in-memory program.
    pub bucket: Bucket,
    /// Slots until the next cycle's first bucket.
    pub next_cycle: u32,
    /// Opaque payload for data buckets (empty otherwise).
    pub payload: Bytes,
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the declared structure was complete.
    Truncated,
    /// Unknown bucket kind byte.
    BadKind(u8),
    /// An index bucket declared a node id of `NO_NODE`.
    MissingNode,
    /// The bucket decoded structurally but its CRC-32 did not match — the
    /// bytes were corrupted in flight.
    ChecksumMismatch {
        /// CRC computed over the received header + body.
        expected: u32,
        /// CRC carried by the bucket.
        found: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "bucket truncated"),
            WireError::BadKind(k) => write!(f, "unknown bucket kind {k}"),
            WireError::MissingNode => write!(f, "occupied bucket without node id"),
            WireError::ChecksumMismatch { expected, found } => write!(
                f,
                "bucket checksum mismatch (computed {expected:#010x}, carried {found:#010x})"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes one bucket of `program`; `payload` supplies the data bytes for
/// data buckets (keyed by node). The bucket is sealed with a CRC-32 over
/// everything written.
pub fn encode_bucket(
    program: &BroadcastProgram,
    addr: BucketAddr,
    payload: impl Fn(NodeId) -> Bytes,
    out: &mut BytesMut,
) {
    let start = out.as_slice().len();
    let next_cycle = program.next_cycle_offset(addr.slot);
    match program.bucket(addr) {
        Bucket::Empty => {
            out.put_u8(KIND_EMPTY);
            out.put_u32_le(NO_NODE);
            out.put_u32_le(next_cycle);
        }
        Bucket::Index { node, pointers } => {
            out.put_u8(KIND_INDEX);
            out.put_u32_le(node.0);
            out.put_u32_le(next_cycle);
            out.put_u16_le(u16::try_from(pointers.len()).expect("fanout fits u16"));
            for p in pointers {
                out.put_u32_le(p.child.0);
                out.put_u16_le(p.channel.0);
                out.put_u32_le(p.offset);
            }
        }
        Bucket::Data { node } => {
            out.put_u8(KIND_DATA);
            out.put_u32_le(node.0);
            out.put_u32_le(next_cycle);
            let body = payload(*node);
            out.put_u32_le(u32::try_from(body.len()).expect("payload fits u32"));
            out.put_slice(&body);
        }
    }
    let crc = crc32(&out.as_slice()[start..]);
    out.put_u32_le(crc);
}

/// Decodes one bucket, consuming exactly its bytes from `buf`, and
/// verifies its trailing CRC-32.
pub fn decode_bucket(buf: &mut Bytes) -> Result<WireBucket, WireError> {
    // Snapshot of the unconsumed input: the CRC covers exactly the bytes
    // the structural decode consumes.
    let sealed = buf.clone();
    if buf.remaining() < 9 {
        return Err(WireError::Truncated);
    }
    let kind = buf.get_u8();
    let node = buf.get_u32_le();
    let next_cycle = buf.get_u32_le();
    let decoded = match kind {
        KIND_EMPTY => WireBucket {
            bucket: Bucket::Empty,
            next_cycle,
            payload: Bytes::new(),
        },
        KIND_INDEX => {
            if node == NO_NODE {
                return Err(WireError::MissingNode);
            }
            if buf.remaining() < 2 {
                return Err(WireError::Truncated);
            }
            let n = buf.get_u16_le() as usize;
            if buf.remaining() < n * 10 {
                return Err(WireError::Truncated);
            }
            let mut pointers = Vec::with_capacity(n);
            for _ in 0..n {
                pointers.push(Pointer {
                    child: NodeId(buf.get_u32_le()),
                    channel: ChannelId(buf.get_u16_le()),
                    offset: buf.get_u32_le(),
                });
            }
            WireBucket {
                bucket: Bucket::Index {
                    node: NodeId(node),
                    pointers,
                },
                next_cycle,
                payload: Bytes::new(),
            }
        }
        KIND_DATA => {
            if node == NO_NODE {
                return Err(WireError::MissingNode);
            }
            if buf.remaining() < 4 {
                return Err(WireError::Truncated);
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(WireError::Truncated);
            }
            let payload = buf.copy_to_bytes(len);
            WireBucket {
                bucket: Bucket::Data { node: NodeId(node) },
                next_cycle,
                payload,
            }
        }
        other => return Err(WireError::BadKind(other)),
    };
    let consumed = sealed.remaining() - buf.remaining();
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let expected = crc32(&sealed.as_slice()[..consumed]);
    let found = buf.get_u32_le();
    if expected != found {
        return Err(WireError::ChecksumMismatch { expected, found });
    }
    Ok(decoded)
}

/// Serializes a whole cycle of one channel, slot by slot.
pub fn encode_channel(
    program: &BroadcastProgram,
    channel: ChannelId,
    payload: impl Fn(NodeId) -> Bytes + Copy,
) -> Bytes {
    let mut out = BytesMut::new();
    for offset in 0..program.cycle_len() {
        encode_bucket(
            program,
            BucketAddr {
                channel,
                slot: Slot::from_offset(offset),
            },
            payload,
            &mut out,
        );
    }
    out.freeze()
}

/// Decodes a whole channel produced by [`encode_channel`].
pub fn decode_channel(mut buf: Bytes) -> Result<Vec<WireBucket>, WireError> {
    let mut out = Vec::new();
    while buf.has_remaining() {
        out.push(decode_bucket(&mut buf)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;
    use bcast_index_tree::builders;

    fn program() -> (bcast_index_tree::IndexTree, BroadcastProgram) {
        let t = builders::paper_example();
        let slots: Vec<Vec<NodeId>> = [
            vec!["1"],
            vec!["2", "3"],
            vec!["A", "B"],
            vec!["4", "E"],
            vec!["C", "D"],
        ]
        .iter()
        .map(|ls| {
            ls.iter()
                .map(|l| t.find_by_label(l).expect("label exists"))
                .collect()
        })
        .collect();
        let a = Allocation::from_slot_schedule(&slots, &t, 2).unwrap();
        let p = BroadcastProgram::build(&a, &t).unwrap();
        (t, p)
    }

    fn payload_for(t: &bcast_index_tree::IndexTree) -> impl Fn(NodeId) -> Bytes + Copy + '_ {
        move |n| Bytes::from(format!("payload:{}", t.label(n)))
    }

    #[test]
    fn channel_roundtrip() {
        let (t, p) = program();
        for ch in 0..p.num_channels() {
            let channel = ChannelId::from_index(ch);
            let encoded = encode_channel(&p, channel, payload_for(&t));
            let decoded = decode_channel(encoded).unwrap();
            assert_eq!(decoded.len(), p.cycle_len());
            for (offset, wb) in decoded.iter().enumerate() {
                let addr = BucketAddr {
                    channel,
                    slot: Slot::from_offset(offset),
                };
                assert_eq!(&wb.bucket, p.bucket(addr));
                assert_eq!(wb.next_cycle, p.next_cycle_offset(addr.slot));
                if let Bucket::Data { node } = &wb.bucket {
                    assert_eq!(
                        wb.payload,
                        Bytes::from(format!("payload:{}", t.label(*node)))
                    );
                }
            }
        }
    }

    #[test]
    fn empty_bucket_roundtrip() {
        let (t, p) = program();
        // (C2, slot 1) is the one empty bucket of the Fig. 2(b) grid.
        let addr = BucketAddr::new(1, 0);
        assert_eq!(p.bucket(addr), &Bucket::Empty);
        let mut out = BytesMut::new();
        encode_bucket(&p, addr, payload_for(&t), &mut out);
        let wb = decode_bucket(&mut out.freeze()).unwrap();
        assert_eq!(wb.bucket, Bucket::Empty);
        assert!(wb.payload.is_empty());
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        let (t, p) = program();
        let encoded = encode_channel(&p, ChannelId::FIRST, payload_for(&t));
        // Cutting the stream at any prefix must yield Truncated (never a
        // panic or a silently wrong bucket) once a bucket is incomplete.
        for cut in 0..encoded.len() {
            let mut buf = encoded.slice(..cut);
            loop {
                match decode_bucket(&mut buf) {
                    Ok(_) if buf.has_remaining() => continue,
                    Ok(_) => break,                     // clean prefix of buckets
                    Err(WireError::Truncated) => break, // detected
                    Err(e) => panic!("cut {cut}: unexpected {e}"),
                }
            }
        }
    }

    #[test]
    fn roundtrip_on_random_trees() {
        use bcast_workloads::{random_tree, FrequencyDist, RandomTreeConfig};
        for seed in 0..20u64 {
            let cfg = RandomTreeConfig {
                data_nodes: 1 + (seed as usize % 15),
                max_fanout: 4,
                weights: FrequencyDist::Uniform { lo: 0.0, hi: 50.0 },
            };
            let t = random_tree(&cfg, seed);
            // Simple feasible schedule: preorder, 2 channels greedily.
            let mut alloc = Allocation::new(t.len(), 2);
            // One node per slot on alternating channels for a sparse grid
            // (exercises Empty buckets).
            for (slot, &n) in t.preorder().iter().enumerate() {
                alloc
                    .place(n, bcast_types::BucketAddr::new(slot % 2, slot))
                    .unwrap();
            }
            let p = BroadcastProgram::build(&alloc, &t).unwrap();
            for c in 0..2 {
                let channel = ChannelId::from_index(c);
                let enc = encode_channel(&p, channel, |_| Bytes::from_static(b"pl"));
                let dec = decode_channel(enc).unwrap();
                assert_eq!(dec.len(), p.cycle_len());
                for (o, wb) in dec.iter().enumerate() {
                    let addr = BucketAddr {
                        channel,
                        slot: Slot::from_offset(o),
                    };
                    assert_eq!(&wb.bucket, p.bucket(addr), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let (t, p) = program();
        let encoded = encode_channel(&p, ChannelId::FIRST, payload_for(&t));
        let mut checksum_hits = 0usize;
        for byte in 0..encoded.len() {
            for bit in 0..8u8 {
                let mut raw = encoded.to_vec();
                raw[byte] ^= 1 << bit;
                match decode_channel(Bytes::from(raw)) {
                    Err(WireError::ChecksumMismatch { expected, found }) => {
                        assert_ne!(expected, found);
                        checksum_hits += 1;
                    }
                    // Flips in length/kind fields may fail structurally
                    // first — any error is a detection.
                    Err(_) => {}
                    Ok(_) => panic!("byte {byte} bit {bit}: corruption decoded silently"),
                }
            }
        }
        // The vast majority of flips (payload bytes, node ids, pointer
        // targets…) are only catchable by the checksum.
        assert!(checksum_hits > encoded.len(), "CRC barely exercised");
    }

    #[test]
    fn truncated_checksum_is_truncation() {
        let (t, p) = program();
        let mut out = BytesMut::new();
        encode_bucket(&p, BucketAddr::new(0, 0), payload_for(&t), &mut out);
        let whole = out.freeze();
        // Cut inside the trailing CRC: structure is complete, seal is not.
        for cut in (whole.len() - 4)..whole.len() {
            let mut buf = whole.slice(..cut);
            assert_eq!(decode_bucket(&mut buf).unwrap_err(), WireError::Truncated);
        }
    }

    #[test]
    fn bad_kind_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u8(9);
        raw.put_u32_le(0);
        raw.put_u32_le(1);
        assert_eq!(
            decode_bucket(&mut raw.freeze()).unwrap_err(),
            WireError::BadKind(9)
        );
    }

    #[test]
    fn missing_node_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u8(KIND_DATA);
        raw.put_u32_le(NO_NODE);
        raw.put_u32_le(1);
        raw.put_u32_le(0);
        assert_eq!(
            decode_bucket(&mut raw.freeze()).unwrap_err(),
            WireError::MissingNode
        );
    }
}
