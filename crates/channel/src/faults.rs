//! Deterministic lossy-channel fault injection and the client recovery
//! protocol.
//!
//! The paper's setting is *wireless* broadcast, where bucket loss is the
//! norm, yet the base serving stack assumes a perfect channel. This module
//! adds the missing failure axis without giving up any of the repo's
//! reproducibility guarantees:
//!
//! * [`FaultPlan`] — a seeded description of *when reads fail*: independent
//!   per-bucket erasure or a two-state Gilbert–Elliott burst-loss chain.
//!   Every draw is keyed by SplitMix64 on the **global request index**, so
//!   outcomes are bit-identical at any `serve_batch` thread count and
//!   across reruns of the same seed.
//! * The **recovery protocol**: a lost bucket is retried at the next
//!   occurrence of the same node — the next slot for the probe, the next
//!   root occurrence (an earlier replica when
//!   `bcast_core::replication`-style root copies are assumed; see
//!   [`root_occurrence_gaps`]) for the root, and the next cycle for
//!   interior/data buckets — with exponential backoff in *occurrences
//!   skipped*, under a bounded retry/timeout budget
//!   ([`RecoveryPolicy`]). A request that exhausts its budget is reported
//!   as [`RequestOutcome::Failed`], never retried unboundedly and never
//!   aborting the batch.
//! * [`access_lossy`] — an independent pointer-walking oracle that executes
//!   the protocol over the real bucket grid; the compiled serving path
//!   replays the identical draw/charge sequence through
//!   [`recover_access`], and property tests pin the two against each
//!   other.
//!
//! ### Timing model
//!
//! Read attempts are indexed by `(path position, attempt)`; position `0` is
//! the probe, `1` the root, `2..` the interior/data path. For erasure
//! faults the loss draw for `(request, position, attempt)` is a pure hash —
//! losses at erasure probability `p` are a superset of losses at `p' < p`
//! (a *monotone coupling*), which is what makes the degradation curve of
//! delivery rate provably monotone in `p`. The Gilbert–Elliott chain
//! advances once per read attempt and once per occurrence dozed through,
//! so bursts correlate consecutive attempts; backoff doubles the
//! occurrences skipped and therefore escapes bad states geometrically.
//!
//! Retry waits are charged in *slots*: a probe retry only costs time when
//! the probes wrap past the cycle boundary (the root broadcast that would
//! have been caught is missed); a root retry costs the gap to the next
//! root occurrence; an interior/data retry costs whole cycles (which keeps
//! the slot arithmetic of the unreplicated grid exact). Root-replica gaps
//! are the analytical overlay of `bcast_core::replication::analyze` —
//! primary-path waits still use the unreplicated program.

use crate::program::{BroadcastProgram, Bucket};
use crate::simulator::{AccessTrace, SimError};
use bcast_index_tree::IndexTree;
use bcast_types::{occurrences, NodeId, Slot};
use std::fmt;

/// SplitMix64 finalizer over a seeded index — the same construction the
/// serving engine uses for tune-in draws, instantiated with distinct keys
/// so fault draws and tune-in draws are independent streams.
#[inline]
fn mix2(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a 64-bit draw to the unit interval `[0, 1)`.
#[inline]
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// An invalid fault-model parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// A probability parameter escaped `[0, 1]` (or was NaN).
    BadProbability {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::BadProbability { name, value } => {
                write!(f, "fault probability {name} = {value} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for FaultError {}

fn check_prob(name: &'static str, value: f64) -> Result<f64, FaultError> {
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(FaultError::BadProbability { name, value })
    }
}

/// Parameters of the two-state Gilbert–Elliott burst-loss chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Transition probability good → bad per read attempt.
    pub p_good_to_bad: f64,
    /// Transition probability bad → good per read attempt.
    pub p_bad_to_good: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad (burst) state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// Stationary probability of the bad state (`0` when the chain never
    /// leaves good).
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom > 0.0 {
            self.p_good_to_bad / denom
        } else {
            0.0
        }
    }

    /// Long-run expected loss rate.
    pub fn expected_loss(&self) -> f64 {
        let pb = self.stationary_bad();
        (1.0 - pb) * self.loss_good + pb * self.loss_bad
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum FaultModel {
    None,
    Erasure { p: f64 },
    GilbertElliott(GilbertElliott),
}

/// A seeded, reproducible description of channel faults.
///
/// Plans are plain `Copy` data; per-request randomness comes from
/// [`FaultPlan::link`], which derives an independent [`ClientLink`] from
/// the **global request index** — the property that makes lossy
/// `serve_batch` results independent of thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    model: FaultModel,
}

impl FaultPlan {
    /// The perfect channel: no read ever fails. Serving with this plan is
    /// bit-identical to (and as fast as) the fault-free engine.
    pub const fn none() -> Self {
        FaultPlan {
            seed: 0,
            model: FaultModel::None,
        }
    }

    /// Independent per-read erasure with probability `p`.
    ///
    /// # Errors
    /// [`FaultError::BadProbability`] if `p` escapes `[0, 1]`.
    pub fn erasure(p: f64, seed: u64) -> Result<Self, FaultError> {
        Ok(FaultPlan {
            seed,
            model: FaultModel::Erasure {
                p: check_prob("erasure_p", p)?,
            },
        })
    }

    /// Gilbert–Elliott burst loss; the per-request chain starts from its
    /// stationary distribution.
    ///
    /// # Errors
    /// [`FaultError::BadProbability`] if any parameter escapes `[0, 1]`.
    pub fn gilbert_elliott(ge: GilbertElliott, seed: u64) -> Result<Self, FaultError> {
        check_prob("p_good_to_bad", ge.p_good_to_bad)?;
        check_prob("p_bad_to_good", ge.p_bad_to_good)?;
        check_prob("loss_good", ge.loss_good)?;
        check_prob("loss_bad", ge.loss_bad)?;
        Ok(FaultPlan {
            seed,
            model: FaultModel::GilbertElliott(ge),
        })
    }

    /// True for the perfect-channel plan (serving takes the fault-free
    /// fast path).
    #[inline]
    pub fn is_none(&self) -> bool {
        matches!(self.model, FaultModel::None)
    }

    /// Long-run expected per-read loss rate of the plan.
    pub fn expected_loss(&self) -> f64 {
        match self.model {
            FaultModel::None => 0.0,
            FaultModel::Erasure { p } => p,
            FaultModel::GilbertElliott(ge) => ge.expected_loss(),
        }
    }

    /// The fault stream one request observes; keyed purely by
    /// `(plan seed, request_index)`.
    pub fn link(&self, request_index: u64) -> ClientLink {
        let key = mix2(self.seed, request_index);
        let kind = match self.model {
            FaultModel::None => LinkKind::Perfect,
            FaultModel::Erasure { p } => LinkKind::Erasure { key, p },
            FaultModel::GilbertElliott(ge) => {
                let mut link = SeqLink {
                    state: key,
                    bad: false,
                    ge,
                };
                // Stationary start so short requests see the long-run mix.
                link.bad = link.next_unit() < ge.stationary_bad();
                LinkKind::Gilbert(link)
            }
        };
        ClientLink { kind }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Sequential per-request chain state for the Gilbert–Elliott model.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SeqLink {
    state: u64,
    bad: bool,
    ge: GilbertElliott,
}

impl SeqLink {
    #[inline]
    fn next_unit(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        unit(mix2(0xC2B2_AE3D_27D4_EB4F, self.state))
    }

    #[inline]
    fn step(&mut self) {
        let u = self.next_unit();
        if self.bad {
            if u < self.ge.p_bad_to_good {
                self.bad = false;
            }
        } else if u < self.ge.p_good_to_bad {
            self.bad = true;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LinkKind {
    Perfect,
    Erasure { key: u64, p: f64 },
    Gilbert(SeqLink),
}

/// One request's view of the degraded channel.
///
/// The oracle walk and the compiled serving path drive a link through the
/// *same* sequence of [`read_lost`](Self::read_lost) /
/// [`doze`](Self::doze) calls, so both observe identical faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientLink {
    kind: LinkKind,
}

impl ClientLink {
    /// Whether the read at path position `pos` (0 = probe, 1 = root,
    /// 2.. = interior/data) fails on its `attempt`-th try (0-based).
    ///
    /// For erasure links the draw is a pure hash of `(pos, attempt)` with
    /// a shared uniform — losses at probability `p` contain the losses at
    /// every `p' < p` (monotone coupling).
    #[inline]
    pub fn read_lost(&mut self, pos: u32, attempt: u32) -> bool {
        match &mut self.kind {
            LinkKind::Perfect => false,
            LinkKind::Erasure { key, p } => {
                let draw = mix2(*key, (u64::from(pos) << 32) | u64::from(attempt));
                unit(draw) < *p
            }
            LinkKind::Gilbert(link) => {
                let lost_p = if link.bad {
                    link.ge.loss_bad
                } else {
                    link.ge.loss_good
                };
                let lost = link.next_unit() < lost_p;
                link.step();
                lost
            }
        }
    }

    /// Advances the link past `occurrences` read opportunities the client
    /// dozes through (burst chains keep evolving while the radio is off).
    #[inline]
    pub fn doze(&mut self, occurrences: u64) {
        if let LinkKind::Gilbert(link) = &mut self.kind {
            for _ in 0..occurrences {
                link.step();
            }
        }
    }
}

/// Retry/timeout budget and backoff shape of the recovery protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Total failed reads tolerated per request before it is declared
    /// [`FailReason::RetriesExhausted`].
    pub max_retries: u32,
    /// Upper bound on the *extra* wait (slots added by recovery) before
    /// the request is declared [`FailReason::TimedOut`]. `u64::MAX`
    /// disables the timeout; the retry budget still bounds every request.
    pub timeout_slots: u64,
    /// Exponential backoff cap: the `f`-th consecutive failure at one
    /// position skips `2^min(f, cap)` occurrences (0-based `f`).
    pub backoff_cap: u32,
    /// Root occurrences per cycle assumed by root-bucket retries (`1` =
    /// no replication; values above 1 price retries on the evenly spaced
    /// replica grid of `bcast_core::replication`).
    pub root_replicas: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 8,
            timeout_slots: u64::MAX,
            backoff_cap: 4,
            root_replicas: 1,
        }
    }
}

/// Why a request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// The retry budget ([`RecoveryPolicy::max_retries`]) ran out.
    RetriesExhausted,
    /// Accumulated recovery wait exceeded
    /// [`RecoveryPolicy::timeout_slots`].
    TimedOut,
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailReason::RetriesExhausted => write!(f, "retry budget exhausted"),
            FailReason::TimedOut => write!(f, "recovery timeout exceeded"),
        }
    }
}

/// A request the recovery protocol gave up on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryFailure {
    /// Failed reads charged before giving up.
    pub retries: u32,
    /// Extra wait (slots) accumulated before giving up.
    pub extra_wait: u64,
    /// Which budget ran out.
    pub reason: FailReason,
}

impl fmt::Display for RecoveryFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "request failed ({}) after {} retries and {} extra slots",
            self.reason, self.retries, self.extra_wait
        )
    }
}

impl std::error::Error for RecoveryFailure {}

/// A request delivered despite faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredTrace {
    /// The access trace; `tuning_time` includes every failed read.
    pub trace: AccessTrace,
    /// Failed reads recovered from.
    pub retries: u32,
    /// Slots of wait added by recovery on top of the fault-free access.
    pub extra_wait: u64,
}

impl DeliveredTrace {
    /// Total slots from tune-in to data retrieval, recovery included.
    pub fn total_access_time(&self) -> u64 {
        u64::from(self.trace.access_time()) + self.extra_wait
    }
}

/// Outcome of one access over a lossy channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The data bucket was read within budget.
    Delivered(DeliveredTrace),
    /// The request was abandoned after exhausting its budget.
    Failed(RecoveryFailure),
}

impl RequestOutcome {
    /// True for delivered requests.
    pub fn is_delivered(&self) -> bool {
        matches!(self, RequestOutcome::Delivered(_))
    }

    /// The delivered trace, if any.
    pub fn delivered(&self) -> Option<&DeliveredTrace> {
        match self {
            RequestOutcome::Delivered(d) => Some(d),
            RequestOutcome::Failed(_) => None,
        }
    }
}

impl fmt::Display for RequestOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestOutcome::Delivered(d) => write!(
                f,
                "delivered in {} slots ({} retries, {} extra slots)",
                d.total_access_time(),
                d.retries,
                d.extra_wait
            ),
            RequestOutcome::Failed(e) => write!(f, "{e}"),
        }
    }
}

/// Cyclic gaps between consecutive root occurrences for a cycle of
/// `cycle_len` slots under `root_replicas` evenly spaced root copies —
/// the per-batch precomputation the serving engine shares across shards.
///
/// `root_replicas` is clamped to at least 1; with exactly 1 the single gap
/// is the whole cycle.
pub fn root_occurrence_gaps(cycle_len: usize, root_replicas: u32) -> Vec<u64> {
    let mut out = Vec::new();
    root_occurrence_gaps_into(cycle_len, root_replicas, &mut out);
    out
}

/// [`root_occurrence_gaps`] into a caller-owned buffer (cleared first) —
/// the serving session's per-batch refill, allocation-free once the
/// buffer has grown to the replica count.
pub fn root_occurrence_gaps_into(cycle_len: usize, root_replicas: u32, out: &mut Vec<u64>) {
    let rep = occurrences::replicate_root(cycle_len, root_replicas.max(1));
    let gaps = occurrences::occurrence_gaps(&rep.positions, rep.cycle_len);
    out.clear();
    out.extend_from_slice(&gaps);
}

/// Tracks a request's retry/timeout budget; both serving paths charge in
/// the same order (retry first, then the wait it causes).
struct Budget<'a> {
    policy: &'a RecoveryPolicy,
    retries: u32,
    extra_wait: u64,
}

impl<'a> Budget<'a> {
    fn new(policy: &'a RecoveryPolicy) -> Self {
        Budget {
            policy,
            retries: 0,
            extra_wait: 0,
        }
    }

    #[inline]
    fn charge_retry(&mut self) -> Result<(), RecoveryFailure> {
        if self.retries >= self.policy.max_retries {
            return Err(RecoveryFailure {
                retries: self.retries,
                extra_wait: self.extra_wait,
                reason: FailReason::RetriesExhausted,
            });
        }
        self.retries += 1;
        Ok(())
    }

    #[inline]
    fn charge_wait(&mut self, slots: u64) -> Result<(), RecoveryFailure> {
        self.extra_wait = self.extra_wait.saturating_add(slots);
        if self.extra_wait > self.policy.timeout_slots {
            return Err(RecoveryFailure {
                retries: self.retries,
                extra_wait: self.extra_wait,
                reason: FailReason::TimedOut,
            });
        }
        Ok(())
    }
}

/// Runs the probe phase: repeated reads at consecutive slots until one
/// succeeds. Returns the probe retries; extra wait accrues only when the
/// probes wrap past the cycle boundary and the next root broadcast is
/// missed.
fn recover_probe(
    tune_slot_1based: u32,
    cycle_len: u32,
    link: &mut ClientLink,
    budget: &mut Budget<'_>,
) -> Result<u32, RecoveryFailure> {
    let mut k = 0u32;
    while link.read_lost(0, k) {
        budget.charge_retry()?;
        k += 1;
    }
    if k > 0 {
        let wrapped = u64::from((tune_slot_1based - 1 + k) / cycle_len);
        budget.charge_wait(u64::from(cycle_len) * wrapped)?;
    }
    Ok(k)
}

/// Runs the retry loop for the path read at `pos` (1 = root, 2.. =
/// interior/data) until the read succeeds or the budget runs out.
#[inline]
fn recover_path_read(
    pos: u32,
    cycle_len: u32,
    link: &mut ClientLink,
    budget: &mut Budget<'_>,
    root_gaps: &[u64],
    root_idx: &mut usize,
) -> Result<(), RecoveryFailure> {
    let mut f = 0u32;
    while link.read_lost(pos, f) {
        budget.charge_retry()?;
        let skip = 1u64 << f.min(budget.policy.backoff_cap);
        let wait = if pos == 1 {
            // Next root occurrence(s): walk the cyclic replica gaps.
            let mut w = 0u64;
            for t in 0..skip {
                w += root_gaps[(*root_idx + t as usize) % root_gaps.len()];
            }
            *root_idx = (*root_idx + skip as usize) % root_gaps.len();
            w
        } else {
            // Whole cycles keep the slot arithmetic of the grid exact.
            u64::from(cycle_len) * skip
        };
        budget.charge_wait(wait)?;
        link.doze(skip - 1);
        f += 1;
    }
    Ok(())
}

/// Replays the recovery protocol over a fault-free [`AccessTrace`] — the
/// compiled serving path's half of the protocol. The pointer-walking
/// oracle ([`access_lossy`]) must produce the identical outcome for the
/// same link; property tests pin the two together.
///
/// `tune_slot` must be the 1-based in-cycle tune-in slot and `root_gaps`
/// the output of [`root_occurrence_gaps`] for this cycle and policy.
pub fn recover_access(
    base: AccessTrace,
    tune_slot: Slot,
    cycle_len: u32,
    link: &mut ClientLink,
    policy: &RecoveryPolicy,
    root_gaps: &[u64],
) -> RequestOutcome {
    debug_assert!(cycle_len >= 1);
    let s = ((tune_slot.0 - 1) % cycle_len) + 1;
    let mut budget = Budget::new(policy);
    if let Err(e) = recover_probe(s, cycle_len, link, &mut budget) {
        return RequestOutcome::Failed(e);
    }
    let path_len = base.tuning_time - 1;
    let mut root_idx = 0usize;
    for pos in 1..=path_len {
        if let Err(e) =
            recover_path_read(pos, cycle_len, link, &mut budget, root_gaps, &mut root_idx)
        {
            return RequestOutcome::Failed(e);
        }
    }
    RequestOutcome::Delivered(DeliveredTrace {
        trace: AccessTrace {
            tuning_time: base.tuning_time + budget.retries,
            ..base
        },
        retries: budget.retries,
        extra_wait: budget.extra_wait,
    })
}

/// Pointer-walking oracle for lossy access: executes the client protocol
/// of [`crate::simulator::access`] over the real bucket grid, consulting
/// `plan`'s fault stream before every read and recovering per the policy.
///
/// This is an independent implementation of the same protocol the
/// compiled path replays through [`recover_access`]; for every program,
/// target, tune-in and plan the two agree exactly.
///
/// # Errors
/// The same corruption classes as the fault-free simulator
/// ([`SimError::NotADataNode`], [`SimError::BrokenPointer`],
/// [`SimError::NoRoute`]); fault-induced *losses* are not errors — they
/// surface in the returned [`RequestOutcome`].
pub fn access_lossy(
    program: &BroadcastProgram,
    tree: &IndexTree,
    target: NodeId,
    tune_in: Slot,
    plan: &FaultPlan,
    request_index: u64,
    policy: &RecoveryPolicy,
) -> Result<RequestOutcome, SimError> {
    use bcast_types::{BucketAddr, ChannelId};

    if !tree.is_data(target) {
        return Err(SimError::NotADataNode(target));
    }
    let cycle_len = program.cycle_len() as u32;
    let tune_in = Slot::from_offset(tune_in.offset() % program.cycle_len());
    let root_gaps = root_occurrence_gaps(program.cycle_len(), policy.root_replicas);
    let mut on_path = vec![false; tree.len()];
    on_path[target.index()] = true;
    for a in tree.ancestors(target) {
        on_path[a.index()] = true;
    }

    let mut link = plan.link(request_index);
    let mut budget = Budget::new(policy);

    // Probe: keep reading consecutive C1 buckets until one gets through.
    let probe_wait = program.next_cycle_offset(tune_in);
    match recover_probe(tune_in.0, cycle_len, &mut link, &mut budget) {
        Ok(_) => {}
        Err(e) => return Ok(RequestOutcome::Failed(e)),
    }
    let mut tuning_time = 1u32; // successful reads only; retries added at the end

    // Pointer walk from the root at (C1, s1), retrying each bucket at its
    // next occurrence per the protocol.
    let mut root_idx = 0usize;
    let mut at = BucketAddr {
        channel: ChannelId::FIRST,
        slot: Slot::FIRST,
    };
    let mut clock = 1u32;
    let mut pos = 1u32;
    let mut channel_switches = 0u32;
    loop {
        if let Err(e) = recover_path_read(
            pos,
            cycle_len,
            &mut link,
            &mut budget,
            &root_gaps,
            &mut root_idx,
        ) {
            return Ok(RequestOutcome::Failed(e));
        }
        tuning_time += 1;
        match program.bucket(at) {
            Bucket::Data { node } if on_path[node.index()] => {
                return Ok(RequestOutcome::Delivered(DeliveredTrace {
                    trace: AccessTrace {
                        probe_wait,
                        data_wait: clock - 1,
                        tuning_time: tuning_time + budget.retries,
                        channel_switches,
                    },
                    retries: budget.retries,
                    extra_wait: budget.extra_wait,
                }));
            }
            Bucket::Index { node, pointers } if on_path[node.index()] => {
                let Some(ptr) = pointers.iter().find(|p| on_path[p.child.index()]) else {
                    return Err(SimError::NoRoute { at: *node, target });
                };
                if ptr.channel != at.channel {
                    channel_switches += 1;
                }
                clock += ptr.offset;
                at = BucketAddr {
                    channel: ptr.channel,
                    slot: Slot(at.slot.0 + ptr.offset),
                };
                pos += 1;
            }
            Bucket::Data { node } | Bucket::Index { node, .. } => {
                return Err(SimError::BrokenPointer {
                    at,
                    expected: *node,
                })
            }
            Bucket::Empty => {
                return Err(SimError::BrokenPointer {
                    at,
                    expected: target,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;
    use crate::simulator;

    fn fig2b() -> (IndexTree, BroadcastProgram) {
        use bcast_index_tree::builders;
        let t = builders::paper_example();
        let slots: Vec<Vec<NodeId>> = [
            vec!["1"],
            vec!["2", "3"],
            vec!["A", "B"],
            vec!["4", "E"],
            vec!["C", "D"],
        ]
        .iter()
        .map(|ls| {
            ls.iter()
                .map(|l| t.find_by_label(l).expect("label exists"))
                .collect()
        })
        .collect();
        let a = Allocation::from_slot_schedule(&slots, &t, 2).unwrap();
        let p = BroadcastProgram::build(&a, &t).unwrap();
        (t, p)
    }

    #[test]
    fn perfect_plan_reproduces_the_fault_free_trace() {
        let (t, p) = fig2b();
        let plan = FaultPlan::none();
        let policy = RecoveryPolicy::default();
        for &d in t.data_nodes() {
            for tune in 1..=p.cycle_len() as u32 {
                let base = simulator::access(&p, &t, d, Slot(tune)).unwrap();
                let out = access_lossy(&p, &t, d, Slot(tune), &plan, 7, &policy).unwrap();
                let RequestOutcome::Delivered(del) = out else {
                    panic!("perfect channel never fails");
                };
                assert_eq!(del.trace, base);
                assert_eq!(del.retries, 0);
                assert_eq!(del.extra_wait, 0);
            }
        }
    }

    #[test]
    fn invalid_probabilities_are_rejected() {
        assert!(matches!(
            FaultPlan::erasure(1.5, 0),
            Err(FaultError::BadProbability { .. })
        ));
        assert!(FaultPlan::erasure(f64::NAN, 0).is_err());
        let bad = GilbertElliott {
            p_good_to_bad: -0.1,
            p_bad_to_good: 0.5,
            loss_good: 0.0,
            loss_bad: 0.9,
        };
        let err = FaultPlan::gilbert_elliott(bad, 0).unwrap_err();
        assert!(err.to_string().contains("p_good_to_bad"));
    }

    #[test]
    fn erasure_losses_are_monotone_in_p() {
        // The coupling: every loss at p must also be a loss at p' > p.
        let lo = FaultPlan::erasure(0.1, 99).unwrap();
        let hi = FaultPlan::erasure(0.45, 99).unwrap();
        for req in 0..200u64 {
            let mut a = lo.link(req);
            let mut b = hi.link(req);
            for pos in 0..4u32 {
                for attempt in 0..4u32 {
                    let la = a.read_lost(pos, attempt);
                    let lb = b.read_lost(pos, attempt);
                    assert!(!la || lb, "loss at p=0.1 missing at p=0.45");
                }
            }
        }
    }

    #[test]
    fn links_are_deterministic_per_request_index() {
        let plan = FaultPlan::gilbert_elliott(
            GilbertElliott {
                p_good_to_bad: 0.2,
                p_bad_to_good: 0.3,
                loss_good: 0.01,
                loss_bad: 0.7,
            },
            123,
        )
        .unwrap();
        for req in [0u64, 1, 99, u64::MAX] {
            let mut a = plan.link(req);
            let mut b = plan.link(req);
            for i in 0..32 {
                assert_eq!(a.read_lost(1, i), b.read_lost(1, i));
            }
            a.doze(5);
            b.doze(5);
            assert_eq!(a.read_lost(2, 0), b.read_lost(2, 0));
        }
    }

    #[test]
    fn retry_budget_bounds_every_request() {
        // A channel that always loses: every request must fail with
        // RetriesExhausted after exactly max_retries failed reads.
        let (t, p) = fig2b();
        let plan = FaultPlan::erasure(1.0, 5).unwrap();
        let policy = RecoveryPolicy {
            max_retries: 6,
            ..RecoveryPolicy::default()
        };
        for &d in t.data_nodes() {
            let out = access_lossy(&p, &t, d, Slot(3), &plan, 0, &policy).unwrap();
            let RequestOutcome::Failed(f) = out else {
                panic!("total loss cannot deliver");
            };
            assert_eq!(f.retries, 6);
            assert_eq!(f.reason, FailReason::RetriesExhausted);
        }
    }

    #[test]
    fn timeout_budget_caps_extra_wait() {
        let (t, p) = fig2b();
        let plan = FaultPlan::erasure(0.9, 11).unwrap();
        let policy = RecoveryPolicy {
            max_retries: 64,
            timeout_slots: 2 * p.cycle_len() as u64,
            ..RecoveryPolicy::default()
        };
        let mut timed_out = 0;
        for req in 0..200u64 {
            let d = t.data_nodes()[req as usize % t.num_data_nodes()];
            match access_lossy(&p, &t, d, Slot(1), &plan, req, &policy).unwrap() {
                RequestOutcome::Delivered(del) => {
                    assert!(del.extra_wait <= policy.timeout_slots);
                }
                RequestOutcome::Failed(f) => {
                    if f.reason == FailReason::TimedOut {
                        timed_out += 1;
                    }
                }
            }
        }
        assert!(timed_out > 0, "p=0.9 with a tight timeout must time out");
    }

    #[test]
    fn probe_retry_only_costs_time_across_the_cycle_boundary() {
        // Force exactly the probe's first read to fail: erasure draws are
        // (pos, attempt)-keyed, so scan for a request index whose link
        // loses (0, 0) but nothing else on the relevant prefix.
        let (t, p) = fig2b();
        let cycle = p.cycle_len() as u32;
        let plan = FaultPlan::erasure(0.25, 77).unwrap();
        let policy = RecoveryPolicy::default();
        let mut checked = 0;
        for req in 0..5000u64 {
            let mut probe_only = plan.link(req);
            let first_lost = probe_only.read_lost(0, 0);
            let second_lost = probe_only.read_lost(0, 1);
            let mut rest_ok = true;
            for pos in 1..=4u32 {
                let mut l = plan.link(req);
                // Skip the probe draws (hash-keyed: independent of order).
                if l.read_lost(pos, 0) {
                    rest_ok = false;
                }
            }
            if !(first_lost && !second_lost && rest_ok) {
                continue;
            }
            checked += 1;
            let d = t.data_nodes()[0];
            // Tune in mid-cycle: one extra probe read stays inside the
            // cycle, so no extra wait.
            let mid = access_lossy(&p, &t, d, Slot(2), &plan, req, &policy).unwrap();
            let del = mid.delivered().expect("delivered");
            assert_eq!(del.retries, 1);
            assert_eq!(del.extra_wait, 0);
            // Tune in at the last slot: the retry wraps into the next
            // cycle and misses a root broadcast → one full cycle of wait.
            let edge = access_lossy(&p, &t, d, Slot(cycle), &plan, req, &policy).unwrap();
            let del = edge.delivered().expect("delivered");
            assert_eq!(del.retries, 1);
            assert_eq!(del.extra_wait, u64::from(cycle));
            if checked >= 3 {
                break;
            }
        }
        assert!(checked > 0, "no request with a probe-only loss found");
    }

    #[test]
    fn root_replicas_shrink_root_retry_waits() {
        let gaps1 = root_occurrence_gaps(100, 1);
        let gaps4 = root_occurrence_gaps(100, 4);
        assert_eq!(gaps1, vec![100]);
        assert_eq!(gaps4.len(), 4);
        assert!(gaps4.iter().all(|&g| g < 100));
        // Stretched cycle: 100 + 3 extra root slots.
        assert_eq!(gaps4.iter().sum::<u64>(), 103);
    }

    #[test]
    fn display_and_error_compose() {
        fn takes_error(_: &dyn std::error::Error) {}
        let e = FaultError::BadProbability {
            name: "p",
            value: 2.0,
        };
        takes_error(&e);
        let f = RecoveryFailure {
            retries: 3,
            extra_wait: 40,
            reason: FailReason::TimedOut,
        };
        takes_error(&f);
        assert!(f.to_string().contains("timeout"));
        assert!(e.to_string().contains("outside [0, 1]"));
    }
}
