//! Random index-tree shapes.
//!
//! The paper's experiments use full balanced m-ary trees (see
//! [`bcast_index_tree::builders::full_balanced`]); the property tests and
//! extension benches additionally need irregular trees, produced here by a
//! seeded recursive partition of the data nodes.

use crate::freq::FrequencyDist;
use crate::rng::det_rng;
use bcast_index_tree::{IndexTree, TreeBuilder};
use bcast_types::Weight;
use rand::rngs::StdRng;
use rand::Rng;

/// Parameters for [`random_tree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomTreeConfig {
    /// Number of data (leaf) nodes; must be ≥ 1.
    pub data_nodes: usize,
    /// Maximum index-node fanout; must be ≥ 2.
    pub max_fanout: usize,
    /// Distribution the data weights are drawn from.
    pub weights: FrequencyDist,
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        RandomTreeConfig {
            data_nodes: 8,
            max_fanout: 3,
            weights: FrequencyDist::Uniform { lo: 1.0, hi: 100.0 },
        }
    }
}

/// Generates a random index tree: data nodes are recursively partitioned
/// into between 2 and `max_fanout` contiguous groups (single-element groups
/// become leaves), giving arbitrary — possibly very unbalanced — shapes.
///
/// # Panics
/// Panics if `data_nodes == 0` or `max_fanout < 2`.
pub fn random_tree(config: &RandomTreeConfig, seed: u64) -> IndexTree {
    assert!(config.data_nodes >= 1, "need at least one data node");
    assert!(config.max_fanout >= 2, "max_fanout must be >= 2");
    let weights = config.weights.sample(config.data_nodes, seed);
    let mut rng = det_rng(seed ^ 0xD1B5_4A32_D192_ED03);
    let mut b = TreeBuilder::new();
    let root = b.root("1");
    let mut counter = 1usize;
    grow(
        &mut b,
        &mut rng,
        root,
        &weights,
        0,
        config.max_fanout,
        &mut counter,
    );
    b.build()
        .expect("random construction is structurally valid")
}

fn grow(
    b: &mut TreeBuilder,
    rng: &mut StdRng,
    parent: bcast_types::NodeId,
    weights: &[Weight],
    base: usize,
    max_fanout: usize,
    counter: &mut usize,
) {
    let n = weights.len();
    if n == 1 {
        b.add_data(parent, weights[0], format!("D{base}"))
            .expect("parent exists");
        return;
    }
    // Choose 2..=min(max_fanout, n) groups, then cut points.
    let groups = rng.gen_range(2..=max_fanout.min(n));
    let mut cuts: Vec<usize> = Vec::with_capacity(groups + 1);
    cuts.push(0);
    // `groups - 1` distinct interior cut points in 1..n.
    let mut interior: Vec<usize> = (1..n).collect();
    for _ in 0..groups - 1 {
        let pick = rng.gen_range(0..interior.len());
        cuts.push(interior.swap_remove(pick));
    }
    cuts.push(n);
    cuts.sort_unstable();
    cuts.dedup();
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi - lo == 1 {
            b.add_data(parent, weights[lo], format!("D{}", base + lo))
                .expect("parent exists");
        } else {
            *counter += 1;
            let id = b
                .add_index(parent, counter.to_string())
                .expect("parent exists");
            grow(b, rng, id, &weights[lo..hi], base + lo, max_fanout, counter);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn respects_config() {
        let cfg = RandomTreeConfig {
            data_nodes: 25,
            max_fanout: 4,
            ..RandomTreeConfig::default()
        };
        let t = random_tree(&cfg, 11);
        t.check_invariants().unwrap();
        assert_eq!(t.num_data_nodes(), 25);
        for id in t.preorder() {
            assert!(t.children(*id).len() <= 4);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomTreeConfig::default();
        let a = random_tree(&cfg, 5);
        let b = random_tree(&cfg, 5);
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.preorder().iter().map(|&i| a.label(i)).collect::<Vec<_>>(),
            b.preorder().iter().map(|&i| b.label(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_data_node() {
        let cfg = RandomTreeConfig {
            data_nodes: 1,
            ..RandomTreeConfig::default()
        };
        let t = random_tree(&cfg, 0);
        assert_eq!(t.len(), 2);
    }

    proptest! {
        #[test]
        fn always_valid(n in 1usize..60, fanout in 2usize..6, seed: u64) {
            let cfg = RandomTreeConfig {
                data_nodes: n,
                max_fanout: fanout,
                weights: FrequencyDist::Uniform { lo: 0.0, hi: 10.0 },
            };
            let t = random_tree(&cfg, seed);
            t.check_invariants().unwrap();
            prop_assert_eq!(t.num_data_nodes(), n);
        }
    }
}
