//! Fault-scenario presets for lossy-channel experiments.
//!
//! The degradation experiments sweep the serving stack across channel
//! conditions from clean to hostile. This module keeps the scenario
//! *parameters* (plain numbers — no dependency on the channel crate, which
//! constructs its seeded `FaultPlan` from them), so benches, tests and the
//! CLI all iterate the same named grid.

/// Gilbert–Elliott burst parameters of a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstProfile {
    /// Transition probability good → bad per read.
    pub p_good_to_bad: f64,
    /// Transition probability bad → good per read.
    pub p_bad_to_good: f64,
    /// Loss probability in the good state.
    pub loss_good: f64,
    /// Loss probability in the bad state.
    pub loss_bad: f64,
}

impl BurstProfile {
    /// Long-run expected loss rate of the chain (stationary mix of the
    /// good- and bad-state loss probabilities).
    pub fn expected_loss(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        let pi_bad = if denom > 0.0 {
            self.p_good_to_bad / denom
        } else {
            0.0
        };
        (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
    }
}

/// One named channel condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultScenario {
    /// Human-readable label (stable across benches and reports).
    pub name: &'static str,
    /// Independent per-read erasure probability (`0` when `burst` drives
    /// the losses).
    pub erasure_p: f64,
    /// Burst-loss profile, if the scenario is bursty.
    pub burst: Option<BurstProfile>,
}

impl FaultScenario {
    /// Long-run expected per-read loss rate of the scenario.
    pub fn expected_loss(&self) -> f64 {
        match self.burst {
            Some(b) => {
                let denom = b.p_good_to_bad + b.p_bad_to_good;
                let pi_bad = if denom > 0.0 {
                    b.p_good_to_bad / denom
                } else {
                    0.0
                };
                (1.0 - pi_bad) * b.loss_good + pi_bad * b.loss_bad
            }
            None => self.erasure_p,
        }
    }
}

/// The standard scenario grid used by the PR 5 benches and reports:
/// clean, 1% / 5% / 20% independent erasure, and a bursty channel with a
/// comparable long-run loss rate but strongly correlated failures.
pub fn standard_scenarios() -> Vec<FaultScenario> {
    vec![
        FaultScenario {
            name: "clean",
            erasure_p: 0.0,
            burst: None,
        },
        FaultScenario {
            name: "erasure-1pct",
            erasure_p: 0.01,
            burst: None,
        },
        FaultScenario {
            name: "erasure-5pct",
            erasure_p: 0.05,
            burst: None,
        },
        FaultScenario {
            name: "erasure-20pct",
            erasure_p: 0.20,
            burst: None,
        },
        FaultScenario {
            name: "bursty",
            erasure_p: 0.0,
            burst: Some(BurstProfile {
                p_good_to_bad: 0.05,
                p_bad_to_good: 0.25,
                loss_good: 0.005,
                loss_bad: 0.5,
            }),
        },
    ]
}

/// An evenly spaced erasure-probability sweep `0 ..= max_p` with `steps`
/// points (inclusive of both ends) — the degradation-curve x-axis.
///
/// # Panics
/// Panics if `steps < 2` or `max_p` escapes `[0, 1]`.
pub fn erasure_sweep(max_p: f64, steps: usize) -> Vec<f64> {
    assert!(steps >= 2, "a sweep needs at least its two endpoints");
    assert!((0.0..=1.0).contains(&max_p), "max_p must be a probability");
    (0..steps)
        .map(|i| max_p * i as f64 / (steps - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_grid_is_ordered_by_expected_loss() {
        let grid = standard_scenarios();
        assert_eq!(grid[0].expected_loss(), 0.0);
        for w in grid[..4].windows(2) {
            assert!(w[0].expected_loss() < w[1].expected_loss());
        }
        // The bursty scenario sits in the single-digit-percent range.
        let bursty = grid.last().unwrap();
        assert!(bursty.burst.is_some());
        let loss = bursty.expected_loss();
        assert!((0.01..0.2).contains(&loss), "bursty loss {loss}");
    }

    #[test]
    fn sweep_covers_both_endpoints_monotonically() {
        let s = erasure_sweep(0.5, 6);
        assert_eq!(s.len(), 6);
        assert_eq!(s[0], 0.0);
        assert!((s[5] - 0.5).abs() < 1e-12);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }
}
