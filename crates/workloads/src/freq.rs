//! Access-frequency distributions.
//!
//! * [`FrequencyDist::Uniform`] — "the access frequency of each data node is
//!   given randomly" (the paper's Table 1 setup),
//! * [`FrequencyDist::Normal`] — `N(µ, σ)` truncated at zero (the paper's
//!   Fig. 14 setup, `µ = 100`, `σ ∈ {10..40}`),
//! * [`FrequencyDist::Zipf`] — rank-based Zipf weights, the standard skew of
//!   the broadcast-disk literature (used by the extension benches),
//! * [`FrequencyDist::SelfSimilar`] — the 80/20-style self-similar skew.
//!
//! Normal sampling is a hand-rolled Box–Muller transform (the offline `rand`
//! crate ships without `rand_distr`); Zipf and self-similar weights are
//! deterministic by rank with an optional seeded shuffle to decorrelate
//! popularity from key order.

use crate::rng::det_rng;
use bcast_types::Weight;
use rand::seq::SliceRandom;
use rand::Rng;

/// A distribution over data-node access frequencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrequencyDist {
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound (must be ≥ 0).
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Normal `N(mu, sigma)` truncated below at zero.
    Normal {
        /// Mean.
        mu: f64,
        /// Standard deviation.
        sigma: f64,
    },
    /// Zipf: the item of popularity rank `r` (0-based) gets weight
    /// `1 / (r+1)^theta`, scaled so the heaviest weight is `scale`.
    Zipf {
        /// Skew parameter; `0` degenerates to uniform, `~0.8–1.2` typical.
        theta: f64,
        /// Weight of the most popular item.
        scale: f64,
    },
    /// Self-similar: the top `fraction` of items receive `1 - fraction` of
    /// the probability mass, recursively (80/20 rule at `fraction = 0.2`).
    SelfSimilar {
        /// Fraction in `(0, 0.5]`.
        fraction: f64,
        /// Total mass distributed over all items.
        total: f64,
    },
}

impl FrequencyDist {
    /// The paper's Fig. 14 distribution: `N(100, sigma)`.
    pub fn paper_fig14(sigma: f64) -> Self {
        FrequencyDist::Normal { mu: 100.0, sigma }
    }

    /// Samples `n` weights deterministically from `seed`.
    ///
    /// For [`Zipf`](FrequencyDist::Zipf) and
    /// [`SelfSimilar`](FrequencyDist::SelfSimilar) the rank-to-key mapping is
    /// shuffled with the seed, so key order and popularity are independent —
    /// pass the result through [`sorted_desc`] if rank order is wanted.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<Weight> {
        let mut rng = det_rng(seed);
        match *self {
            FrequencyDist::Uniform { lo, hi } => {
                assert!(lo >= 0.0 && hi > lo, "need 0 <= lo < hi");
                (0..n)
                    .map(|_| Weight::new(rng.gen_range(lo..hi)).expect("range is non-negative"))
                    .collect()
            }
            FrequencyDist::Normal { mu, sigma } => {
                assert!(sigma >= 0.0, "sigma must be non-negative");
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    let (a, b) = box_muller(&mut rng);
                    out.push(truncate(mu + sigma * a));
                    if out.len() < n {
                        out.push(truncate(mu + sigma * b));
                    }
                }
                out
            }
            FrequencyDist::Zipf { theta, scale } => {
                assert!(theta >= 0.0 && scale > 0.0, "need theta >= 0, scale > 0");
                let mut weights: Vec<Weight> = (0..n)
                    .map(|r| {
                        let w = scale / ((r + 1) as f64).powf(theta);
                        Weight::new(w).expect("zipf weight is positive and finite")
                    })
                    .collect();
                weights.shuffle(&mut rng);
                weights
            }
            FrequencyDist::SelfSimilar { fraction, total } => {
                assert!(
                    fraction > 0.0 && fraction <= 0.5 && total > 0.0,
                    "need 0 < fraction <= 0.5, total > 0"
                );
                let mut weights = vec![Weight::ZERO; n];
                self_similar_fill(&mut weights, 0, n, total, fraction);
                weights.shuffle(&mut rng);
                weights
            }
        }
    }
}

/// One Box–Muller draw: two independent standard normal variates.
fn box_muller(rng: &mut impl Rng) -> (f64, f64) {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let phi = std::f64::consts::TAU * u2;
    (r * phi.cos(), r * phi.sin())
}

fn truncate(x: f64) -> Weight {
    Weight::new(x.max(0.0)).expect("max(0) is a valid weight")
}

/// Recursively splits `total` mass over `weights[lo..hi)` with the
/// self-similar rule: the first `fraction` of items get `1 - fraction` of
/// the mass.
fn self_similar_fill(weights: &mut [Weight], lo: usize, hi: usize, total: f64, fraction: f64) {
    let n = hi - lo;
    if n == 0 {
        return;
    }
    if n == 1 {
        weights[lo] = Weight::new(total).expect("positive share");
        return;
    }
    let head = ((n as f64) * fraction).round().max(1.0) as usize;
    let head = head.min(n - 1);
    self_similar_fill(weights, lo, lo + head, total * (1.0 - fraction), fraction);
    self_similar_fill(weights, lo + head, hi, total * fraction, fraction);
}

/// Returns a copy of `weights` sorted heaviest-first.
pub fn sorted_desc(weights: &[Weight]) -> Vec<Weight> {
    let mut v = weights.to_vec();
    v.sort_unstable_by(|a, b| b.cmp(a));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds() {
        let w = FrequencyDist::Uniform { lo: 5.0, hi: 10.0 }.sample(1000, 1);
        assert_eq!(w.len(), 1000);
        assert!(w.iter().all(|x| x.get() >= 5.0 && x.get() < 10.0));
    }

    #[test]
    fn normal_mean_is_close() {
        let w = FrequencyDist::paper_fig14(20.0).sample(20_000, 2);
        let mean: f64 = w.iter().map(|x| x.get()).sum::<f64>() / w.len() as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
        let var: f64 = w.iter().map(|x| (x.get() - mean).powi(2)).sum::<f64>() / w.len() as f64;
        assert!((var.sqrt() - 20.0).abs() < 1.0, "sd {}", var.sqrt());
    }

    #[test]
    fn normal_truncates_at_zero() {
        let w = FrequencyDist::Normal {
            mu: 0.0,
            sigma: 50.0,
        }
        .sample(1000, 3);
        assert!(w.iter().all(|x| x.get() >= 0.0));
    }

    #[test]
    fn zipf_is_skewed_and_shuffled() {
        let w = FrequencyDist::Zipf {
            theta: 1.0,
            scale: 100.0,
        }
        .sample(100, 4);
        let sorted = sorted_desc(&w);
        assert_eq!(sorted[0].get(), 100.0);
        assert!((sorted[1].get() - 50.0).abs() < 1e-9);
        // Shuffle decorrelates rank from position (first item almost surely
        // not the heaviest for this seed).
        assert_ne!(w, sorted);
    }

    #[test]
    fn self_similar_mass_is_conserved() {
        let w = FrequencyDist::SelfSimilar {
            fraction: 0.2,
            total: 1000.0,
        }
        .sample(64, 5);
        let total: f64 = w.iter().map(|x| x.get()).sum();
        assert!((total - 1000.0).abs() < 1e-6);
        // Top 20% of items should hold roughly 80% of the mass.
        let sorted = sorted_desc(&w);
        let top: f64 = sorted[..13].iter().map(|x| x.get()).sum();
        assert!(top > 700.0, "top mass {top}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = FrequencyDist::Uniform { lo: 0.0, hi: 1.0 };
        assert_eq!(d.sample(10, 99), d.sample(10, 99));
        assert_ne!(d.sample(10, 99), d.sample(10, 100));
    }

    #[test]
    fn odd_count_normal() {
        // Exercises the half-pair tail of Box–Muller.
        let w = FrequencyDist::paper_fig14(10.0).sample(7, 6);
        assert_eq!(w.len(), 7);
    }
}
