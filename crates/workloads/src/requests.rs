//! Request-stream generators for the batched serving engine.
//!
//! The serving-side experiments (latency tails, throughput benches, the
//! adaptive harness) need millions of item draws per run, so sampling must
//! be O(1) per request with no allocation. [`AliasTable`] preprocesses an
//! arbitrary probability mass function into a Walker **alias table**
//! (O(items) build) and then draws with one SplitMix64 step, one
//! multiply-shift index map and one comparison per sample. The table and
//! the generator state are deliberately separate: a long-lived caller (the
//! serving loop's tenants) builds the table once per demand shape and
//! reseeds a plain `u64` state per slice — [`AliasTable::rebuild`] even
//! reuses the table's buffers, so steady-state sampling allocates nothing.
//! [`RequestStream`] bundles the two back together for one-shot callers.
//!
//! Deterministic given an explicit `u64` seed, like every generator in
//! this crate.

/// A Walker alias table over a fixed probability mass function: the
/// state-free half of a [`RequestStream`], sharable across draws whose
/// generator state lives elsewhere.
#[derive(Debug, Clone, Default)]
pub struct AliasTable {
    /// Acceptance threshold per column, scaled to `u32::MAX + 1`.
    threshold: Vec<u32>,
    /// Alias item per column.
    alias: Vec<u32>,
    /// Vose construction worklists, retained so rebuilds allocate nothing
    /// once the buffers reach steady-state size.
    scaled: Vec<f64>,
    small: Vec<u32>,
    large: Vec<u32>,
}

impl AliasTable {
    /// An empty table (no items). Sampling panics until the first
    /// [`rebuild`](Self::rebuild) fills it.
    pub fn new() -> Self {
        AliasTable::default()
    }

    /// Builds a table with draw probability proportional to each weight.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn from_weights(weights: &[f64]) -> Self {
        let mut table = AliasTable::new();
        table.rebuild(weights);
        table
    }

    /// Rebuilds the table in place over a new pmf, reusing every buffer —
    /// allocation-free once capacities have grown to the item count. The
    /// construction is exactly [`from_weights`](Self::from_weights)', so a
    /// rebuilt table samples bit-identically to a fresh one.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn rebuild(&mut self, weights: &[f64]) {
        let n = weights.len();
        assert!(n > 0, "need at least one item");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        // Vose's stable alias construction: scale each probability by n,
        // then pair every under-full column with an over-full donor.
        self.scaled.clear();
        self.scaled
            .extend(weights.iter().map(|&w| w * n as f64 / total));
        self.small.clear();
        self.large.clear();
        for (i, &s) in self.scaled.iter().enumerate() {
            if s < 1.0 {
                self.small.push(i as u32);
            } else {
                self.large.push(i as u32);
            }
        }
        self.threshold.clear();
        self.threshold.resize(n, u32::MAX);
        self.alias.clear();
        self.alias.extend(0..n as u32);
        while let (Some(s), Some(l)) = (self.small.pop(), self.large.pop()) {
            self.threshold[s as usize] = (self.scaled[s as usize] * (u32::MAX as f64 + 1.0)) as u32;
            self.alias[s as usize] = l;
            self.scaled[l as usize] -= 1.0 - self.scaled[s as usize];
            if self.scaled[l as usize] < 1.0 {
                self.small.push(l);
            } else {
                self.large.push(l);
            }
        }
        // Leftovers (either list) are exactly full up to rounding: always
        // accept.
    }

    /// Number of distinct items.
    pub fn len(&self) -> usize {
        self.threshold.len()
    }

    /// True until the first build.
    pub fn is_empty(&self) -> bool {
        self.threshold.is_empty()
    }

    /// Draws the next item index, advancing `state` by one SplitMix64
    /// step: O(1), allocation-free. The caller owns the state, so one
    /// table serves any number of independent streams — reseeding costs a
    /// single store.
    ///
    /// # Panics
    /// Panics (debug: index out of bounds) on an empty table.
    #[inline]
    pub fn sample(&self, state: &mut u64) -> usize {
        // SplitMix64 step.
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Low 32 bits pick the column (Lemire multiply-shift, bias-free at
        // these table sizes); high 32 bits flip the acceptance coin.
        let col = ((u64::from(z as u32) * self.threshold.len() as u64) >> 32) as usize;
        if (z >> 32) as u32 <= self.threshold[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

/// One column of a [`TaggedAliasTable`]: the acceptance threshold plus
/// the pre-resolved `(item, tag)` pair for *both* branch outcomes, packed
/// into 16 bytes so a draw touches exactly one cache line beyond the
/// generator state. The accept-branch item is the column index itself and
/// is not stored.
#[derive(Debug, Clone, Copy, Default)]
struct TaggedColumn {
    /// Acceptance threshold, scaled to `u32::MAX + 1`.
    threshold: u32,
    /// Tag of the column's own item (accept branch).
    accept_tag: u32,
    /// Alias item (reject branch).
    alias_item: u32,
    /// Tag of the alias item (reject branch).
    alias_tag: u32,
}

/// An [`AliasTable`] fused with a per-item `u32` tag, resolved at build
/// time so the sampling hot path never chases a second lookup table.
///
/// The serving loop's tenants sample an item *and* immediately map it to
/// the catalog node serving it; with a plain [`AliasTable`] that is up to
/// three dependent random reads per request (threshold, alias, item→node
/// map). Here each column carries the threshold and both possible
/// `(item, tag)` outcomes in one 16-byte record, so a draw costs one
/// SplitMix64 step and a single random cache-line read. Draw decisions
/// are bit-identical to [`AliasTable`] built over the same pmf — the
/// construction *is* [`AliasTable::rebuild`], the tags ride along.
#[derive(Debug, Clone, Default)]
pub struct TaggedAliasTable {
    columns: Vec<TaggedColumn>,
    /// Plain table retained for the Vose construction (and as the oracle
    /// the fused columns are derived from); rebuilds reuse its buffers.
    base: AliasTable,
}

impl TaggedAliasTable {
    /// An empty table. Sampling panics until the first
    /// [`rebuild`](Self::rebuild).
    pub fn new() -> Self {
        TaggedAliasTable::default()
    }

    /// Rebuilds in place over a new pmf, attaching `tag(item)` to every
    /// branch outcome — allocation-free once capacities have grown to the
    /// item count.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn rebuild(&mut self, weights: &[f64], mut tag: impl FnMut(usize) -> u32) {
        self.base.rebuild(weights);
        self.columns.clear();
        self.columns.reserve(weights.len());
        for col in 0..weights.len() {
            let alias = self.base.alias[col] as usize;
            self.columns.push(TaggedColumn {
                threshold: self.base.threshold[col],
                accept_tag: tag(col),
                alias_item: alias as u32,
                alias_tag: tag(alias),
            });
        }
    }

    /// Appends each fused column as four words — threshold, accept tag,
    /// alias item, alias tag — for checkpointing. Inverse:
    /// [`import_columns`](Self::import_columns).
    pub fn export_columns(&self, out: &mut Vec<u32>) {
        out.reserve(4 * self.columns.len());
        for c in &self.columns {
            out.extend_from_slice(&[c.threshold, c.accept_tag, c.alias_item, c.alias_tag]);
        }
    }

    /// Rebuilds a table from [`export_columns`](Self::export_columns)'s
    /// words — a straight copy, bit-identical draws, no Vose
    /// reconstruction. `None` if the word count is not a multiple of
    /// four or an alias index is out of range. The plain base table is
    /// left empty: it is a construction-time oracle, not a sampling
    /// dependency, and the next [`rebuild`](Self::rebuild) regrows it.
    pub fn import_columns(words: &[u32]) -> Option<TaggedAliasTable> {
        if !words.len().is_multiple_of(4) {
            return None;
        }
        let n = words.len() / 4;
        let mut columns = Vec::with_capacity(n);
        for q in words.chunks_exact(4) {
            if q[2] as usize >= n {
                return None;
            }
            columns.push(TaggedColumn {
                threshold: q[0],
                accept_tag: q[1],
                alias_item: q[2],
                alias_tag: q[3],
            });
        }
        Some(TaggedAliasTable {
            columns,
            base: AliasTable::default(),
        })
    }

    /// Number of distinct items.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True until the first build.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Draws the next `(item, tag)`, advancing `state` by one SplitMix64
    /// step. The item sequence is bit-identical to
    /// [`AliasTable::sample`] over the same pmf and state.
    ///
    /// # Panics
    /// Panics (debug: index out of bounds) on an empty table.
    #[inline]
    pub fn sample(&self, state: &mut u64) -> (u32, u32) {
        // SplitMix64 step — kept textually in lock-step with
        // `AliasTable::sample`, which tests pin bit-for-bit.
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let col = ((u64::from(z as u32) * self.columns.len() as u64) >> 32) as usize;
        let c = self.columns[col];
        // Branchless select: the acceptance coin is data-random, so a
        // conditional jump here mispredicts constantly — but both
        // outcomes were just loaded from the same cache line, so the
        // compare folds into two cmovs instead.
        let reject = (z >> 32) as u32 > c.threshold;
        (
            if reject { c.alias_item } else { col as u32 },
            if reject { c.alias_tag } else { c.accept_tag },
        )
    }
}

/// An infinite, deterministic stream of item indices drawn i.i.d. from a
/// fixed probability mass function, via the alias method: an
/// [`AliasTable`] bundled with its generator state.
#[derive(Debug, Clone)]
pub struct RequestStream {
    table: AliasTable,
    state: u64,
}

impl RequestStream {
    /// Builds a stream over `weights.len()` items with draw probability
    /// proportional to each weight.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn from_weights(weights: &[f64], seed: u64) -> Self {
        RequestStream {
            table: AliasTable::from_weights(weights),
            state: seed,
        }
    }

    /// A Zipf(θ) stream: item `i` has probability ∝ `1 / (i + 1)^theta`
    /// (item 0 is the hottest; shuffle externally if rank order and item
    /// ids must be independent).
    ///
    /// # Panics
    /// Panics if `items == 0` or `theta` is negative or non-finite.
    pub fn zipf(items: usize, theta: f64, seed: u64) -> Self {
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be >= 0");
        let pmf: Vec<f64> = (0..items)
            .map(|r| 1.0 / ((r + 1) as f64).powf(theta))
            .collect();
        Self::from_weights(&pmf, seed)
    }

    /// A hotset stream: the first `hot_items` items uniformly share
    /// `hot_mass` of the probability, the remaining items uniformly share
    /// the rest — the classic 80/20-style skew dialed by two knobs.
    ///
    /// # Panics
    /// Panics if `hot_items` is zero or larger than `items`, or `hot_mass`
    /// is outside `[0, 1]` (and, transitively, if the resulting pmf would
    /// be all-zero: `hot_mass == 0` with no cold items).
    pub fn hotset(items: usize, hot_items: usize, hot_mass: f64, seed: u64) -> Self {
        assert!(
            hot_items > 0 && hot_items <= items,
            "hot_items must be in 1..=items"
        );
        assert!(
            (0.0..=1.0).contains(&hot_mass),
            "hot_mass must be in [0, 1]"
        );
        let cold_items = items - hot_items;
        let pmf: Vec<f64> = (0..items)
            .map(|i| {
                if i < hot_items {
                    hot_mass / hot_items as f64
                } else {
                    (1.0 - hot_mass) / cold_items as f64
                }
            })
            .collect();
        Self::from_weights(&pmf, seed)
    }

    /// Number of distinct items.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Always false — streams have at least one item by construction.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Draws the next item index: O(1), allocation-free.
    #[inline]
    pub fn sample(&mut self) -> usize {
        self.table.sample(&mut self.state)
    }
}

impl Iterator for RequestStream {
    type Item = usize;

    /// Infinite stream; use `take(n)` for a finite batch.
    fn next(&mut self) -> Option<usize> {
        Some(self.sample())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(stream: &mut RequestStream, draws: usize) -> Vec<f64> {
        let mut counts = vec![0u64; stream.len()];
        for _ in 0..draws {
            counts[stream.sample()] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / draws as f64)
            .collect()
    }

    #[test]
    fn matches_target_pmf() {
        let weights = [5.0, 1.0, 3.0, 1.0];
        let mut s = RequestStream::from_weights(&weights, 11);
        let freq = empirical(&mut s, 200_000);
        let total: f64 = weights.iter().sum();
        for (i, f) in freq.iter().enumerate() {
            let expect = weights[i] / total;
            assert!(
                (f - expect).abs() < 0.01,
                "item {i}: empirical {f} vs pmf {expect}"
            );
        }
    }

    #[test]
    fn zipf_is_rank_monotone() {
        let mut s = RequestStream::zipf(16, 1.0, 3);
        let freq = empirical(&mut s, 100_000);
        assert!(freq[0] > freq[3] && freq[3] > freq[15]);
        // Hottest rank of Zipf(1) over 16 items: 1 / H_16 ≈ 0.296.
        assert!((freq[0] - 0.296).abs() < 0.02, "hottest {}", freq[0]);
    }

    #[test]
    fn hotset_concentrates_the_requested_mass() {
        let mut s = RequestStream::hotset(100, 10, 0.8, 9);
        let freq = empirical(&mut s, 100_000);
        let hot: f64 = freq[..10].iter().sum();
        assert!((hot - 0.8).abs() < 0.01, "hot mass {hot}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<usize> = RequestStream::zipf(32, 0.9, 5).take(100).collect();
        let b: Vec<usize> = RequestStream::zipf(32, 0.9, 5).take(100).collect();
        assert_eq!(a, b);
        let c: Vec<usize> = RequestStream::zipf(32, 0.9, 6).take(100).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn single_item_stream_draws_it() {
        let mut s = RequestStream::from_weights(&[2.5], 1);
        for _ in 0..10 {
            assert_eq!(s.sample(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn rejects_zero_mass() {
        let _ = RequestStream::from_weights(&[0.0, 0.0], 1);
    }

    #[test]
    fn shared_table_matches_bundled_stream_bit_for_bit() {
        let weights: Vec<f64> = (0..64).map(|i| 1.0 / (i + 1) as f64).collect();
        let table = AliasTable::from_weights(&weights);
        for seed in [0u64, 1, 0x5EED, u64::MAX] {
            let bundled: Vec<usize> = RequestStream::from_weights(&weights, seed)
                .take(500)
                .collect();
            let mut state = seed;
            let resumed: Vec<usize> = (0..500).map(|_| table.sample(&mut state)).collect();
            assert_eq!(bundled, resumed, "seed {seed:#x}");
        }
    }

    #[test]
    fn rebuild_reuses_buffers_and_samples_identically() {
        let a: Vec<f64> = (0..32).map(|i| (i + 1) as f64).collect();
        let b = [5.0, 1.0, 3.0, 1.0];
        let mut reused = AliasTable::from_weights(&a);
        reused.rebuild(&b);
        let fresh = AliasTable::from_weights(&b);
        let (mut s1, mut s2) = (9u64, 9u64);
        for _ in 0..1000 {
            assert_eq!(reused.sample(&mut s1), fresh.sample(&mut s2));
        }
        // Growing back to the larger pmf works too.
        reused.rebuild(&a);
        let fresh = AliasTable::from_weights(&a);
        let (mut s1, mut s2) = (11u64, 11u64);
        for _ in 0..1000 {
            assert_eq!(reused.sample(&mut s1), fresh.sample(&mut s2));
        }
    }

    #[test]
    fn reseeding_state_replays_the_slice_sequence() {
        // The serving loop's usage: one cached table, a fresh state per
        // slice — equal to building a fresh stream per slice.
        let weights = [4.0, 2.0, 1.0, 1.0, 0.5];
        let table = AliasTable::from_weights(&weights);
        for slice_seed in [7u64, 8, 9] {
            let fresh: Vec<usize> = RequestStream::from_weights(&weights, slice_seed)
                .take(64)
                .collect();
            let mut state = slice_seed;
            let cached: Vec<usize> = (0..64).map(|_| table.sample(&mut state)).collect();
            assert_eq!(fresh, cached);
        }
    }

    #[test]
    fn tagged_table_draws_the_same_items_with_resolved_tags() {
        // Fused draws must be bit-identical to the plain table over the
        // same pmf — the determinism contract the serving loop leans on —
        // with every tag equal to the side lookup it replaces.
        let weights: Vec<f64> = (0..257).map(|i| 1.0 / (i + 1) as f64).collect();
        let nodes: Vec<u32> = (0..257).map(|i| 1000 + 3 * i as u32).collect();
        let plain = AliasTable::from_weights(&weights);
        let mut tagged = TaggedAliasTable::new();
        tagged.rebuild(&weights, |i| nodes[i]);
        assert_eq!(tagged.len(), plain.len());
        let (mut s1, mut s2) = (0x5EED_u64, 0x5EED_u64);
        for _ in 0..10_000 {
            let item = plain.sample(&mut s1);
            let (tagged_item, tag) = tagged.sample(&mut s2);
            assert_eq!(tagged_item as usize, item);
            assert_eq!(tag, nodes[item]);
        }
        // Rebuilding over a different pmf retargets the tags too.
        let flipped: Vec<f64> = weights.iter().rev().copied().collect();
        tagged.rebuild(&flipped, |i| nodes[i] + 1);
        let flipped_plain = AliasTable::from_weights(&flipped);
        let (mut s1, mut s2) = (9u64, 9u64);
        for _ in 0..1000 {
            let item = flipped_plain.sample(&mut s1);
            let (tagged_item, tag) = tagged.sample(&mut s2);
            assert_eq!(tagged_item as usize, item);
            assert_eq!(tag, nodes[item] + 1);
        }
    }
}
