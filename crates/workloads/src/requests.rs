//! Request-stream generators for the batched serving engine.
//!
//! The serving-side experiments (latency tails, throughput benches, the
//! adaptive harness) need millions of item draws per run, so sampling must
//! be O(1) per request with no allocation. [`RequestStream`] preprocesses
//! an arbitrary probability mass function into a Walker **alias table**
//! (O(items) build) and then draws with one SplitMix64 step, one
//! multiply-shift index map and one comparison per sample.
//!
//! Deterministic given an explicit `u64` seed, like every generator in
//! this crate.

/// An infinite, deterministic stream of item indices drawn i.i.d. from a
/// fixed probability mass function, via the alias method.
#[derive(Debug, Clone)]
pub struct RequestStream {
    /// Acceptance threshold per column, scaled to `u32::MAX + 1`.
    threshold: Vec<u32>,
    /// Alias item per column.
    alias: Vec<u32>,
    state: u64,
}

impl RequestStream {
    /// Builds a stream over `weights.len()` items with draw probability
    /// proportional to each weight.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn from_weights(weights: &[f64], seed: u64) -> Self {
        let n = weights.len();
        assert!(n > 0, "need at least one item");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        // Vose's stable alias construction: scale each probability by n,
        // then pair every under-full column with an over-full donor.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        let mut threshold = vec![u32::MAX; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            threshold[s as usize] = (scaled[s as usize] * (u32::MAX as f64 + 1.0)) as u32;
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers (either list) are exactly full up to rounding: always
        // accept.
        RequestStream {
            threshold,
            alias,
            state: seed,
        }
    }

    /// A Zipf(θ) stream: item `i` has probability ∝ `1 / (i + 1)^theta`
    /// (item 0 is the hottest; shuffle externally if rank order and item
    /// ids must be independent).
    ///
    /// # Panics
    /// Panics if `items == 0` or `theta` is negative or non-finite.
    pub fn zipf(items: usize, theta: f64, seed: u64) -> Self {
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be >= 0");
        let pmf: Vec<f64> = (0..items)
            .map(|r| 1.0 / ((r + 1) as f64).powf(theta))
            .collect();
        Self::from_weights(&pmf, seed)
    }

    /// A hotset stream: the first `hot_items` items uniformly share
    /// `hot_mass` of the probability, the remaining items uniformly share
    /// the rest — the classic 80/20-style skew dialed by two knobs.
    ///
    /// # Panics
    /// Panics if `hot_items` is zero or larger than `items`, or `hot_mass`
    /// is outside `[0, 1]` (and, transitively, if the resulting pmf would
    /// be all-zero: `hot_mass == 0` with no cold items).
    pub fn hotset(items: usize, hot_items: usize, hot_mass: f64, seed: u64) -> Self {
        assert!(
            hot_items > 0 && hot_items <= items,
            "hot_items must be in 1..=items"
        );
        assert!(
            (0.0..=1.0).contains(&hot_mass),
            "hot_mass must be in [0, 1]"
        );
        let cold_items = items - hot_items;
        let pmf: Vec<f64> = (0..items)
            .map(|i| {
                if i < hot_items {
                    hot_mass / hot_items as f64
                } else {
                    (1.0 - hot_mass) / cold_items as f64
                }
            })
            .collect();
        Self::from_weights(&pmf, seed)
    }

    /// Number of distinct items.
    pub fn len(&self) -> usize {
        self.threshold.len()
    }

    /// Always false — streams have at least one item by construction.
    pub fn is_empty(&self) -> bool {
        self.threshold.is_empty()
    }

    /// Draws the next item index: O(1), allocation-free.
    #[inline]
    pub fn sample(&mut self) -> usize {
        // SplitMix64 step.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Low 32 bits pick the column (Lemire multiply-shift, bias-free at
        // these table sizes); high 32 bits flip the acceptance coin.
        let col = ((u64::from(z as u32) * self.threshold.len() as u64) >> 32) as usize;
        if (z >> 32) as u32 <= self.threshold[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

impl Iterator for RequestStream {
    type Item = usize;

    /// Infinite stream; use `take(n)` for a finite batch.
    fn next(&mut self) -> Option<usize> {
        Some(self.sample())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(stream: &mut RequestStream, draws: usize) -> Vec<f64> {
        let mut counts = vec![0u64; stream.len()];
        for _ in 0..draws {
            counts[stream.sample()] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / draws as f64)
            .collect()
    }

    #[test]
    fn matches_target_pmf() {
        let weights = [5.0, 1.0, 3.0, 1.0];
        let mut s = RequestStream::from_weights(&weights, 11);
        let freq = empirical(&mut s, 200_000);
        let total: f64 = weights.iter().sum();
        for (i, f) in freq.iter().enumerate() {
            let expect = weights[i] / total;
            assert!(
                (f - expect).abs() < 0.01,
                "item {i}: empirical {f} vs pmf {expect}"
            );
        }
    }

    #[test]
    fn zipf_is_rank_monotone() {
        let mut s = RequestStream::zipf(16, 1.0, 3);
        let freq = empirical(&mut s, 100_000);
        assert!(freq[0] > freq[3] && freq[3] > freq[15]);
        // Hottest rank of Zipf(1) over 16 items: 1 / H_16 ≈ 0.296.
        assert!((freq[0] - 0.296).abs() < 0.02, "hottest {}", freq[0]);
    }

    #[test]
    fn hotset_concentrates_the_requested_mass() {
        let mut s = RequestStream::hotset(100, 10, 0.8, 9);
        let freq = empirical(&mut s, 100_000);
        let hot: f64 = freq[..10].iter().sum();
        assert!((hot - 0.8).abs() < 0.01, "hot mass {hot}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<usize> = RequestStream::zipf(32, 0.9, 5).take(100).collect();
        let b: Vec<usize> = RequestStream::zipf(32, 0.9, 5).take(100).collect();
        assert_eq!(a, b);
        let c: Vec<usize> = RequestStream::zipf(32, 0.9, 6).take(100).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn single_item_stream_draws_it() {
        let mut s = RequestStream::from_weights(&[2.5], 1);
        for _ in 0..10 {
            assert_eq!(s.sample(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn rejects_zero_mass() {
        let _ = RequestStream::from_weights(&[0.0, 0.0], 1);
    }
}
