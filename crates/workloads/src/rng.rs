//! Deterministic random-number plumbing.
//!
//! Every randomized generator in the workspace takes an explicit `u64` seed
//! and derives its stream through [`det_rng`], so experiments are exactly
//! reproducible and benches can print a single seed per run.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the workspace-standard deterministic RNG from a seed.
pub fn det_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a sub-seed for the `index`-th independent stream of an
/// experiment, so per-repetition streams do not overlap.
///
/// Uses the SplitMix64 finalizer, the standard way to spread consecutive
/// integers across the 64-bit space.
pub fn sub_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = (0..5).map(|_| det_rng(7).gen()).collect();
        let mut r = det_rng(7);
        let b: Vec<u32> = (0..5).map(|_| r.gen()).collect();
        assert_eq!(a[0], b[0]);
        // And a different seed gives a different first draw.
        let c: u32 = det_rng(8).gen();
        assert_ne!(b[0], c);
    }

    #[test]
    fn sub_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..100).map(|i| sub_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
