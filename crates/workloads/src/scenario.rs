//! "Day in the life" scenario scripts for the multi-tenant serving loop.
//!
//! A [`ScenarioSpec`] is pure data — tenant counts, phase timelines,
//! demand shapes, per-tenant channel conditions and SLOs — with no
//! dependency on the serving machinery, mirroring how
//! [`fault_scenarios`](crate::fault_scenarios) keeps channel conditions as
//! plain numbers. The `bcast-serve` crate interprets a spec
//! deterministically from a seed; benches, tests and the CLI all iterate
//! the same four canonical scripts:
//!
//! * [`flash_crowd`] — breaking news: one tenant's demand multiplies and
//!   collapses onto a tiny hot set, then decays;
//! * [`diurnal_drift`] — a day's traffic curve: rates ramp up and down
//!   while the hot set slides through the key space;
//! * [`brownout`] — one tenant's channel takes sustained Gilbert–Elliott
//!   burst loss while its neighbors stay lossless;
//! * [`tenant_churn`] — tenants join cold and leave mid-day.
//!
//! Two robustness scripts ride alongside the canonical four:
//!
//! * [`overload_storm`] — one tenant's demand blows past a service-wide
//!   per-slice request budget; the shedder must clip the storm while
//!   every polite neighbor keeps its strict SLO;
//! * [`poison_pill`] — one tenant's slice work panics mid-phase; the
//!   quarantine must absorb it with every SLO (including the poisoned
//!   tenant's) intact.

use crate::fault_scenarios::{BurstProfile, FaultScenario};
use bcast_types::SloSpec;

/// The shape of one tenant's request distribution during a phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DemandShape {
    /// Zipf(θ) over item ranks, hottest first.
    Zipf {
        /// Skew exponent (`0` = uniform).
        theta: f64,
    },
    /// A hot block of items sharing most of the mass, starting at
    /// `offset` (wrapping) — lets scripts *move* the hot set to model
    /// drift, which plain `RequestStream::hotset` (block at 0) cannot.
    HotSet {
        /// Items in the hot block.
        hot_items: usize,
        /// Probability mass of the hot block.
        hot_mass: f64,
        /// First item of the hot block (wraps modulo the item count).
        offset: usize,
    },
}

impl DemandShape {
    /// The probability mass function over `items` item ids.
    ///
    /// # Panics
    /// Panics if `items == 0`, or on a `HotSet` whose block is empty or
    /// larger than the item count.
    pub fn pmf(&self, items: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.pmf_into(items, &mut out);
        out
    }

    /// Fills `out` with the pmf over `items` item ids, reusing its
    /// capacity — the serving loop's allocation-free variant of
    /// [`pmf`](Self::pmf) (identical values, bit for bit).
    ///
    /// # Panics
    /// Panics if `items == 0`, or on a `HotSet` whose block is empty or
    /// larger than the item count.
    pub fn pmf_into(&self, items: usize, out: &mut Vec<f64>) {
        assert!(items > 0, "need at least one item");
        out.clear();
        match *self {
            DemandShape::Zipf { theta } => {
                out.extend((0..items).map(|r| 1.0 / ((r + 1) as f64).powf(theta)));
            }
            DemandShape::HotSet {
                hot_items,
                hot_mass,
                offset,
            } => {
                assert!(
                    hot_items > 0 && hot_items <= items,
                    "hot block must be in 1..=items"
                );
                assert!((0.0..=1.0).contains(&hot_mass), "hot_mass is a fraction");
                let cold_items = items - hot_items;
                let hot_p = hot_mass / hot_items as f64;
                let cold_p = if cold_items == 0 {
                    0.0
                } else {
                    (1.0 - hot_mass) / cold_items as f64
                };
                out.resize(items, cold_p);
                for i in 0..hot_items {
                    out[(offset + i) % items] = hot_p;
                }
            }
        }
    }
}

/// One tenant's demand during a phase: a distribution shape plus a
/// request rate that interpolates linearly across the phase (flat when
/// `start_rate == end_rate`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandSpec {
    /// Distribution over items.
    pub shape: DemandShape,
    /// Requests per time slice at the first slice of the phase.
    pub start_rate: u32,
    /// Requests per time slice at the last slice of the phase.
    pub end_rate: u32,
}

impl DemandSpec {
    /// A flat-rate demand.
    pub fn flat(shape: DemandShape, rate: u32) -> Self {
        DemandSpec {
            shape,
            start_rate: rate,
            end_rate: rate,
        }
    }

    /// The integer request rate at `slice` of a phase `slices` long
    /// (linear interpolation between the endpoint rates).
    pub fn rate_at(&self, slice: u32, slices: u32) -> u32 {
        if slices <= 1 {
            return self.start_rate;
        }
        let t = f64::from(slice) / f64::from(slices - 1);
        let rate = f64::from(self.start_rate)
            + t * (f64::from(self.end_rate) - f64::from(self.start_rate));
        rate.round() as u32
    }
}

/// Per-tenant departures from a phase's defaults, keyed by the tenant's
/// stable id (churn keeps ids stable as neighbors come and go).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOverride {
    /// Stable id of the tenant this override targets.
    pub tenant: u64,
    /// Demand replacing the phase default, if any.
    pub demand: Option<DemandSpec>,
    /// Channel condition for this tenant (`None` = lossless).
    pub faults: Option<FaultScenario>,
    /// SLO replacing the phase default, if any (a browned-out tenant gets
    /// a degraded SLO while its neighbors keep the strict one).
    pub slo: Option<SloSpec>,
    /// Chaos injection: panic this tenant's slice work at the given
    /// slice offset within the phase (`0` = the phase's first slice).
    /// Plain data — the serve crate arms its panic-quarantine machinery
    /// from it; the panicking slice serves nothing and the tenant is
    /// quarantined with backoff.
    pub poison_slice: Option<u32>,
}

impl TenantOverride {
    /// An override that only changes the channel condition.
    pub fn faulty(tenant: u64, faults: FaultScenario, slo: SloSpec) -> Self {
        TenantOverride {
            tenant,
            demand: None,
            faults: Some(faults),
            slo: Some(slo),
            poison_slice: None,
        }
    }

    /// An override that only injects a panic at a slice offset within
    /// the phase.
    pub fn poisoned(tenant: u64, poison_slice: u32) -> Self {
        TenantOverride {
            tenant,
            demand: None,
            faults: None,
            slo: None,
            poison_slice: Some(poison_slice),
        }
    }
}

/// One phase of a scenario: a fixed number of time slices sharing a
/// demand default, plus churn events applied at the phase boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase label (stable across reports and benches).
    pub name: &'static str,
    /// Time slices in the phase.
    pub slices: u32,
    /// Default demand for every tenant without an override.
    pub demand: DemandSpec,
    /// Per-tenant departures from the defaults.
    pub overrides: Vec<TenantOverride>,
    /// Tenants joining (cold) at the start of this phase.
    pub join: usize,
    /// Tenants leaving at the start of this phase (highest ids first).
    pub leave: usize,
    /// SLO every tenant without an override must meet over the phase.
    pub slo: SloSpec,
}

impl PhaseSpec {
    /// A phase with no churn and no overrides.
    pub fn uniform(name: &'static str, slices: u32, demand: DemandSpec, slo: SloSpec) -> Self {
        PhaseSpec {
            name,
            slices,
            demand,
            overrides: Vec::new(),
            join: 0,
            leave: 0,
            slo,
        }
    }

    /// The demand a tenant sees in this phase.
    pub fn demand_for(&self, tenant: u64) -> DemandSpec {
        self.overrides
            .iter()
            .find(|o| o.tenant == tenant)
            .and_then(|o| o.demand)
            .unwrap_or(self.demand)
    }

    /// The channel condition a tenant sees in this phase (`None` =
    /// lossless).
    pub fn faults_for(&self, tenant: u64) -> Option<FaultScenario> {
        self.overrides
            .iter()
            .find(|o| o.tenant == tenant)
            .and_then(|o| o.faults)
    }

    /// The SLO a tenant must meet over this phase.
    pub fn slo_for(&self, tenant: u64) -> SloSpec {
        self.overrides
            .iter()
            .find(|o| o.tenant == tenant)
            .and_then(|o| o.slo)
            .unwrap_or(self.slo)
    }

    /// The slice offset (within the phase) at which this tenant's slice
    /// work is scripted to panic, if any.
    pub fn poison_for(&self, tenant: u64) -> Option<u32> {
        self.overrides
            .iter()
            .find(|o| o.tenant == tenant)
            .and_then(|o| o.poison_slice)
    }
}

/// A complete scripted scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario label.
    pub name: &'static str,
    /// Tenants present at slice zero (ids `0..tenants`).
    pub tenants: usize,
    /// Items per tenant catalog.
    pub items_per_tenant: usize,
    /// Index-tree fanout per tenant.
    pub fanout: usize,
    /// Broadcast channels per tenant.
    pub channels: usize,
    /// When set, every tenant routes its rebuilds through the serving
    /// loop's incremental delta lane with this fallback threshold
    /// (fraction of schedule positions; `None` = full rebuilds, the
    /// canonical behavior). Plain data here — the serve crate maps it
    /// onto its `RebuildLane`.
    pub delta_max_touched: Option<f64>,
    /// When set, the serving loop admits at most this many requests per
    /// slice across the whole roster, shedding the excess from
    /// over-quota tenants first (`None` = admit everything, the
    /// canonical behavior). Plain data — the serve crate's water-filling
    /// shedder interprets it.
    pub slice_budget: Option<u64>,
    /// The phase timeline.
    pub phases: Vec<PhaseSpec>,
}

impl ScenarioSpec {
    /// Total time slices across all phases.
    pub fn total_slices(&self) -> u64 {
        self.phases.iter().map(|p| u64::from(p.slices)).sum()
    }

    /// Routes every tenant's rebuilds through the incremental delta lane
    /// with fallback threshold `max_touched` — the same script replayed
    /// through the other republish machinery.
    pub fn with_delta_lane(mut self, max_touched: f64) -> Self {
        self.delta_max_touched = Some(max_touched);
        self
    }

    /// Caps the roster's total admitted requests per slice at `budget`
    /// — the same script replayed under the serving loop's overload
    /// shedder.
    pub fn with_slice_budget(mut self, budget: u64) -> Self {
        self.slice_budget = Some(budget);
        self
    }

    /// Scales every phase's request rates by `factor` — benches reuse
    /// the canonical scripts at heavier load without forking them.
    pub fn scale_rates(mut self, factor: u32) -> Self {
        for phase in &mut self.phases {
            phase.demand.start_rate *= factor;
            phase.demand.end_rate *= factor;
            for o in &mut phase.overrides {
                if let Some(d) = &mut o.demand {
                    d.start_rate *= factor;
                    d.end_rate *= factor;
                }
            }
        }
        self
    }
}

/// The 20%-loss Gilbert–Elliott channel condition the brownout scripts
/// and the tenant-isolation chaos tests share.
pub fn brownout_channel() -> FaultScenario {
    FaultScenario {
        name: "brownout-ge20",
        erasure_p: 0.0,
        burst: Some(BurstProfile {
            p_good_to_bad: 0.1,
            p_bad_to_good: 0.25,
            loss_good: 0.02,
            loss_bad: 0.83,
        }),
    }
}

/// Baseline calm demand shared by the canonical scripts.
fn calm(rate: u32) -> DemandSpec {
    DemandSpec::flat(DemandShape::Zipf { theta: 0.9 }, rate)
}

/// Flash crowd: calm traffic, then tenant 0's demand multiplies by 8 and
/// collapses onto a 4-item hot block (breaking news), then decays back.
pub fn flash_crowd(tenants: usize, items: usize, rate: u32, slices: u32) -> ScenarioSpec {
    let spike = DemandSpec::flat(
        DemandShape::HotSet {
            hot_items: 4.min(items),
            hot_mass: 0.95,
            offset: items / 2,
        },
        rate * 8,
    );
    let decay = DemandSpec {
        shape: DemandShape::Zipf { theta: 1.2 },
        start_rate: rate * 4,
        end_rate: rate,
    };
    ScenarioSpec {
        name: "flash-crowd",
        tenants,
        items_per_tenant: items,
        fanout: 4,
        channels: 3,
        delta_max_touched: None,
        slice_budget: None,
        phases: vec![
            PhaseSpec::uniform("calm", slices, calm(rate), SloSpec::lossless()),
            PhaseSpec {
                name: "spike",
                slices,
                demand: calm(rate),
                overrides: vec![TenantOverride {
                    tenant: 0,
                    demand: Some(spike),
                    faults: None,
                    slo: None,
                    poison_slice: None,
                }],
                join: 0,
                leave: 0,
                slo: SloSpec::lossless(),
            },
            PhaseSpec {
                name: "decay",
                slices,
                demand: calm(rate),
                overrides: vec![TenantOverride {
                    tenant: 0,
                    demand: Some(decay),
                    faults: None,
                    slo: None,
                    poison_slice: None,
                }],
                join: 0,
                leave: 0,
                slo: SloSpec::lossless(),
            },
        ],
    }
}

/// Diurnal drift: overnight trickle, a morning ramp-up with the hot set
/// sliding a quarter of the way through the key space, a busy afternoon
/// with the hot set slid further, and an evening ramp-down.
pub fn diurnal_drift(tenants: usize, items: usize, rate: u32, slices: u32) -> ScenarioSpec {
    let hot = |offset: usize| DemandShape::HotSet {
        hot_items: (items / 8).max(1),
        hot_mass: 0.8,
        offset,
    };
    ScenarioSpec {
        name: "diurnal-drift",
        tenants,
        items_per_tenant: items,
        fanout: 4,
        channels: 3,
        delta_max_touched: None,
        slice_budget: None,
        phases: vec![
            PhaseSpec::uniform(
                "night",
                slices,
                DemandSpec::flat(hot(0), rate / 4),
                SloSpec::lossless(),
            ),
            PhaseSpec::uniform(
                "morning",
                slices,
                DemandSpec {
                    shape: hot(items / 4),
                    start_rate: rate / 4,
                    end_rate: rate * 2,
                },
                SloSpec::lossless(),
            ),
            PhaseSpec::uniform(
                "afternoon",
                slices,
                DemandSpec::flat(hot(items / 2), rate * 2),
                SloSpec::lossless(),
            ),
            PhaseSpec::uniform(
                "evening",
                slices,
                DemandSpec {
                    shape: hot(3 * items / 4),
                    start_rate: rate * 2,
                    end_rate: rate / 4,
                },
                SloSpec::lossless(),
            ),
        ],
    }
}

/// Brownout: tenant 0's channel takes ~20% burst loss for a stretch while
/// every neighbor stays lossless under the strict SLO, then recovers.
pub fn brownout(tenants: usize, items: usize, rate: u32, slices: u32) -> ScenarioSpec {
    ScenarioSpec {
        name: "brownout",
        tenants,
        items_per_tenant: items,
        fanout: 4,
        channels: 3,
        delta_max_touched: None,
        slice_budget: None,
        phases: vec![
            PhaseSpec::uniform("clean", slices, calm(rate), SloSpec::lossless()),
            PhaseSpec {
                name: "brownout",
                slices: slices * 2,
                demand: calm(rate),
                overrides: vec![TenantOverride::faulty(
                    0,
                    brownout_channel(),
                    SloSpec::degraded(0.90, 8.0),
                )],
                join: 0,
                leave: 0,
                slo: SloSpec::lossless(),
            },
            PhaseSpec::uniform("recovered", slices, calm(rate), SloSpec::lossless()),
        ],
    }
}

/// Tenant churn: a stable morning cohort, two tenants joining cold at
/// midday, then the two newest leaving in the evening.
pub fn tenant_churn(tenants: usize, items: usize, rate: u32, slices: u32) -> ScenarioSpec {
    ScenarioSpec {
        name: "tenant-churn",
        tenants,
        items_per_tenant: items,
        fanout: 4,
        channels: 3,
        delta_max_touched: None,
        slice_budget: None,
        phases: vec![
            PhaseSpec::uniform("steady", slices, calm(rate), SloSpec::lossless()),
            PhaseSpec {
                name: "join",
                slices,
                demand: calm(rate),
                overrides: Vec::new(),
                join: 2,
                leave: 0,
                slo: SloSpec::lossless(),
            },
            PhaseSpec {
                name: "leave",
                slices,
                demand: calm(rate),
                overrides: Vec::new(),
                join: 0,
                leave: 2,
                slo: SloSpec::lossless(),
            },
        ],
    }
}

/// Overload storm: a per-slice request budget sized for twice the calm
/// load, then tenant 0's demand multiplies by 16 — far past the budget.
/// Water-filling admission must leave every polite neighbor whole (they
/// keep the lossless SLO) while the storming tenant is clipped to the
/// leftover budget and held only to a storm-rate floor sized so the
/// budget `(tenants + 1) · rate` left over for it stays comfortably
/// above `0.15 · 16 · rate` for any roster of at least two tenants.
pub fn overload_storm(tenants: usize, items: usize, rate: u32, slices: u32) -> ScenarioSpec {
    let storm = DemandSpec::flat(DemandShape::Zipf { theta: 1.1 }, rate * 16);
    ScenarioSpec {
        name: "overload-storm",
        tenants,
        items_per_tenant: items,
        fanout: 4,
        channels: 3,
        delta_max_touched: None,
        slice_budget: Some(2 * tenants as u64 * u64::from(rate)),
        phases: vec![
            PhaseSpec::uniform("calm", slices, calm(rate), SloSpec::lossless()),
            PhaseSpec {
                name: "storm",
                slices,
                demand: calm(rate),
                overrides: vec![TenantOverride {
                    tenant: 0,
                    demand: Some(storm),
                    faults: None,
                    slo: Some(SloSpec::degraded(0.15, 8.0)),
                    poison_slice: None,
                }],
                join: 0,
                leave: 0,
                slo: SloSpec::lossless(),
            },
            PhaseSpec::uniform("calm-again", slices, calm(rate), SloSpec::lossless()),
        ],
    }
}

/// Poison pill: tenant 0's slice work panics on the second slice of the
/// middle phase. The serving loop's quarantine catches the panic, parks
/// the tenant on its last-good program with backoff, and readmits it —
/// all under the *lossless* SLO for everyone, the panicked slice being a
/// clean no-op rather than a burst of failures.
pub fn poison_pill(tenants: usize, items: usize, rate: u32, slices: u32) -> ScenarioSpec {
    ScenarioSpec {
        name: "poison-pill",
        tenants,
        items_per_tenant: items,
        fanout: 4,
        channels: 3,
        delta_max_touched: None,
        slice_budget: None,
        phases: vec![
            PhaseSpec::uniform("calm", slices, calm(rate), SloSpec::lossless()),
            PhaseSpec {
                name: "poison",
                slices,
                demand: calm(rate),
                overrides: vec![TenantOverride::poisoned(0, 1)],
                join: 0,
                leave: 0,
                slo: SloSpec::lossless(),
            },
            PhaseSpec::uniform("recovered", slices, calm(rate), SloSpec::lossless()),
        ],
    }
}

/// The four canonical "day in the life" scripts at a common size — the
/// grid the scenario tests, the CLI and the benches iterate.
pub fn canonical_scenarios(
    tenants: usize,
    items: usize,
    rate: u32,
    slices: u32,
) -> Vec<ScenarioSpec> {
    vec![
        flash_crowd(tenants, items, rate, slices),
        diurnal_drift(tenants, items, rate, slices),
        brownout(tenants, items, rate, slices),
        tenant_churn(tenants, items, rate, slices),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmfs_are_normalizable_and_shaped() {
        let zipf = DemandShape::Zipf { theta: 1.0 }.pmf(8);
        assert!(zipf[0] > zipf[7]);
        let hot = DemandShape::HotSet {
            hot_items: 2,
            hot_mass: 0.9,
            offset: 7,
        }
        .pmf(8);
        // Wrapping block: items 7 and 0 are hot.
        assert!(hot[7] > hot[1] && hot[0] > hot[1]);
        assert!((hot.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rate_interpolates_across_the_phase() {
        let d = DemandSpec {
            shape: DemandShape::Zipf { theta: 1.0 },
            start_rate: 100,
            end_rate: 500,
        };
        assert_eq!(d.rate_at(0, 5), 100);
        assert_eq!(d.rate_at(4, 5), 500);
        assert_eq!(d.rate_at(2, 5), 300);
        // Degenerate single-slice phase pins the start rate.
        assert_eq!(d.rate_at(0, 1), 100);
    }

    #[test]
    fn overrides_route_by_stable_tenant_id() {
        let spec = brownout(4, 64, 100, 10);
        let storm = &spec.phases[1];
        assert!(storm.faults_for(0).is_some());
        assert!(storm.faults_for(1).is_none());
        assert!(storm.slo_for(0).min_delivery_rate < 1.0);
        assert_eq!(storm.slo_for(1).min_delivery_rate, 1.0);
        assert_eq!(storm.demand_for(0), storm.demand_for(1));
    }

    #[test]
    fn canonical_scripts_cover_the_four_regimes() {
        let grid = canonical_scenarios(4, 64, 200, 12);
        let names: Vec<&str> = grid.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            ["flash-crowd", "diurnal-drift", "brownout", "tenant-churn"]
        );
        for s in &grid {
            assert!(s.total_slices() > 0);
            assert!(!s.phases.is_empty());
        }
        // Churn is the only script that changes the tenant roster.
        let churn = &grid[3];
        assert_eq!(churn.phases[1].join, 2);
        assert_eq!(churn.phases[2].leave, 2);
    }

    #[test]
    fn rate_scaling_touches_defaults_and_overrides() {
        let spec = flash_crowd(4, 64, 100, 10).scale_rates(3);
        assert_eq!(spec.phases[0].demand.start_rate, 300);
        let spike = spec.phases[1].overrides[0].demand.unwrap();
        assert_eq!(spike.start_rate, 2400);
    }

    #[test]
    fn overload_storm_budget_spares_polite_neighbors() {
        let spec = overload_storm(4, 64, 100, 10);
        let budget = spec.slice_budget.unwrap();
        assert_eq!(budget, 800);
        let calm_total = 4 * 100;
        assert!(calm_total <= budget as u32, "calm phases never shed");
        let storm = &spec.phases[1];
        assert_eq!(storm.demand_for(0).start_rate, 1600);
        assert_eq!(storm.demand_for(1).start_rate, 100);
        // Leftover budget for the storming tenant after the three
        // polite neighbors keep their full rate, vs its SLO floor.
        let leftover = budget - 3 * 100;
        assert!(leftover as f64 / 1600.0 > 0.15 + 0.05, "floor has slack");
        assert_eq!(storm.slo_for(1).min_delivery_rate, 1.0);
    }

    #[test]
    fn poison_pill_scripts_one_panic_mid_phase() {
        let spec = poison_pill(3, 64, 80, 8);
        assert_eq!(spec.phases[1].poison_for(0), Some(1));
        assert_eq!(spec.phases[1].poison_for(1), None);
        assert_eq!(spec.phases[0].poison_for(0), None);
        // The poisoned tenant is still held to the lossless SLO: the
        // panicked slice must be a no-op, not an outage.
        assert_eq!(spec.phases[1].slo_for(0).min_delivery_rate, 1.0);
    }

    #[test]
    fn slice_budget_builder_sets_the_cap() {
        let spec = flash_crowd(4, 64, 100, 10);
        assert_eq!(spec.slice_budget, None, "canonical scripts never shed");
        assert_eq!(spec.with_slice_budget(640).slice_budget, Some(640));
    }

    #[test]
    fn brownout_channel_loses_about_a_fifth() {
        let loss = brownout_channel().expected_loss();
        assert!((0.15..0.30).contains(&loss), "expected ~20% loss: {loss}");
    }
}
