#![warn(missing_docs)]

//! Workload generators for the broadcast-allocation experiments.
//!
//! The paper's evaluation draws access frequencies from two sources — "given
//! randomly" (Table 1) and a normal distribution `N(µ, σ)` (Fig. 14) — and
//! builds full balanced m-ary index trees over them. Broadcast-dissemination
//! studies more broadly use Zipf-like skews, so those are provided too for
//! the extension benches.
//!
//! Everything is deterministic given an explicit `u64` seed.

pub mod fault_scenarios;
pub mod freq;
pub mod requests;
pub mod rng;
pub mod scenario;
pub mod shapes;

pub use fault_scenarios::{erasure_sweep, standard_scenarios, BurstProfile, FaultScenario};
pub use freq::FrequencyDist;
pub use requests::{AliasTable, RequestStream, TaggedAliasTable};
pub use scenario::{
    brownout, brownout_channel, canonical_scenarios, diurnal_drift, flash_crowd, overload_storm,
    poison_pill, tenant_churn, DemandShape, DemandSpec, PhaseSpec, ScenarioSpec, TenantOverride,
};
pub use shapes::{random_tree, RandomTreeConfig};
