//! Weighted dependency DAGs and their schedules.

use bcast_types::Weight;
use std::fmt;

/// A directed acyclic dependency graph over broadcast objects.
///
/// Every object carries an access weight; edge `a → b` forces `a` into a
/// strictly earlier slot than `b`. Unlike the index-tree model there is no
/// index/data distinction: every object is requestable (\[CHK99\]'s object
/// model). The index-tree problem embeds as the special case where edges
/// form a tree and index nodes have zero weight.
#[derive(Debug, Clone)]
pub struct DependencyDag {
    weights: Vec<Weight>,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
}

/// Errors for DAG construction, validation and schedule checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// Node id out of range.
    NodeOutOfRange(usize),
    /// The edges contain a cycle.
    Cyclic,
    /// A self-loop was added.
    SelfLoop(usize),
    /// A schedule slot carries more objects than there are channels.
    SlotTooWide {
        /// Offending 0-based slot.
        slot: usize,
        /// Objects in it.
        members: usize,
        /// Channel budget.
        channels: usize,
    },
    /// A schedule mentions an object twice (or not at all).
    NotAPermutation(usize),
    /// A schedule places an object no later than one of its predecessors.
    PredecessorNotEarlier {
        /// The predecessor.
        before: usize,
        /// The dependent object.
        after: usize,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::NodeOutOfRange(n) => write!(f, "node {n} out of range"),
            DagError::Cyclic => write!(f, "dependency graph has a cycle"),
            DagError::SelfLoop(n) => write!(f, "self-loop on node {n}"),
            DagError::SlotTooWide {
                slot,
                members,
                channels,
            } => write!(
                f,
                "slot {slot} holds {members} objects but only {channels} channels exist"
            ),
            DagError::NotAPermutation(n) => {
                write!(f, "schedule is not a permutation of the objects (node {n})")
            }
            DagError::PredecessorNotEarlier { before, after } => {
                write!(
                    f,
                    "object {after} not strictly after its predecessor {before}"
                )
            }
        }
    }
}

impl std::error::Error for DagError {}

impl DependencyDag {
    /// Creates a DAG over the given object weights, with no edges yet.
    pub fn new(weights: Vec<Weight>) -> Self {
        let n = weights.len();
        DependencyDag {
            weights,
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if the graph has no objects.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Adds the precedence edge `before → after`.
    pub fn add_edge(&mut self, before: usize, after: usize) -> Result<(), DagError> {
        let n = self.len();
        if before >= n {
            return Err(DagError::NodeOutOfRange(before));
        }
        if after >= n {
            return Err(DagError::NodeOutOfRange(after));
        }
        if before == after {
            return Err(DagError::SelfLoop(before));
        }
        self.succ[before].push(after);
        self.pred[after].push(before);
        Ok(())
    }

    /// Object weight.
    pub fn weight(&self, node: usize) -> Weight {
        self.weights[node]
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> Weight {
        self.weights.iter().copied().sum()
    }

    /// Immediate successors.
    pub fn successors(&self, node: usize) -> &[usize] {
        &self.succ[node]
    }

    /// Immediate predecessors.
    pub fn predecessors(&self, node: usize) -> &[usize] {
        &self.pred[node]
    }

    /// Verifies acyclicity (Kahn's algorithm).
    pub fn validate(&self) -> Result<(), DagError> {
        let n = self.len();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.pred[v].len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &s in &self.succ[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if seen == n {
            Ok(())
        } else {
            Err(DagError::Cyclic)
        }
    }

    /// For each node, the total weight and count of its reachable set
    /// (itself included) — the DAG generalization of the index tree's
    /// subtree aggregates, used by the density heuristic.
    ///
    /// O(n²/64 + E·n/64) via bitset reachability; fine for the instance
    /// sizes the heuristics target (≤ ~10⁴).
    pub fn reachable_aggregates(&self) -> Vec<(Weight, u32)> {
        let n = self.len();
        let words = n.div_ceil(64);
        let mut reach: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
        for (v, r) in reach.iter_mut().enumerate() {
            r[v / 64] |= 1 << (v % 64);
        }
        // Reverse topological order: fold successors into predecessors.
        let order = self.topological_order().expect("validated DAG");
        for &v in order.iter().rev() {
            // Split borrows: collect successor ids first.
            for si in 0..self.succ[v].len() {
                let s = self.succ[v][si];
                let (a, b) = if v < s {
                    let (lo, hi) = reach.split_at_mut(s);
                    (&mut lo[v], &hi[0])
                } else {
                    let (lo, hi) = reach.split_at_mut(v);
                    (&mut hi[0], &lo[s])
                };
                for (aw, bw) in a.iter_mut().zip(b.iter()) {
                    *aw |= bw;
                }
            }
        }
        reach
            .into_iter()
            .map(|r| {
                let mut w = Weight::ZERO;
                let mut c = 0u32;
                for (wi, word) in r.into_iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        w += self.weights[wi * 64 + b];
                        c += 1;
                    }
                }
                (w, c)
            })
            .collect()
    }

    /// One topological order (Kahn, smallest id first for determinism), or
    /// an error if cyclic.
    pub fn topological_order(&self) -> Result<Vec<usize>, DagError> {
        let n = self.len();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.pred[v].len()).collect();
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&v| indeg[v] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut out = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(v)) = heap.pop() {
            out.push(v);
            for &s in &self.succ[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    heap.push(std::cmp::Reverse(s));
                }
            }
        }
        if out.len() == n {
            Ok(out)
        } else {
            Err(DagError::Cyclic)
        }
    }
}

/// A slot schedule over a DAG (the analogue of
/// `bcast_core::Schedule`, kept separate because nodes here are plain
/// `usize` object ids).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DagSchedule {
    slots: Vec<Vec<usize>>,
}

impl DagSchedule {
    /// Wraps explicit slot sets.
    pub fn from_slots(slots: Vec<Vec<usize>>) -> Self {
        DagSchedule { slots }
    }

    /// One object per slot.
    pub fn from_sequence(seq: impl IntoIterator<Item = usize>) -> Self {
        DagSchedule {
            slots: seq.into_iter().map(|v| vec![v]).collect(),
        }
    }

    /// The slot sets.
    pub fn slots(&self) -> &[Vec<usize>] {
        &self.slots
    }

    /// Cycle length in slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True for the empty schedule.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Average weighted wait `Σ w(v)·T(v) / Σ w(v)` (formula 1 on DAGs).
    pub fn average_wait(&self, dag: &DependencyDag) -> f64 {
        let total = dag.total_weight().get();
        if total == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (offset, members) in self.slots.iter().enumerate() {
            for &v in members {
                acc += dag.weight(v) * (offset as u64 + 1);
            }
        }
        acc / total
    }

    /// Validates: every object exactly once, at most `k` per slot, all
    /// predecessors in strictly earlier slots.
    pub fn validate(&self, dag: &DependencyDag, k: usize) -> Result<(), DagError> {
        let n = dag.len();
        let mut slot_of = vec![usize::MAX; n];
        for (offset, members) in self.slots.iter().enumerate() {
            if members.len() > k {
                return Err(DagError::SlotTooWide {
                    slot: offset,
                    members: members.len(),
                    channels: k,
                });
            }
            for &v in members {
                if v >= n {
                    return Err(DagError::NodeOutOfRange(v));
                }
                if slot_of[v] != usize::MAX {
                    return Err(DagError::NotAPermutation(v));
                }
                slot_of[v] = offset;
            }
        }
        if let Some(missing) = slot_of.iter().position(|&s| s == usize::MAX) {
            return Err(DagError::NotAPermutation(missing));
        }
        for v in 0..n {
            for &p in dag.predecessors(v) {
                if slot_of[p] >= slot_of[v] {
                    return Err(DagError::PredecessorNotEarlier {
                        before: p,
                        after: v,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: &[u32]) -> Vec<Weight> {
        v.iter().map(|&x| Weight::from(x)).collect()
    }

    #[test]
    fn build_and_validate() {
        let mut d = DependencyDag::new(w(&[5, 3, 8]));
        d.add_edge(0, 1).unwrap();
        d.add_edge(0, 2).unwrap();
        d.validate().unwrap();
        assert_eq!(d.successors(0), &[1, 2]);
        assert_eq!(d.predecessors(2), &[0]);
        assert_eq!(d.total_weight().get(), 16.0);
    }

    #[test]
    fn rejects_cycles_and_self_loops() {
        let mut d = DependencyDag::new(w(&[1, 1]));
        assert_eq!(d.add_edge(0, 0).unwrap_err(), DagError::SelfLoop(0));
        d.add_edge(0, 1).unwrap();
        d.add_edge(1, 0).unwrap();
        assert_eq!(d.validate().unwrap_err(), DagError::Cyclic);
        assert_eq!(d.topological_order().unwrap_err(), DagError::Cyclic);
    }

    #[test]
    fn topological_order_is_deterministic_and_valid() {
        let mut d = DependencyDag::new(w(&[1, 1, 1, 1]));
        d.add_edge(2, 0).unwrap();
        d.add_edge(2, 3).unwrap();
        let order = d.topological_order().unwrap();
        assert_eq!(order, vec![1, 2, 0, 3]); // smallest-id-first Kahn
    }

    #[test]
    fn reachable_aggregates_on_a_diamond() {
        // 0 → {1, 2} → 3.
        let mut d = DependencyDag::new(w(&[1, 2, 4, 8]));
        d.add_edge(0, 1).unwrap();
        d.add_edge(0, 2).unwrap();
        d.add_edge(1, 3).unwrap();
        d.add_edge(2, 3).unwrap();
        let agg = d.reachable_aggregates();
        assert_eq!(agg[0], (Weight::from(15u32), 4));
        assert_eq!(agg[1], (Weight::from(10u32), 2));
        assert_eq!(agg[2], (Weight::from(12u32), 2));
        assert_eq!(agg[3], (Weight::from(8u32), 1));
    }

    #[test]
    fn schedule_cost_and_validation() {
        let mut d = DependencyDag::new(w(&[5, 3, 8]));
        d.add_edge(0, 1).unwrap();
        let s = DagSchedule::from_slots(vec![vec![0, 2], vec![1]]);
        s.validate(&d, 2).unwrap();
        // (5·1 + 8·1 + 3·2)/16.
        assert!((s.average_wait(&d) - 19.0 / 16.0).abs() < 1e-12);
        // Predecessor in the same slot is invalid.
        let bad = DagSchedule::from_slots(vec![vec![0, 1], vec![2]]);
        assert_eq!(
            bad.validate(&d, 2).unwrap_err(),
            DagError::PredecessorNotEarlier {
                before: 0,
                after: 1
            }
        );
        // Too-wide slot is invalid.
        let wide = DagSchedule::from_slots(vec![vec![0, 2], vec![1]]);
        assert_eq!(
            wide.validate(&d, 1).unwrap_err(),
            DagError::SlotTooWide {
                slot: 0,
                members: 2,
                channels: 1
            }
        );
        // Duplicates and omissions are named.
        let dup = DagSchedule::from_slots(vec![vec![0], vec![0], vec![1, 2]]);
        assert_eq!(
            dup.validate(&d, 2).unwrap_err(),
            DagError::NotAPermutation(0)
        );
        let missing = DagSchedule::from_slots(vec![vec![0], vec![1]]);
        assert_eq!(
            missing.validate(&d, 2).unwrap_err(),
            DagError::NotAPermutation(2)
        );
    }
}
