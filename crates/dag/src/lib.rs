#![warn(missing_docs)]

//! Broadcast allocation under **DAG** dependencies — the paper's §5 third
//! future-work item: "consider the allocation problem with an arbitrary
//! graph representing the dependencies among broadcast data. For an index
//! tree, there is a hierarchical dependency. In \[CHK99\], the case for an
//! acyclic directed graph is considered ... We plan to develop an
//! efficient algorithm for an arbitrary graph based on our proposed
//! techniques."
//!
//! This crate carries the workspace's techniques over:
//!
//! * [`DependencyDag`] — weighted objects under arbitrary acyclic
//!   precedence (object `a → b` means `a` must be broadcast strictly
//!   before `b`: `b`'s content presumes the client already holds `a`);
//! * [`exact`] — provably optimal single/multi-channel allocation by
//!   reduction to the Personnel Assignment Problem (the same reduction as
//!   §2.2 of the paper, but now the partial order is the DAG itself) and
//!   by direct slot-schedule enumeration for `k > 1`;
//! * [`heuristics`] — \[CHK99\]-style allocation rules generalized from
//!   this workspace: frontier-greedy by *reachable-weight density*, and
//!   plain weight-greedy, both O(n log n + E·reach).

pub mod exact;
pub mod graph;
pub mod heuristics;

pub use exact::{exact_multi_channel, exact_one_channel, ExactResult};
pub use graph::{DagError, DagSchedule, DependencyDag};
pub use heuristics::{greedy_density, greedy_weight, random_layered_dag};
