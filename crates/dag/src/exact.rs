//! Exact DAG allocation.
//!
//! * One channel: the §2.2 reduction verbatim — jobs = objects, persons =
//!   positions, `C(v, p) = w(v)·(p + 1)`, precedence = the DAG — solved by
//!   the workspace's branch-and-bound PAP solver.
//! * `k` channels: direct depth-first enumeration of maximal slot
//!   schedules (the Algorithm-1 idea on DAG frontiers) with an admissible
//!   packed bound. Exponential; for ground truth on small instances.

use crate::graph::{DagError, DagSchedule, DependencyDag};
use bcast_assignment::{solve_branch_and_bound, PapInstance};
use bcast_types::Weight;

/// An exact result.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// An optimal schedule.
    pub schedule: DagSchedule,
    /// Its average weighted wait.
    pub average_wait: f64,
}

/// Optimal 1-channel allocation via the PAP reduction.
pub fn exact_one_channel(dag: &DependencyDag) -> Result<ExactResult, DagError> {
    dag.validate()?;
    let n = dag.len();
    let mut pap = PapInstance::new(n);
    for v in 0..n {
        for p in 0..n {
            pap.set_cost(v, p, dag.weight(v).get() * (p + 1) as f64);
        }
        for &s in dag.successors(v) {
            pap.add_precedence(v, s).expect("ids in range");
        }
    }
    let sol = solve_branch_and_bound(&pap).expect("validated instance");
    let mut seq = vec![0usize; n];
    for (job, &person) in sol.person_of.iter().enumerate() {
        seq[person] = job;
    }
    let schedule = DagSchedule::from_sequence(seq);
    let total = dag.total_weight().get();
    Ok(ExactResult {
        schedule,
        average_wait: if total == 0.0 { 0.0 } else { sol.cost / total },
    })
}

/// Optimal k-channel allocation by exhaustive frontier enumeration with
/// branch-and-bound. Small instances only (ground truth for the
/// heuristics' tests).
pub fn exact_multi_channel(dag: &DependencyDag, k: usize) -> Result<ExactResult, DagError> {
    assert!(k >= 1, "need at least one channel");
    dag.validate()?;
    let n = dag.len();
    // Nodes sorted heaviest-first for the packed bound.
    let mut sorted: Vec<(Weight, usize)> = (0..n).map(|v| (dag.weight(v), v)).collect();
    sorted.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    struct Search<'a> {
        dag: &'a DependencyDag,
        k: usize,
        indeg: Vec<usize>,
        placed: Vec<bool>,
        slots: Vec<Vec<usize>>,
        acc: f64,
        best: f64,
        best_slots: Vec<Vec<usize>>,
        sorted: Vec<(Weight, usize)>,
        remaining: usize,
    }

    impl Search<'_> {
        fn bound(&self) -> f64 {
            // The actual unplaced objects packed heaviest-first, k per
            // slot, starting at the next slot — admissible because no
            // feasible completion can place any of them earlier.
            let next = self.slots.len() as u64 + 1;
            let mut i = 0u64;
            let mut acc = self.acc;
            for &(w, v) in &self.sorted {
                if self.placed[v] {
                    continue;
                }
                acc += w * (next + i / self.k as u64);
                i += 1;
            }
            acc
        }

        fn dfs(&mut self) {
            if self.remaining == 0 {
                if self.acc < self.best {
                    self.best = self.acc;
                    self.best_slots.clone_from(&self.slots);
                }
                return;
            }
            if self.bound() >= self.best {
                return;
            }
            let avail: Vec<usize> = (0..self.dag.len())
                .filter(|&v| !self.placed[v] && self.indeg[v] == 0)
                .collect();
            let take = self.k.min(avail.len());
            // Enumerate all `take`-subsets of the frontier.
            let mut pick = Vec::with_capacity(take);
            self.subsets(&avail, take, 0, &mut pick);
        }

        fn subsets(&mut self, avail: &[usize], take: usize, from: usize, pick: &mut Vec<usize>) {
            if pick.len() == take {
                let slot = self.slots.len() as u64 + 1;
                let mut delta = 0.0;
                for &v in pick.iter() {
                    self.placed[v] = true;
                    delta += self.dag.weight(v) * slot;
                    for si in 0..self.dag.successors(v).len() {
                        let s = self.dag.successors(v)[si];
                        self.indeg[s] -= 1;
                    }
                }
                self.remaining -= take;
                self.acc += delta;
                self.slots.push(pick.clone());
                self.dfs();
                self.slots.pop();
                self.acc -= delta;
                self.remaining += take;
                for &v in pick.iter() {
                    self.placed[v] = false;
                    for si in 0..self.dag.successors(v).len() {
                        let s = self.dag.successors(v)[si];
                        self.indeg[s] += 1;
                    }
                }
                return;
            }
            let need = take - pick.len();
            if avail.len() - from < need {
                return;
            }
            for i in from..=avail.len() - need {
                pick.push(avail[i]);
                self.subsets(avail, take, i + 1, pick);
                pick.pop();
            }
        }
    }

    let mut search = Search {
        dag,
        k,
        indeg: (0..n).map(|v| dag.predecessors(v).len()).collect(),
        placed: vec![false; n],
        slots: Vec::new(),
        acc: 0.0,
        best: f64::INFINITY,
        best_slots: Vec::new(),
        sorted,
        remaining: n,
    };
    search.dfs();
    let schedule = DagSchedule::from_slots(search.best_slots);
    let total = dag.total_weight().get();
    Ok(ExactResult {
        average_wait: if total == 0.0 {
            0.0
        } else {
            search.best / total
        },
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: &[u32]) -> Vec<Weight> {
        v.iter().map(|&x| Weight::from(x)).collect()
    }

    #[test]
    fn chain_is_forced() {
        let mut d = DependencyDag::new(w(&[1, 9, 5]));
        d.add_edge(0, 1).unwrap();
        d.add_edge(1, 2).unwrap();
        let r = exact_one_channel(&d).unwrap();
        r.schedule.validate(&d, 1).unwrap();
        assert!((r.average_wait - (1.0 + 18.0 + 15.0) / 15.0).abs() < 1e-12);
    }

    #[test]
    fn antichain_sorts_by_weight() {
        let d = DependencyDag::new(w(&[3, 9, 1]));
        let r = exact_one_channel(&d).unwrap();
        // Optimal order: 9, 3, 1 → (9·1 + 3·2 + 1·3)/13.
        assert!((r.average_wait - 18.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn multi_channel_matches_one_channel_at_k1() {
        let mut d = DependencyDag::new(w(&[4, 7, 2, 9]));
        d.add_edge(0, 2).unwrap();
        d.add_edge(1, 2).unwrap();
        let a = exact_one_channel(&d).unwrap();
        let b = exact_multi_channel(&d, 1).unwrap();
        assert!((a.average_wait - b.average_wait).abs() < 1e-9);
        b.schedule.validate(&d, 1).unwrap();
    }

    #[test]
    fn diamond_two_channels() {
        // 0 → {1,2} → 3, weights 0,6,4,10.
        let mut d = DependencyDag::new(w(&[0, 6, 4, 10]));
        d.add_edge(0, 1).unwrap();
        d.add_edge(0, 2).unwrap();
        d.add_edge(1, 3).unwrap();
        d.add_edge(2, 3).unwrap();
        let r = exact_multi_channel(&d, 2).unwrap();
        r.schedule.validate(&d, 2).unwrap();
        // Best: slot1 {0}, slot2 {1,2}, slot3 {3} → (6+4)·2 + 10·3 = 50.
        assert!((r.average_wait - 50.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_cyclic_input() {
        let mut d = DependencyDag::new(w(&[1, 1]));
        d.add_edge(0, 1).unwrap();
        d.add_edge(1, 0).unwrap();
        assert!(exact_one_channel(&d).is_err());
        assert!(exact_multi_channel(&d, 2).is_err());
    }
}
