//! \[CHK99\]-style allocation rules, generalized from this workspace's
//! techniques to arbitrary DAGs.

use crate::graph::{DagError, DagSchedule, DependencyDag};
use bcast_types::Weight;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Max-heap key with a deterministic tie-break.
#[derive(PartialEq)]
struct P(f64, Reverse<usize>);

impl Eq for P {}

impl PartialOrd for P {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for P {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

fn frontier_schedule(
    dag: &DependencyDag,
    k: usize,
    priority: impl Fn(usize) -> f64,
) -> Result<DagSchedule, DagError> {
    assert!(k >= 1, "need at least one channel");
    dag.validate()?;
    let n = dag.len();
    let mut indeg: Vec<usize> = (0..n).map(|v| dag.predecessors(v).len()).collect();
    let mut heap: BinaryHeap<(P, usize)> = (0..n)
        .filter(|&v| indeg[v] == 0)
        .map(|v| (P(priority(v), Reverse(v)), v))
        .collect();
    let mut slots: Vec<Vec<usize>> = Vec::new();
    while !heap.is_empty() {
        let take = k.min(heap.len());
        let mut members = Vec::with_capacity(take);
        for _ in 0..take {
            let (_, v) = heap.pop().expect("len checked");
            members.push(v);
        }
        for &v in &members {
            for &s in dag.successors(v) {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    heap.push((P(priority(s), Reverse(s)), s));
                }
            }
        }
        slots.push(members);
    }
    Ok(DagSchedule::from_slots(slots))
}

/// Frontier-greedy by *reachable-weight density*: each available object is
/// scored by the total weight of everything it (transitively) unlocks,
/// divided by the object count of that set — the DAG generalization of the
/// sorting heuristic's `W/N` subtree rule.
pub fn greedy_density(dag: &DependencyDag, k: usize) -> Result<DagSchedule, DagError> {
    // Validate before touching reachability (which requires acyclicity).
    dag.validate()?;
    let agg = dag.reachable_aggregates();
    frontier_schedule(dag, k, |v| {
        let (w, c) = agg[v];
        w.get() / f64::from(c.max(1))
    })
}

/// Frontier-greedy by own weight only — the naive \[CHK99\]-style rule
/// ("most requested available object first"); blind to what an object
/// unlocks, so it starves behind low-weight cut vertices.
pub fn greedy_weight(dag: &DependencyDag, k: usize) -> Result<DagSchedule, DagError> {
    frontier_schedule(dag, k, |v| dag.weight(v).get())
}

/// Random layered DAG generator for tests and benches: `layers` layers of
/// `width` objects; each object depends on 1..=`max_deps` random objects
/// of earlier layers (when any exist). Weights uniform in `[1, 100)`.
pub fn random_layered_dag(
    layers: usize,
    width: usize,
    max_deps: usize,
    seed: u64,
) -> DependencyDag {
    assert!(layers >= 1 && width >= 1, "need a non-empty DAG");
    let n = layers * width;
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<Weight> = (0..n)
        .map(|_| Weight::new(rng.gen_range(1.0..100.0)).expect("in range"))
        .collect();
    let mut dag = DependencyDag::new(weights);
    for layer in 1..layers {
        for i in 0..width {
            let v = layer * width + i;
            let deps = rng.gen_range(1..=max_deps.max(1));
            for _ in 0..deps {
                let p = rng.gen_range(0..layer * width);
                dag.add_edge(p, v).expect("p < v by construction");
            }
        }
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_multi_channel, exact_one_channel};
    use proptest::prelude::*;

    fn w(v: &[u32]) -> Vec<Weight> {
        v.iter().map(|&x| Weight::from(x)).collect()
    }

    #[test]
    fn density_sees_through_light_gates() {
        // A zero-weight gate guarding a heavy object: weight-greedy airs
        // the medium item first; density-greedy opens the gate.
        // 0 (w=0) → 2 (w=100); 1 (w=10) independent.
        let mut d = DependencyDag::new(w(&[0, 10, 100]));
        d.add_edge(0, 2).unwrap();
        let dens = greedy_density(&d, 1).unwrap();
        let wgt = greedy_weight(&d, 1).unwrap();
        assert!(dens.average_wait(&d) < wgt.average_wait(&d));
        // Density matches the exact optimum here.
        let exact = exact_one_channel(&d).unwrap();
        assert!((dens.average_wait(&d) - exact.average_wait).abs() < 1e-12);
    }

    #[test]
    fn cyclic_input_is_an_error_not_a_panic() {
        let mut d = DependencyDag::new(w(&[1, 1]));
        d.add_edge(0, 1).unwrap();
        d.add_edge(1, 0).unwrap();
        assert_eq!(greedy_density(&d, 2).unwrap_err(), crate::DagError::Cyclic);
        assert_eq!(greedy_weight(&d, 2).unwrap_err(), crate::DagError::Cyclic);
    }

    #[test]
    fn both_heuristics_feasible_on_layered_dags() {
        for seed in 0..10u64 {
            let d = random_layered_dag(4, 6, 3, seed);
            for k in [1usize, 3] {
                greedy_density(&d, k).unwrap().validate(&d, k).unwrap();
                greedy_weight(&d, k).unwrap().validate(&d, k).unwrap();
            }
        }
    }

    #[test]
    fn heuristics_never_beat_exact() {
        for seed in 0..15u64 {
            let d = random_layered_dag(3, 3, 2, seed);
            for k in [1usize, 2] {
                let exact = exact_multi_channel(&d, k).unwrap();
                for s in [
                    greedy_density(&d, k).unwrap(),
                    greedy_weight(&d, k).unwrap(),
                ] {
                    assert!(
                        s.average_wait(&d) >= exact.average_wait - 1e-9,
                        "seed {seed} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn tree_special_case_matches_index_tree_machinery() {
        // The paper-example tree encoded as a DAG (index nodes weight 0)
        // must yield the same 2-channel optimum: 264/70.
        use bcast_index_tree::builders;
        let t = builders::paper_example();
        let mut d = DependencyDag::new(
            (0..t.len())
                .map(|i| t.weight(bcast_types::NodeId::from_index(i)))
                .collect(),
        );
        for i in 0..t.len() {
            let id = bcast_types::NodeId::from_index(i);
            if let Some(p) = t.parent(id) {
                d.add_edge(p.index(), i).unwrap();
            }
        }
        let r = exact_multi_channel(&d, 2).unwrap();
        assert!((r.average_wait - 264.0 / 70.0).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn density_feasible_and_bounded(
            layers in 1usize..4,
            width in 1usize..4,
            k in 1usize..3,
            seed in 0u64..200,
        ) {
            let d = random_layered_dag(layers, width, 2, seed);
            let s = greedy_density(&d, k).unwrap();
            s.validate(&d, k).unwrap();
            let exact = exact_multi_channel(&d, k).unwrap();
            prop_assert!(s.average_wait(&d) >= exact.average_wait - 1e-9);
            // And within 2× of optimal on these tiny instances.
            prop_assert!(s.average_wait(&d) <= exact.average_wait * 2.0 + 1e-9);
        }
    }
}
