//! Ablation A1: wall-clock cost of each exact search strategy.
//!
//! Compares, on trees where all strategies terminate quickly:
//! * full enumeration of the topological tree (Algorithm 1),
//! * best-first over the unpruned tree (paper's baseline search),
//! * best-first over the Appendix-pruned tree,
//! * the pruned best-first under the parallel work-stealing engine at
//!   2 and 4 worker threads,
//! * the §3.3 data-tree branch and bound (k = 1 only).
//!
//! Expected shape: pruned ≪ unpruned ≪ exhaustive, with the data tree the
//! fastest single-channel solver — the quantitative backing for §3.2/§3.3.
//! The thread axis shows parallel scaling on the heavy `balanced-d4`
//! instance (27 data nodes, ~67k expansions at k = 2); on the small trees it
//! mostly measures coordination overhead, which is the honest comparison.
//! Exhaustive and unpruned search are skipped on `balanced-d4` — they do
//! not finish in bench-able time there.

use bcast_core::best_first::{self, BestFirstOptions};
use bcast_core::{data_tree, topo_tree};
use bcast_index_tree::{builders, IndexTree};
use bcast_workloads::FrequencyDist;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::num::NonZeroUsize;

/// (name, tree, all-strategies?): the `balanced-d4` entry is pruned/parallel
/// only.
fn trees() -> Vec<(String, IndexTree, bool)> {
    let mut out = vec![("paper".to_string(), builders::paper_example(), true)];
    for m in [2usize, 3] {
        let weights = FrequencyDist::Uniform { lo: 1.0, hi: 100.0 }.sample(m * m, 99);
        out.push((
            format!("balanced-m{m}"),
            builders::full_balanced(m, 3, &weights).expect("valid shape"),
            true,
        ));
    }
    let weights = FrequencyDist::Uniform { lo: 1.0, hi: 100.0 }.sample(27, 99);
    out.push((
        "balanced-d4".to_string(),
        builders::full_balanced(3, 4, &weights).expect("valid shape"),
        false,
    ));
    out
}

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("search_strategies");
    for (name, tree, all_strategies) in trees() {
        let ks: &[usize] = if all_strategies { &[1, 2] } else { &[2] };
        for &k in ks {
            let tag = format!("{name}/k{k}");
            if all_strategies {
                g.bench_with_input(BenchmarkId::new("exhaustive", &tag), &tree, |b, t| {
                    b.iter(|| black_box(topo_tree::solve_exhaustive(t, k).data_wait))
                });
                g.bench_with_input(
                    BenchmarkId::new("best_first_unpruned", &tag),
                    &tree,
                    |b, t| {
                        let opts = BestFirstOptions {
                            pruned: false,
                            ..BestFirstOptions::default()
                        };
                        b.iter(|| black_box(best_first::search(t, k, &opts).unwrap().data_wait))
                    },
                );
            }
            g.bench_with_input(
                BenchmarkId::new("best_first_pruned", &tag),
                &tree,
                |b, t| {
                    let opts = BestFirstOptions::default();
                    b.iter(|| black_box(best_first::search(t, k, &opts).unwrap().data_wait))
                },
            );
            for threads in [2usize, 4] {
                g.bench_with_input(
                    BenchmarkId::new(format!("best_first_par{threads}"), &tag),
                    &tree,
                    |b, t| {
                        let opts = BestFirstOptions {
                            threads: NonZeroUsize::new(threads),
                            ..BestFirstOptions::default()
                        };
                        b.iter(|| black_box(best_first::search(t, k, &opts).unwrap().data_wait))
                    },
                );
            }
            if k == 1 && all_strategies {
                g.bench_with_input(BenchmarkId::new("data_tree", &tag), &tree, |b, t| {
                    b.iter(|| black_box(data_tree::search_optimal(t).data_wait))
                });
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
