//! Extension bench: DAG allocation throughput (future work 3). Measures
//! the density-greedy and weight-greedy rules on layered DAGs up to 10³
//! objects, plus the bitset reachability pass they depend on.

use bcast_dag::{greedy_density, greedy_weight, random_layered_dag};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_dag(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag_scale");
    for (layers, width) in [(5usize, 20usize), (10, 100)] {
        let n = layers * width;
        let dag = random_layered_dag(layers, width, 4, 77);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("reachable_aggregates", n), &dag, |b, d| {
            b.iter(|| black_box(d.reachable_aggregates().len()))
        });
        g.bench_with_input(BenchmarkId::new("greedy_density_k4", n), &dag, |b, d| {
            b.iter(|| black_box(greedy_density(d, 4).unwrap().len()))
        });
        g.bench_with_input(BenchmarkId::new("greedy_weight_k4", n), &dag, |b, d| {
            b.iter(|| black_box(greedy_weight(d, 4).unwrap().len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dag);
criterion_main!(benches);
