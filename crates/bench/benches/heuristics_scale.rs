//! Ablation A3: heuristic throughput on large trees — the regime §4.2
//! exists for. Measures the sorting heuristic (near-linear per the paper's
//! O(N log m) claim), the `1_To_k` distribution, and the node-combination
//! shrink heuristic, on Zipf-weighted random trees of 10³–10⁴ data nodes.

use bcast_core::heuristics::{one_to_k, shrink, sorting};
use bcast_workloads::{random_tree, FrequencyDist, RandomTreeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_heuristics(c: &mut Criterion) {
    let mut g = c.benchmark_group("heuristics_scale");
    for n in [1_000usize, 10_000] {
        let tree = random_tree(
            &RandomTreeConfig {
                data_nodes: n,
                max_fanout: 6,
                weights: FrequencyDist::Zipf {
                    theta: 0.9,
                    scale: 1000.0,
                },
            },
            42,
        );
        g.throughput(Throughput::Elements(tree.len() as u64));
        g.bench_with_input(BenchmarkId::new("sorting_k1", n), &tree, |b, t| {
            b.iter(|| black_box(sorting::sorting_schedule(t, 1).len()))
        });
        g.bench_with_input(BenchmarkId::new("sorting_k4", n), &tree, |b, t| {
            b.iter(|| black_box(sorting::sorting_schedule(t, 4).len()))
        });
        let order = sorting::sorted_preorder(&tree);
        g.bench_with_input(
            BenchmarkId::new("one_to_k_distribute", n),
            &(&tree, &order),
            |b, (t, o)| b.iter(|| black_box(one_to_k::distribute(t, o, 4).len())),
        );
        g.bench_with_input(BenchmarkId::new("shrink_combine_k4", n), &tree, |b, t| {
            b.iter(|| black_box(shrink::combine_solve(t, 4, 12).data_wait))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
