//! Ablation A4: broadcast-substrate throughput — program materialization
//! (pointer computation) and client-access simulation, over trees of
//! increasing size. Keeps the substrate honest: the simulator must stay
//! cheap enough to cross-validate every experiment's analytic numbers.

use bcast_channel::{simulator, BroadcastProgram};
use bcast_core::heuristics::sorting;
use bcast_index_tree::{knary, IndexTree};
use bcast_types::Slot;
use bcast_workloads::FrequencyDist;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn setup(n: usize) -> (IndexTree, bcast_channel::Allocation) {
    let weights = FrequencyDist::Zipf {
        theta: 1.0,
        scale: 1000.0,
    }
    .sample(n, 8);
    let tree = knary::build_weight_balanced(&weights, 8).expect("non-empty");
    let alloc = sorting::sorting_schedule(&tree, 4)
        .into_allocation(&tree, 4)
        .expect("feasible");
    (tree, alloc)
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    for n in [256usize, 4096] {
        let (tree, alloc) = setup(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::new("program_build", n),
            &(&tree, &alloc),
            |b, (t, a)| b.iter(|| black_box(BroadcastProgram::build(a, t).unwrap().cycle_len())),
        );
        let program = BroadcastProgram::build(&alloc, &tree).expect("valid");
        g.bench_with_input(
            BenchmarkId::new("single_access", n),
            &(&program, &tree),
            |b, (p, t)| {
                let target = *t.data_nodes().last().expect("non-empty");
                b.iter(|| black_box(simulator::access(p, t, target, Slot::FIRST).unwrap()))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("aggregate_metrics", n),
            &(&program, &tree),
            |b, (p, t)| {
                b.iter(|| black_box(simulator::aggregate_metrics(p, t).unwrap().avg_data_wait))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
