//! Ablation A4: broadcast-substrate throughput — program materialization
//! (pointer computation), route-table compilation, and client-access
//! serving, over trees of increasing size. Two axes added in PR 3 keep the
//! compile-then-serve layer honest:
//!
//! * **batched vs scalar** — the same request batch through the scalar
//!   pointer-walking `simulator::access` loop and through
//!   `CompiledProgram::serve_batch`;
//! * **threads** — the sharded serving engine at 1/2/4 threads (on a
//!   single-core container the >1 rows measure coordination overhead).

use bcast_channel::{simulator, BroadcastProgram, CompiledProgram, ServeOptions};
use bcast_core::heuristics::sorting;
use bcast_index_tree::{knary, IndexTree};
use bcast_types::{NodeId, Slot};
use bcast_workloads::{FrequencyDist, RequestStream};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn setup(n: usize) -> (IndexTree, bcast_channel::Allocation) {
    let weights = FrequencyDist::Zipf {
        theta: 1.0,
        scale: 1000.0,
    }
    .sample(n, 8);
    let tree = knary::build_weight_balanced(&weights, 8).expect("non-empty");
    let alloc = sorting::sorting_schedule(&tree, 4)
        .into_allocation(&tree, 4)
        .expect("feasible");
    (tree, alloc)
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    for n in [256usize, 4096] {
        let (tree, alloc) = setup(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::new("program_build", n),
            &(&tree, &alloc),
            |b, (t, a)| b.iter(|| black_box(BroadcastProgram::build(a, t).unwrap().cycle_len())),
        );
        let program = BroadcastProgram::build(&alloc, &tree).expect("valid");
        g.bench_with_input(
            BenchmarkId::new("compile_route_tables", n),
            &(&program, &tree),
            |b, (p, t)| {
                b.iter(|| black_box(CompiledProgram::compile(p, t).unwrap().num_data_nodes()))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("single_access", n),
            &(&program, &tree),
            |b, (p, t)| {
                let target = *t.data_nodes().last().expect("non-empty");
                b.iter(|| black_box(simulator::access(p, t, target, Slot::FIRST).unwrap()))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("aggregate_metrics", n),
            &(&program, &tree),
            |b, (p, t)| {
                b.iter(|| black_box(simulator::aggregate_metrics(p, t).unwrap().avg_data_wait))
            },
        );
    }
    g.finish();
}

/// Batched-vs-scalar and thread axes over a fixed 16k-request Zipf batch.
fn bench_serving(c: &mut Criterion) {
    const REQUESTS: usize = 16_384;
    let mut g = c.benchmark_group("serving");
    for n in [256usize, 4096] {
        let (tree, alloc) = setup(n);
        let program = BroadcastProgram::build(&alloc, &tree).expect("valid");
        let compiled = CompiledProgram::compile(&program, &tree).expect("routable");
        let data = tree.data_nodes();
        let targets: Vec<NodeId> = RequestStream::zipf(data.len(), 1.0, 77)
            .take(REQUESTS)
            .map(|i| data[i])
            .collect();
        let opts = ServeOptions {
            threads: 1,
            seed: 99,
            ..ServeOptions::default()
        };
        g.throughput(Throughput::Elements(REQUESTS as u64));
        g.bench_with_input(
            BenchmarkId::new("scalar_access_loop", n),
            &(&program, &tree, &targets),
            |b, (p, t, targets)| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for (i, &target) in targets.iter().enumerate() {
                        let tune = opts.tune_in(i as u64, p.cycle_len());
                        acc +=
                            u64::from(simulator::access(p, t, target, tune).unwrap().access_time());
                    }
                    black_box(acc)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("batched_compiled", n),
            &(&compiled, &targets),
            |b, (c, targets)| {
                b.iter(|| black_box(c.serve_batch(targets, &opts).unwrap().mean_access_time))
            },
        );
        for threads in [1usize, 2, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("batched_threads_n{n}"), threads),
                &(&compiled, &targets),
                |b, (c, targets)| {
                    let t_opts = ServeOptions { threads, ..opts };
                    b.iter(|| black_box(c.serve_batch(targets, &t_opts).unwrap().mean_access_time))
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_simulator, bench_serving);
criterion_main!(benches);
