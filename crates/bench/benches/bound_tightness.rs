//! Ablation A2: the paper's `U(X)` bound vs the capacity-aware packed
//! bound in the best-first search. The packed bound dominates pointwise
//! (proved in `bcast_core::bound`), so it expands no more states; this
//! bench shows whether the tighter arithmetic pays for itself in wall
//! time across tree shapes and channel counts.

use bcast_core::best_first::{self, BestFirstOptions};
use bcast_core::bound::BoundKind;
use bcast_index_tree::builders;
use bcast_workloads::{random_tree, FrequencyDist, RandomTreeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_bounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("bound_tightness");
    let balanced = {
        let weights = FrequencyDist::Uniform { lo: 1.0, hi: 100.0 }.sample(9, 5);
        builders::full_balanced(3, 3, &weights).expect("valid shape")
    };
    let random = random_tree(
        &RandomTreeConfig {
            data_nodes: 8,
            max_fanout: 3,
            weights: FrequencyDist::Zipf {
                theta: 0.8,
                scale: 100.0,
            },
        },
        11,
    );
    for (name, tree) in [("balanced-m3", balanced), ("random-n8", random)] {
        for k in [2usize, 3] {
            for (bname, bound) in [("paper", BoundKind::Paper), ("packed", BoundKind::Packed)] {
                let tag = format!("{name}/k{k}");
                g.bench_with_input(BenchmarkId::new(bname, &tag), &tree, |b, t| {
                    let opts = BestFirstOptions {
                        bound,
                        ..BestFirstOptions::default()
                    };
                    b.iter(|| black_box(best_first::search(t, k, &opts).unwrap().data_wait))
                });
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
