//! Extension experiment (paper §5, future work 3 / \[CHK99\]): allocation
//! under arbitrary DAG dependencies. Compares, over random layered DAGs,
//! the exact optimum (small instances), the density-greedy rule carried
//! over from this workspace's index-tree techniques, and the naive
//! weight-greedy rule — showing that "seeing through light gate objects"
//! is what matters on DAGs, exactly as Property 2 predicted for trees.
//!
//! ```text
//! cargo run --release -p bcast-bench --bin dag_alloc [seed]
//! ```

use bcast_bench::{mean_std, render_table};
use bcast_dag::{exact_multi_channel, greedy_density, greedy_weight, random_layered_dag};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(23);
    const REPS: u64 = 20;
    println!("DAG allocation — random layered DAGs, {REPS} instances per row, seed {seed}\n");

    let configs: [(usize, usize, usize, usize, bool); 4] = [
        // layers, width, max_deps, k, exact feasible?
        (3, 3, 2, 1, true),
        (3, 3, 2, 2, true),
        (4, 4, 3, 2, true),
        (8, 25, 4, 4, false),
    ];
    let mut rows = Vec::new();
    for (layers, width, deps, k, run_exact) in configs {
        let mut gaps_density = Vec::new();
        let mut gaps_weight = Vec::new();
        let mut dens_vs_wgt = Vec::new();
        for r in 0..REPS {
            let dag = random_layered_dag(layers, width, deps, seed ^ (r << 8));
            let dens = greedy_density(&dag, k)
                .expect("valid DAG")
                .average_wait(&dag);
            let wgt = greedy_weight(&dag, k)
                .expect("valid DAG")
                .average_wait(&dag);
            dens_vs_wgt.push(100.0 * (wgt - dens) / wgt);
            if run_exact {
                let exact = exact_multi_channel(&dag, k)
                    .expect("valid DAG")
                    .average_wait;
                gaps_density.push(100.0 * (dens - exact) / exact);
                gaps_weight.push(100.0 * (wgt - exact) / exact);
            }
        }
        let fmt_gap = |xs: &[f64]| {
            if xs.is_empty() {
                "N/A".to_string()
            } else {
                let (m, s) = mean_std(xs);
                format!("{m:.1}% ± {s:.1}")
            }
        };
        let (dm, _) = mean_std(&dens_vs_wgt);
        rows.push(vec![
            format!("{layers}x{width} deps<={deps} k={k}"),
            fmt_gap(&gaps_density),
            fmt_gap(&gaps_weight),
            format!("{dm:.1}%"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "instance",
                "density-greedy vs exact",
                "weight-greedy vs exact",
                "density beats weight by",
            ],
            &rows
        )
    );
    println!("\nShape check: the density rule (reachable weight / reachable count,");
    println!("generalizing the paper's subtree W/N comparator) stays within a few");
    println!("percent of exact and dominates the naive most-requested-first rule.");
}
