//! Extension experiment (paper §5, future work 1): online adaptation to
//! changing access patterns. Replays an identical drifting request stream
//! against three policies — static (paper's offline result, never
//! rebuilt), adaptive (EMA estimates + periodic rebuild), and an oracle
//! rebuilt from true instantaneous popularity — and reports mean request
//! waits per drift regime.
//!
//! ```text
//! cargo run --release -p bcast-bench --bin adaptive_drift [seed]
//! ```

use bcast_adaptive::{controller, DriftKind, DriftingWorkload, RebuildPolicy};
use bcast_bench::render_table;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(17);
    const ITEMS: usize = 80;
    const EPOCHS: u64 = 150;
    const REQS: usize = 800;
    println!(
        "Adaptive broadcasting under drift — {ITEMS} items, {EPOCHS} epochs × {REQS} \
         requests, Zipf(1.1), 2 channels, seed {seed}\n"
    );

    let regimes: [(&str, DriftKind, u64); 4] = [
        ("stationary", DriftKind::Rotate { step: 0 }, 1),
        ("slow rotate", DriftKind::Rotate { step: 5 }, 10),
        ("fast rotate", DriftKind::Rotate { step: 11 }, 3),
        ("hotspot jumps", DriftKind::HotspotJump, 12),
    ];

    let mut rows = Vec::new();
    for (name, kind, period) in regimes {
        let mut w = DriftingWorkload::new(ITEMS, 1.1, kind, period, seed);
        let reports = controller::run_comparison(
            &mut w,
            EPOCHS,
            REQS,
            RebuildPolicy {
                rebuild_every: Some(1),
                alpha: 0.6,
                channels: 2,
                ..RebuildPolicy::default()
            },
        );
        let (s, a, o) = (
            reports[0].mean_wait,
            reports[1].mean_wait,
            reports[2].mean_wait,
        );
        rows.push(vec![
            name.to_string(),
            format!("{s:.2}"),
            format!("{a:.2}"),
            format!("{o:.2}"),
            format!("{:.1}%", 100.0 * (s - a) / s),
            format!("{:.1}%", 100.0 * (a - o) / o.max(1e-9)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "drift regime",
                "static",
                "adaptive",
                "oracle",
                "adaptive gain",
                "gap to oracle",
            ],
            &rows
        )
    );
    println!("\nShape check: under slow drift or hotspot jumps the adaptive policy");
    println!("recovers most of the gap between the frozen offline allocation and the");
    println!("clairvoyant oracle, at (almost) no cost on stationary load. Fast drift");
    println!("whose period approaches the rebuild period exposes adaptation lag —");
    println!("estimates chase a distribution that has already moved — which is why");
    println!("the paper calls for an *efficient on-line* algorithm when \"the change");
    println!("is frequent\" (§5).");
}
