//! Extension experiment: **tail latency** of broadcast layouts. The paper
//! optimizes the *mean* data wait (formula 1); real mobile users also feel
//! the tail. This experiment serves full access traces (weighted target,
//! uniform tune-in) through the compiled route tables and reports
//! p50/p90/p99/max per layout, showing that the optimal/heuristic layouts
//! improve the mean mostly by pulling hot items forward — while the tail is
//! governed by the cycle length, which every no-replication layout shares.
//!
//! Since PR 3 the requests go through `CompiledProgram::serve_batch`
//! (O(1) table reads + streaming histogram) instead of per-request pointer
//! walks, so the sample count is one million per layout and the table also
//! reports the serving throughput.
//!
//! ```text
//! cargo run --release -p bcast-bench --bin latency_tails [seed] [items] [threads]
//! ```

use bcast_bench::render_table;
use bcast_channel::{BatchMetrics, BroadcastProgram, CompiledProgram, ServeOptions};
use bcast_core::heuristics::sorting;
use bcast_core::{baselines, Schedule};
use bcast_index_tree::{knary, IndexTree};
use bcast_types::NodeId;
use bcast_workloads::{FrequencyDist, RequestStream};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(41);
    let items: usize = args
        .next()
        .map(|s| s.parse().expect("items must be a usize"))
        .unwrap_or(300);
    let threads: usize = args
        .next()
        .map(|s| s.parse().expect("threads must be a usize"))
        .unwrap_or(1);
    const CHANNELS: usize = 3;
    const REQUESTS: usize = 1_000_000;
    let weights = FrequencyDist::Zipf {
        theta: 1.0,
        scale: 1000.0,
    }
    .sample(items, seed);
    let tree = knary::build_weight_balanced(&weights, 8).expect("non-empty");
    println!(
        "Access-latency tails — {items} items, Zipf(1.0), {CHANNELS} channels, \
         {REQUESTS} batched requests, seed {seed}, {threads} thread(s)\n"
    );

    // One shared request stream per run: targets drawn proportionally to
    // access weight, identical across layouts.
    let data = tree.data_nodes();
    let target_weights: Vec<f64> = data.iter().map(|&d| tree.weight(d).get()).collect();
    let targets: Vec<NodeId> = RequestStream::from_weights(&target_weights, seed ^ 0x7A11)
        .take(REQUESTS)
        .map(|i| data[i])
        .collect();

    let layouts: Vec<(&str, Schedule)> = vec![
        (
            "frontier greedy",
            baselines::greedy_frontier(&tree, CHANNELS),
        ),
        (
            "sorting heuristic",
            sorting::sorting_schedule(&tree, CHANNELS),
        ),
        (
            "naive preorder",
            baselines::preorder_schedule(&tree, CHANNELS),
        ),
        (
            "random feasible",
            baselines::random_feasible(&tree, CHANNELS, seed),
        ),
    ];

    let mut rows = Vec::new();
    for (name, schedule) in &layouts {
        let (m, rps) = measure(&tree, schedule, CHANNELS, &targets, seed, threads);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", m.mean_access_time),
            m.histogram.percentile(0.50).to_string(),
            m.histogram.percentile(0.90).to_string(),
            m.histogram.percentile(0.99).to_string(),
            m.histogram.max().to_string(),
            format!("{:.1}", rps / 1e6),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["layout", "mean", "p50", "p90", "p99", "max", "Mreq/s"],
            &rows
        )
    );
    println!("\nShape check: frequency-aware layouts compress the mean and median");
    println!("(hot items early) while p99/max stay near the cycle length for every");
    println!("layout — the tail argument for the paper's future-work replication,");
    println!("quantified by the replication_curve experiment.");
}

fn measure(
    tree: &IndexTree,
    schedule: &Schedule,
    k: usize,
    targets: &[NodeId],
    seed: u64,
    threads: usize,
) -> (BatchMetrics, f64) {
    let alloc = schedule
        .into_allocation(tree, k)
        .expect("layouts are feasible");
    let program = BroadcastProgram::build(&alloc, tree).expect("valid program");
    let compiled = CompiledProgram::compile(&program, tree).expect("all targets routable");
    let opts = ServeOptions {
        threads,
        seed: seed ^ 0x5A5A,
        ..ServeOptions::default()
    };
    let t0 = Instant::now();
    let metrics = compiled
        .serve_batch(targets, &opts)
        .expect("all targets reachable");
    let rps = targets.len() as f64 / t0.elapsed().as_secs_f64();
    (metrics, rps)
}
