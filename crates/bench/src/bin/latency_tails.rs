//! Extension experiment: **tail latency** of broadcast layouts. The paper
//! optimizes the *mean* data wait (formula 1); real mobile users also feel
//! the tail. This experiment samples full access traces (weighted target,
//! uniform tune-in) and reports p50/p90/p99/max per layout, showing that
//! the optimal/heuristic layouts improve the mean mostly by pulling hot
//! items forward — while the tail is governed by the cycle length, which
//! every no-replication layout shares.
//!
//! ```text
//! cargo run --release -p bcast-bench --bin latency_tails [seed] [items]
//! ```

use bcast_bench::render_table;
use bcast_channel::{simulator, BroadcastProgram};
use bcast_core::heuristics::sorting;
use bcast_core::{baselines, Schedule};
use bcast_index_tree::{knary, IndexTree};
use bcast_workloads::FrequencyDist;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(41);
    let items: usize = args
        .next()
        .map(|s| s.parse().expect("items must be a usize"))
        .unwrap_or(300);
    const CHANNELS: usize = 3;
    const REQUESTS: usize = 50_000;
    let weights = FrequencyDist::Zipf {
        theta: 1.0,
        scale: 1000.0,
    }
    .sample(items, seed);
    let tree = knary::build_weight_balanced(&weights, 8).expect("non-empty");
    println!(
        "Access-latency tails — {items} items, Zipf(1.0), {CHANNELS} channels, \
         {REQUESTS} sampled requests, seed {seed}\n"
    );

    let layouts: Vec<(&str, Schedule)> = vec![
        (
            "frontier greedy",
            baselines::greedy_frontier(&tree, CHANNELS),
        ),
        (
            "sorting heuristic",
            sorting::sorting_schedule(&tree, CHANNELS),
        ),
        (
            "naive preorder",
            baselines::preorder_schedule(&tree, CHANNELS),
        ),
        (
            "random feasible",
            baselines::random_feasible(&tree, CHANNELS, seed),
        ),
    ];

    let mut rows = Vec::new();
    for (name, schedule) in &layouts {
        let d = measure(&tree, schedule, CHANNELS, REQUESTS, seed);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", d.mean),
            d.p50.to_string(),
            d.p90.to_string(),
            d.p99.to_string(),
            d.max.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["layout", "mean", "p50", "p90", "p99", "max"], &rows)
    );
    println!("\nShape check: frequency-aware layouts compress the mean and median");
    println!("(hot items early) while p99/max stay near the cycle length for every");
    println!("layout — the tail argument for the paper's future-work replication,");
    println!("quantified by the replication_curve experiment.");
}

fn measure(
    tree: &IndexTree,
    schedule: &Schedule,
    k: usize,
    requests: usize,
    seed: u64,
) -> simulator::LatencyDistribution {
    let alloc = schedule
        .into_allocation(tree, k)
        .expect("layouts are feasible");
    let program = BroadcastProgram::build(&alloc, tree).expect("valid program");
    simulator::latency_distribution(&program, tree, requests, seed ^ 0x5A5A)
        .expect("all targets reachable")
}
