//! Extension experiment A3: average data wait vs channel count for every
//! method in the library, on a moderate tree where the optimum is still
//! computable. Shows the §1.1 story quantitatively: the optimal allocator
//! exploits *any* number of channels (flexibility), with diminishing
//! returns once `k` approaches the widest tree level (Corollary 1), while
//! the \[SV96\] scheme is pinned to `depth` channels.
//!
//! ```text
//! cargo run --release -p bcast-bench --bin channel_sweep [seed]
//! ```

use bcast_bench::render_table;
use bcast_channel::{simulator, BroadcastProgram};
use bcast_core::baselines;
use bcast_core::heuristics::{shrink, sorting};
use bcast_core::{find_optimal, OptimalOptions};
use bcast_index_tree::builders;
use bcast_workloads::FrequencyDist;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(7);
    // 3-ary, depth 3: 9 data nodes, 13 nodes, widest level 9.
    let weights = FrequencyDist::Zipf {
        theta: 0.9,
        scale: 100.0,
    }
    .sample(9, seed);
    let tree = builders::full_balanced(3, 3, &weights).expect("valid shape");
    println!("Channel sweep — full balanced 3-ary depth-3 tree, Zipf(0.9) weights, seed {seed}");
    println!(
        "widest level = {} (Corollary-1 threshold)\n",
        tree.max_level_width()
    );

    let mut rows = Vec::new();
    for k in 1..=10usize {
        let optimal = find_optimal(&tree, k, &OptimalOptions::default()).expect("no limit");
        let sorted = sorting::sorting_schedule(&tree, k);
        let combined = shrink::combine_solve(&tree, k, 8);
        let frontier = baselines::greedy_frontier(&tree, k);
        let preorder = baselines::preorder_schedule(&tree, k);
        let random = baselines::random_feasible(&tree, k, seed ^ 0xABCD);
        // End-to-end cross-check: materialize the optimal allocation and
        // replay it through the compiled route tables; the simulated mean
        // must reproduce the analytic column exactly.
        let alloc = optimal
            .schedule
            .into_allocation(&tree, k)
            .expect("optimal schedules are feasible");
        let program = BroadcastProgram::build(&alloc, &tree).expect("valid program");
        let sim = simulator::aggregate_metrics(&program, &tree).expect("all targets routable");
        assert!(
            (sim.avg_data_wait - optimal.data_wait).abs() < 1e-9,
            "k = {k}: simulated {} vs analytic {}",
            sim.avg_data_wait,
            optimal.data_wait
        );
        rows.push(vec![
            k.to_string(),
            format!("{:.3}", optimal.data_wait),
            format!("{:.3}", sim.avg_data_wait),
            format!("{:?}", optimal.strategy_used),
            format!("{:.3}", sorted.average_data_wait(&tree)),
            format!("{:.3}", combined.data_wait),
            format!("{:.3}", frontier.average_data_wait(&tree)),
            format!("{:.3}", preorder.average_data_wait(&tree)),
            format!("{:.3}", random.average_data_wait(&tree)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "k", "Optimal", "sim", "strategy", "Sorting", "Shrink", "Frontier", "Preorder",
                "Random"
            ],
            &rows
        )
    );

    let sv = baselines::sv96(&tree);
    println!(
        "[SV96] per-level scheme: needs exactly {} channels, expected access \
         {:.3} slots, channel utilization {:.0}%",
        sv.channels_needed,
        sv.expected_access_time,
        100.0 * sv.utilization
    );
    println!("\nShape check: Optimal is monotone non-increasing in k and flattens at");
    println!("k >= widest level; heuristics sit between Optimal and the naive baselines.");
}
