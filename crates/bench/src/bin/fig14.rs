//! Regenerates **Fig. 14** of the paper: data wait of the *Index Tree
//! Sorting* heuristic vs the *Optimal* allocation, on a full balanced
//! 4-ary tree of depth 3 (16 data nodes), one broadcast channel, access
//! frequencies drawn from `N(µ = 100, σ)` for `σ ∈ {10, 20, 30, 40}`.
//!
//! The paper plots a single random draw per σ; we average over many seeds
//! and report the mean ± sd of both series plus the heuristic's optimality
//! gap, which is the robust version of the figure's message: *Sorting
//! performs near Optimal when frequencies are nearly uniform (small σ) and
//! drifts away as skew grows*.
//!
//! ```text
//! cargo run --release -p bcast-bench --bin fig14 [seed] [reps]
//! ```

use bcast_bench::{mean_std, render_table};
use bcast_core::heuristics::sorting;
use bcast_core::{find_optimal, OptimalOptions};
use bcast_index_tree::builders;
use bcast_workloads::{rng::sub_seed, FrequencyDist};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(14);
    let reps: u64 = args
        .next()
        .map(|s| s.parse().expect("reps must be a u64"))
        .unwrap_or(30);
    const M: usize = 4;
    println!("Fig. 14 — Index Tree Sorting vs Optimal");
    println!("full balanced {M}-ary tree, depth 3, one channel, N(100, sigma)");
    println!("{reps} repetitions per sigma, base seed {seed}\n");

    let mut rows = Vec::new();
    for (i, sigma) in [10.0, 20.0, 30.0, 40.0].into_iter().enumerate() {
        let mut opt = Vec::new();
        let mut sort = Vec::new();
        for r in 0..reps {
            let s = sub_seed(seed, (i as u64) << 32 | r);
            let weights = FrequencyDist::paper_fig14(sigma).sample(M * M, s);
            let tree = builders::full_balanced(M, 3, &weights).expect("valid shape");
            let optimal =
                find_optimal(&tree, 1, &OptimalOptions::default()).expect("no node limit set");
            let heuristic = sorting::sorting_schedule(&tree, 1);
            opt.push(optimal.data_wait);
            sort.push(heuristic.average_data_wait(&tree));
        }
        let (om, os) = mean_std(&opt);
        let (sm, ss) = mean_std(&sort);
        rows.push(vec![
            format!("{sigma:.0}"),
            format!("{om:.3} ± {os:.3}"),
            format!("{sm:.3} ± {ss:.3}"),
            format!("{:+.2}%", 100.0 * (sm - om) / om),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["sigma", "Optimal (buckets)", "Sorting (buckets)", "gap"],
            &rows
        )
    );
    println!("Paper's Fig. 14 (single draw, m = 4, µ = 100): both series fall in");
    println!("the 9.5–12 bucket band, Sorting tracking Optimal closely at small");
    println!("sigma and separating slightly as sigma grows.");
}
