//! Extension experiment (paper §5, future work 2): the index-replication
//! trade-off curve. Replicating the root bucket `r` times per cycle cuts
//! the probe wait ~`1/r` while stretching the cycle (and the data wait);
//! the expected access time is U-shaped in `r` with an interior optimum —
//! the quantitative version of "index nodes should be properly replicated".
//!
//! ```text
//! cargo run --release -p bcast-bench --bin replication_curve [seed] [items]
//! ```

use bcast_bench::render_table;
use bcast_core::heuristics::sorting;
use bcast_core::replication;
use bcast_index_tree::knary;
use bcast_workloads::FrequencyDist;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(31);
    let items: usize = args
        .next()
        .map(|s| s.parse().expect("items must be a usize"))
        .unwrap_or(150);
    let weights = FrequencyDist::Zipf {
        theta: 0.9,
        scale: 100.0,
    }
    .sample(items, seed);
    let tree = knary::build_weight_balanced(&weights, 4).expect("non-empty");
    let schedule = sorting::sorting_schedule(&tree, 1);
    println!(
        "Root-replication sweep — {items} items, 1 channel, base cycle {} slots, seed {seed}\n",
        schedule.len()
    );

    let sweep = replication::sweep(&schedule, &tree, 24);
    let best = sweep
        .iter()
        .min_by(|a, b| a.expected_access_time.total_cmp(&b.expected_access_time))
        .expect("non-empty sweep");
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .filter(|a| a.replicas <= 12 || a.replicas % 4 == 0)
        .map(|a| {
            vec![
                a.replicas.to_string(),
                a.cycle_len.to_string(),
                format!("{:.2}", a.expected_probe_wait),
                format!("{:.2}", a.expected_data_wait),
                format!("{:.2}", a.expected_access_time),
                if a.replicas == best.replicas {
                    "<- best".into()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "replicas",
                "cycle",
                "probe wait",
                "data wait",
                "access time",
                ""
            ],
            &rows
        )
    );
    println!(
        "\nOptimal replication factor {}: access {:.2} slots vs {:.2} unreplicated \
         ({:.1}% better).",
        best.replicas,
        best.expected_access_time,
        sweep[0].expected_access_time,
        100.0 * (sweep[0].expected_access_time - best.expected_access_time)
            / sweep[0].expected_access_time
    );
}
