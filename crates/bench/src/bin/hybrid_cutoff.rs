//! Extension experiment (paper §1, category 1): hybrid push–pull — *which*
//! items to broadcast. The top-`c` items by popularity go on air (real
//! index tree + frontier-greedy allocation, 2 channels); the cold tail is
//! served on-demand at a fixed up-link latency. Sweeping `c` traces the
//! classic U-curve with an interior optimum: broadcast too little and the
//! up-link saturates the cost, broadcast everything and the cycle bloat
//! punishes every request.
//!
//! ```text
//! cargo run --release -p bcast-bench --bin hybrid_cutoff [seed] [items] [od_latency]
//! ```

use bcast_adaptive::hotset;
use bcast_bench::render_table;
use bcast_core::baselines;
use bcast_index_tree::knary;
use bcast_types::Weight;
use bcast_workloads::FrequencyDist;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(6);
    let items: usize = args
        .next()
        .map(|s| s.parse().expect("items must be a usize"))
        .unwrap_or(400);
    let od_latency: f64 = args
        .next()
        .map(|s| s.parse().expect("latency must be an f64"))
        .unwrap_or(120.0);
    const CHANNELS: usize = 2;
    let weights = FrequencyDist::Zipf {
        theta: 1.0,
        scale: 1000.0,
    }
    .sample(items, seed);

    println!(
        "Hybrid push–pull cutoff — {items} items, Zipf(1.0), {CHANNELS} channels, \
         on-demand latency {od_latency} slots, seed {seed}\n"
    );

    let candidates: Vec<usize> = (1..=10).map(|i| (items * i / 10).max(1)).collect();
    let (points, best) = hotset::optimal_capacity(&weights, &candidates, od_latency, |hot_items| {
        // Build a real broadcast program over just the hot items.
        let hot_weights: Vec<Weight> = hot_items.iter().map(|&i| weights[i]).collect();
        let tree = knary::build_weight_balanced(&hot_weights, 8).expect("non-empty");
        let schedule = baselines::greedy_frontier(&tree, CHANNELS);
        // Wait per hot item: slot of its data node. The builder labels
        // data nodes D<j> for the j-th hot weight.
        let mut wait = vec![0.0f64; hot_items.len()];
        for (offset, members) in schedule.slots().iter().enumerate() {
            for &n in members {
                if tree.is_data(n) {
                    let j: usize = tree.label(n)[1..].parse().expect("D<j> labels");
                    wait[j] = (offset + 1) as f64;
                }
            }
        }
        let cycle = schedule.len();
        (wait, cycle)
    });

    let rows: Vec<Vec<String>> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            vec![
                format!("{}%", 100 * p.capacity / items),
                p.capacity.to_string(),
                p.cycle_len.to_string(),
                format!("{:.2}", p.cost),
                if i == best {
                    "<- best".into()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "broadcast share",
                "items on air",
                "cycle",
                "expected cost",
                ""
            ],
            &rows
        )
    );
    println!("\nShape check: the cost curve is U-shaped in the broadcast share; the");
    println!("optimum moves toward 100% as the on-demand latency grows (rerun with a");
    println!("larger third argument to watch it shift).");
}
