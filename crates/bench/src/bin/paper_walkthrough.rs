//! Replays every worked example of the paper on the Fig. 1(a) index tree:
//! the Fig. 2 allocations (6.01 and 3.88 buckets), the pruned search
//! spaces, the true optima for k = 1..4 channels, and the Fig. 13 sorted
//! tree — a self-checking tour of the whole library.
//!
//! ```text
//! cargo run --release -p bcast-bench --bin paper_walkthrough
//! ```

use bcast_channel::{cost, simulator, Allocation, BroadcastProgram};
use bcast_core::data_tree::{count_paths, PruneLevel};
use bcast_core::heuristics::sorting;
use bcast_core::{find_optimal, topo_tree, OptimalOptions};
use bcast_index_tree::builders;

fn main() {
    let tree = builders::paper_example();
    println!("Fig. 1(a) index tree:\n{}", tree.render());

    // ---- Fig. 2(a): one channel. ----
    let seq: Vec<_> = ["1", "3", "E", "4", "C", "D", "2", "A", "B"]
        .iter()
        .map(|l| tree.find_by_label(l).expect("label exists"))
        .collect();
    let fig2a = Allocation::from_sequence(&seq, &tree).expect("feasible");
    println!("Fig. 2(a), one channel:");
    print!("{}", fig2a.render(&tree));
    println!(
        "  data wait = {:.2} buckets (paper: 6.01)\n",
        cost::average_data_wait(&fig2a, &tree)
    );

    // ---- Fig. 2(b): two channels. ----
    let slots: Vec<Vec<_>> = [
        vec!["1"],
        vec!["2", "3"],
        vec!["A", "B"],
        vec!["4", "E"],
        vec!["C", "D"],
    ]
    .iter()
    .map(|labels| {
        labels
            .iter()
            .map(|l| tree.find_by_label(l).expect("label exists"))
            .collect()
    })
    .collect();
    let fig2b = Allocation::from_slot_schedule(&slots, &tree, 2).expect("feasible");
    println!("Fig. 2(b), two channels:");
    print!("{}", fig2b.render(&tree));
    println!(
        "  data wait = {:.2} buckets (paper: 3.88)\n",
        cost::average_data_wait(&fig2b, &tree)
    );

    // ---- Search-space sizes. ----
    println!("Solution-space sizes for this tree:");
    println!(
        "  unpruned 1-channel topological tree: {} paths (Fig. 6)",
        topo_tree::count_paths(&tree, 1)
    );
    println!(
        "  data tree, Property 2:       {} paths",
        count_paths(&tree, PruneLevel::P2)
    );
    println!(
        "  data tree, Properties 1,2:   {} paths",
        count_paths(&tree, PruneLevel::P12)
    );
    println!(
        "  data tree, Properties 1,2,4: {} paths (paper Fig. 12: 3)\n",
        count_paths(&tree, PruneLevel::P124)
    );

    // ---- Optima per channel count. ----
    println!("Optimal data wait per channel count:");
    for k in 1..=4usize {
        let r = find_optimal(&tree, k, &OptimalOptions::default()).expect("no limit");
        let alloc = r
            .schedule
            .into_allocation(&tree, k)
            .expect("optimal schedules are feasible");
        println!(
            "  k = {k}: {:.4} buckets via {:?} ({} states)",
            r.data_wait, r.strategy_used, r.nodes_expanded
        );
        if k == 2 {
            print!("{}", alloc.render(&tree));
        }
        // End-to-end cross-check through the client simulator.
        let program = BroadcastProgram::build(&alloc, &tree).expect("valid program");
        let sim = simulator::aggregate_metrics(&program, &tree).expect("all reachable");
        assert!(
            (sim.avg_data_wait - r.data_wait).abs() < 1e-9,
            "simulator disagrees with the analytic model"
        );
    }

    // ---- Fig. 13: sorted tree. ----
    let order = sorting::sorted_preorder(&tree);
    let labels: Vec<String> = order.iter().map(|&n| tree.label(n)).collect();
    println!("\nFig. 13 sorted preorder: {}", labels.join(" "));
    let s1 = sorting::sorting_schedule(&tree, 1);
    println!(
        "  sorting heuristic, 1 channel: {:.4} buckets",
        s1.average_data_wait(&tree)
    );
    let s2 = sorting::sorting_schedule(&tree, 2);
    println!(
        "  sorting heuristic, 2 channels: {:.4} buckets (optimal: {:.4})",
        s2.average_data_wait(&tree),
        264.0 / 70.0
    );
    println!("\nAll figures agree with the paper (values asserted in the test suite).");
}
