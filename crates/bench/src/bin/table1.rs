//! Regenerates **Table 1** of the paper: pruning effects of Properties 2,
//! 1+2 and 1+2+4 on the data tree of a full balanced m-ary index tree of
//! depth 3, `m = 2..6`, with random data weights.
//!
//! Columns mirror the paper: total root-to-leaf paths of the reduced data
//! tree per property set, plus the pruning percentage against the unpruned
//! `(m²)!` permutations. The "By Property 2" column uses the paper's closed
//! form `(m²)!/(m!)^m` (cross-checked against enumeration for small `m`);
//! the other two are measured by DFS over our seeded weights, so their
//! exact values differ from the paper's (their weights were random too) —
//! the order of magnitude is the comparable quantity.
//!
//! ```text
//! cargo run --release -p bcast-bench --bin table1 [seed]
//! ```

use bcast_bench::{factorial_f64, fmt_count, property2_closed_form, render_table};
use bcast_core::data_tree::{count_paths_capped, PruneLevel};
use bcast_index_tree::builders;
use bcast_workloads::{rng::sub_seed, FrequencyDist};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(20000);
    println!("Table 1 — pruning effects (full balanced m-ary tree, depth 3)");
    println!("weights: uniform random in [1, 100), seed {seed}\n");

    // Paper's reported values for side-by-side comparison.
    let paper: [(u64, &str, &str, &str); 5] = [
        (2, "6", "4", "1"),
        (3, "1680", "186", "3"),
        (4, "63063000 (paper prints 6306300)", "438048", "16"),
        (5, "6.2e14", "N/A", "464"),
        (6, "2.7e24", "N/A", "1366361"),
    ];

    let mut rows = Vec::new();
    for (i, &(m, p2_paper, p12_paper, p124_paper)) in paper.iter().enumerate() {
        let n_data = (m * m) as usize;
        let dist = FrequencyDist::Uniform { lo: 1.0, hi: 100.0 };
        let weights = dist.sample(n_data, sub_seed(seed, i as u64));
        let tree = builders::full_balanced(m as usize, 3, &weights).expect("valid shape");
        let space = factorial_f64(m * m);

        // Property 2: closed form (enumeration-verified for m ≤ 3 in the
        // library tests).
        let p2 = property2_closed_form(m);
        // Properties 1+2: enumerable for m ≤ 4 (≈ 4.4e5 paths in the
        // paper); beyond that the tree is too large, as in the paper (N/A).
        const CAP: u128 = 30_000_000;
        let p12 = (m <= 4)
            .then(|| count_paths_capped(&tree, PruneLevel::P12, CAP))
            .flatten();
        // Properties 1+2+4: enumerable through m = 6 (capped in case an
        // unlucky seed blows the space up).
        let p124 = count_paths_capped(&tree, PruneLevel::P124, CAP);
        // Corollary-2 extension: the two-and-one block exchange on top.
        let p124x = count_paths_capped(&tree, PruneLevel::P124X, CAP);

        let pct = |paths: f64| -> String {
            let p = 100.0 * (1.0 - paths / space);
            if p >= 99.99 {
                ">99.99%".to_string()
            } else {
                format!("{p:.2}%")
            }
        };
        rows.push(vec![
            format!("m={m}"),
            fmt_count(None, Some(p2)),
            pct(p2),
            fmt_count(p12, None),
            p12.map_or("N/A".into(), |c| pct(c as f64)),
            fmt_count(p124, None),
            p124.map_or("N/A".into(), |c| pct(c as f64)),
            fmt_count(p124x, None),
            format!("{p2_paper} / {p12_paper} / {p124_paper}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "tree",
                "P2 paths",
                "P2 prune",
                "P1,2 paths",
                "P1,2 prune",
                "P1,2,4 paths",
                "P1,2,4 prune",
                "+Cor.2",
                "paper (P2 / P12 / P124)",
            ],
            &rows,
        )
    );
    println!("Shape check: pruning percentage grows with every added property, and");
    println!("P1,2,4 keeps the space enumerable through m = 6 while P1,2 alone");
    println!("blows up past m = 4 — the paper's qualitative conclusion (§4.1).");
}
