//! Extension experiment A4: end-to-end client metrics per index-tree
//! shape, via the broadcast simulator. Reproduces the trade-off the
//! paper's introduction describes: skewed trees (Huffman / alphabetic)
//! cut the average *tuning time* (battery) relative to a balanced tree,
//! while the allocation controls the *data wait* — and the k-nary
//! alphabetic tree keeps the index searchable by key, unlike Huffman.
//!
//! ```text
//! cargo run --release -p bcast-bench --bin tuning_time [seed] [items]
//! ```

use bcast_bench::render_table;
use bcast_channel::{simulator, BroadcastProgram};
use bcast_core::heuristics::sorting;
use bcast_index_tree::{hu_tucker, huffman, knary, IndexTree};
use bcast_workloads::FrequencyDist;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(4);
    let items: usize = args
        .next()
        .map(|s| s.parse().expect("items must be a usize"))
        .unwrap_or(64);
    let k_channels = 3usize;
    let fanout = 4usize;
    let weights = FrequencyDist::Zipf {
        theta: 1.0,
        scale: 1000.0,
    }
    .sample(items, seed);

    println!(
        "Tuning-time comparison — {items} data items, Zipf(1.0) weights, \
         fanout {fanout}, {k_channels} channels, seed {seed}"
    );
    println!("allocation: Index Tree Sorting heuristic on every tree shape\n");

    let balanced = {
        // Pad to a full balanced tree by rounding items down to a power of
        // the fanout is too restrictive; use the weight-balanced splitter
        // with uniform weights as the "frequency-blind" balanced shape.
        let uniform: Vec<_> = weights
            .iter()
            .map(|_| bcast_types::Weight::from(1u32))
            .collect();
        let shape = knary::build_weight_balanced(&uniform, fanout).expect("non-empty");
        rebuild_with_weights(&shape, &weights)
    };
    // Exact DP alphabetic tree for moderate n, the scalable approximation
    // beyond.
    let alphabetic_knary = if items <= 200 {
        knary::build_alphabetic_knary(&weights, fanout).expect("non-empty")
    } else {
        knary::build_weight_balanced(&weights, fanout).expect("non-empty")
    };
    let trees: Vec<(&str, IndexTree)> = vec![
        ("balanced (frequency-blind)", balanced),
        ("alphabetic k-nary [SV96]", alphabetic_knary),
        (
            "alphabetic binary [HT71]",
            hu_tucker::build_alphabetic(&weights).expect("non-empty"),
        ),
        (
            "huffman k-ary [CYW97]",
            huffman::build_huffman_knary(&weights, fanout).expect("non-empty"),
        ),
    ];

    let mut rows = Vec::new();
    for (name, tree) in &trees {
        let schedule = sorting::sorting_schedule(tree, k_channels);
        let alloc = schedule
            .into_allocation(tree, k_channels)
            .expect("heuristic schedules are feasible");
        let program = BroadcastProgram::build(&alloc, tree).expect("valid program");
        let m = simulator::aggregate_metrics(&program, tree).expect("all reachable");
        rows.push(vec![
            name.to_string(),
            format!("{}", tree.depth()),
            format!("{:.2}", m.avg_tuning_time),
            format!("{:.2}", m.avg_data_wait),
            format!("{:.2}", m.avg_access_time),
            format!("{:.2}", m.avg_channel_switches),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "index tree",
                "depth",
                "tuning (buckets)",
                "data wait",
                "access time",
                "switches",
            ],
            &rows
        )
    );
    println!("\nShape check: the skewed k-ary trees (alphabetic k-nary, huffman)");
    println!("beat the frequency-blind balanced tree on tuning time; huffman is");
    println!("the floor but sacrifices key-searchability. The binary [HT71] tree");
    println!("shows why [SV96] generalized it to fanout k: at fanout 2 the index");
    println!("is too deep for wireless packets, exactly the paper's motivation for");
    println!("adopting the k-nary alphabetic tree.");
}

/// Re-attaches the real access frequencies to a tree *shape* whose data
/// nodes were built with dummy weights (data node `Di` gets `weights[i]`).
fn rebuild_with_weights(shape: &IndexTree, weights: &[bcast_types::Weight]) -> IndexTree {
    use bcast_index_tree::TreeBuilder;
    let mut b = TreeBuilder::new();
    let root = b.root(shape.label(shape.root()));
    let mut stack: Vec<(bcast_types::NodeId, bcast_types::NodeId)> = shape
        .children(shape.root())
        .iter()
        .rev()
        .map(|&c| (c, root))
        .collect();
    while let Some((orig, parent)) = stack.pop() {
        if shape.is_data(orig) {
            let label = shape.label(orig);
            let idx: usize = label[1..].parse().expect("builder labels are D<i>");
            b.add_data(parent, weights[idx], label).expect("valid");
        } else {
            let id = b.add_index(parent, shape.label(orig)).expect("valid");
            for &c in shape.children(orig).iter().rev() {
                stack.push((c, id));
            }
        }
    }
    b.build().expect("same shape, new weights")
}
