//! PR 4: end-to-end publish build time at 65k/1M/4M items for three
//! paths — the vendored pre-PR4 pipeline (`seed_pipeline`, quadratic;
//! measured once per machine and carried forward), the current
//! `Schedule`-API three-pass, and the fused `Publisher` (cold and warm).

use crate::report::{extract_object, field_f64};
use bcast_channel::{BroadcastProgram, CompiledProgram};
use bcast_core::heuristics::sorting;
use bcast_core::{PublishHeuristic, PublishOptions, Publisher};
use bcast_index_tree::knary;
use bcast_workloads::FrequencyDist;
use std::time::Instant;

/// Looks up a carried-forward seed measurement for `items` inside a
/// previously written `"seed"` object. `None` when absent or `null`.
fn carried_seed(seed_obj: &str, items: usize) -> Option<(f64, u64)> {
    let key = format!("\"{items}\":");
    let start = seed_obj.find(&key)? + key.len();
    let rest = seed_obj[start..].trim_start();
    if !rest.starts_with('{') {
        return None; // recorded as null (size where the seed is infeasible)
    }
    let entry = &rest[..=rest.find('}')?];
    let wall = field_f64(entry, "wall_s")?;
    let allocs = field_f64(entry, "allocs").unwrap_or(0.0) as u64;
    Some((wall, allocs))
}

/// The seed baseline at one size: min wall seconds, heap allocations, and
/// whether the numbers were carried forward from a previous report rather
/// than re-measured.
struct SeedCell {
    wall_s: f64,
    allocs: u64,
    carried: bool,
}

/// End-to-end publish build time at scale, three paths per size:
///
/// * **seed** — the pre-PR4 pipeline, vendored in [`seed_pipeline`]
///   (allocation-heavy walks, quadratic `1_To_k` dump). The true *before*
///   of PR 4. Quadratic cost makes it measurable only up to 1M items
///   (~6 s at 65k, ~25 min at 1M on the reference container), so it is
///   measured once per machine — `previous` carries the numbers forward on
///   regeneration — and recorded as `null` at 4M.
/// * **api** — the current `Schedule` → `Allocation` → `BroadcastProgram` →
///   `CompiledProgram` three-pass. Since PR 4 the legacy wrappers share the
///   fused engines, so this column isolates the remaining pass-structure
///   and allocation overhead that the fused `Publisher` removes.
/// * **after** — the fused `Publisher`, cold (fresh) and warm (republish
///   into reused buffers, the steady-state path).
///
/// Every path that runs is asserted bit-identical to the fused output
/// before any number is written. Returns the full PR-4 JSON document.
pub fn report(previous: Option<&str>) -> String {
    const CHANNELS: usize = 3;
    const FANOUT: usize = 4;
    // Largest size at which the quadratic seed path is still worth running.
    const SEED_MEASURABLE: usize = 1_000_000;
    let opts = PublishOptions { threads: 1 };
    let prev_seed = previous.and_then(|text| extract_object(text, "\"seed\":"));
    // (items, timed runs): fewer repetitions as size grows.
    let sizes: [(usize, usize); 3] = [(65_536, 5), (1_000_000, 3), (4_000_000, 1)];
    let mut rows = Vec::new();
    let mut seed_rows = Vec::new();
    let mut speedup_seed_1m = None;
    let mut speedup_api_1m = 0.0;
    for (items, runs) in sizes {
        let t0 = Instant::now();
        let weights = FrequencyDist::SelfSimilar {
            fraction: 0.2,
            total: 1e9,
        }
        .sample(items, 14);
        let tree = knary::build_weight_balanced(&weights, FANOUT).expect("non-empty");
        eprintln!(
            "publish-bench: {items} items -> {} nodes (tree built in {:.2}s)",
            tree.len(),
            t0.elapsed().as_secs_f64()
        );

        // Current-API three passes, min wall time over `runs`.
        let mut api_s = f64::INFINITY;
        let mut api_allocs = 0u64;
        let mut compiled_api = None;
        for _ in 0..runs {
            let a0 = crate::allocation_count();
            let t0 = Instant::now();
            let schedule = sorting::sorting_schedule(&tree, CHANNELS);
            let alloc = schedule.into_allocation(&tree, CHANNELS).expect("feasible");
            let program = BroadcastProgram::build(&alloc, &tree).expect("valid program");
            let compiled = CompiledProgram::compile(&program, &tree).expect("routable");
            api_s = api_s.min(t0.elapsed().as_secs_f64());
            api_allocs = crate::allocation_count() - a0;
            compiled_api = Some(compiled);
        }
        let compiled_api = compiled_api.expect("at least one run");
        eprintln!("publish-bench: {items} items current-API three-pass {api_s:.3}s");

        // After (cold): a fresh Publisher per run — first-build cost.
        let mut cold_s = f64::INFINITY;
        for _ in 0..runs {
            let mut publisher = Publisher::new();
            let t0 = Instant::now();
            publisher
                .publish(&tree, CHANNELS, PublishHeuristic::Sorting, opts)
                .expect("feasible");
            cold_s = cold_s.min(t0.elapsed().as_secs_f64());
        }

        // After (warm): steady-state republish into reused buffers — the
        // adaptive controller's operating point. Zero heap allocations.
        // Two warm-ups, so both halves of the double-buffered program are
        // sized before the measured runs.
        let mut publisher = Publisher::new();
        for _ in 0..2 {
            publisher
                .publish(&tree, CHANNELS, PublishHeuristic::Sorting, opts)
                .expect("feasible");
        }
        let mut warm_s = f64::INFINITY;
        let mut warm_allocs = 0u64;
        for _ in 0..runs {
            let a0 = crate::allocation_count();
            let t0 = Instant::now();
            publisher
                .publish(&tree, CHANNELS, PublishHeuristic::Sorting, opts)
                .expect("feasible");
            warm_s = warm_s.min(t0.elapsed().as_secs_f64());
            warm_allocs = crate::allocation_count() - a0;
        }
        assert_eq!(
            *publisher.current(),
            compiled_api,
            "fused and three-pass outputs diverged at {items} items"
        );
        eprintln!(
            "publish-bench: {items} items fused cold {cold_s:.3}s warm {warm_s:.3}s \
             ({:.1}x vs current API)",
            api_s / warm_s
        );

        // Seed baseline: carried forward when already on file, measured
        // (and verified bit-identical) otherwise, skipped above 1M.
        let seed = if let Some((wall_s, allocs)) =
            prev_seed.as_deref().and_then(|s| carried_seed(s, items))
        {
            eprintln!("publish-bench: {items} items seed three-pass {wall_s:.3}s (carried)");
            Some(SeedCell {
                wall_s,
                allocs,
                carried: true,
            })
        } else if items <= SEED_MEASURABLE {
            let seed_runs = if items >= SEED_MEASURABLE { 1 } else { 2 };
            let mut wall_s = f64::INFINITY;
            let mut allocs = 0u64;
            for _ in 0..seed_runs {
                let a0 = crate::allocation_count();
                let t0 = Instant::now();
                let compiled = crate::seed_pipeline::publish(&tree, CHANNELS);
                wall_s = wall_s.min(t0.elapsed().as_secs_f64());
                allocs = crate::allocation_count() - a0;
                assert_eq!(
                    compiled,
                    *publisher.current(),
                    "seed and fused outputs diverged at {items} items"
                );
            }
            eprintln!("publish-bench: {items} items seed three-pass {wall_s:.3}s");
            Some(SeedCell {
                wall_s,
                allocs,
                carried: false,
            })
        } else {
            eprintln!("publish-bench: {items} items seed three-pass skipped (quadratic)");
            None
        };

        if items == 1_000_000 {
            speedup_seed_1m = seed.as_ref().map(|s| s.wall_s / warm_s);
            speedup_api_1m = api_s / warm_s;
        }
        let (seed_s, seed_allocs, speedup_seed) = match &seed {
            Some(s) => (
                format!("{:.4}", s.wall_s),
                s.allocs.to_string(),
                format!("{:.1}", s.wall_s / warm_s),
            ),
            None => ("null".into(), "null".into(), "null".into()),
        };
        rows.push(format!(
            concat!(
                "    {{\"items\": {}, \"nodes\": {}, \"cycle_len\": {}, ",
                "\"seed_s\": {}, \"api_s\": {:.4}, \"after_cold_s\": {:.4}, ",
                "\"after_warm_s\": {:.4}, \"speedup_warm_vs_seed\": {}, ",
                "\"speedup_warm_vs_api\": {:.2}, \"allocs_seed\": {}, ",
                "\"allocs_api\": {}, \"allocs_warm\": {}}}"
            ),
            items,
            tree.len(),
            publisher.current().cycle_len(),
            seed_s,
            api_s,
            cold_s,
            warm_s,
            speedup_seed,
            api_s / warm_s,
            seed_allocs,
            api_allocs,
            warm_allocs,
        ));
        seed_rows.push(match &seed {
            Some(s) => format!(
                "    \"{}\": {{\"wall_s\": {:.4}, \"allocs\": {}, \"carried\": {}}}",
                items, s.wall_s, s.allocs, s.carried
            ),
            None => format!("    \"{items}\": null"),
        });
    }
    format!(
        concat!(
            "{{\n  \"pr\": 4,\n",
            "  \"description\": \"end-to-end publish build (sorting ",
            "heuristic, self-similar 80/20 weights, fanout 4, 3 channels, ",
            "1 thread): seed = the pre-PR4 three-pass pipeline (vendored; ",
            "quadratic 1_To_k dump), api = the current Schedule -> ",
            "Allocation -> BroadcastProgram -> CompiledProgram three-pass ",
            "(shares the PR-4 engines), after = the fused Publisher; every ",
            "path that runs is asserted bit-identical to the fused output; ",
            "warm = republish into reused buffers (the steady-state ",
            "path)\",\n",
            "  \"machine\": \"1-core Linux container\",\n",
            "  \"alloc_counting\": {},\n",
            "  \"seed_note\": \"the seed path is measured once per machine ",
            "(~6 s at 65k, ~25 min at 1M) and carried forward on ",
            "regeneration; at 4M its quadratic dump would need hours, so ",
            "the cell is null and only the api column bounds the before ",
            "there\",\n",
            "  \"seed\": {{\n{}\n  }},\n",
            "  \"sizes\": [\n{}\n  ],\n",
            "  \"speedup_warm_1m_vs_seed\": {},\n",
            "  \"speedup_warm_1m_vs_api\": {:.2}\n}}\n"
        ),
        cfg!(feature = "alloc-count"),
        seed_rows.join(",\n"),
        rows.join(",\n"),
        speedup_seed_1m
            .map(|s| format!("{s:.1}"))
            .unwrap_or_else(|| "null".into()),
        speedup_api_1m
    )
}
